//! Graph analytics with APT-GET: BFS over a synthetic social graph,
//! showing the outer-loop injection decision the paper motivates with
//! low-trip-count edge loops.
//!
//! Run with `cargo run --release --example graph_analytics`.

use apt_workloads::{bfs, graphs};
use aptget::{execute, AptGet, PipelineConfig};

fn main() {
    // A loc-Brightkite-like graph: ~58 K vertices, mean degree ~4.
    let spec = graphs::dataset_by_code("LBE").expect("known dataset");
    let g = spec.generate(1.0, 42);
    println!(
        "graph: {} — {} vertices, {} edges (mean degree {:.1})",
        spec.name,
        g.n,
        g.m(),
        g.mean_degree()
    );

    let w = bfs::build("BFS", &g, 0);
    let cfg = PipelineConfig::default();
    let base = execute(&w.module, w.image.clone(), &w.calls, &cfg.measure_sim).expect("baseline");
    (w.check)(&base.image, &base.rets).expect("correct BFS");
    println!(
        "baseline: {} cycles, {:.0}% of cycles stalled on L3/DRAM",
        base.stats.cycles,
        base.stats.memory_bound_fraction() * 100.0
    );

    let apt = AptGet::new(cfg);
    let opt = apt
        .optimize(&w.module, w.image.clone(), &w.calls)
        .expect("profiles");
    println!("\nAPT-GET decisions:");
    for h in &opt.analysis.hints {
        println!(
            "  load {}: site {:?}, distance {}, fanout {}, measured trip count {:?}",
            h.pc,
            h.site,
            h.distance,
            h.fanout,
            h.trip_count.map(|t| t.round())
        );
    }
    for n in &opt.analysis.notes {
        println!("  note: {n}");
    }

    let tuned =
        execute(&opt.module, w.image.clone(), &w.calls, &cfg.measure_sim).expect("tuned run");
    (w.check)(&tuned.image, &tuned.rets).expect("still correct");
    println!(
        "\nAPT-GET: {} cycles  →  {:.2}x speedup, {:.0}% fewer LLC misses",
        tuned.stats.cycles,
        base.stats.cycles as f64 / tuned.stats.cycles as f64,
        (1.0 - tuned.stats.mpki() / base.stats.mpki()) * 100.0
    );
}
