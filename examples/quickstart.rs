//! Quickstart: build a kernel with an indirect access, let APT-GET profile
//! and optimise it, and compare against the no-prefetch baseline.
//!
//! Run with `cargo run --release --example quickstart`.

use apt_lir::{FunctionBuilder, Module, Width};
use aptget::{execute, AptGet, MemImage, PipelineConfig};

fn main() {
    // 1. A kernel with the classic indirect pattern: sum += T[B[i]].
    let mut module = Module::new("quickstart");
    let f = module.add_function("kernel", &["t", "b", "n"]);
    {
        let mut bd = FunctionBuilder::new(module.function_mut(f));
        let (t, b, n) = (bd.param(0), bd.param(1), bd.param(2));
        let sum = bd.loop_up_reduce(0u64, n, 1, 0u64, |bd, i, acc| {
            let idx = bd.load_elem(b, i, Width::W4, false); // B[i]
            let val = bd.load_elem(t, idx, Width::W4, false); // T[B[i]]
            bd.add(acc, val).into()
        });
        bd.ret(Some(sum));
    }
    println!(
        "--- kernel IR ---\n{}",
        apt_lir::print::module_to_string(&module)
    );

    // 2. Data: a table far larger than the simulated LLC, random indices.
    let mut image = MemImage::new();
    let table: Vec<u32> = (0..1u32 << 20).map(|i| i % 997).collect();
    let indices: Vec<u32> = (0..400_000u32)
        .map(|i| i.wrapping_mul(2_654_435_761) % (1 << 20))
        .collect();
    let t = image.alloc_u32_slice(&table);
    let b = image.alloc_u32_slice(&indices);
    let calls = vec![("kernel".to_string(), vec![t, b, indices.len() as u64])];

    // 3. Baseline measurement.
    let cfg = PipelineConfig::default();
    let base = execute(&module, image.clone(), &calls, &cfg.measure_sim).expect("runs");
    println!(
        "baseline:  {:>12} cycles, IPC {:.2}, {:.0}% memory-bound",
        base.stats.cycles,
        base.stats.ipc(),
        base.stats.memory_bound_fraction() * 100.0
    );

    // 4. One profiling run + analysis + injection.
    let apt = AptGet::new(cfg);
    let opt = apt
        .optimize(&module, image.clone(), &calls)
        .expect("profiles");
    for h in &opt.analysis.hints {
        println!(
            "hint: load at {} — distance {}, site {:?} (IC {:.0} cyc, MC {:.0} cyc)",
            h.pc, h.distance, h.site, h.ic_latency, h.mc_latency
        );
    }

    // 5. Measure the optimised module.
    let tuned = execute(&opt.module, image, &calls, &cfg.measure_sim).expect("runs");
    assert_eq!(base.rets, tuned.rets, "prefetching never changes results");
    println!(
        "APT-GET:   {:>12} cycles, IPC {:.2}  →  {:.2}x speedup",
        tuned.stats.cycles,
        tuned.stats.ipc(),
        base.stats.cycles as f64 / tuned.stats.cycles as f64
    );
}
