//! Database hash-join probe with APT-GET — the paper's headline HJ8 case:
//! 8-slot buckets give an inner trip count of 8, far too short for timely
//! inner-loop prefetching, so Eq. 2 moves the prefetch into the probe
//! loop and covers each future bucket one cache line at a time.
//!
//! Run with `cargo run --release --example hashjoin_db`.

use apt_workloads::hashjoin::{self, HjParams, Layout};
use aptget::{ainsworth_jones_optimize, execute, AptGet, PipelineConfig, Site};

fn main() {
    let cfg = PipelineConfig::default();
    for (label, p) in [
        ("HJ2 (2-slot buckets)", HjParams::hj2(Layout::Npo)),
        ("HJ8 (8-slot buckets)", HjParams::hj8(Layout::Npo)),
    ] {
        let w = hashjoin::build(p);
        let base =
            execute(&w.module, w.image.clone(), &w.calls, &cfg.measure_sim).expect("baseline");
        (w.check)(&base.image, &base.rets).expect("correct join");

        // The static state of the art can't even find the bucket load:
        // from the inner loop's perspective its address is loop-invariant.
        let (aj_module, aj_report) = ainsworth_jones_optimize(&w.module, 32);
        let aj = execute(&aj_module, w.image.clone(), &w.calls, &cfg.measure_sim).expect("A&J run");

        let apt = AptGet::new(cfg);
        let opt = apt
            .optimize(&w.module, w.image.clone(), &w.calls)
            .expect("profiles");
        let tuned =
            execute(&opt.module, w.image.clone(), &w.calls, &cfg.measure_sim).expect("tuned run");
        (w.check)(&tuned.image, &tuned.rets).expect("still correct");

        println!("{label}:");
        println!("  baseline          {:>12} cycles", base.stats.cycles);
        println!(
            "  A&J static        {:>12} cycles ({} loads instrumented)",
            aj.stats.cycles,
            aj_report.injected.len()
        );
        println!(
            "  APT-GET           {:>12} cycles  →  {:.2}x",
            tuned.stats.cycles,
            base.stats.cycles as f64 / tuned.stats.cycles as f64
        );
        for h in &opt.analysis.hints {
            assert_eq!(h.site, Site::Outer, "Eq. 2 must choose the probe loop");
            println!(
                "  decision: outer-loop injection, distance {}, bucket trip {:?}",
                h.distance,
                h.trip_count.map(|t| t.round())
            );
        }
        println!();
    }
}
