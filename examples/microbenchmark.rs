//! The paper's §2 study, end to end: sweep prefetch distances over the
//! Listing-1 microbenchmark at three work complexities and watch the
//! optimum move — then let APT-GET find it from one profiling run.
//!
//! Run with `cargo run --release --example microbenchmark`.

use apt_workloads::micro::{self, Complexity, MicroParams};
use aptget::{ainsworth_jones_optimize, execute, AptGet, PipelineConfig};

fn main() {
    let cfg = PipelineConfig::default();
    let distances = [1u64, 2, 4, 8, 16, 32, 64];
    println!("speedup over no-prefetch baseline (INNER = 256):\n");
    print!("{:>10}", "distance");
    for d in distances {
        print!("{d:>8}");
    }
    println!("{:>10}{:>6}", "APT-GET", "(d)");

    for cx in [Complexity::Low, Complexity::Medium, Complexity::High] {
        let w = micro::build(MicroParams {
            outer: 400,
            inner: 256,
            complexity: cx,
            ..MicroParams::default()
        });
        let base = execute(&w.module, w.image.clone(), &w.calls, &cfg.measure_sim).expect("runs");
        print!("{:>10}", cx.label());
        for d in distances {
            let (m, _) = ainsworth_jones_optimize(&w.module, d);
            let e = execute(&m, w.image.clone(), &w.calls, &cfg.measure_sim).expect("runs");
            print!("{:>7.2}x", base.stats.cycles as f64 / e.stats.cycles as f64);
        }
        // APT-GET picks the distance itself.
        let apt = AptGet::new(cfg);
        let opt = apt
            .optimize(&w.module, w.image.clone(), &w.calls)
            .expect("profiles");
        let e = execute(&opt.module, w.image.clone(), &w.calls, &cfg.measure_sim).expect("runs");
        let d = opt.analysis.hints.first().map(|h| h.distance).unwrap_or(0);
        println!(
            "{:>9.2}x{:>6}",
            base.stats.cycles as f64 / e.stats.cycles as f64,
            format!("({d})")
        );
    }
    println!("\nThe optimum shifts left as the work function grows — and the");
    println!("profile-guided distance lands on it without any sweep.");
}
