//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access and no registry cache, so the
//! real `rand` cannot be downloaded. This crate implements exactly the API
//! surface the workspace uses — `SmallRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{gen, gen_range}` over integer/float ranges, and
//! `seq::SliceRandom::choose` — with a deterministic xorshift64* generator.
//! Streams differ from upstream `rand`, which is fine: every consumer seeds
//! explicitly and only needs determinism, not a specific stream.

pub mod rngs;
pub mod seq;

pub use rngs::SmallRng;

/// Minimal core trait: a source of uniform 64-bit values.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Construction from a `u64` seed (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from an [`RngCore`].
pub trait Standard: Sized {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),+) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types drawable uniformly from a bounded range. Mirrors upstream's
/// `SampleUniform` so the blanket [`SampleRange`] impls below give the same
/// type-inference behaviour as the real crate.
pub trait SampleUniform: Sized + PartialOrd {
    /// A uniform value in `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                // Widening through i128 handles signed types and `u64::MAX`
                // spans in one code path.
                let span = (hi as i128) - (lo as i128) + if inclusive { 1 } else { 0 };
                assert!(span > 0, "empty gen_range");
                if span > u64::MAX as i128 {
                    return rng.next_u64() as $t;
                }
                ((lo as i128) + (rng.next_u64() % span as u64) as i128) as $t
            }
        }
    )+};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_in<R: RngCore + ?Sized>(lo: f64, hi: f64, _inclusive: bool, rng: &mut R) -> f64 {
        lo + f64::draw(rng) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_in<R: RngCore + ?Sized>(lo: f32, hi: f32, _inclusive: bool, rng: &mut R) -> f32 {
        lo + (f64::draw(rng) as f32) * (hi - lo)
    }
}

/// Ranges a value can be drawn from (`gen_range` argument).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_in(lo, hi, true, rng)
    }
}

/// The user-facing sampling methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// True with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool
    where
        Self: Sized,
    {
        assert!(denominator > 0 && numerator <= denominator);
        (self.next_u64() % denominator as u64) < numerator as u64
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u64 = rng.gen_range(0..=5);
            assert!(w <= 5);
            let f: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
