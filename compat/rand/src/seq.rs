//! Slice sampling helpers.

use crate::RngCore;

/// Random selection from slices (`choose` is all the workspace uses).
pub trait SliceRandom {
    type Item;

    /// A uniformly random element, or `None` for an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[(rng.next_u64() % self.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SeedableRng, SmallRng};

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = SmallRng::seed_from_u64(3);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            let &v = items.choose(&mut rng).unwrap();
            seen[v - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
