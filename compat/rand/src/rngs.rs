//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// A small, fast, deterministic generator (xorshift64* with a splitmix64
/// seed scrambler, so nearby seeds give unrelated streams).
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> SmallRng {
        // splitmix64 step: avoids the all-zeros fixed point and decorrelates
        // sequential seeds.
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        SmallRng {
            state: z | 1, // xorshift must not start at 0
        }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}
