//! The `prop::` namespace (`prop::collection::vec`, `prop::sample::select`).

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Element counts accepted by [`vec`]: a fixed size or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Vectors of `elem`-generated values with a length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let n = self.size.lo + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform selection from a fixed set of values.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }

    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.options[(rng.next_u64() % self.options.len() as u64) as usize].clone()
        }
    }
}
