//! Value-generation strategies (sampling only — no shrinking).

use crate::test_runner::TestRng;

/// A source of random values of one type.
pub trait Strategy {
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Types with a canonical "uniform over the whole domain" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The `any::<T>()` strategy.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T> Default for Any<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Any<T> {
    pub const fn new() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Uniform over the type's whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any::new()
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_strategy_for_int_ranges {
    ($($t:ty),+) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )+};
}
impl_strategy_for_int_ranges!(u8, u16, u32, u64, usize);

/// `prop_map` adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_strategy_for_tuples {
    ($(($($s:ident . $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}
impl_strategy_for_tuples! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Object-safe strategy wrapper, for [`Union`] / `prop_oneof!`.
pub trait DynStrategy {
    type Value;
    fn dyn_sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;

    fn dyn_sample(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// Boxes a strategy for use in a [`Union`].
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn DynStrategy<Value = S::Value>> {
    Box::new(s)
}

/// `prop_oneof!`: picks one of several same-valued strategies per case.
pub struct Union<T> {
    options: Vec<Box<dyn DynStrategy<Value = T>>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<Box<dyn DynStrategy<Value = T>>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[i].dyn_sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_maps() {
        let mut rng = TestRng::for_test("ranges_and_maps");
        let s = (0u64..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!(v < 20 && v % 2 == 0);
        }
    }

    #[test]
    fn union_draws_every_arm() {
        let mut rng = TestRng::for_test("union_draws_every_arm");
        let u = Union::new(vec![boxed(Just(1u8)), boxed(Just(2u8))]);
        let mut seen = [false; 3];
        for _ in 0..64 {
            seen[u.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn tuples_compose() {
        let mut rng = TestRng::for_test("tuples_compose");
        let (a, b) = (any::<bool>(), 5u64..6).sample(&mut rng);
        let _: bool = a;
        assert_eq!(b, 5);
    }
}
