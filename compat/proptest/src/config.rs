//! Test-runner configuration.

/// Mirror of `proptest::test_runner::Config` — only `cases` is honoured.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Upstream defaults to 256; simulations behind these properties are
        // heavy, so default lower — tests that need more ask explicitly.
        ProptestConfig { cases: 64 }
    }
}

/// The case count after applying the `PROPTEST_CASES` env override.
pub fn effective_cases(configured: u32) -> u32 {
    match std::env::var("PROPTEST_CASES") {
        Ok(v) => v.parse().unwrap_or(configured),
        Err(_) => configured,
    }
}
