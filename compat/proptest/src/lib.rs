//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot download the real `proptest`, so this crate
//! re-implements the subset the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * strategies: `any::<T>()`, integer ranges, [`Just`], tuples,
//!   `prop::collection::vec`, `prop::sample::select`, `prop_map`,
//!   [`prop_oneof!`], and `proptest::bool::ANY`,
//! * the `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` macros.
//!
//! Semantics: each test runs `cases` deterministic random cases (seeded from
//! the test name, overridable via `PROPTEST_CASES`). There is **no
//! shrinking** — a failing case reports its inputs via the assertion
//! message instead.

pub mod config;
pub mod prop;
pub mod strategy;
pub mod test_runner;

pub use config::ProptestConfig;

/// `proptest::bool::ANY`, used fully qualified by some tests.
pub mod bool {
    use crate::strategy::Any;

    /// A uniform boolean strategy.
    pub const ANY: Any<bool> = Any::new();
}

/// Everything the tests bring into scope with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::config::ProptestConfig;
    pub use crate::prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines deterministic property tests.
///
/// Supports the two forms the workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     /// Doc comments survive.
///     #[test]
///     fn my_prop(x in 0u64..10, v in prop::collection::vec(any::<bool>(), 1..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); ) => {};
    (
        config = ($cfg:expr);
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])+
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __cases = $crate::config::effective_cases(__config.cases);
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for __case in 0..__cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                let __outcome: $crate::test_runner::TestCaseResult =
                    (move || { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!("property failed at case {}/{}: {}", __case + 1, __cases, e);
                }
            }
        }
        $crate::__proptest_impl!{ config = ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: {} ({})",
                    stringify!($cond),
                    ::std::format!($($fmt)+),
                ),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($a), stringify!($b), __l, __r,
                ),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$a, &$b);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
                    stringify!($a), stringify!($b), ::std::format!($($fmt)+), __l, __r,
                ),
            ));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        if __l == __r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($a),
                    stringify!($b),
                    __l,
                ),
            ));
        }
    }};
}

/// A union of same-valued strategies, chosen uniformly per case.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::boxed($strat)),+
        ])
    };
}
