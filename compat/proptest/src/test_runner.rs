//! The deterministic RNG behind every strategy, plus the per-case error
//! type that `prop_assert!` and fallible test bodies produce.

use std::fmt;

/// Why one test case failed — the subset of the real `TestCaseError` the
/// workspace uses (`fail`, `reject`, `Display`, and `?` in test bodies).
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property does not hold for these inputs.
    Fail(String),
    /// The inputs were invalid for the property (not counted as failure by
    /// the real proptest; here it still fails the case, loudly).
    Reject(String),
}

impl TestCaseError {
    pub fn fail(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(reason.into())
    }

    pub fn reject(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "{r}"),
            TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
        }
    }
}

/// Result of one test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// xorshift64* generator seeded from the test name, so each property gets a
/// stable, independent stream across runs and machines.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator whose stream is a pure function of `test_name`.
    pub fn for_test(test_name: &str) -> TestRng {
        // FNV-1a over the name, then splitmix64 to spread the bits.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut z = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        TestRng {
            state: (z ^ (z >> 31)) | 1,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_per_name() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        let mut c = TestRng::for_test("y");
        let va: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..4).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }
}
