//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API shape the workspace's micro-benchmarks use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], [`criterion_group!`], [`criterion_main!`],
//! [`black_box`] — backed by a simple calibrate-then-measure wall-clock
//! harness. Per sample it runs enough iterations to cover ~20 ms, collects
//! `sample_size` samples, and reports min/median/max ns-per-iteration.
//! Good enough to detect the ±2 % regressions the repo's acceptance
//! criteria care about, without criterion's statistics machinery.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, &mut f);
        self
    }

    /// Starts a named group (the stub only namespaces the output).
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            prefix: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Printed by `criterion_main!` after all groups ran.
    pub fn final_summary(&self) {
        println!("\nbenchmarks complete");
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    prefix: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one named benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{name}", self.prefix), self.sample_size, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; [`Bencher::iter`] does the timing.
pub struct Bencher {
    sample_size: usize,
    /// Median/min/max ns per iteration, filled by `iter`.
    result: Option<(f64, f64, f64)>,
}

impl Bencher {
    /// Times `f`, storing ns-per-iteration statistics.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Calibrate: find an iteration count covering ~20 ms per sample.
        let mut iters_per_sample = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(20) || iters_per_sample >= 1 << 28 {
                break;
            }
            // Aim directly at the target once we have a measurable base.
            iters_per_sample = if dt >= Duration::from_micros(500) {
                let per_iter = dt.as_nanos().max(1) as u64 / iters_per_sample;
                (20_000_000 / per_iter.max(1)).max(iters_per_sample + 1)
            } else {
                iters_per_sample * 8
            };
        }

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            samples.push(t0.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        self.result = Some((median, samples[0], *samples.last().unwrap()));
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, f: &mut F) {
    let mut b = Bencher {
        sample_size,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some((median, min, max)) => println!(
            "{name:<40} time: [{} {} {}]",
            format_ns(min),
            format_ns(median),
            format_ns(max)
        ),
        None => println!("{name:<40} (no measurement: Bencher::iter never called)"),
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

/// Bundles benchmark functions into a group runner, like upstream.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main` running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("stub");
        g.sample_size(3);
        g.bench_function("noop", |b| b.iter(|| black_box(1u64 + 1)));
        g.finish();
    }

    #[test]
    fn ns_formatting() {
        assert!(format_ns(12.3).ends_with("ns"));
        assert!(format_ns(12_300.0).ends_with("µs"));
        assert!(format_ns(12_300_000.0).ends_with("ms"));
        assert!(format_ns(2e9).ends_with(" s"));
    }
}
