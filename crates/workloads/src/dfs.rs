//! Depth-first search (CRONO): iterative DFS with an explicit stack.
//!
//! The delinquent load is `visited[col[e]]` in the edge loop. Unlike BFS,
//! the paper finds *inner-loop* injection competitive for DFS (Fig. 10) —
//! the stack top keeps enough work per vertex visit.

use apt_cpu::MemImage;
use apt_lir::{FunctionBuilder, ICmpPred, Module, Operand, Width};

use crate::graphs::Csr;
use crate::BuiltWorkload;

/// Builds the DFS module (kernel `dfs`).
///
/// Signature: `dfs(row_ptr, col, visited, stack, src) -> count` where
/// `visited` is zero-initialised and `stack` has at least `m + 1` slots.
pub fn build_module() -> Module {
    let mut m = Module::new("dfs");
    let f = m.add_function("dfs", &["row_ptr", "col", "visited", "stack", "src"]);
    {
        let mut b = FunctionBuilder::new(m.function_mut(f));
        let (row_ptr, col, visited, stack, src) =
            (b.param(0), b.param(1), b.param(2), b.param(3), b.param(4));
        b.store_elem(stack, 0u64, src, Width::W4);

        // Carried: (sp, count).
        let out = b.do_while_carried(&[Operand::Imm(1), Operand::Imm(0)], |b, car| {
            let (sp, count) = (car[0], car[1]);
            let sp1 = b.sub(sp, 1);
            let v = b.load_elem(stack, sp1, Width::W4, false);
            let vis = b.load_elem(visited, v, Width::W4, false);
            let fresh = b.icmp(ICmpPred::Eq, vis, 0u64);
            let merged = b.if_then(fresh, &[sp1.into(), count.into()], |b| {
                b.store_elem(visited, v, 1u64, Width::W4);
                let c2 = b.add(count, 1);
                let start = b.load_elem(row_ptr, v, Width::W4, false);
                let vp1 = b.add(v, 1);
                let end = b.load_elem(row_ptr, vp1, Width::W4, false);
                let inner = b.loop_up_carried(start, end, 1, &[Operand::Reg(sp1)], |b, e, car2| {
                    let nb = b.load_elem(col, e, Width::W4, false);
                    // The delinquent indirect load.
                    let nvis = b.load_elem(visited, nb, Width::W4, false);
                    let unseen = b.icmp(ICmpPred::Eq, nvis, 0u64);
                    let m2 = b.if_then(unseen, &[car2[0].into()], |b| {
                        b.store_elem(stack, car2[0], nb, Width::W4);
                        let sp2 = b.add(car2[0], 1);
                        vec![sp2.into()]
                    });
                    vec![m2[0].into()]
                });
                vec![inner[0].into(), c2.into()]
            });
            let more = b.icmp(ICmpPred::Gts, merged[0], 0u64);
            (more.into(), vec![merged[0].into(), merged[1].into()])
        });
        b.ret(Some(out[1]));
    }
    m
}

/// Native reference: same iterative algorithm; returns the visit count.
pub fn reference(g: &Csr, src: u32) -> u64 {
    let mut visited = vec![false; g.n];
    let mut stack = vec![src];
    let mut count = 0u64;
    while let Some(v) = stack.pop() {
        if visited[v as usize] {
            continue;
        }
        visited[v as usize] = true;
        count += 1;
        for &nb in g.neighbors(v) {
            if !visited[nb as usize] {
                stack.push(nb);
            }
        }
    }
    count
}

/// Builds the complete DFS workload.
pub fn build(name: &str, g: &Csr, src: u32) -> BuiltWorkload {
    let expected = reference(g, src);
    let mut image = MemImage::new();
    let row_ptr = image.alloc_u32_slice(&g.row_ptr);
    let col = image.alloc_u32_slice(&g.col);
    let visited = image.alloc(g.n as u64 * 4, 64);
    let stack = image.alloc((g.m() as u64 + 2) * 4, 64);
    BuiltWorkload {
        name: name.to_string(),
        module: build_module(),
        image,
        calls: vec![("dfs".into(), vec![row_ptr, col, visited, stack, src as u64])],
        check: BuiltWorkload::returns_checker(vec![Some(expected)]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphs::uniform;
    use apt_cpu::{Machine, SimConfig};
    use apt_lir::verify::verify_module;
    use rand::SeedableRng;

    #[test]
    fn module_verifies() {
        verify_module(&build_module()).unwrap();
    }

    #[test]
    fn simulated_dfs_matches_reference() {
        let g = uniform(200, 4, 9);
        let w = build("DFS", &g, 0);
        let mut mach = Machine::new(&w.module, SimConfig::default(), w.image);
        let mut rets = Vec::new();
        for (f, args) in &w.calls {
            rets.push(mach.call(f, args).unwrap());
        }
        (w.check)(&mach.image, &rets).unwrap();
    }

    #[test]
    fn reference_counts_reachable_component() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
        let g = Csr::from_edges(5, &[(0, 1), (1, 2), (3, 4)], &mut rng);
        assert_eq!(reference(&g, 0), 3);
        assert_eq!(reference(&g, 3), 2);
    }
}
