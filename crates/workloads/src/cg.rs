//! Conjugate Gradient (NAS CG): sparse matrix-vector products in CSR form.
//!
//! The indirect gather is `x[col[e]]`, but NAS CG's matrix is *banded* —
//! column indices cluster near the diagonal — so the gather has high
//! locality and mostly hits in cache. This is why the paper sees no
//! speedup on CG (Fig. 6): the load is simply not delinquent, and
//! APT-GET's profile correctly declines to inject, while static injection
//! pays pure overhead.

use apt_cpu::MemImage;
use apt_lir::{BinOp, FunctionBuilder, Module, Operand, Width};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::BuiltWorkload;

/// CG parameters: an `n × n` banded matrix with `nnz_per_row` entries per
/// row within `±bandwidth` of the diagonal.
#[derive(Debug, Clone, Copy)]
pub struct CgParams {
    pub n: u64,
    pub nnz_per_row: u64,
    pub bandwidth: u64,
    /// SpMV applications (ping-ponging x and y).
    pub iterations: u64,
    pub seed: u64,
}

impl Default for CgParams {
    fn default() -> CgParams {
        CgParams {
            n: 150_000,
            nnz_per_row: 12,
            bandwidth: 2048,
            iterations: 3,
            seed: 0xC6,
        }
    }
}

/// Builds the CG module (kernel `cg_spmv`).
///
/// Signature: `cg_spmv(row_ptr, col, val, x, y, n)` computing `y = A·x`.
pub fn build_module() -> Module {
    let mut m = Module::new("cg");
    let f = m.add_function("cg_spmv", &["row_ptr", "col", "val", "x", "y", "n"]);
    {
        let mut b = FunctionBuilder::new(m.function_mut(f));
        let (row_ptr, col, val, x, y, n) = (
            b.param(0),
            b.param(1),
            b.param(2),
            b.param(3),
            b.param(4),
            b.param(5),
        );
        b.loop_up(0, n, 1, |b, r| {
            let start = b.load_elem(row_ptr, r, Width::W4, false);
            let rp1 = b.add(r, 1);
            let end = b.load_elem(row_ptr, rp1, Width::W4, false);
            let sum = b.loop_up_carried(start, end, 1, &[Operand::fimm(0.0)], |b, e, car| {
                let c = b.load_elem(col, e, Width::W4, false);
                let a = b.load_elem(val, e, Width::W8, false);
                // Banded gather: high locality, rarely delinquent.
                let xv = b.load_elem(x, c, Width::W8, false);
                let prod = b.bin(BinOp::FMul, a, xv);
                let s = b.bin(BinOp::FAdd, car[0], prod);
                vec![s.into()]
            });
            b.store_elem(y, r, sum[0], Width::W8);
        });
        b.ret(None::<Operand>);
    }
    m
}

/// Generates the banded CSR matrix `(row_ptr, col, val)`.
pub fn banded_matrix(p: &CgParams) -> (Vec<u32>, Vec<u32>, Vec<f64>) {
    let mut rng = SmallRng::seed_from_u64(p.seed);
    let n = p.n as i64;
    let bw = p.bandwidth as i64;
    let mut row_ptr = Vec::with_capacity(p.n as usize + 1);
    let mut col = Vec::new();
    let mut val = Vec::new();
    row_ptr.push(0u32);
    for r in 0..n {
        for _ in 0..p.nnz_per_row {
            let off = rng.gen_range(-bw..=bw);
            let c = (r + off).clamp(0, n - 1);
            col.push(c as u32);
            val.push(rng.gen_range(-1.0..1.0));
        }
        row_ptr.push(col.len() as u32);
    }
    (row_ptr, col, val)
}

/// Native SpMV reference.
pub fn reference(row_ptr: &[u32], col: &[u32], val: &[f64], x: &[f64]) -> Vec<f64> {
    let n = row_ptr.len() - 1;
    let mut y = vec![0.0; n];
    for (r, yr) in y.iter_mut().enumerate() {
        let mut sum = 0.0;
        for e in row_ptr[r] as usize..row_ptr[r + 1] as usize {
            sum += val[e] * x[col[e] as usize];
        }
        *yr = sum;
    }
    y
}

/// Builds the complete CG workload.
pub fn build(p: CgParams) -> BuiltWorkload {
    let (row_ptr, col, val) = banded_matrix(&p);
    let mut rng = SmallRng::seed_from_u64(p.seed ^ 0xff);
    let x0: Vec<f64> = (0..p.n).map(|_| rng.gen_range(0.0..1.0)).collect();

    // Expected final vector after `iterations` ping-pong SpMVs.
    let mut cur = x0.clone();
    let mut other = vec![0.0; p.n as usize];
    for _ in 0..p.iterations {
        other = reference(&row_ptr, &col, &val, &cur);
        std::mem::swap(&mut cur, &mut other);
    }
    let expected = cur;

    let mut image = MemImage::new();
    let rp_b = image.alloc_u32_slice(&row_ptr);
    let col_b = image.alloc_u32_slice(&col);
    let val_b = image.alloc_f64_slice(&val);
    let x_b = image.alloc_f64_slice(&x0);
    let y_b = image.alloc(p.n * 8, 64);

    let mut calls = Vec::new();
    let (mut a, mut b_) = (x_b, y_b);
    for _ in 0..p.iterations {
        calls.push(("cg_spmv".into(), vec![rp_b, col_b, val_b, a, b_, p.n]));
        std::mem::swap(&mut a, &mut b_);
    }
    let final_vec = a;
    let n = p.n as usize;

    BuiltWorkload {
        name: "CG".into(),
        module: build_module(),
        image,
        calls,
        check: Box::new(move |img, _rets| {
            let got = img
                .read_f64_slice(final_vec, n)
                .map_err(|e| e.to_string())?;
            for (i, (&g, &w)) in got.iter().zip(expected.iter()).enumerate() {
                if (g - w).abs() > 1e-9 * w.abs().max(1e-9) {
                    return Err(format!("y[{i}] = {g}, expected {w}"));
                }
            }
            Ok(())
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_cpu::{Machine, SimConfig};
    use apt_lir::verify::verify_module;

    fn small() -> CgParams {
        CgParams {
            n: 500,
            nnz_per_row: 6,
            bandwidth: 32,
            iterations: 2,
            seed: 5,
        }
    }

    #[test]
    fn module_verifies() {
        verify_module(&build_module()).unwrap();
    }

    #[test]
    fn simulated_spmv_matches_reference() {
        let w = build(small());
        let mut mach = Machine::new(&w.module, SimConfig::default(), w.image);
        let mut rets = Vec::new();
        for (f, args) in &w.calls {
            rets.push(mach.call(f, args).unwrap());
        }
        (w.check)(&mach.image, &rets).unwrap();
    }

    #[test]
    fn matrix_is_banded() {
        let p = small();
        let (row_ptr, col, _) = banded_matrix(&p);
        for r in 0..p.n as usize {
            for &c in &col[row_ptr[r] as usize..row_ptr[r + 1] as usize] {
                let d = (c as i64 - r as i64).unsigned_abs();
                assert!(d <= p.bandwidth, "row {r} col {c} too far");
            }
        }
    }
}
