//! The paper's evaluation workloads, expressed in `apt-lir`.
//!
//! Every application from Table 3 is built here as an IR module plus a
//! populated memory image, together with a *native Rust reference
//! implementation* used to check that simulation (and, crucially,
//! prefetch-injected simulation) computes the right answer:
//!
//! | App | Paper source | Module |
//! |---|---|---|
//! | BFS, DFS, PR, BC, SSSP | CRONO | [`bfs`], [`dfs`], [`pagerank`], [`bc`], [`sssp`] |
//! | IS, CG | NAS Parallel Benchmarks | [`is`], [`cg`] |
//! | RandomAccess | HPC Challenge | [`randacc`] |
//! | HJ2/HJ8 (NPO, NPO_st) | hash-join [19] | [`hashjoin`] |
//! | Graph500 | Graph500 BFS | [`graph500`] |
//!
//! Plus the §2 microbenchmark ([`micro`]) and the graph substrate
//! ([`graphs`]) with synthetic stand-ins for the SNAP datasets (Table 4).
//!
//! Scaled footprints: simulated datasets default to ≈ 1/8 of the paper's
//! sizes, matching the scaled cache hierarchy of `apt-mem` (see DESIGN.md).

pub mod bc;
pub mod bfs;
pub mod cg;
pub mod dfs;
pub mod graph500;
pub mod graphs;
pub mod hashjoin;
pub mod is;
pub mod micro;
pub mod pagerank;
pub mod randacc;
pub mod registry;
pub mod sssp;

pub use graphs::{Csr, DatasetSpec};
pub use registry::{all_workloads, descriptors, nested_loop_workloads, WorkloadDesc, WorkloadSpec};

use apt_cpu::MemImage;
use apt_lir::Module;

/// A fully materialised workload: module + data + call schedule + checker.
pub struct BuiltWorkload {
    /// Short name as used in the paper's figures (e.g. "BFS", "HJ8-NPO").
    pub name: String,
    /// The IR to compile/instrument/run.
    pub module: Module,
    /// The populated data image.
    pub image: MemImage,
    /// Kernel invocations in order: `(function, args)`.
    pub calls: Vec<(String, Vec<u64>)>,
    /// Result checker: receives the final image and the return values of
    /// each call; returns a description of the first mismatch, if any.
    pub check: Checker,
}

/// Boxed result checker.
pub type Checker = Box<dyn Fn(&MemImage, &[Option<u64>]) -> Result<(), String> + Send>;

impl BuiltWorkload {
    /// A checker that compares each call's return value to an expected
    /// list (`None` entries are ignored).
    pub fn returns_checker(expected: Vec<Option<u64>>) -> Checker {
        Box::new(move |_img, rets| {
            for (i, (got, want)) in rets.iter().zip(expected.iter()).enumerate() {
                if let Some(w) = want {
                    if got != &Some(*w) {
                        return Err(format!("call {i}: returned {got:?}, expected {w}"));
                    }
                }
            }
            if rets.len() < expected.len() {
                return Err(format!(
                    "expected {} calls, only {} ran",
                    expected.len(),
                    rets.len()
                ));
            }
            Ok(())
        })
    }
}
