//! The Table-3 application registry: one entry per paper workload, with a
//! uniform build interface for the experiment harness.

use crate::graphs::uniform;
use crate::hashjoin::{HjParams, Layout};
use crate::BuiltWorkload;
use crate::{bc, bfs, cg, dfs, graph500, hashjoin, is, pagerank, randacc, sssp};

/// One registered application.
#[derive(Clone, Copy)]
pub struct WorkloadSpec {
    /// Figure label ("BFS", "HJ8-NPO", …).
    pub name: &'static str,
    /// True if the delinquent loads sit in nested loops (Fig. 10's set).
    pub nested: bool,
    builder: fn(f64, u64) -> BuiltWorkload,
}

impl WorkloadSpec {
    /// Builds the workload at `scale` (1.0 = the default scaled-machine
    /// footprints; smaller for quick runs) with the given input `seed`
    /// (vary the seed for the Fig. 12 train/test experiment).
    pub fn build(&self, scale: f64, seed: u64) -> BuiltWorkload {
        (self.builder)(scale, seed)
    }

    /// The spec's descriptor at the given build parameters.
    pub fn descriptor(&self, scale: f64, seed: u64) -> WorkloadDesc {
        WorkloadDesc {
            spec: *self,
            scale,
            seed,
        }
    }
}

/// A *deferred* workload: spec plus build parameters, but no prebuilt
/// state. `Copy + Send`, a few dozen bytes — the unit the campaign runner
/// shards across worker threads, each worker materialising (graph
/// generation, image population) locally instead of shipping multi-MB
/// images through the queue.
#[derive(Clone, Copy)]
pub struct WorkloadDesc {
    spec: WorkloadSpec,
    /// Input scale (1.0 = the paper's scaled-machine footprints).
    pub scale: f64,
    /// Input generation seed.
    pub seed: u64,
}

impl WorkloadDesc {
    /// Figure label of the underlying workload.
    pub fn name(&self) -> &'static str {
        self.spec.name
    }

    /// True if the delinquent loads sit in nested loops.
    pub fn nested(&self) -> bool {
        self.spec.nested
    }

    /// Materialises the workload. Deterministic: equal descriptors build
    /// bit-identical modules, images and call schedules on any thread.
    pub fn build(&self) -> BuiltWorkload {
        self.spec.build(self.scale, self.seed)
    }
}

/// Descriptors for the whole registry at one (scale, seed) — the
/// evaluation campaign's workload axis.
pub fn descriptors(scale: f64, seed: u64) -> Vec<WorkloadDesc> {
    all_workloads()
        .into_iter()
        .map(|spec| spec.descriptor(scale, seed))
        .collect()
}

fn sz(scale: f64, base: usize, min: usize) -> usize {
    ((base as f64 * scale) as usize).max(min)
}

fn build_bfs(scale: f64, seed: u64) -> BuiltWorkload {
    let g = uniform(sz(scale, 300_000, 1000), 8, seed);
    bfs::build("BFS", &g, 0)
}

fn build_dfs(scale: f64, seed: u64) -> BuiltWorkload {
    let g = uniform(sz(scale, 250_000, 1000), 8, seed);
    dfs::build("DFS", &g, 0)
}

fn build_pr(scale: f64, seed: u64) -> BuiltWorkload {
    let g = uniform(sz(scale, 200_000, 1000), 8, seed);
    pagerank::build("PR", &g, 2)
}

fn build_bc(scale: f64, seed: u64) -> BuiltWorkload {
    // The paper's synthetic BC input family (n nodes, degree 8).
    let g = uniform(sz(scale, 200_000, 1000), 8, seed);
    bc::build("BC", &g, 0)
}

fn build_sssp(scale: f64, seed: u64) -> BuiltWorkload {
    let g = uniform(sz(scale, 250_000, 1000), 8, seed);
    sssp::build("SSSP", &g, 0, 3)
}

fn build_is(scale: f64, seed: u64) -> BuiltWorkload {
    is::build(is::IsParams {
        n: sz(scale, 1 << 19, 4096) as u64,
        max_key: sz(scale, 1 << 20, 8192) as u64,
        iterations: 2,
        seed,
    })
}

fn build_cg(scale: f64, seed: u64) -> BuiltWorkload {
    cg::build(cg::CgParams {
        n: sz(scale, 200_000, 2048) as u64,
        nnz_per_row: 12,
        bandwidth: 2048,
        iterations: 3,
        seed,
    })
}

fn build_randacc(scale: f64, seed: u64) -> BuiltWorkload {
    randacc::build(randacc::GupsParams {
        table_len: (sz(scale, 1 << 20, 4096) as u64).next_power_of_two(),
        updates: sz(scale, 1 << 19, 4096) as u64,
        seed,
    })
}

fn hj(scale: f64, seed: u64, slots: u64, layout: Layout) -> BuiltWorkload {
    let mut p = if slots == 2 {
        HjParams::hj2(layout)
    } else {
        HjParams::hj8(layout)
    };
    p.buckets = (sz(scale, p.buckets as usize, 1024) as u64).next_power_of_two();
    p.probes = sz(scale, p.probes as usize, 2048) as u64;
    p.seed = seed;
    hashjoin::build(p)
}

fn build_hj2_npo(scale: f64, seed: u64) -> BuiltWorkload {
    hj(scale, seed, 2, Layout::Npo)
}

fn build_hj2_npost(scale: f64, seed: u64) -> BuiltWorkload {
    hj(scale, seed, 2, Layout::NpoSt)
}

fn build_hj8_npo(scale: f64, seed: u64) -> BuiltWorkload {
    hj(scale, seed, 8, Layout::Npo)
}

fn build_hj8_npost(scale: f64, seed: u64) -> BuiltWorkload {
    hj(scale, seed, 8, Layout::NpoSt)
}

fn build_graph500(scale: f64, seed: u64) -> BuiltWorkload {
    // Scale shrinks the exponent: full = 2^18 vertices here.
    let sc = if scale >= 1.0 {
        17
    } else {
        (17.0 + scale.log2()).round().clamp(8.0, 17.0) as u32
    };
    graph500::build(graph500::G500Params {
        scale: sc,
        edge_factor: 10,
        seed,
    })
}

/// Every Table-3 application, in the paper's figure order.
pub fn all_workloads() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec {
            name: "BFS",
            nested: true,
            builder: build_bfs,
        },
        WorkloadSpec {
            name: "DFS",
            nested: true,
            builder: build_dfs,
        },
        WorkloadSpec {
            name: "PR",
            nested: true,
            builder: build_pr,
        },
        WorkloadSpec {
            name: "BC",
            nested: true,
            builder: build_bc,
        },
        WorkloadSpec {
            name: "SSSP",
            nested: false,
            builder: build_sssp,
        },
        WorkloadSpec {
            name: "IS",
            nested: false,
            builder: build_is,
        },
        WorkloadSpec {
            name: "CG",
            nested: true,
            builder: build_cg,
        },
        WorkloadSpec {
            name: "RandAcc",
            nested: false,
            builder: build_randacc,
        },
        WorkloadSpec {
            name: "HJ2-NPO",
            nested: true,
            builder: build_hj2_npo,
        },
        WorkloadSpec {
            name: "HJ2-NPO_st",
            nested: true,
            builder: build_hj2_npost,
        },
        WorkloadSpec {
            name: "HJ8-NPO",
            nested: true,
            builder: build_hj8_npo,
        },
        WorkloadSpec {
            name: "HJ8-NPO_st",
            nested: true,
            builder: build_hj8_npost,
        },
        WorkloadSpec {
            name: "Graph500",
            nested: true,
            builder: build_graph500,
        },
    ]
}

/// The subset with nested-loop delinquent loads (Fig. 10's apps).
pub fn nested_loop_workloads() -> Vec<WorkloadSpec> {
    all_workloads().into_iter().filter(|w| w.nested).collect()
}

/// Looks a workload up by name.
pub fn by_name(name: &str) -> Option<WorkloadSpec> {
    all_workloads().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_table3() {
        let names: Vec<&str> = all_workloads().iter().map(|w| w.name).collect();
        for expected in [
            "BFS", "DFS", "PR", "BC", "SSSP", "IS", "CG", "RandAcc", "HJ2-NPO", "HJ8-NPO",
            "Graph500",
        ] {
            assert!(names.contains(&expected), "{expected} missing");
        }
    }

    #[test]
    fn tiny_builds_are_checkable() {
        use apt_cpu::{Machine, SimConfig};
        // A smoke test over every workload at minimal scale.
        for spec in all_workloads() {
            let w = spec.build(0.004, 42);
            let mut mach = Machine::new(&w.module, SimConfig::default(), w.image);
            let mut rets = Vec::new();
            for (f, args) in &w.calls {
                rets.push(
                    mach.call(f, args)
                        .unwrap_or_else(|e| panic!("{}: {e}", spec.name)),
                );
            }
            (w.check)(&mach.image, &rets).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("BFS").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn descriptors_are_send_and_build_deterministically() {
        fn assert_send<T: Send + Copy>() {}
        assert_send::<WorkloadDesc>();

        let descs = descriptors(0.004, 7);
        assert_eq!(descs.len(), all_workloads().len());
        let d = descs.iter().find(|d| d.name() == "BFS").expect("BFS");
        // Built on another thread, the descriptor yields the same image.
        let d2 = *d;
        let remote = std::thread::spawn(move || d2.build().image.digest())
            .join()
            .expect("builder thread");
        assert_eq!(d.build().image.digest(), remote);
        assert_eq!(d.scale, 0.004);
        assert_eq!(d.seed, 7);
    }
}
