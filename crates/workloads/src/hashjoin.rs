//! Hash join (Balkesen et al. [19]): bucketised hash-table probe.
//!
//! `HJ2` uses 2-slot buckets, `HJ8` 8-slot buckets; the probe's inner loop
//! scans the bucket, so the inner trip count is 2 or 8 — far too short for
//! inner-loop prefetching, which is exactly the paper's motivating case
//! for outer-loop injection (§2.4). Two layout variants model the paper's
//! two hashing algorithms:
//!
//! * **NPO** — array-of-structs buckets: `(key, value)` pairs interleaved;
//! * **NPO_st** — struct-of-arrays: separate key and value arrays.

use apt_cpu::MemImage;
use apt_lir::{FunctionBuilder, ICmpPred, Module, Operand, Width};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::BuiltWorkload;

/// Multiplicative hash constant (Knuth).
pub const HASH_K: u64 = 0x9e37_79b1;

/// Table layout variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// Array-of-structs `(key, value)` pairs.
    Npo,
    /// Struct-of-arrays: separate key/value arrays.
    NpoSt,
}

impl Layout {
    /// The paper's label suffix.
    pub fn label(self) -> &'static str {
        match self {
            Layout::Npo => "NPO",
            Layout::NpoSt => "NPO_st",
        }
    }
}

/// Hash-join parameters.
#[derive(Debug, Clone, Copy)]
pub struct HjParams {
    /// Buckets (power of two).
    pub buckets: u64,
    /// Slots per bucket (2 for HJ2, 8 for HJ8).
    pub slots: u64,
    /// Probe keys.
    pub probes: u64,
    /// Fraction of probes that hit the table, in percent.
    pub hit_pct: u32,
    pub layout: Layout,
    pub seed: u64,
}

impl HjParams {
    /// HJ2 defaults (2-slot buckets).
    pub fn hj2(layout: Layout) -> HjParams {
        HjParams {
            buckets: 1 << 18,
            slots: 2,
            probes: 300_000,
            hit_pct: 75,
            layout,
            seed: 0x27,
        }
    }

    /// HJ8 defaults (8-slot buckets).
    pub fn hj8(layout: Layout) -> HjParams {
        HjParams {
            buckets: 1 << 16,
            slots: 8,
            probes: 300_000,
            hit_pct: 75,
            layout,
            seed: 0x28,
        }
    }

    /// Workload name as used in the figures.
    pub fn name(&self) -> String {
        format!("HJ{}-{}", self.slots, self.layout.label())
    }
}

/// Builds the probe module for a layout (kernel `hj_probe`).
///
/// NPO signature: `hj_probe(keys, table, n, mask, slots) -> value_sum`
/// where `table[h*slots*2 + s*2]` is the key and `+1` the value.
/// NPO_st signature: `hj_probe(keys, tkeys, tvals, n, mask, slots)`.
pub fn build_module(layout: Layout) -> Module {
    let mut m = Module::new("hashjoin");
    match layout {
        Layout::Npo => {
            let f = m.add_function("hj_probe", &["keys", "table", "n", "mask", "slots"]);
            let mut b = FunctionBuilder::new(m.function_mut(f));
            let (keys, table, n, mask, slots) =
                (b.param(0), b.param(1), b.param(2), b.param(3), b.param(4));
            let acc = b.loop_up_reduce(0, n, 1, 0, |b, i, acc| {
                let k = b.load_elem(keys, i, Width::W4, false);
                let hk = b.mul(k, HASH_K);
                let h = b.and(hk, mask);
                let two_slots = b.mul(slots, 2u64);
                let base = b.mul(h, two_slots);
                let inner = b.loop_up_carried(0, slots, 1, &[Operand::Reg(acc)], |b, s, car| {
                    let s2 = b.mul(s, 2u64);
                    let off = b.add(base, s2);
                    // The delinquent bucket access.
                    let kk = b.load_elem(table, off, Width::W4, false);
                    let hit = b.icmp(ICmpPred::Eq, kk, k);
                    let merged = b.if_then(hit, &[car[0].into()], |b| {
                        let voff = b.add(off, 1);
                        let v = b.load_elem(table, voff, Width::W4, false);
                        let a = b.add(car[0], v);
                        vec![a.into()]
                    });
                    vec![merged[0].into()]
                });
                inner[0].into()
            });
            b.ret(Some(acc));
        }
        Layout::NpoSt => {
            let f = m.add_function(
                "hj_probe",
                &["keys", "tkeys", "tvals", "n", "mask", "slots"],
            );
            let mut b = FunctionBuilder::new(m.function_mut(f));
            let (keys, tkeys, tvals, n, mask, slots) = (
                b.param(0),
                b.param(1),
                b.param(2),
                b.param(3),
                b.param(4),
                b.param(5),
            );
            let acc = b.loop_up_reduce(0, n, 1, 0, |b, i, acc| {
                let k = b.load_elem(keys, i, Width::W4, false);
                let hk = b.mul(k, HASH_K);
                let h = b.and(hk, mask);
                let base = b.mul(h, slots);
                let inner = b.loop_up_carried(0, slots, 1, &[Operand::Reg(acc)], |b, s, car| {
                    let off = b.add(base, s);
                    // The delinquent bucket access.
                    let kk = b.load_elem(tkeys, off, Width::W4, false);
                    let hit = b.icmp(ICmpPred::Eq, kk, k);
                    let merged = b.if_then(hit, &[car[0].into()], |b| {
                        let v = b.load_elem(tvals, off, Width::W4, false);
                        let a = b.add(car[0], v);
                        vec![a.into()]
                    });
                    vec![merged[0].into()]
                });
                inner[0].into()
            });
            b.ret(Some(acc));
        }
    }
    m
}

/// The built table plus probe keys and the expected probe sum.
pub struct HjData {
    pub probe_keys: Vec<u32>,
    /// NPO interleaved table, or empty for NPO_st.
    pub table: Vec<u32>,
    /// NPO_st key/value arrays, or empty for NPO.
    pub tkeys: Vec<u32>,
    pub tvals: Vec<u32>,
    pub expected_sum: u64,
}

/// Builds table contents and probe keys natively.
pub fn generate(p: &HjParams) -> HjData {
    let mut rng = SmallRng::seed_from_u64(p.seed);
    let capacity = (p.buckets * p.slots) as usize;
    let fill = capacity / 2; // 50 % load factor.
    let mask = p.buckets - 1;

    let mut tkeys = vec![0u32; capacity];
    let mut tvals = vec![0u32; capacity];
    let mut inserted: Vec<u32> = Vec::with_capacity(fill);
    let mut key = 1u32;
    while inserted.len() < fill {
        key += rng.gen_range(1..5);
        let h = ((key as u64 * HASH_K) & mask) as usize;
        let base = h * p.slots as usize;
        if let Some(s) = (0..p.slots as usize).find(|&s| tkeys[base + s] == 0) {
            tkeys[base + s] = key;
            tvals[base + s] = key.wrapping_mul(3) ^ 0x5a5a;
            inserted.push(key);
        }
    }

    let probe_keys: Vec<u32> = (0..p.probes)
        .map(|_| {
            if rng.gen_range(0..100) < p.hit_pct {
                *inserted.choose(&mut rng).expect("non-empty")
            } else {
                // A key guaranteed absent (odd generator keys only grow).
                key + rng.gen_range(1..1_000_000)
            }
        })
        .collect();

    // Expected sum: every probe key that is in the table contributes its
    // value once per matching slot (keys are unique ⇒ once).
    let mut expected_sum = 0u64;
    for &k in &probe_keys {
        let h = ((k as u64 * HASH_K) & mask) as usize;
        let base = h * p.slots as usize;
        for s in 0..p.slots as usize {
            if tkeys[base + s] == k {
                expected_sum = expected_sum.wrapping_add(tvals[base + s] as u64);
            }
        }
    }

    let table = match p.layout {
        Layout::Npo => {
            let mut t = vec![0u32; capacity * 2];
            for i in 0..capacity {
                t[i * 2] = tkeys[i];
                t[i * 2 + 1] = tvals[i];
            }
            t
        }
        Layout::NpoSt => Vec::new(),
    };
    let (tkeys, tvals) = match p.layout {
        Layout::Npo => (Vec::new(), Vec::new()),
        Layout::NpoSt => (tkeys, tvals),
    };
    HjData {
        probe_keys,
        table,
        tkeys,
        tvals,
        expected_sum,
    }
}

/// Builds the complete hash-join workload.
pub fn build(p: HjParams) -> BuiltWorkload {
    let data = generate(&p);
    let mask = p.buckets - 1;
    let mut image = MemImage::new();
    let keys_b = image.alloc_u32_slice(&data.probe_keys);

    let (calls, module);
    match p.layout {
        Layout::Npo => {
            let table_b = image.alloc_u32_slice(&data.table);
            module = build_module(Layout::Npo);
            calls = vec![(
                "hj_probe".to_string(),
                vec![keys_b, table_b, p.probes, mask, p.slots],
            )];
        }
        Layout::NpoSt => {
            let tk_b = image.alloc_u32_slice(&data.tkeys);
            let tv_b = image.alloc_u32_slice(&data.tvals);
            module = build_module(Layout::NpoSt);
            calls = vec![(
                "hj_probe".to_string(),
                vec![keys_b, tk_b, tv_b, p.probes, mask, p.slots],
            )];
        }
    }

    BuiltWorkload {
        name: p.name(),
        module,
        image,
        calls,
        check: BuiltWorkload::returns_checker(vec![Some(data.expected_sum)]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_cpu::{Machine, SimConfig};
    use apt_lir::verify::verify_module;

    fn small(layout: Layout, slots: u64) -> HjParams {
        HjParams {
            buckets: 1 << 10,
            slots,
            probes: 3000,
            hit_pct: 75,
            layout,
            seed: 7,
        }
    }

    #[test]
    fn modules_verify() {
        verify_module(&build_module(Layout::Npo)).unwrap();
        verify_module(&build_module(Layout::NpoSt)).unwrap();
    }

    #[test]
    fn simulated_probe_matches_expected_sum() {
        for layout in [Layout::Npo, Layout::NpoSt] {
            for slots in [2, 8] {
                let w = build(small(layout, slots));
                let mut mach = Machine::new(&w.module, SimConfig::default(), w.image);
                let mut rets = Vec::new();
                for (f, args) in &w.calls {
                    rets.push(mach.call(f, args).unwrap());
                }
                (w.check)(&mach.image, &rets).unwrap_or_else(|e| panic!("{layout:?}/{slots}: {e}"));
            }
        }
    }

    #[test]
    fn names_match_the_paper() {
        assert_eq!(HjParams::hj2(Layout::Npo).name(), "HJ2-NPO");
        assert_eq!(HjParams::hj8(Layout::NpoSt).name(), "HJ8-NPO_st");
    }

    #[test]
    fn probe_hit_rate_is_plausible() {
        let p = small(Layout::NpoSt, 2);
        let d = generate(&p);
        assert!(d.expected_sum > 0);
        // ~75 % of 3000 probes should match.
        let matches = d
            .probe_keys
            .iter()
            .filter(|&&k| {
                let h = ((k as u64 * HASH_K) & (p.buckets - 1)) as usize;
                (0..p.slots as usize).any(|s| d.tkeys[h * p.slots as usize + s] == k)
            })
            .count();
        assert!(matches > 2000 && matches < 2600, "{matches}");
    }
}
