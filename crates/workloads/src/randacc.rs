//! RandomAccess (HPC Challenge GUPS): random XOR updates of a huge table.
//!
//! Substitution note (see DESIGN.md): the real benchmark computes update
//! indices with an in-loop LCG, whose loop-carried recurrence neither
//! Ainsworth & Jones nor APT-GET can slice (the address depends on a
//! non-induction φ). Like the paper's evaluation harness, we materialise
//! the index stream into an array first — the table access pattern (and
//! footprint) is identical, and the `table[idx[i]]` form is exactly the
//! indirect pattern the passes target.

use apt_cpu::MemImage;
use apt_lir::{FunctionBuilder, Module, Width};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::BuiltWorkload;

/// GUPS parameters: `table_len` u64 entries (power of two), `updates`
/// random XOR updates.
#[derive(Debug, Clone, Copy)]
pub struct GupsParams {
    pub table_len: u64,
    pub updates: u64,
    pub seed: u64,
}

impl Default for GupsParams {
    fn default() -> GupsParams {
        GupsParams {
            table_len: 1 << 21, // 16 MiB of u64 ≫ the scaled LLC.
            updates: 1 << 20,
            seed: 0x6a,
        }
    }
}

/// Builds the GUPS module (kernel `gups`).
///
/// Signature: `gups(table, idx, n) -> xor_checksum_of_written_values`.
pub fn build_module() -> Module {
    let mut m = Module::new("randacc");
    let f = m.add_function("gups", &["table", "idx", "n"]);
    {
        let mut b = FunctionBuilder::new(m.function_mut(f));
        let (table, idx, n) = (b.param(0), b.param(1), b.param(2));
        let acc = b.loop_up_reduce(0, n, 1, 0, |b, i, acc| {
            let j = b.load_elem(idx, i, Width::W4, false);
            // The delinquent indirect RMW.
            let t = b.load_elem(table, j, Width::W8, false);
            let delta = b.mul(i, 0x9e37_79b9_7f4a_7c15u64);
            let nv = b.xor(t, delta);
            b.store_elem(table, j, nv, Width::W8);
            b.xor(acc, nv).into()
        });
        b.ret(Some(acc));
    }
    m
}

/// Native reference: returns the XOR checksum of all written values.
pub fn reference(table: &mut [u64], idx: &[u32]) -> u64 {
    let mut acc = 0u64;
    for (i, &j) in idx.iter().enumerate() {
        let nv = table[j as usize] ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        table[j as usize] = nv;
        acc ^= nv;
    }
    acc
}

/// Builds the complete RandomAccess workload.
pub fn build(p: GupsParams) -> BuiltWorkload {
    let mut rng = SmallRng::seed_from_u64(p.seed);
    let table: Vec<u64> = (0..p.table_len).collect();
    let idx: Vec<u32> = (0..p.updates)
        .map(|_| rng.gen_range(0..p.table_len as u32))
        .collect();
    let expected = reference(&mut table.clone(), &idx);

    let mut image = MemImage::new();
    let table_b = image.alloc_u64_slice(&table);
    let idx_b = image.alloc_u32_slice(&idx);

    BuiltWorkload {
        name: "RandAcc".into(),
        module: build_module(),
        image,
        calls: vec![("gups".into(), vec![table_b, idx_b, p.updates])],
        check: BuiltWorkload::returns_checker(vec![Some(expected)]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_cpu::{Machine, SimConfig};
    use apt_lir::verify::verify_module;

    fn small() -> GupsParams {
        GupsParams {
            table_len: 1 << 12,
            updates: 4000,
            seed: 9,
        }
    }

    #[test]
    fn module_verifies() {
        verify_module(&build_module()).unwrap();
    }

    #[test]
    fn simulated_gups_matches_reference() {
        let w = build(small());
        let mut mach = Machine::new(&w.module, SimConfig::default(), w.image);
        let mut rets = Vec::new();
        for (f, args) in &w.calls {
            rets.push(mach.call(f, args).unwrap());
        }
        (w.check)(&mach.image, &rets).unwrap();
    }

    #[test]
    fn repeated_updates_compose() {
        let mut table = vec![0u64; 8];
        let idx = vec![3u32, 3, 3];
        let acc = reference(&mut table, &idx);
        // Each update XORs i*K into slot 3.
        let k = 0x9e37_79b9_7f4a_7c15u64;
        assert_eq!(table[3], k ^ k.wrapping_mul(2));
        assert_ne!(acc, 0);
    }

    #[test]
    fn table_update_is_indirect() {
        let m = build_module();
        let found = apt_passes::inject::detect_indirect_loads(&m);
        assert_eq!(found.len(), 1);
    }
}
