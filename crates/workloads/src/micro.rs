//! The §2 microbenchmark (Listing 1): a two-nested loop with an indirect
//! access `T[BI[i] + BO[j]]` followed by a dependent work function of
//! configurable complexity.

use apt_cpu::MemImage;
use apt_lir::{FunctionBuilder, Module, Operand, Width};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::BuiltWorkload;

/// Work-function complexity: the length of the dependent ALU chain
/// executed on each loaded value (the paper's low/medium/high).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Complexity {
    Low,
    Medium,
    High,
    /// An explicit chain length.
    Chain(usize),
}

impl Complexity {
    /// Chain length in dependent adds.
    pub fn chain_len(self) -> usize {
        match self {
            Complexity::Low => 2,
            Complexity::Medium => 12,
            Complexity::High => 48,
            Complexity::Chain(n) => n,
        }
    }

    /// Paper-style label.
    pub fn label(self) -> String {
        match self {
            Complexity::Low => "low".into(),
            Complexity::Medium => "medium".into(),
            Complexity::High => "high".into(),
            Complexity::Chain(n) => format!("chain{n}"),
        }
    }
}

/// Microbenchmark parameters (§2.1's `INNER` / `COMPLEXITY` plus sizes).
#[derive(Debug, Clone, Copy)]
pub struct MicroParams {
    /// Outer-loop trip count.
    pub outer: u64,
    /// Inner-loop trip count (`INNER`).
    pub inner: u64,
    /// Work-function complexity (`COMPLEXITY`).
    pub complexity: Complexity,
    /// Elements in the target array `T` (u32); sized ≫ LLC by default.
    pub t_len: u64,
    /// The inner index array `BI` draws from `[0, window)`; together with
    /// `BO[j]` the accesses sweep a `window`-sized region of `T` per outer
    /// iteration.
    pub window: u64,
    pub seed: u64,
}

impl Default for MicroParams {
    fn default() -> MicroParams {
        MicroParams {
            outer: 2000,
            inner: 256,
            complexity: Complexity::Low,
            t_len: 4 << 20,  // 16 MiB of u32 ≫ the 2 MiB scaled LLC.
            window: 1 << 20, // 4 MiB window per outer iteration.
            seed: 0xA9F1,
        }
    }
}

/// Builds the microbenchmark module (kernel named `micro`).
///
/// IR shape mirrors Listing 3: outer loop loads `BO[j]`, inner loop loads
/// `BI[i]`, adds, loads `T[...]`, and feeds the value into a dependent
/// work chain accumulated across iterations.
pub fn build_module(complexity: Complexity) -> Module {
    let mut m = Module::new("micro");
    let f = m.add_function("micro", &["t", "bi", "bo", "outer", "inner"]);
    {
        let mut b = FunctionBuilder::new(m.function_mut(f));
        let (t, bi, bo, outer, inner) =
            (b.param(0), b.param(1), b.param(2), b.param(3), b.param(4));
        let acc_out = b.loop_up_carried(0, outer, 1, &[Operand::Imm(0)], |b, j, car| {
            let b0 = b.load_elem(bo, j, Width::W4, false);
            let acc_in = b.loop_up_carried(0, inner, 1, &[Operand::Reg(car[0])], |b, i, car2| {
                let x = b.load_elem(bi, i, Width::W4, false);
                let idx = b.add(x, b0);
                let v = b.load_elem(t, idx, Width::W4, false);
                // Work dependent on the loaded value (§2.1).
                let seeded = b.add(car2[0], v);
                let worked = b.work_chain(seeded, complexity.chain_len());
                vec![worked.into()]
            });
            vec![acc_in[0].into()]
        });
        b.ret(Some(acc_out[0]));
    }
    m
}

/// Native reference computing the same accumulator.
pub fn reference(t: &[u32], bi: &[u32], bo: &[u32], chain: usize) -> u64 {
    let mut acc = 0u64;
    for &b0 in bo {
        for &x in bi {
            let v = t[(x + b0) as usize] as u64;
            let mut w = acc.wrapping_add(v).wrapping_add(0x9e37_79b9);
            for i in 0..chain {
                w = w.wrapping_add((i as u64).wrapping_mul(0x85eb_ca77) | 1);
            }
            acc = w;
        }
    }
    acc
}

/// Builds the complete workload (module + data + checker).
pub fn build(p: MicroParams) -> BuiltWorkload {
    let mut rng = SmallRng::seed_from_u64(p.seed);
    let t: Vec<u32> = (0..p.t_len).map(|_| rng.gen::<u32>() >> 8).collect();
    let bi: Vec<u32> = (0..p.inner)
        .map(|_| rng.gen_range(0..p.window as u32))
        .collect();
    let hi = (p.t_len - p.window) as u32;
    let bo: Vec<u32> = (0..p.outer).map(|_| rng.gen_range(0..hi)).collect();

    let expected = reference(&t, &bi, &bo, p.complexity.chain_len());

    let mut image = MemImage::new();
    let t_base = image.alloc_u32_slice(&t);
    let bi_base = image.alloc_u32_slice(&bi);
    let bo_base = image.alloc_u32_slice(&bo);

    BuiltWorkload {
        name: format!("micro-{}", p.complexity.label()),
        module: build_module(p.complexity),
        image,
        calls: vec![(
            "micro".into(),
            vec![t_base, bi_base, bo_base, p.outer, p.inner],
        )],
        check: BuiltWorkload::returns_checker(vec![Some(expected)]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_cpu::{Machine, SimConfig};
    use apt_lir::verify::verify_module;

    fn small() -> MicroParams {
        MicroParams {
            outer: 8,
            inner: 32,
            complexity: Complexity::Low,
            t_len: 1 << 14,
            window: 1 << 12,
            seed: 1,
        }
    }

    #[test]
    fn module_verifies() {
        let m = build_module(Complexity::Medium);
        verify_module(&m).unwrap();
    }

    #[test]
    fn simulated_result_matches_reference() {
        let w = build(small());
        let mut mach = Machine::new(&w.module, SimConfig::default(), w.image);
        let mut rets = Vec::new();
        for (f, args) in &w.calls {
            rets.push(mach.call(f, args).unwrap());
        }
        (w.check)(&mach.image, &rets).unwrap();
    }

    #[test]
    fn complexity_changes_instruction_count() {
        let lo = build(MicroParams {
            complexity: Complexity::Low,
            ..small()
        });
        let hi = build(MicroParams {
            complexity: Complexity::High,
            ..small()
        });
        let run = |w: &BuiltWorkload| {
            let mut mach = Machine::new(&w.module, SimConfig::default(), w.image.clone());
            for (f, args) in &w.calls {
                mach.call(f, args).unwrap();
            }
            mach.stats().instructions
        };
        assert!(run(&hi) > 2 * run(&lo));
    }

    #[test]
    fn deterministic_across_builds() {
        let a = build(small());
        let b = build(small());
        assert_eq!(
            apt_lir::print::module_to_string(&a.module),
            apt_lir::print::module_to_string(&b.module)
        );
        assert_eq!(a.calls, b.calls);
    }

    #[test]
    fn indirect_load_is_detected_by_the_pass() {
        let m = build_module(Complexity::Low);
        let found = apt_passes::inject::detect_indirect_loads(&m);
        assert_eq!(found.len(), 1, "exactly the T load is indirect");
    }
}
