//! Single-source shortest paths (CRONO): Bellman-Ford rounds over an edge
//! list.
//!
//! The delinquent loads are `dist[src[e]]` and `dist[dst[e]]` — two
//! independent indirect gathers per edge relaxation.

use apt_cpu::MemImage;
use apt_lir::{FunctionBuilder, ICmpPred, Module, Operand, Width};

use crate::graphs::Csr;
use crate::BuiltWorkload;

/// "Infinite" distance sentinel (fits in i32).
pub const INF: u32 = 0x3fff_ffff;

/// Builds the SSSP module (kernel `sssp_round`).
///
/// Signature: `sssp_round(src, dst, w, dist, m) -> relaxations`.
pub fn build_module() -> Module {
    let mut m = Module::new("sssp");
    let f = m.add_function("sssp_round", &["src", "dst", "w", "dist", "m"]);
    {
        let mut b = FunctionBuilder::new(m.function_mut(f));
        let (src, dst, w, dist, edges) =
            (b.param(0), b.param(1), b.param(2), b.param(3), b.param(4));
        let out = b.loop_up_carried(0, edges, 1, &[Operand::Imm(0)], |b, e, car| {
            let u = b.load_elem(src, e, Width::W4, false);
            let v = b.load_elem(dst, e, Width::W4, false);
            let du = b.load_elem(dist, u, Width::W4, false); // Indirect.
            let wt = b.load_elem(w, e, Width::W4, false);
            let cand = b.add(du, wt);
            let dv = b.load_elem(dist, v, Width::W4, false); // Indirect.
            let better = b.icmp(ICmpPred::Ltu, cand, dv);
            let merged = b.if_then(better, &[car[0].into()], |b| {
                b.store_elem(dist, v, cand, Width::W4);
                let c = b.add(car[0], 1);
                vec![c.into()]
            });
            vec![merged[0].into()]
        });
        b.ret(Some(out[0]));
    }
    m
}

/// Native reference: runs `rounds` Bellman-Ford rounds in edge order;
/// returns (dist, per-round relaxation counts).
pub fn reference(
    srcs: &[u32],
    dsts: &[u32],
    ws: &[u32],
    n: usize,
    source: u32,
    rounds: usize,
) -> (Vec<u32>, Vec<u64>) {
    let mut dist = vec![INF; n];
    dist[source as usize] = 0;
    let mut counts = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let mut c = 0u64;
        for e in 0..srcs.len() {
            let du = dist[srcs[e] as usize];
            let cand = du.wrapping_add(ws[e]);
            if cand < dist[dsts[e] as usize] {
                dist[dsts[e] as usize] = cand;
                c += 1;
            }
        }
        counts.push(c);
    }
    (dist, counts)
}

/// Builds the complete SSSP workload (`rounds` relaxation rounds).
pub fn build(name: &str, g: &Csr, source: u32, rounds: usize) -> BuiltWorkload {
    // Flatten CSR into an edge list.
    let mut srcs = Vec::with_capacity(g.m());
    let mut dsts = Vec::with_capacity(g.m());
    for v in 0..g.n {
        for e in g.row_ptr[v] as usize..g.row_ptr[v + 1] as usize {
            srcs.push(v as u32);
            dsts.push(g.col[e]);
        }
    }
    let ws = g.weight.clone();
    let (dist_ref, counts) = reference(&srcs, &dsts, &ws, g.n, source, rounds);

    let mut image = MemImage::new();
    let src_b = image.alloc_u32_slice(&srcs);
    let dst_b = image.alloc_u32_slice(&dsts);
    let w_b = image.alloc_u32_slice(&ws);
    let mut dist0 = vec![INF; g.n];
    dist0[source as usize] = 0;
    let dist_b = image.alloc_u32_slice(&dist0);
    let m_edges = srcs.len() as u64;
    let n = g.n;

    let calls: Vec<(String, Vec<u64>)> = (0..rounds)
        .map(|_| {
            (
                "sssp_round".into(),
                vec![src_b, dst_b, w_b, dist_b, m_edges],
            )
        })
        .collect();
    let expected_rets: Vec<Option<u64>> = counts.iter().map(|&c| Some(c)).collect();

    BuiltWorkload {
        name: name.to_string(),
        module: build_module(),
        image,
        calls,
        check: Box::new(move |img, rets| {
            for (i, (got, want)) in rets.iter().zip(expected_rets.iter()).enumerate() {
                if got != want {
                    return Err(format!("round {i}: {got:?} relaxations, expected {want:?}"));
                }
            }
            let got = img.read_u32_slice(dist_b, n).map_err(|e| e.to_string())?;
            for (v, (&g_, &w)) in got.iter().zip(dist_ref.iter()).enumerate() {
                if g_ != w {
                    return Err(format!("dist[{v}] = {g_}, expected {w}"));
                }
            }
            Ok(())
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphs::uniform;
    use apt_cpu::{Machine, SimConfig};
    use apt_lir::verify::verify_module;

    #[test]
    fn module_verifies() {
        verify_module(&build_module()).unwrap();
    }

    #[test]
    fn simulated_sssp_matches_reference() {
        let g = uniform(200, 4, 33);
        let w = build("SSSP", &g, 0, 3);
        let mut mach = Machine::new(&w.module, SimConfig::default(), w.image);
        let mut rets = Vec::new();
        for (f, args) in &w.calls {
            rets.push(mach.call(f, args).unwrap());
        }
        (w.check)(&mach.image, &rets).unwrap();
    }

    #[test]
    fn reference_relaxes_a_path() {
        let srcs = [0u32, 1, 2];
        let dsts = [1u32, 2, 3];
        let ws = [5u32, 5, 5];
        let (dist, counts) = reference(&srcs, &dsts, &ws, 4, 0, 3);
        assert_eq!(dist, vec![0, 5, 10, 15]);
        // In-order edge scan relaxes the whole path in one round.
        assert_eq!(counts[0], 3);
        assert_eq!(counts[1], 0);
    }

    #[test]
    fn both_gathers_detected_as_indirect() {
        let m = build_module();
        let found = apt_passes::inject::detect_indirect_loads(&m);
        assert!(found.len() >= 2, "dist[src[e]] and dist[dst[e]]: {found:?}");
    }
}
