//! Betweenness centrality (CRONO): Brandes' algorithm from one source.
//!
//! Two phases: a forward level-synchronous BFS accumulating shortest-path
//! counts `sigma`, then a backward sweep over the discovery order
//! accumulating dependencies `delta`. Both phases gather `dist`/`sigma`/
//! `delta` through `col[e]` — short per-vertex edge loops, which is why
//! static inner-loop injection *regresses* BC in the paper (Fig. 6).

use apt_cpu::MemImage;
use apt_lir::{BinOp, FunctionBuilder, ICmpPred, Module, Operand, UnOp, Width};

use crate::graphs::Csr;
use crate::BuiltWorkload;

/// Builds the BC module.
///
/// Kernels:
/// * `bc_forward(row_ptr, col, dist, sigma, order, frontier, next, src)
///    -> order_len` — BFS computing `dist`, path counts `sigma`, and the
///   discovery `order`;
/// * `bc_backward(row_ptr, col, dist, sigma, delta, bc, order, len, src)`
///   — dependency accumulation in reverse discovery order.
pub fn build_module() -> Module {
    let mut m = Module::new("bc");

    let f = m.add_function(
        "bc_forward",
        &[
            "row_ptr", "col", "dist", "sigma", "order", "frontier", "next", "src",
        ],
    );
    {
        let mut b = FunctionBuilder::new(m.function_mut(f));
        let (row_ptr, col, dist, sigma, order, fr0, nx0, src) = (
            b.param(0),
            b.param(1),
            b.param(2),
            b.param(3),
            b.param(4),
            b.param(5),
            b.param(6),
            b.param(7),
        );
        b.store_elem(dist, src, 0u64, Width::W4);
        b.store_elem(sigma, src, 1u64, Width::W4);
        b.store_elem(fr0, 0u64, src, Width::W4);
        b.store_elem(order, 0u64, src, Width::W4);

        // Carried: (f, x, fsize, level, order_len).
        let out = b.do_while_carried(
            &[
                Operand::Reg(fr0),
                Operand::Reg(nx0),
                Operand::Imm(1),
                Operand::Imm(1),
                Operand::Imm(1),
            ],
            |b, car| {
                let (f, x, fsize, level, olen) = (car[0], car[1], car[2], car[3], car[4]);
                let res = b.loop_up_carried(
                    0,
                    fsize,
                    1,
                    &[Operand::Imm(0), Operand::Reg(olen)],
                    |b, fi, car2| {
                        let v = b.load_elem(f, fi, Width::W4, false);
                        let sv = b.load_elem(sigma, v, Width::W4, false);
                        let start = b.load_elem(row_ptr, v, Width::W4, false);
                        let vp1 = b.add(v, 1);
                        let end = b.load_elem(row_ptr, vp1, Width::W4, false);
                        let inner = b.loop_up_carried(
                            start,
                            end,
                            1,
                            &[Operand::Reg(car2[0]), Operand::Reg(car2[1])],
                            |b, e, car3| {
                                let nb = b.load_elem(col, e, Width::W4, false);
                                // Delinquent gathers.
                                let d = b.load_elem(dist, nb, Width::W4, true);
                                let fresh = b.icmp(ICmpPred::Lts, d, 0u64);
                                let merged = b.if_else(
                                    fresh,
                                    |b| {
                                        // Discover nb.
                                        b.store_elem(dist, nb, level, Width::W4);
                                        b.store_elem(sigma, nb, sv, Width::W4);
                                        b.store_elem(x, car3[0], nb, Width::W4);
                                        b.store_elem(order, car3[1], nb, Width::W4);
                                        let ns = b.add(car3[0], 1);
                                        let no = b.add(car3[1], 1);
                                        vec![ns.into(), no.into()]
                                    },
                                    |b| {
                                        // Same-level: another shortest path.
                                        let same = b.icmp(ICmpPred::Eq, d, level);
                                        let m2 = b.if_then(same, &[], |b| {
                                            let sn = b.load_elem(sigma, nb, Width::W4, false);
                                            let s2 = b.add(sn, sv);
                                            b.store_elem(sigma, nb, s2, Width::W4);
                                            vec![]
                                        });
                                        let _ = m2;
                                        vec![car3[0].into(), car3[1].into()]
                                    },
                                );
                                vec![merged[0].into(), merged[1].into()]
                            },
                        );
                        vec![inner[0].into(), inner[1].into()]
                    },
                );
                let nsize = res[0];
                let new_olen = res[1];
                let next_level = b.add(level, 1);
                let more = b.icmp(ICmpPred::Gts, nsize, 0u64);
                (
                    more.into(),
                    vec![
                        x.into(),
                        f.into(),
                        nsize.into(),
                        next_level.into(),
                        new_olen.into(),
                    ],
                )
            },
        );
        b.ret(Some(out[4]));
    }

    let f = m.add_function(
        "bc_backward",
        &[
            "row_ptr", "col", "dist", "sigma", "delta", "bc", "order", "len", "src",
        ],
    );
    {
        let mut b = FunctionBuilder::new(m.function_mut(f));
        let (row_ptr, col, dist, sigma, delta, bc, order, len, src) = (
            b.param(0),
            b.param(1),
            b.param(2),
            b.param(3),
            b.param(4),
            b.param(5),
            b.param(6),
            b.param(7),
            b.param(8),
        );
        b.loop_up(0, len, 1, |b, i| {
            // w = order[len - 1 - i].
            let lm1 = b.sub(len, 1);
            let ri = b.sub(lm1, i);
            let w = b.load_elem(order, ri, Width::W4, false);
            let dw = b.load_elem(dist, w, Width::W4, false);
            let dw1 = b.add(dw, 1);
            let sw = b.load_elem(sigma, w, Width::W4, false);
            let swf = b.un(UnOp::IToF, sw);
            let start = b.load_elem(row_ptr, w, Width::W4, false);
            let wp1 = b.add(w, 1);
            let end = b.load_elem(row_ptr, wp1, Width::W4, false);
            let acc = b.loop_up_carried(start, end, 1, &[Operand::fimm(0.0)], |b, e, car| {
                let nb = b.load_elem(col, e, Width::W4, false);
                // Delinquent gathers.
                let dn = b.load_elem(dist, nb, Width::W4, true);
                let succ = b.icmp(ICmpPred::Eq, dn, dw1);
                let merged = b.if_then(succ, &[car[0].into()], |b| {
                    let sn = b.load_elem(sigma, nb, Width::W4, false);
                    let snf = b.un(UnOp::IToF, sn);
                    let deln = b.load_elem(delta, nb, Width::W8, false);
                    let one_plus = b.bin(BinOp::FAdd, Operand::fimm(1.0), deln);
                    let ratio = b.bin(BinOp::FDiv, swf, snf);
                    let contrib = b.bin(BinOp::FMul, ratio, one_plus);
                    let a = b.bin(BinOp::FAdd, car[0], contrib);
                    vec![a.into()]
                });
                vec![merged[0].into()]
            });
            b.store_elem(delta, w, acc[0], Width::W8);
            let not_src = b.icmp(ICmpPred::Ne, w, src);
            b.if_then(not_src, &[], |b| {
                let cur = b.load_elem(bc, w, Width::W8, false);
                let nv = b.bin(BinOp::FAdd, cur, acc[0]);
                b.store_elem(bc, w, nv, Width::W8);
                vec![]
            });
        });
        b.ret(None::<Operand>);
    }
    m
}

/// Native reference: Brandes from `src`; returns (bc, order_len).
pub fn reference(g: &Csr, src: u32) -> (Vec<f64>, u64) {
    let n = g.n;
    let mut dist = vec![-1i32; n];
    let mut sigma = vec![0u32; n];
    let mut order: Vec<u32> = Vec::new();
    dist[src as usize] = 0;
    sigma[src as usize] = 1;
    order.push(src);
    let mut frontier = vec![src];
    let mut level = 1i32;
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &v in &frontier {
            let sv = sigma[v as usize];
            for &nb in g.neighbors(v) {
                if dist[nb as usize] < 0 {
                    dist[nb as usize] = level;
                    sigma[nb as usize] = sv;
                    next.push(nb);
                    order.push(nb);
                } else if dist[nb as usize] == level {
                    sigma[nb as usize] += sv;
                }
            }
        }
        frontier = next;
        level += 1;
    }
    let mut delta = vec![0.0f64; n];
    let mut bc = vec![0.0f64; n];
    for &w in order.iter().rev() {
        let mut acc = 0.0;
        for &nb in g.neighbors(w) {
            if dist[nb as usize] == dist[w as usize] + 1 {
                acc += sigma[w as usize] as f64 / sigma[nb as usize] as f64
                    * (1.0 + delta[nb as usize]);
            }
        }
        delta[w as usize] = acc;
        if w != src {
            bc[w as usize] += acc;
        }
    }
    (bc, order.len() as u64)
}

/// Builds the complete BC workload.
pub fn build(name: &str, g: &Csr, src: u32) -> BuiltWorkload {
    let (bc_ref, order_len) = reference(g, src);
    let n = g.n;

    let mut image = MemImage::new();
    let row_ptr = image.alloc_u32_slice(&g.row_ptr);
    let col = image.alloc_u32_slice(&g.col);
    let dist = image.alloc_u32_slice(&vec![-1i32 as u32; n]);
    let sigma = image.alloc(n as u64 * 4, 64);
    let order = image.alloc(n as u64 * 4, 64);
    let frontier = image.alloc(n as u64 * 4, 64);
    let next = image.alloc(n as u64 * 4, 64);
    let delta = image.alloc(n as u64 * 8, 64);
    let bc = image.alloc(n as u64 * 8, 64);

    BuiltWorkload {
        name: name.to_string(),
        module: build_module(),
        image,
        calls: vec![
            (
                "bc_forward".into(),
                vec![row_ptr, col, dist, sigma, order, frontier, next, src as u64],
            ),
            (
                "bc_backward".into(),
                vec![
                    row_ptr, col, dist, sigma, delta, bc, order, order_len, src as u64,
                ],
            ),
        ],
        check: Box::new(move |img, rets| {
            if rets.first().copied().flatten() != Some(order_len) {
                return Err(format!(
                    "order length {:?} != expected {order_len}",
                    rets.first()
                ));
            }
            let got = img.read_f64_slice(bc, n).map_err(|e| e.to_string())?;
            for (v, (&g_, &w)) in got.iter().zip(bc_ref.iter()).enumerate() {
                if (g_ - w).abs() > 1e-6 * w.abs().max(1.0) {
                    return Err(format!("bc[{v}] = {g_}, expected {w}"));
                }
            }
            Ok(())
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphs::uniform;
    use apt_cpu::{Machine, SimConfig};
    use apt_lir::verify::verify_module;
    use rand::SeedableRng;

    #[test]
    fn module_verifies() {
        verify_module(&build_module()).unwrap();
    }

    #[test]
    fn simulated_bc_matches_reference() {
        let g = uniform(120, 4, 17);
        let w = build("BC", &g, 0);
        let mut mach = Machine::new(&w.module, SimConfig::default(), w.image);
        let mut rets = Vec::new();
        for (f, args) in &w.calls {
            rets.push(mach.call(f, args).unwrap());
        }
        (w.check)(&mach.image, &rets).unwrap();
    }

    #[test]
    fn reference_on_a_path_graph() {
        // 0 → 1 → 2: vertex 1 lies on the only 0→2 shortest path.
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
        let g = Csr::from_edges(3, &[(0, 1), (1, 2)], &mut rng);
        let (bc, len) = reference(&g, 0);
        assert_eq!(len, 3);
        assert!((bc[1] - 1.0).abs() < 1e-12);
        assert_eq!(bc[0], 0.0);
        assert_eq!(bc[2], 0.0);
    }
}
