//! Breadth-first search (CRONO): level-synchronous frontier BFS.
//!
//! The delinquent load is `dist[col[e]]` inside the per-vertex edge loop —
//! a two-level indirect access whose inner trip count equals the vertex
//! degree. On low-degree graphs this is the paper's showcase for
//! *outer-loop* prefetch injection (Fig. 10): the prefetch slice re-reads
//! `frontier[fi + d]`, `row_ptr[·]`, `col[·]` and prefetches `dist[·]` for
//! a future frontier vertex.

use apt_cpu::MemImage;
use apt_lir::{FunctionBuilder, ICmpPred, Module, Operand, Width};

use crate::graphs::Csr;
use crate::BuiltWorkload;

/// Builds the BFS module (kernel `bfs`).
///
/// Signature: `bfs(row_ptr, col, dist, frontier, next, src) -> visited`.
/// `dist` must be initialised to −1; returns the number of visited
/// vertices (including the source).
pub fn build_module() -> Module {
    let mut m = Module::new("bfs");
    let f = m.add_function(
        "bfs",
        &["row_ptr", "col", "dist", "frontier", "next", "src"],
    );
    {
        let mut b = FunctionBuilder::new(m.function_mut(f));
        let (row_ptr, col, dist, fr0, nx0, src) = (
            b.param(0),
            b.param(1),
            b.param(2),
            b.param(3),
            b.param(4),
            b.param(5),
        );
        // dist[src] = 0; frontier[0] = src.
        b.store_elem(dist, src, 0u64, Width::W4);
        b.store_elem(fr0, 0u64, src, Width::W4);

        // Carried: (frontier_ptr, next_ptr, fsize, level, visited).
        let out = b.do_while_carried(
            &[
                Operand::Reg(fr0),
                Operand::Reg(nx0),
                Operand::Imm(1),
                Operand::Imm(1),
                Operand::Imm(1),
            ],
            |b, car| {
                let (f, x, fsize, level, visited) = (car[0], car[1], car[2], car[3], car[4]);
                // Frontier loop, carrying (nsize, visited).
                let res = b.loop_up_carried(
                    0,
                    fsize,
                    1,
                    &[Operand::Imm(0), Operand::Reg(visited)],
                    |b, fi, car2| {
                        let v = b.load_elem(f, fi, Width::W4, false);
                        let start = b.load_elem(row_ptr, v, Width::W4, false);
                        let vp1 = b.add(v, 1);
                        let end = b.load_elem(row_ptr, vp1, Width::W4, false);
                        // Edge loop, carrying (nsize, visited).
                        let inner = b.loop_up_carried(
                            start,
                            end,
                            1,
                            &[Operand::Reg(car2[0]), Operand::Reg(car2[1])],
                            |b, e, car3| {
                                let nb = b.load_elem(col, e, Width::W4, false);
                                // The delinquent indirect load.
                                let d = b.load_elem(dist, nb, Width::W4, true);
                                let unvisited = b.icmp(ICmpPred::Lts, d, 0u64);
                                let merged =
                                    b.if_then(unvisited, &[car3[0].into(), car3[1].into()], |b| {
                                        b.store_elem(dist, nb, level, Width::W4);
                                        b.store_elem(x, car3[0], nb, Width::W4);
                                        let ns = b.add(car3[0], 1);
                                        let vis = b.add(car3[1], 1);
                                        vec![ns.into(), vis.into()]
                                    });
                                vec![merged[0].into(), merged[1].into()]
                            },
                        );
                        vec![inner[0].into(), inner[1].into()]
                    },
                );
                let nsize = res[0];
                let new_visited = res[1];
                let next_level = b.add(level, 1);
                let more = b.icmp(ICmpPred::Gts, nsize, 0u64);
                (
                    more.into(),
                    vec![
                        // Swap the frontier buffers.
                        x.into(),
                        f.into(),
                        nsize.into(),
                        next_level.into(),
                        new_visited.into(),
                    ],
                )
            },
        );
        b.ret(Some(out[4]));
    }
    m
}

/// Native reference BFS; returns (dist, visited count).
pub fn reference(g: &Csr, src: u32) -> (Vec<i32>, u64) {
    let mut dist = vec![-1i32; g.n];
    dist[src as usize] = 0;
    let mut frontier = vec![src];
    let mut level = 1i32;
    let mut visited = 1u64;
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &v in &frontier {
            for &nb in g.neighbors(v) {
                if dist[nb as usize] < 0 {
                    dist[nb as usize] = level;
                    next.push(nb);
                    visited += 1;
                }
            }
        }
        frontier = next;
        level += 1;
    }
    (dist, visited)
}

/// Lays the graph out in a memory image; returns
/// `(row_ptr, col, dist, frontier, next)` base addresses.
pub fn layout_graph(image: &mut MemImage, g: &Csr) -> (u64, u64, u64, u64, u64) {
    let row_ptr = image.alloc_u32_slice(&g.row_ptr);
    let col = image.alloc_u32_slice(&g.col);
    let dist_init = vec![-1i32 as u32; g.n];
    let dist = image.alloc_u32_slice(&dist_init);
    let frontier = image.alloc(g.n as u64 * 4, 64);
    let next = image.alloc(g.n as u64 * 4, 64);
    (row_ptr, col, dist, frontier, next)
}

/// Builds the complete BFS workload over `g` from source `src`.
pub fn build(name: &str, g: &Csr, src: u32) -> BuiltWorkload {
    let (dist_ref, visited) = reference(g, src);

    let mut image = MemImage::new();
    let (row_ptr, col, dist, frontier, next) = layout_graph(&mut image, g);
    let n = g.n;

    BuiltWorkload {
        name: name.to_string(),
        module: build_module(),
        image,
        calls: vec![(
            "bfs".into(),
            vec![row_ptr, col, dist, frontier, next, src as u64],
        )],
        check: Box::new(move |img, rets| {
            if rets.first().copied().flatten() != Some(visited) {
                return Err(format!(
                    "visited count {:?} != expected {visited}",
                    rets.first()
                ));
            }
            let got = img.read_u32_slice(dist, n).map_err(|e| e.to_string())?;
            for (v, (&g_, &w)) in got
                .iter()
                .zip(
                    dist_ref
                        .iter()
                        .map(|d| *d as u32)
                        .collect::<Vec<_>>()
                        .iter(),
                )
                .enumerate()
            {
                if g_ != w {
                    return Err(format!("dist[{v}] = {g_}, expected {w}"));
                }
            }
            Ok(())
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphs::uniform;
    use apt_cpu::{Machine, SimConfig};
    use apt_lir::verify::verify_module;

    #[test]
    fn module_verifies() {
        verify_module(&build_module()).unwrap();
    }

    #[test]
    fn simulated_bfs_matches_reference() {
        let g = uniform(300, 4, 11);
        let w = build("BFS", &g, 0);
        let mut mach = Machine::new(&w.module, SimConfig::default(), w.image);
        let mut rets = Vec::new();
        for (f, args) in &w.calls {
            rets.push(mach.call(f, args).unwrap());
        }
        (w.check)(&mach.image, &rets).unwrap();
    }

    #[test]
    fn reference_bfs_on_a_path() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
        use rand::SeedableRng;
        let g = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3)], &mut rng);
        let (dist, visited) = reference(&g, 0);
        assert_eq!(dist, vec![0, 1, 2, 3]);
        assert_eq!(visited, 4);
    }

    #[test]
    fn unreachable_vertices_stay_unvisited() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
        use rand::SeedableRng;
        let g = Csr::from_edges(3, &[(0, 1)], &mut rng);
        let (dist, visited) = reference(&g, 0);
        assert_eq!(dist[2], -1);
        assert_eq!(visited, 2);
    }

    #[test]
    fn indirect_loads_detected() {
        let m = build_module();
        let found = apt_passes::inject::detect_indirect_loads(&m);
        // dist[col[e]] must be among the detected loads.
        assert!(!found.is_empty());
    }
}
