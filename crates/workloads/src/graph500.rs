//! Graph500: breadth-first search on a Kronecker/RMAT power-law graph.
//!
//! Reuses the BFS kernel of [`crate::bfs`] on the Graph500 generator
//! family. The paper runs scale 22 / edge-factor 10; scaled runs default
//! to a smaller scale (see DESIGN.md's footprint discussion) while keeping
//! the generator and degree skew.

use crate::graphs::rmat;
use crate::{bfs, BuiltWorkload};

/// Graph500 parameters.
#[derive(Debug, Clone, Copy)]
pub struct G500Params {
    /// `2^scale` vertices (the paper uses 22).
    pub scale: u32,
    /// Edges per vertex (the paper uses 10).
    pub edge_factor: usize,
    pub seed: u64,
}

impl Default for G500Params {
    fn default() -> G500Params {
        G500Params {
            scale: 18,
            edge_factor: 10,
            seed: 0x500,
        }
    }
}

/// Builds the Graph500 workload: RMAT generation + BFS from the first
/// vertex with non-zero degree.
pub fn build(p: G500Params) -> BuiltWorkload {
    let g = rmat(p.scale, p.edge_factor, p.seed);
    let src = (0..g.n as u32)
        .find(|&v| !g.neighbors(v).is_empty())
        .unwrap_or(0);
    let mut w = bfs::build("Graph500", &g, src);
    w.name = "Graph500".into();
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_cpu::{Machine, SimConfig};

    #[test]
    fn simulated_graph500_checks_out() {
        let w = build(G500Params {
            scale: 8,
            edge_factor: 8,
            seed: 1,
        });
        let mut mach = Machine::new(&w.module, SimConfig::default(), w.image);
        let mut rets = Vec::new();
        for (f, args) in &w.calls {
            rets.push(mach.call(f, args).unwrap());
        }
        (w.check)(&mach.image, &rets).unwrap();
    }

    #[test]
    fn default_matches_paper_generator_family() {
        let p = G500Params::default();
        assert_eq!(p.edge_factor, 10);
    }
}
