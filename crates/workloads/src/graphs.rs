//! Graph substrate: CSR representation and synthetic generators standing
//! in for the SNAP datasets of Table 4.
//!
//! The SNAP files themselves are not redistributable here; what the
//! experiments need from them is the *memory-access structure* — vertex
//! count, edge count, degree distribution, and a footprint well beyond the
//! LLC. Each [`DatasetSpec`] therefore names a generator family (uniform,
//! power-law, road-grid) parameterised to the corresponding SNAP graph,
//! scaled by a configurable factor (default 1/8, matching the scaled cache
//! hierarchy).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A directed graph in compressed-sparse-row form, `u32` indices (as in
/// CRONO).
#[derive(Debug, Clone)]
pub struct Csr {
    /// Number of vertices.
    pub n: usize,
    /// `row_ptr[v]..row_ptr[v+1]` indexes `col` with v's out-neighbours.
    pub row_ptr: Vec<u32>,
    /// Edge targets.
    pub col: Vec<u32>,
    /// Per-edge weights (for SSSP); same length as `col`.
    pub weight: Vec<u32>,
}

impl Csr {
    /// Builds a CSR from an edge list (duplicates kept, self-loops kept).
    pub fn from_edges(n: usize, edges: &[(u32, u32)], rng: &mut SmallRng) -> Csr {
        let mut deg = vec![0u32; n];
        for &(u, _) in edges {
            deg[u as usize] += 1;
        }
        let mut row_ptr = vec![0u32; n + 1];
        for v in 0..n {
            row_ptr[v + 1] = row_ptr[v] + deg[v];
        }
        let mut next = row_ptr.clone();
        let mut col = vec![0u32; edges.len()];
        for &(u, v) in edges {
            col[next[u as usize] as usize] = v;
            next[u as usize] += 1;
        }
        let weight = (0..edges.len()).map(|_| rng.gen_range(1..=16u32)).collect();
        Csr {
            n,
            row_ptr,
            col,
            weight,
        }
    }

    /// Number of edges.
    pub fn m(&self) -> usize {
        self.col.len()
    }

    /// Out-neighbours of `v`.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let lo = self.row_ptr[v as usize] as usize;
        let hi = self.row_ptr[v as usize + 1] as usize;
        &self.col[lo..hi]
    }

    /// Mean out-degree.
    pub fn mean_degree(&self) -> f64 {
        self.m() as f64 / self.n.max(1) as f64
    }
}

/// Uniform random directed graph: `n` vertices, out-degree `degree`.
pub fn uniform(n: usize, degree: usize, seed: u64) -> Csr {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(n * degree);
    for u in 0..n as u32 {
        for _ in 0..degree {
            edges.push((u, rng.gen_range(0..n as u32)));
        }
    }
    Csr::from_edges(n, &edges, &mut rng)
}

/// RMAT/Kronecker-style power-law graph (Graph500's generator family):
/// `2^scale` vertices, `edge_factor × 2^scale` edges, recursively biased
/// towards low vertex ids (a = 0.57, b = c = 0.19, d = 0.05).
pub fn rmat(scale: u32, edge_factor: usize, seed: u64) -> Csr {
    let n = 1usize << scale;
    let m = n * edge_factor;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let (mut u, mut v) = (0u32, 0u32);
        for _ in 0..scale {
            u <<= 1;
            v <<= 1;
            let r: f64 = rng.gen();
            if r < 0.57 {
                // Quadrant a: (0, 0).
            } else if r < 0.76 {
                v |= 1;
            } else if r < 0.95 {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        edges.push((u, v));
    }
    // Permute vertex ids so degree correlates less with id (as Graph500
    // requires).
    let mut perm: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    for e in edges.iter_mut() {
        *e = (perm[e.0 as usize], perm[e.1 as usize]);
    }
    Csr::from_edges(n, &edges, &mut rng)
}

/// Road-network-like graph: a √n × √n grid with 4-neighbour connectivity
/// plus a few per-row shortcuts (roadNet-CA/PA have mean degree ≈ 1.4–2.8
/// and huge diameter).
pub fn road_grid(n: usize, seed: u64) -> Csr {
    let side = (n as f64).sqrt() as usize;
    let n = side * side;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(n * 3);
    let idx = |x: usize, y: usize| (y * side + x) as u32;
    for y in 0..side {
        for x in 0..side {
            let u = idx(x, y);
            if x + 1 < side {
                edges.push((u, idx(x + 1, y)));
                edges.push((idx(x + 1, y), u));
            }
            if y + 1 < side {
                edges.push((u, idx(x, y + 1)));
                edges.push((idx(x, y + 1), u));
            }
            // Occasional shortcut (bridges/highways).
            if rng.gen_ratio(1, 50) {
                edges.push((u, rng.gen_range(0..n as u32)));
            }
        }
    }
    Csr::from_edges(n, &edges, &mut rng)
}

/// Which generator family models a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    Uniform,
    PowerLaw,
    Road,
}

/// A synthetic stand-in for one SNAP dataset (Table 4), or one of the
/// paper's synthetic inputs.
#[derive(Debug, Clone, Copy)]
pub struct DatasetSpec {
    /// Dataset name as printed in Table 4 / the figures.
    pub name: &'static str,
    /// Vertices at scale 1.0 (the paper's size).
    pub vertices: usize,
    /// Edges at scale 1.0.
    pub edges: usize,
    pub family: Family,
}

impl DatasetSpec {
    /// Materialises the dataset at `scale` (e.g. 0.125 = 1/8 size).
    pub fn generate(&self, scale: f64, seed: u64) -> Csr {
        let n = ((self.vertices as f64 * scale) as usize).max(256);
        let m = ((self.edges as f64 * scale) as usize).max(512);
        let degree = (m / n).max(1);
        match self.family {
            Family::Uniform => uniform(n, degree, seed),
            Family::PowerLaw => {
                let sc = (n as f64).log2().ceil() as u32;
                rmat(sc, degree.max(2), seed)
            }
            Family::Road => road_grid(n, seed),
        }
    }
}

/// The Table-4 datasets, plus the synthetic graphs used in Figs. 6–10.
pub const DATASETS: &[DatasetSpec] = &[
    DatasetSpec {
        name: "web-Google (WG)",
        vertices: 875_713,
        edges: 5_105_039,
        family: Family::PowerLaw,
    },
    DatasetSpec {
        name: "p2p-Gnutella31 (P2P)",
        vertices: 62_586,
        edges: 147_892,
        family: Family::Uniform,
    },
    DatasetSpec {
        name: "roadNet-CA (CA)",
        vertices: 1_965_206,
        edges: 2_766_607,
        family: Family::Road,
    },
    DatasetSpec {
        name: "roadNet-PA (PA)",
        vertices: 1_088_092,
        edges: 1_541_898,
        family: Family::Road,
    },
    DatasetSpec {
        name: "loc-Brightkite (LBE)",
        vertices: 58_228,
        edges: 214_078,
        family: Family::Uniform,
    },
    DatasetSpec {
        name: "web-BerkStan (WB)",
        vertices: 685_230,
        edges: 7_600_595,
        family: Family::PowerLaw,
    },
    DatasetSpec {
        name: "web-NotreDame (WN)",
        vertices: 325_729,
        edges: 1_497_134,
        family: Family::PowerLaw,
    },
    DatasetSpec {
        name: "web-Stanford (WS)",
        vertices: 281_903,
        edges: 2_312_497,
        family: Family::PowerLaw,
    },
];

/// Looks a dataset up by its short code ("WG", "P2P", …).
pub fn dataset_by_code(code: &str) -> Option<&'static DatasetSpec> {
    DATASETS
        .iter()
        .find(|d| d.name.contains(&format!("({code})")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_from_edges_round_trips() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = Csr::from_edges(4, &[(0, 1), (0, 2), (2, 3), (3, 0)], &mut rng);
        assert_eq!(g.n, 4);
        assert_eq!(g.m(), 4);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[] as &[u32]);
        assert_eq!(g.neighbors(2), &[3]);
        assert_eq!(g.weight.len(), 4);
        assert!(g.weight.iter().all(|&w| (1..=16).contains(&w)));
    }

    #[test]
    fn uniform_has_requested_degree() {
        let g = uniform(1000, 8, 42);
        assert_eq!(g.n, 1000);
        assert_eq!(g.m(), 8000);
        assert!((g.mean_degree() - 8.0).abs() < 1e-9);
        assert!(g.col.iter().all(|&c| (c as usize) < 1000));
    }

    #[test]
    fn uniform_is_deterministic_per_seed() {
        let a = uniform(500, 4, 7);
        let b = uniform(500, 4, 7);
        let c = uniform(500, 4, 8);
        assert_eq!(a.col, b.col);
        assert_ne!(a.col, c.col);
    }

    #[test]
    fn rmat_is_skewed() {
        let g = rmat(12, 8, 3);
        assert_eq!(g.n, 4096);
        assert_eq!(g.m(), 4096 * 8);
        // Power-law: the max degree far exceeds the mean.
        let max_deg = (0..g.n)
            .map(|v| g.row_ptr[v + 1] - g.row_ptr[v])
            .max()
            .unwrap();
        assert!(
            max_deg as f64 > 6.0 * g.mean_degree(),
            "max {max_deg} vs mean {}",
            g.mean_degree()
        );
    }

    #[test]
    fn road_grid_has_low_degree() {
        let g = road_grid(10_000, 5);
        assert!(g.mean_degree() < 5.0);
        assert!(g.mean_degree() > 3.0);
    }

    #[test]
    fn dataset_lookup_and_generation() {
        let d = dataset_by_code("LBE").unwrap();
        assert_eq!(d.vertices, 58_228);
        let g = d.generate(0.125, 1);
        assert!(g.n >= 58_228 / 8 - 2 && g.n <= 58_228 / 4);
        assert!(dataset_by_code("XX").is_none());
    }

    #[test]
    fn all_table4_rows_present() {
        assert_eq!(DATASETS.len(), 8);
        for code in ["WG", "P2P", "CA", "PA", "LBE", "WB", "WN", "WS"] {
            assert!(dataset_by_code(code).is_some(), "{code}");
        }
    }
}
