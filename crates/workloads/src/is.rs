//! Integer Sort (NAS IS): counting-sort ranking of random integer keys.
//!
//! The delinquent access is the histogram update `cnt[keys[i]]++` and the
//! ranking gather `cnt[keys[i]]` — indirect read-modify-writes over a
//! count array far larger than the LLC.

use apt_cpu::MemImage;
use apt_lir::{FunctionBuilder, Module, Operand, Width};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::BuiltWorkload;

/// IS parameters: `n` keys uniform in `[0, max_key)`, `iterations` full
/// rank passes (the paper uses 25 on Class B/C; scaled runs use fewer).
#[derive(Debug, Clone, Copy)]
pub struct IsParams {
    pub n: u64,
    pub max_key: u64,
    pub iterations: u64,
    pub seed: u64,
}

impl Default for IsParams {
    fn default() -> IsParams {
        IsParams {
            n: 1 << 20,
            max_key: 1 << 21,
            iterations: 2,
            seed: 0x15,
        }
    }
}

/// Builds the IS module.
///
/// Kernels:
/// * `is_clear(cnt, maxk)` — zero the histogram (streaming);
/// * `is_count(keys, cnt, n)` — `cnt[keys[i]]++` (indirect RMW);
/// * `is_prefix(cnt, maxk) -> total` — exclusive prefix sum (streaming);
/// * `is_rank(keys, cnt, rank, n) -> checksum` — `rank[i] = cnt[keys[i]]++`.
pub fn build_module() -> Module {
    let mut m = Module::new("is");

    let f = m.add_function("is_clear", &["cnt", "maxk"]);
    {
        let mut b = FunctionBuilder::new(m.function_mut(f));
        let (cnt, maxk) = (b.param(0), b.param(1));
        b.loop_up(0, maxk, 1, |b, i| {
            b.store_elem(cnt, i, 0u64, Width::W4);
        });
        b.ret(None::<Operand>);
    }

    let f = m.add_function("is_count", &["keys", "cnt", "n"]);
    {
        let mut b = FunctionBuilder::new(m.function_mut(f));
        let (keys, cnt, n) = (b.param(0), b.param(1), b.param(2));
        b.loop_up(0, n, 1, |b, i| {
            let k = b.load_elem(keys, i, Width::W4, false);
            // The delinquent indirect RMW.
            let c = b.load_elem(cnt, k, Width::W4, false);
            let c1 = b.add(c, 1);
            b.store_elem(cnt, k, c1, Width::W4);
        });
        b.ret(None::<Operand>);
    }

    let f = m.add_function("is_prefix", &["cnt", "maxk"]);
    {
        let mut b = FunctionBuilder::new(m.function_mut(f));
        let (cnt, maxk) = (b.param(0), b.param(1));
        let total = b.loop_up_reduce(0, maxk, 1, 0, |b, i, acc| {
            let c = b.load_elem(cnt, i, Width::W4, false);
            b.store_elem(cnt, i, acc, Width::W4);
            b.add(acc, c).into()
        });
        b.ret(Some(total));
    }

    let f = m.add_function("is_rank", &["keys", "cnt", "rank", "n"]);
    {
        let mut b = FunctionBuilder::new(m.function_mut(f));
        let (keys, cnt, rank, n) = (b.param(0), b.param(1), b.param(2), b.param(3));
        let sum = b.loop_up_reduce(0, n, 1, 0, |b, i, acc| {
            let k = b.load_elem(keys, i, Width::W4, false);
            // The delinquent indirect RMW.
            let r = b.load_elem(cnt, k, Width::W4, false);
            let r1 = b.add(r, 1);
            b.store_elem(cnt, k, r1, Width::W4);
            b.store_elem(rank, i, r, Width::W4);
            b.add(acc, r).into()
        });
        b.ret(Some(sum));
    }
    m
}

/// Native reference: returns (ranks, rank checksum) for one pass.
pub fn reference(keys: &[u32], max_key: usize) -> (Vec<u32>, u64) {
    let mut cnt = vec![0u32; max_key];
    for &k in keys {
        cnt[k as usize] += 1;
    }
    let mut sum = 0u32;
    for c in cnt.iter_mut() {
        let v = *c;
        *c = sum;
        sum = sum.wrapping_add(v);
    }
    let mut ranks = Vec::with_capacity(keys.len());
    let mut checksum = 0u64;
    for &k in keys {
        let r = cnt[k as usize];
        cnt[k as usize] += 1;
        ranks.push(r);
        checksum = checksum.wrapping_add(r as u64);
    }
    (ranks, checksum)
}

/// Builds the complete IS workload.
pub fn build(p: IsParams) -> BuiltWorkload {
    let mut rng = SmallRng::seed_from_u64(p.seed);
    let keys: Vec<u32> = (0..p.n)
        .map(|_| rng.gen_range(0..p.max_key as u32))
        .collect();
    let (ranks, checksum) = reference(&keys, p.max_key as usize);

    let mut image = MemImage::new();
    let keys_b = image.alloc_u32_slice(&keys);
    let cnt_b = image.alloc(p.max_key * 4, 64);
    let rank_b = image.alloc(p.n * 4, 64);

    let mut calls: Vec<(String, Vec<u64>)> = Vec::new();
    let mut expected: Vec<Option<u64>> = Vec::new();
    let key_total: u64 = p.n; // Prefix-sum total = number of keys.
    for _ in 0..p.iterations {
        calls.push(("is_clear".into(), vec![cnt_b, p.max_key]));
        expected.push(None);
        calls.push(("is_count".into(), vec![keys_b, cnt_b, p.n]));
        expected.push(None);
        calls.push(("is_prefix".into(), vec![cnt_b, p.max_key]));
        expected.push(Some(key_total));
        calls.push(("is_rank".into(), vec![keys_b, cnt_b, rank_b, p.n]));
        expected.push(Some(checksum));
    }

    let n = p.n as usize;
    BuiltWorkload {
        name: "IS".into(),
        module: build_module(),
        image,
        calls,
        check: Box::new(move |img, rets| {
            BuiltWorkload::returns_checker(expected.clone())(img, rets)?;
            let got = img.read_u32_slice(rank_b, n).map_err(|e| e.to_string())?;
            if got != ranks {
                let i = got.iter().zip(&ranks).position(|(a, b)| a != b).unwrap();
                return Err(format!("rank[{i}] = {}, expected {}", got[i], ranks[i]));
            }
            Ok(())
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_cpu::{Machine, SimConfig};
    use apt_lir::verify::verify_module;

    fn small() -> IsParams {
        IsParams {
            n: 2000,
            max_key: 4096,
            iterations: 2,
            seed: 3,
        }
    }

    #[test]
    fn module_verifies() {
        verify_module(&build_module()).unwrap();
    }

    #[test]
    fn simulated_is_matches_reference() {
        let w = build(small());
        let mut mach = Machine::new(&w.module, SimConfig::default(), w.image);
        let mut rets = Vec::new();
        for (f, args) in &w.calls {
            rets.push(mach.call(f, args).unwrap());
        }
        (w.check)(&mach.image, &rets).unwrap();
    }

    #[test]
    fn reference_ranks_are_a_permutation_basis() {
        let keys = vec![3u32, 1, 3, 0];
        let (ranks, _) = reference(&keys, 4);
        // Sorted positions: 0→1, 1→... key 0 gets rank 0; key 1 rank 1;
        // first 3 gets rank 2; second 3 gets rank 3.
        assert_eq!(ranks, vec![2, 1, 3, 0]);
    }
}
