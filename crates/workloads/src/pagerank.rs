//! PageRank (CRONO): pull-style power iteration over a CSR graph.
//!
//! The delinquent load is `contrib[col[e]]` — a random-access `f64` gather
//! per edge, the classic indirect pattern of graph analytics.

use apt_cpu::MemImage;
use apt_lir::{FunctionBuilder, Module, Operand, Width};

use crate::graphs::Csr;
use crate::BuiltWorkload;

/// Damping factor, as in CRONO.
pub const DAMPING: f64 = 0.85;

/// Builds the PageRank module.
///
/// Two kernels:
/// * `pr_contrib(rank, inv_deg, contrib, n)` — `contrib[v] = rank[v] * inv_deg[v]`;
/// * `pr_iter(row_ptr, col, contrib, out_rank, n, base_bits)` — pull phase,
///   `out_rank[v] = base + 0.85 × Σ contrib[col[e]]`.
pub fn build_module() -> Module {
    let mut m = Module::new("pagerank");

    let f = m.add_function("pr_contrib", &["rank", "inv_deg", "contrib", "n"]);
    {
        let mut b = FunctionBuilder::new(m.function_mut(f));
        let (rank, inv_deg, contrib, n) = (b.param(0), b.param(1), b.param(2), b.param(3));
        b.loop_up(0, n, 1, |b, v| {
            let r = b.load_elem(rank, v, Width::W8, false);
            let d = b.load_elem(inv_deg, v, Width::W8, false);
            let c = b.bin(apt_lir::BinOp::FMul, r, d);
            b.store_elem(contrib, v, c, Width::W8);
        });
        b.ret(None::<Operand>);
    }

    let f = m.add_function(
        "pr_iter",
        &["row_ptr", "col", "contrib", "out_rank", "n", "base_bits"],
    );
    {
        let mut b = FunctionBuilder::new(m.function_mut(f));
        let (row_ptr, col, contrib, out_rank, n, base) = (
            b.param(0),
            b.param(1),
            b.param(2),
            b.param(3),
            b.param(4),
            b.param(5),
        );
        b.loop_up(0, n, 1, |b, v| {
            let start = b.load_elem(row_ptr, v, Width::W4, false);
            let vp1 = b.add(v, 1);
            let end = b.load_elem(row_ptr, vp1, Width::W4, false);
            let sum = b.loop_up_carried(start, end, 1, &[Operand::fimm(0.0)], |b, e, car| {
                let nb = b.load_elem(col, e, Width::W4, false);
                // The delinquent indirect gather.
                let c = b.load_elem(contrib, nb, Width::W8, false);
                let s = b.bin(apt_lir::BinOp::FAdd, car[0], c);
                vec![s.into()]
            });
            let scaled = b.bin(apt_lir::BinOp::FMul, sum[0], Operand::fimm(DAMPING));
            let r = b.bin(apt_lir::BinOp::FAdd, base, scaled);
            b.store_elem(out_rank, v, r, Width::W8);
        });
        b.ret(None::<Operand>);
    }
    m
}

/// Native reference: `iters` pull iterations; returns the final ranks.
pub fn reference(g: &Csr, iters: usize) -> Vec<f64> {
    let n = g.n;
    let base = (1.0 - DAMPING) / n as f64;
    let mut rank = vec![1.0 / n as f64; n];
    let inv_deg: Vec<f64> = (0..n)
        .map(|v| {
            let d = g.row_ptr[v + 1] - g.row_ptr[v];
            if d == 0 {
                0.0
            } else {
                1.0 / d as f64
            }
        })
        .collect();
    let mut contrib = vec![0.0; n];
    for _ in 0..iters {
        for ((c, r), d) in contrib.iter_mut().zip(&rank).zip(&inv_deg) {
            *c = r * d;
        }
        for (v, r) in rank.iter_mut().enumerate() {
            let mut sum = 0.0;
            for &nb in g.neighbors(v as u32) {
                sum += contrib[nb as usize];
            }
            *r = base + DAMPING * sum;
        }
    }
    rank
}

/// Builds the complete PageRank workload (`iters` power iterations).
pub fn build(name: &str, g: &Csr, iters: usize) -> BuiltWorkload {
    let n = g.n;
    let base = (1.0 - DAMPING) / n as f64;
    let expected = reference(g, iters);

    let mut image = MemImage::new();
    let row_ptr = image.alloc_u32_slice(&g.row_ptr);
    let col = image.alloc_u32_slice(&g.col);
    let rank0: Vec<f64> = vec![1.0 / n as f64; n];
    let rank = image.alloc_f64_slice(&rank0);
    let inv_deg_v: Vec<f64> = (0..n)
        .map(|v| {
            let d = g.row_ptr[v + 1] - g.row_ptr[v];
            if d == 0 {
                0.0
            } else {
                1.0 / d as f64
            }
        })
        .collect();
    let inv_deg = image.alloc_f64_slice(&inv_deg_v);
    let contrib = image.alloc(n as u64 * 8, 64);

    let mut calls = Vec::new();
    for _ in 0..iters {
        calls.push(("pr_contrib".into(), vec![rank, inv_deg, contrib, n as u64]));
        calls.push((
            "pr_iter".into(),
            vec![row_ptr, col, contrib, rank, n as u64, base.to_bits()],
        ));
    }

    BuiltWorkload {
        name: name.to_string(),
        module: build_module(),
        image,
        calls,
        check: Box::new(move |img, _rets| {
            let got = img.read_f64_slice(rank, n).map_err(|e| e.to_string())?;
            for (v, (&g_, &w)) in got.iter().zip(expected.iter()).enumerate() {
                if (g_ - w).abs() > 1e-9 * w.abs().max(1e-12) {
                    return Err(format!("rank[{v}] = {g_}, expected {w}"));
                }
            }
            Ok(())
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphs::uniform;
    use apt_cpu::{Machine, SimConfig};
    use apt_lir::verify::verify_module;

    #[test]
    fn module_verifies() {
        verify_module(&build_module()).unwrap();
    }

    #[test]
    fn simulated_pagerank_matches_reference() {
        let g = uniform(150, 4, 21);
        let w = build("PR", &g, 2);
        let mut mach = Machine::new(&w.module, SimConfig::default(), w.image);
        let mut rets = Vec::new();
        for (f, args) in &w.calls {
            rets.push(mach.call(f, args).unwrap());
        }
        (w.check)(&mach.image, &rets).unwrap();
    }

    #[test]
    fn reference_ranks_sum_to_one() {
        let g = uniform(100, 5, 2);
        let r = reference(&g, 10);
        let sum: f64 = r.iter().sum();
        // Dangling mass leaks, so the sum is ≤ 1 but close for this graph.
        assert!(sum > 0.5 && sum <= 1.0 + 1e-9, "{sum}");
    }

    #[test]
    fn gather_load_is_indirect() {
        let m = build_module();
        let found = apt_passes::inject::detect_indirect_loads(&m);
        assert!(!found.is_empty());
    }
}
