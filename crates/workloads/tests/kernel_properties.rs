//! Property tests: the IR kernels agree with their native references on
//! random graphs and inputs.

use apt_cpu::{Machine, SimConfig};
use apt_workloads::graphs::{uniform, Csr};
use apt_workloads::{bfs, dfs, hashjoin, is, micro, randacc, sssp};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn run_and_check(w: &apt_workloads::BuiltWorkload) -> Result<(), TestCaseError> {
    let mut mach = Machine::new(&w.module, SimConfig::default(), w.image.clone());
    let mut rets = Vec::new();
    for (f, args) in &w.calls {
        rets.push(
            mach.call(f, args)
                .map_err(|e| TestCaseError::fail(format!("{}: {e}", w.name)))?,
        );
    }
    (w.check)(&mach.image, &rets).map_err(|e| TestCaseError::fail(format!("{}: {e}", w.name)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn bfs_on_random_graphs(n in 20usize..150, deg in 1usize..6, seed in any::<u64>()) {
        let g = uniform(n, deg, seed);
        run_and_check(&bfs::build("BFS", &g, 0))?;
    }

    #[test]
    fn dfs_on_random_graphs(n in 20usize..150, deg in 1usize..6, seed in any::<u64>()) {
        let g = uniform(n, deg, seed);
        run_and_check(&dfs::build("DFS", &g, 0))?;
    }

    #[test]
    fn sssp_on_random_graphs(n in 20usize..120, deg in 1usize..5, seed in any::<u64>(), rounds in 1usize..4) {
        let g = uniform(n, deg, seed);
        run_and_check(&sssp::build("SSSP", &g, 0, rounds))?;
    }

    #[test]
    fn is_on_random_keys(n in 64u64..2000, logk in 6u32..12, seed in any::<u64>()) {
        run_and_check(&is::build(is::IsParams {
            n,
            max_key: 1 << logk,
            iterations: 1,
            seed,
        }))?;
    }

    #[test]
    fn gups_on_random_tables(logt in 6u32..12, updates in 16u64..2000, seed in any::<u64>()) {
        run_and_check(&randacc::build(randacc::GupsParams {
            table_len: 1 << logt,
            updates,
            seed,
        }))?;
    }

    #[test]
    fn hashjoin_on_random_tables(
        logb in 6u64..10,
        slots in prop::sample::select(vec![2u64, 8]),
        probes in 64u64..1500,
        hit_pct in 0u32..100,
        seed in any::<u64>(),
        soa in any::<bool>(),
    ) {
        let layout = if soa { hashjoin::Layout::NpoSt } else { hashjoin::Layout::Npo };
        run_and_check(&hashjoin::build(hashjoin::HjParams {
            buckets: 1 << logb,
            slots,
            probes,
            hit_pct,
            layout,
            seed,
        }))?;
    }

    #[test]
    fn micro_on_random_params(
        outer in 1u64..12,
        inner in 1u64..80,
        chain in 0usize..24,
        seed in any::<u64>(),
    ) {
        run_and_check(&micro::build(micro::MicroParams {
            outer,
            inner,
            complexity: micro::Complexity::Chain(chain),
            t_len: 1 << 13,
            window: 1 << 11,
            seed,
        }))?;
    }
}

/// Edge-case graphs that property generation rarely hits.
#[test]
fn degenerate_graphs() {
    let mut rng = SmallRng::seed_from_u64(0);
    // Single vertex, no edges.
    let g = Csr::from_edges(1, &[], &mut rng);
    let w = bfs::build("BFS", &g, 0);
    let mut mach = Machine::new(&w.module, SimConfig::default(), w.image);
    let mut rets = Vec::new();
    for (f, args) in &w.calls {
        rets.push(mach.call(f, args).unwrap());
    }
    (w.check)(&mach.image, &rets).unwrap();

    // Self-loops only.
    let g = Csr::from_edges(3, &[(0, 0), (1, 1), (2, 2)], &mut rng);
    let w = dfs::build("DFS", &g, 1);
    let mut mach = Machine::new(&w.module, SimConfig::default(), w.image);
    let mut rets = Vec::new();
    for (f, args) in &w.calls {
        rets.push(mach.call(f, args).unwrap());
    }
    (w.check)(&mach.image, &rets).unwrap();
}
