//! Golden-file parser tests: pinned `perf script` dumps under
//! `tests/fixtures/`, decoded structure asserted field by field. These
//! freeze the accepted grammar — a parser change that reshapes any
//! decoded value or shifts an error location fails here first.

use apt_ingest::{parse_str, IdentityRemap};
use apt_lir::Pc;
use apt_mem::Level;

const CLEAN: &str = include_str!("fixtures/clean.perf");
const INTERLEAVED: &str = include_str!("fixtures/interleaved.perf");
const TRUNCATED: &str = include_str!("fixtures/truncated.perf");

#[test]
fn clean_dump_decodes_exactly() {
    let r = parse_str(CLEAN, &IdentityRemap).expect("clean dump parses");

    let stats = r.stats.expect("stats header present");
    assert_eq!(stats.instructions, 81236);
    assert_eq!(stats.cycles, 312_200);
    assert_eq!(stats.branches, 4100);
    assert_eq!(stats.taken_branches, 4000);

    assert_eq!(r.events, 5);
    assert_eq!(r.skipped_unknown, 0);
    assert_eq!(r.skipped_unmapped, 0);

    // PEBS records in encounter order, levels decoded from `lvl:`.
    let pebs: Vec<(u64, Level, u64)> = r
        .profile
        .pebs
        .iter()
        .map(|p| (p.pc.0, p.served, p.cycle))
        .collect();
    assert_eq!(
        pebs,
        vec![
            (0x24, Level::Dram, 105),
            (0x48, Level::Llc, 140),
            (0x24, Level::L2, 200),
        ]
    );

    // LBR snapshots oldest-first, absolute cycles reconstructed from
    // the line timestamp backwards through the printed deltas.
    assert_eq!(r.profile.lbr_samples.len(), 2);
    let flat: Vec<Vec<(u64, u64, u64)>> = r
        .profile
        .lbr_samples
        .iter()
        .map(|s| s.iter().map(|e| (e.from.0, e.to.0, e.cycle)).collect())
        .collect();
    assert_eq!(flat[0], vec![(0x88, 0x80, 100), (0x88, 0x80, 112)]);
    assert_eq!(
        flat[1],
        vec![(0x88, 0x80, 152), (0x88, 0x80, 160), (0x90, 0x10, 180)]
    );
}

#[test]
fn interleaved_unknown_events_are_tolerated() {
    let r = parse_str(INTERLEAVED, &IdentityRemap).expect("interleaved dump parses");
    // `cycles`, `sched:sched_switch` and `instructions` lines are
    // skipped; blank lines and comments are free.
    assert_eq!(r.skipped_unknown, 3);
    assert_eq!(r.events, 2);
    assert_eq!(r.profile.pebs.len(), 1);
    assert_eq!(r.profile.pebs[0].pc, Pc(0x24));
    assert_eq!(r.profile.lbr_samples.len(), 1);
    assert_eq!(r.profile.lbr_samples[0].len(), 1);
    assert_eq!(r.profile.lbr_samples[0][0].cycle, 140);
    assert_eq!(r.stats.expect("stats").instructions, 1000);
}

#[test]
fn truncated_dump_errors_with_line_and_byte_offset() {
    let e = parse_str(TRUNCATED, &IdentityRemap).expect_err("truncated dump must not parse");
    assert_eq!(e.line, 4);
    // Byte offset of the start of line 4, independently recomputed.
    let expected: usize = TRUNCATED.split('\n').take(3).map(|l| l.len() + 1).sum();
    assert_eq!(e.byte_offset, expected);
    assert!(e.message.contains("truncated mem-loads"), "{e}");
    // And the rendering carries both coordinates.
    let shown = e.to_string();
    assert!(
        shown.starts_with(&format!("line 4 (byte {expected})")),
        "{shown}"
    );
}
