//! Property tests for the cross-run aggregate merge: aggregating shards
//! and merging must equal aggregating the concatenated profile, under
//! any association, and the on-disk codec must be the identity.

use apt_cpu::{LbrEntry, PebsRecord, PerfStats, ProfileData};
use apt_ingest::{
    db::{decode, encode},
    AggregateProfile, ProfileDb,
};
use apt_lir::Pc;
use apt_mem::Level;
use proptest::prelude::*;

/// Builds a profile from primitive generator output: `steps` become one
/// LBR snapshot per chunk of 8 (PC picked from a 4-branch pool, cycles
/// strictly increasing), `loads` become PEBS records over a 2-load pool
/// with all four serving levels.
fn build_profile(steps: &[(u8, u8)], loads: &[(u8, u8)]) -> ProfileData {
    let mut lbr_samples = Vec::new();
    for chunk in steps.chunks(8) {
        let mut cycle = 0u64;
        let sample: Vec<LbrEntry> = chunk
            .iter()
            .map(|&(pc_idx, delta)| {
                cycle += 1 + delta as u64;
                let pc = 0x80 + (pc_idx as u64 % 4) * 4;
                LbrEntry {
                    from: Pc(pc),
                    to: Pc(pc + 4),
                    cycle,
                }
            })
            .collect();
        lbr_samples.push(sample);
    }
    let pebs = loads
        .iter()
        .enumerate()
        .map(|(i, &(pc_idx, lvl))| PebsRecord {
            pc: Pc(0x24 + (pc_idx as u64 % 2) * 0x24),
            served: match lvl % 4 {
                0 => Level::L1,
                1 => Level::L2,
                2 => Level::Llc,
                _ => Level::Dram,
            },
            cycle: i as u64 * 3,
        })
        .collect();
    ProfileData { lbr_samples, pebs }
}

fn stats(seed: u64) -> PerfStats {
    PerfStats {
        instructions: seed * 911 + 1,
        cycles: seed * 3313 + 7,
        branches: seed * 17,
        taken_branches: seed * 13,
        ..Default::default()
    }
}

fn add_stats(a: &PerfStats, b: &PerfStats) -> PerfStats {
    PerfStats {
        instructions: a.instructions + b.instructions,
        cycles: a.cycles + b.cycles,
        branches: a.branches + b.branches,
        taken_branches: a.taken_branches + b.taken_branches,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// merge(agg(A), agg(B)) == agg(A ++ B): two short profiling runs
    /// aggregated separately and merged are indistinguishable from one
    /// long run.
    #[test]
    fn merge_equals_concatenation(
        steps_a in prop::collection::vec((0u8..4, 0u8..40), 0..48),
        loads_a in prop::collection::vec((0u8..2, 0u8..4), 0..24),
        steps_b in prop::collection::vec((0u8..4, 0u8..40), 0..48),
        loads_b in prop::collection::vec((0u8..2, 0u8..4), 0..24),
    ) {
        let (pa, pb) = (build_profile(&steps_a, &loads_a), build_profile(&steps_b, &loads_b));
        let (sa, sb) = (stats(3), stats(11));

        let mut merged = AggregateProfile::from_profile(&pa, &sa);
        merged.merge(&AggregateProfile::from_profile(&pb, &sb));

        let mut concat = pa.clone();
        concat.merge(pb.clone());
        let direct = AggregateProfile::from_profile(&concat, &add_stats(&sa, &sb));

        prop_assert_eq!(merged, direct);
    }

    /// (a + b) + c == a + (b + c): the merge is associative, so any
    /// merge tree over the same epochs yields the same baseline.
    #[test]
    fn merge_is_associative(
        steps in prop::collection::vec((0u8..4, 0u8..40), 0..96),
        loads in prop::collection::vec((0u8..2, 0u8..4), 0..36),
        cut_a in 0usize..96,
        cut_b in 0usize..96,
    ) {
        let (mut ca, mut cb) = (cut_a.min(steps.len()), cut_b.min(steps.len()));
        if ca > cb {
            std::mem::swap(&mut ca, &mut cb);
        }
        let lc = loads.len() / 3;
        let parts = [
            AggregateProfile::from_profile(&build_profile(&steps[..ca], &loads[..lc]), &stats(1)),
            AggregateProfile::from_profile(&build_profile(&steps[ca..cb], &loads[lc..2 * lc]), &stats(2)),
            AggregateProfile::from_profile(&build_profile(&steps[cb..], &loads[2 * lc..]), &stats(3)),
        ];
        let mut left = parts[0].clone();
        left.merge(&parts[1]);
        left.merge(&parts[2]);
        let mut tail = parts[1].clone();
        tail.merge(&parts[2]);
        let mut right = parts[0].clone();
        right.merge(&tail);
        prop_assert_eq!(left, right);
    }

    /// decode(encode(db)) == db for arbitrary aggregates: every counter
    /// round-trips exactly through the `APTDB1` codec.
    #[test]
    fn db_codec_is_identity(
        steps in prop::collection::vec((0u8..4, 0u8..40), 0..64),
        loads in prop::collection::vec((0u8..2, 0u8..4), 0..24),
    ) {
        let mut db = ProfileDb::new();
        db.push_epoch(
            "round-trip",
            AggregateProfile::from_profile(&build_profile(&steps, &loads), &stats(5)),
        );
        db.push_epoch("empty", AggregateProfile::default());
        prop_assert_eq!(decode(&encode(&db)), Some(db));
    }
}
