//! The §3.4 analysis pipeline over *aggregates* instead of raw samples.
//!
//! [`analyze_aggregate`] mirrors `apt_profile::analyze` step for step —
//! delinquency ranking, Eq. 1 distance from latency peaks, Eq. 2 site
//! selection — but consumes an [`AggregateProfile`] (typically
//! `ProfileDb::merged()`), so optimisation can run from the cross-run
//! database without any raw profile on hand. The Eq. 1/Eq. 2 cores are
//! the *same functions* ([`eq1_distance`], [`eq2_site`],
//! [`latency_peaks`]), so the two paths cannot drift apart on the model.
//!
//! Documented divergence from the sample path (see
//! [`crate::aggregate`]): aggregates are built before any module is
//! known, so iteration latencies are the *unbounded* variant (no
//! outer-back-edge reset) and trip counts follow the run-based
//! `trip_counts` convention rather than the bracketed
//! `trip_counts_between`. For the rotated single-block loops the
//! simulator emits, both pairs coincide; deeply nested real-world loops
//! may see slightly more outer-crossing noise in the latency tail.

use apt_lir::pcmap::Location;
use apt_lir::{AddressMap, Module, Pc};
use apt_passes::loops::analyze_loops;
use apt_passes::Site;
use apt_profile::{
    eq1_distance, eq2_site, latency_peaks, AnalysisConfig, AnalysisResult, DelinquentLoad,
    LoadHint, SiteNote,
};

use crate::aggregate::AggregateProfile;

/// Ranks delinquent loads from the aggregate's per-PC miss counts,
/// matching `rank_delinquent_loads` semantics: counted over samples of
/// *every* serving level, share over all PEBS samples, sorted count
/// descending then PC ascending.
fn rank_from_aggregate(agg: &AggregateProfile, cfg: &AnalysisConfig) -> Vec<DelinquentLoad> {
    let total = agg.pebs_samples;
    if total == 0 {
        return Vec::new();
    }
    let mut counts: Vec<(u64, u64)> = agg
        .pc_misses
        .iter()
        .map(|(pc, c)| (*pc, c.iter().sum()))
        .collect();
    counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    counts
        .into_iter()
        .map(|(pc, n)| DelinquentLoad {
            pc: Pc(pc),
            samples: n,
            share: n as f64 / total as f64,
        })
        .filter(|d| d.share >= cfg.min_share)
        .take(cfg.max_loads)
        .collect()
}

/// Runs the full analysis pipeline from an aggregate profile: per-PC
/// miss counts → delinquent loads → latency sketches → peaks → Eq. 1
/// distance → Eq. 2 site → hints.
pub fn analyze_aggregate(
    module: &Module,
    map: &AddressMap,
    agg: &AggregateProfile,
    cfg: &AnalysisConfig,
) -> AnalysisResult {
    let mut result = AnalysisResult {
        delinquent: rank_from_aggregate(agg, cfg),
        ..Default::default()
    };

    for d in result.delinquent.clone() {
        // Gate on absolute miss volume, exactly as the sample path does.
        let est_mpki = d.samples as f64 * cfg.pebs_period.max(1) as f64 * 1000.0
            / agg.instructions.max(1) as f64;
        if est_mpki < cfg.min_load_mpki {
            result.notes.push(format!(
                "pc {}: ~{est_mpki:.2} MPKI below threshold; not worth prefetching",
                d.pc
            ));
            continue;
        }
        let Some(Location::Inst(iref)) = map.resolve(d.pc) else {
            result
                .notes
                .push(format!("pc {} does not resolve to an instruction", d.pc));
            continue;
        };
        let func = module.function(iref.func);
        let forest = analyze_loops(func);
        let Some(inner_idx) = forest.innermost_of(iref.block) else {
            result
                .notes
                .push(format!("load at {} is not inside a loop", d.pc));
            continue;
        };

        let inner_latch = forest.loops[inner_idx].latches[0];
        let bbl_branch = map.term_pc(iref.func, inner_latch);
        let sketch = agg.iter_lat.get(&bbl_branch.0);
        let obs = sketch.map_or(0, |s| s.total());

        let (ic, mc, mut distance, peaks);
        if obs < cfg.min_observations as u64 {
            // §3.6 fallback: not enough LBR evidence — distance 1.
            ic = 0.0;
            mc = 0.0;
            distance = 1;
            peaks = Vec::new();
            result.notes.push(format!(
                "pc {}: only {} latency observations; defaulting to distance 1",
                d.pc, obs
            ));
        } else {
            let hist = sketch
                .expect("obs > 0 implies sketch")
                .to_histogram(cfg.hist_bins, 0.995)
                .expect("non-empty sketch")
                .smoothed(cfg.smoothing);
            let ps = latency_peaks(&hist, cfg);
            let (i, m, dist) = eq1_distance(&ps, cfg);
            ic = i;
            mc = m;
            distance = dist;
            peaks = ps;
        }

        // Eq. 2: choose the injection site.
        let mut site = Site::Inner;
        let mut fanout = 1u64;
        let mut trip_count = None;
        let inner_distance = distance;
        let mut inner_fallback = inner_distance;
        if let Some(outer_idx) = forest.parent_of(inner_idx) {
            let outer_latch = forest.loops[outer_idx].latches[0];
            let outer_branch_pc = map.term_pc(iref.func, outer_latch);
            let trips = agg
                .trips
                .get(&bbl_branch.0)
                .copied()
                .unwrap_or_default()
                .stats();
            let dec = eq2_site(&trips, inner_distance, cfg, || {
                agg.iter_lat
                    .get(&outer_branch_pc.0)
                    .filter(|s| s.total() >= cfg.min_observations as u64)
                    .and_then(|s| s.to_histogram(cfg.hist_bins, 0.995))
            });
            site = dec.site;
            fanout = dec.fanout;
            trip_count = dec.trip_count;
            distance = dec.distance;
            inner_fallback = dec.inner_fallback;
            match dec.note {
                Some(SiteNote::SaturatedInner) => result.notes.push(format!(
                    "pc {}: inner loop saturates the LBR; staying inner",
                    d.pc
                )),
                Some(SiteNote::OuterUnmeasuredScaled { distance }) => result.notes.push(format!(
                    "pc {}: outer latency unmeasured; scaled distance to {}",
                    d.pc, distance
                )),
                None => {}
            }
        }

        result.hints.push(LoadHint {
            pc: d.pc,
            func: iref.func,
            load: (iref.block, iref.inst),
            distance,
            site,
            fanout,
            ic_latency: ic,
            mc_latency: mc,
            trip_count,
            inner_distance: Some(inner_fallback),
            peaks,
            share: d.share,
        });
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_aggregate_yields_empty_result() {
        let m = Module::new("t");
        let map = m.assign_pcs();
        let r = analyze_aggregate(
            &m,
            &map,
            &AggregateProfile::default(),
            &AnalysisConfig::default(),
        );
        assert!(r.hints.is_empty());
        assert!(r.delinquent.is_empty());
        assert!(r.notes.is_empty());
    }

    #[test]
    fn unresolvable_pc_is_noted_and_skipped() {
        let m = Module::new("t");
        let map = m.assign_pcs();
        let mut agg = AggregateProfile {
            instructions: 1000,
            pebs_samples: 100,
            ..Default::default()
        };
        agg.pc_misses.insert(0xdead_0000, [0, 0, 0, 100]);
        let r = analyze_aggregate(&m, &map, &agg, &AnalysisConfig::default());
        assert!(r.hints.is_empty());
        assert_eq!(r.delinquent.len(), 1);
        assert_eq!(r.notes.len(), 1);
        assert!(
            r.notes[0].contains("does not resolve to an instruction"),
            "{}",
            r.notes[0]
        );
    }

    #[test]
    fn low_mpki_loads_are_gated() {
        let m = Module::new("t");
        let map = m.assign_pcs();
        let mut agg = AggregateProfile {
            // Enormous instruction count ⇒ negligible MPKI.
            instructions: u64::MAX / 2,
            pebs_samples: 100,
            ..Default::default()
        };
        agg.pc_misses.insert(0x24, [0, 0, 0, 100]);
        let r = analyze_aggregate(&m, &map, &agg, &AnalysisConfig::default());
        assert!(r.hints.is_empty());
        assert!(
            r.notes[0].contains("not worth prefetching"),
            "{}",
            r.notes[0]
        );
    }

    #[test]
    fn ranking_matches_rank_delinquent_loads_semantics() {
        let mut agg = AggregateProfile {
            pebs_samples: 100,
            ..Default::default()
        };
        agg.pc_misses.insert(0x200, [0, 0, 10, 15]); // 25 total.
        agg.pc_misses.insert(0x100, [0, 0, 0, 70]);
        agg.pc_misses.insert(0x300, [5, 0, 0, 0]);
        let cfg = AnalysisConfig {
            min_share: 0.10,
            ..Default::default()
        };
        let d = rank_from_aggregate(&agg, &cfg);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].pc, Pc(0x100));
        assert!((d[0].share - 0.70).abs() < 1e-12);
        assert_eq!(d[1].pc, Pc(0x200));
        assert_eq!(d[1].samples, 25);
    }
}
