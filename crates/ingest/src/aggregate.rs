//! Module-agnostic per-epoch profile aggregates.
//!
//! Raw profiles (LBR snapshots + PEBS records) are large and tied to one
//! run; the cross-run database stores *aggregates* instead, keyed by PC
//! alone so they survive recompilation of unrelated code and can be
//! merged across runs:
//!
//! * per-PC LLC-miss sample counts, split by serving level;
//! * per-branch-PC **exact** iteration-latency multisets
//!   ([`LatencySketch`]) — adjacent-occurrence cycle deltas within each
//!   snapshot, the same signal `iteration_latencies` extracts;
//! * per-branch-PC trip-count sums (`Σt`, `Σt²`, runs, saturated runs),
//!   the sufficient statistics behind [`TripCountStats`].
//!
//! Everything is a count, so [`AggregateProfile::merge`] is pure
//! addition: associative, commutative, deterministic (`BTreeMap`
//! ordering), and sample-count-weighted by construction — merging two
//! epochs weighs each by how much evidence it actually carries.
//!
//! Divergence from the sample-driven path, by design: aggregation
//! happens at ingest time, before any module is known, so the
//! outer-boundary-bounded latency variant and the bracketed
//! `trip_counts_between` cannot be computed (both need loop-structure
//! PCs). The aggregate carries the unbounded latencies and run-based
//! trip counts; [`crate::analyze::analyze_aggregate`] documents the
//! effect.

use std::collections::BTreeMap;

use apt_cpu::{PerfStats, ProfileData, LBR_ENTRIES};
use apt_profile::{LatencySketch, TripCountStats};
use apt_trace::PcOutcomes;

/// Which hint generation produced an epoch's samples — a flat lattice,
/// so tagging stays a monoid under [`AggregateProfile::merge`]:
/// `Untagged` is the identity, equal tags keep their value, and
/// differing tags collapse to `Mixed` (the merge of evidence from two
/// deployments attributes to neither).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum GenTag {
    /// No `# hintgen:` header — every pre-feedback dump.
    #[default]
    Untagged,
    /// All samples ran under this hint generation.
    Gen(u64),
    /// Samples from more than one generation were merged.
    Mixed,
}

impl GenTag {
    /// Lattice join (see the type docs).
    pub fn join(self, other: GenTag) -> GenTag {
        match (self, other) {
            (GenTag::Untagged, g) | (g, GenTag::Untagged) => g,
            (a, b) if a == b => a,
            _ => GenTag::Mixed,
        }
    }

    /// The generation key the efficacy ledger files epochs under:
    /// tagged epochs under their generation, everything else under 0
    /// (the pre-feedback baseline bucket).
    pub fn ledger_key(self) -> u64 {
        match self {
            GenTag::Gen(g) => g,
            GenTag::Untagged | GenTag::Mixed => 0,
        }
    }
}

/// Trip-count sufficient statistics for one branch PC (run-based, the
/// `trip_counts` convention: maximal runs of consecutive back-edge
/// entries strictly inside a snapshot).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TripAgg {
    /// `Σ t` over fully observed runs (`t` = run length + 1 iterations).
    pub total: u64,
    /// `Σ t²` (for the load-weighted mean `Σt²/Σt`).
    pub total_sq: u64,
    /// Fully observed runs.
    pub runs: u64,
    /// Snapshot-filling runs (trip count ≥ 32, unmeasurable).
    pub saturated_runs: u64,
}

impl TripAgg {
    /// Merge by addition.
    pub fn merge(&mut self, other: &TripAgg) {
        self.total += other.total;
        self.total_sq += other.total_sq;
        self.runs += other.runs;
        self.saturated_runs += other.saturated_runs;
    }

    /// The derived statistics Eq. 2 consumes.
    pub fn stats(&self) -> TripCountStats {
        TripCountStats {
            mean: if self.runs > 0 {
                self.total as f64 / self.runs as f64
            } else {
                0.0
            },
            weighted_mean: if self.total > 0 {
                self.total_sq as f64 / self.total as f64
            } else {
                0.0
            },
            runs: self.runs,
            saturated_runs: self.saturated_runs,
        }
    }
}

/// One epoch's (or one merged history's) aggregate profile.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AggregateProfile {
    /// Retired instructions of the underlying run(s) (MPKI gate).
    pub instructions: u64,
    /// Elapsed cycles.
    pub cycles: u64,
    /// Retired branches.
    pub branches: u64,
    /// Retired taken branches.
    pub taken_branches: u64,
    /// LBR snapshots aggregated.
    pub lbr_snapshots: u64,
    /// PEBS samples aggregated.
    pub pebs_samples: u64,
    /// Per-PC LLC-miss sample counts, indexed `[L1, L2, LLC, DRAM]` by
    /// serving level (PEBS only reports DRAM in the simulator; real
    /// dumps carry the full split).
    pub pc_misses: BTreeMap<u64, [u64; 4]>,
    /// Per-branch-PC iteration-latency multisets.
    pub iter_lat: BTreeMap<u64, LatencySketch>,
    /// Per-branch-PC trip-count statistics.
    pub trips: BTreeMap<u64, TripAgg>,
    /// Which hint generation the underlying run(s) executed under.
    pub gen: GenTag,
    /// Per-prefetch-PC outcome counters reported back by the deployed
    /// binary (`# pf-outcome:` headers); empty for pre-feedback dumps.
    pub pf_outcomes: BTreeMap<u64, PcOutcomes>,
}

fn level_index(l: apt_mem::Level) -> usize {
    match l {
        apt_mem::Level::L1 => 0,
        apt_mem::Level::L2 => 1,
        apt_mem::Level::Llc => 2,
        apt_mem::Level::Dram => 3,
    }
}

impl AggregateProfile {
    /// Aggregates one raw profile (one epoch).
    pub fn from_profile(profile: &ProfileData, stats: &PerfStats) -> AggregateProfile {
        let mut agg = AggregateProfile {
            instructions: stats.instructions,
            cycles: stats.cycles,
            branches: stats.branches,
            taken_branches: stats.taken_branches,
            lbr_snapshots: profile.lbr_samples.len() as u64,
            pebs_samples: profile.pebs.len() as u64,
            ..AggregateProfile::default()
        };
        for r in &profile.pebs {
            agg.pc_misses.entry(r.pc.0).or_default()[level_index(r.served)] += 1;
        }
        for s in &profile.lbr_samples {
            // Iteration latencies: cycle delta between adjacent
            // occurrences of the same branch PC, for every PC at once
            // (matches `iteration_latencies(samples, pc)` per PC, the
            // unbounded variant).
            let mut last: BTreeMap<u64, u64> = BTreeMap::new();
            for e in s {
                if let Some(prev) = last.insert(e.from.0, e.cycle) {
                    agg.iter_lat
                        .entry(e.from.0)
                        .or_default()
                        .record(e.cycle.saturating_sub(prev));
                }
            }
            // Trip counts: maximal runs of consecutive identical branch
            // PCs, the `trip_counts` convention — boundary runs
            // discarded, snapshot-filling runs counted as saturated.
            let n = s.len();
            let mut i = 0usize;
            while i < n {
                let pc = s[i].from.0;
                let mut j = i + 1;
                while j < n && s[j].from.0 == pc {
                    j += 1;
                }
                let run = (j - i) as u64;
                if j == n {
                    if run as usize >= LBR_ENTRIES {
                        agg.trips.entry(pc).or_default().saturated_runs += 1;
                    }
                    // Truncated otherwise: length unknown, discard.
                } else if i > 0 {
                    let t = run + 1; // L back-edges ⇒ L+1 iterations.
                    let ta = agg.trips.entry(pc).or_default();
                    ta.total += t;
                    ta.total_sq += t * t;
                    ta.runs += 1;
                }
                i = j;
            }
        }
        agg
    }

    /// Merges another aggregate in. Pure count addition on every field,
    /// hence associative, commutative and deterministic.
    pub fn merge(&mut self, other: &AggregateProfile) {
        self.instructions += other.instructions;
        self.cycles += other.cycles;
        self.branches += other.branches;
        self.taken_branches += other.taken_branches;
        self.lbr_snapshots += other.lbr_snapshots;
        self.pebs_samples += other.pebs_samples;
        for (pc, counts) in &other.pc_misses {
            let e = self.pc_misses.entry(*pc).or_default();
            for (a, b) in e.iter_mut().zip(counts) {
                *a += b;
            }
        }
        for (pc, sketch) in &other.iter_lat {
            self.iter_lat.entry(*pc).or_default().merge(sketch);
        }
        for (pc, trips) in &other.trips {
            self.trips.entry(*pc).or_default().merge(trips);
        }
        self.gen = self.gen.join(other.gen);
        for (pc, o) in &other.pf_outcomes {
            self.pf_outcomes.entry(*pc).or_default().add(o);
        }
    }

    /// True when the epoch carries outcome feedback (a generation tag
    /// or per-PC outcome records). The on-disk database stays at the v1
    /// encoding for feedback-free epochs, so pre-feedback archives and
    /// golden bytes never change.
    pub fn has_feedback(&self) -> bool {
        self.gen != GenTag::Untagged || !self.pf_outcomes.is_empty()
    }

    /// Timely share of classified prefetch outcomes across all PCs
    /// (`None` when the epoch carries no issued prefetches).
    pub fn timely_share(&self) -> Option<f64> {
        let mut issued = 0u64;
        let mut timely = 0u64;
        for o in self.pf_outcomes.values() {
            issued += o.issued;
            timely += o.timely;
        }
        (issued > 0).then(|| timely as f64 / issued as f64)
    }

    /// DRAM-served miss samples attributed to `pc`.
    pub fn dram_misses(&self, pc: u64) -> u64 {
        self.pc_misses.get(&pc).map_or(0, |c| c[3])
    }

    /// Total miss samples attributed to `pc` across all levels.
    pub fn total_misses(&self, pc: u64) -> u64 {
        self.pc_misses.get(&pc).map_or(0, |c| c.iter().sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_cpu::{LbrEntry, PebsRecord};
    use apt_lir::Pc;
    use apt_mem::Level;
    use apt_profile::trip_counts;

    fn e(from: u64, cycle: u64) -> LbrEntry {
        LbrEntry {
            from: Pc(from),
            to: Pc(from + 4),
            cycle,
        }
    }

    fn profile() -> ProfileData {
        ProfileData {
            lbr_samples: vec![vec![
                e(0x200, 0),
                e(0x100, 10),
                e(0x100, 22),
                e(0x100, 33),
                e(0x200, 50),
                e(0x100, 60),
                e(0x200, 90),
            ]],
            pebs: vec![
                PebsRecord {
                    pc: Pc(0x24),
                    served: Level::Dram,
                    cycle: 5,
                },
                PebsRecord {
                    pc: Pc(0x24),
                    served: Level::Dram,
                    cycle: 15,
                },
                PebsRecord {
                    pc: Pc(0x48),
                    served: Level::Llc,
                    cycle: 25,
                },
            ],
        }
    }

    #[test]
    fn aggregates_misses_latencies_and_trips() {
        let agg = AggregateProfile::from_profile(&profile(), &PerfStats::default());
        assert_eq!(agg.dram_misses(0x24), 2);
        assert_eq!(agg.total_misses(0x48), 1);
        assert_eq!(agg.dram_misses(0x48), 0);
        // Inner latencies at 0x100: 12, 11, 27 (unbounded variant keeps
        // the outer-crossing 60−33 = 27).
        let lat = &agg.iter_lat[&0x100];
        assert_eq!(lat.total(), 3);
        assert_eq!(lat.min(), Some(11));
        assert_eq!(lat.max(), Some(27));
        // Outer latencies at 0x200: 50, 40.
        assert_eq!(agg.iter_lat[&0x200].total(), 2);
        // Trip runs at 0x100: one interior run of 3 (trip 4) and one of
        // 1 (trip 2); matches `trip_counts` exactly.
        let reference = trip_counts(&profile().lbr_samples, Pc(0x100));
        let got = agg.trips[&0x100].stats();
        assert_eq!(got.runs, reference.runs);
        assert_eq!(got.mean, reference.mean);
        assert_eq!(got.weighted_mean, reference.weighted_mean);
        assert_eq!(got.saturated_runs, reference.saturated_runs);
    }

    #[test]
    fn saturated_snapshot_counts_once() {
        let p = ProfileData {
            lbr_samples: vec![(0..LBR_ENTRIES as u64).map(|i| e(0x100, i)).collect()],
            pebs: vec![],
        };
        let agg = AggregateProfile::from_profile(&p, &PerfStats::default());
        assert_eq!(agg.trips[&0x100].saturated_runs, 1);
        assert_eq!(agg.trips[&0x100].runs, 0);
    }

    #[test]
    fn merge_is_addition_and_matches_concatenation() {
        let p = profile();
        let stats = PerfStats {
            instructions: 1000,
            cycles: 3000,
            ..Default::default()
        };
        let single = AggregateProfile::from_profile(&p, &stats);

        let mut doubled_profile = p.clone();
        doubled_profile.merge(p.clone());
        let doubled_stats = PerfStats {
            instructions: 2000,
            cycles: 6000,
            ..Default::default()
        };
        let direct = AggregateProfile::from_profile(&doubled_profile, &doubled_stats);

        let mut merged = single.clone();
        merged.merge(&single);
        assert_eq!(merged, direct);
    }

    #[test]
    fn merge_is_associative() {
        let stats = PerfStats {
            instructions: 10,
            ..Default::default()
        };
        let a = AggregateProfile::from_profile(&profile(), &stats);
        let mut b = a.clone();
        b.instructions = 99;
        let c = AggregateProfile::from_profile(&ProfileData::default(), &stats);

        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
    }

    #[test]
    fn gen_tag_join_is_a_flat_lattice() {
        use GenTag::*;
        assert_eq!(Untagged.join(Untagged), Untagged);
        assert_eq!(Untagged.join(Gen(3)), Gen(3));
        assert_eq!(Gen(3).join(Untagged), Gen(3));
        assert_eq!(Gen(3).join(Gen(3)), Gen(3));
        assert_eq!(Gen(3).join(Gen(4)), Mixed);
        assert_eq!(Mixed.join(Gen(3)), Mixed);
        assert_eq!(Mixed.join(Untagged), Mixed);
        // Associativity over a sample of tag triples.
        let tags = [Untagged, Gen(1), Gen(2), Mixed];
        for a in tags {
            for b in tags {
                for c in tags {
                    assert_eq!(a.join(b).join(c), a.join(b.join(c)));
                    assert_eq!(a.join(b), b.join(a));
                }
            }
        }
    }

    #[test]
    fn merge_adds_outcomes_and_joins_generations() {
        let mut a = AggregateProfile::from_profile(&profile(), &PerfStats::default());
        a.gen = GenTag::Gen(2);
        a.pf_outcomes.insert(
            0x400,
            PcOutcomes {
                issued: 10,
                timely: 7,
                late: 3,
                ..PcOutcomes::default()
            },
        );
        let mut b = a.clone();
        b.pf_outcomes.get_mut(&0x400).unwrap().timely = 1;
        b.pf_outcomes.get_mut(&0x400).unwrap().late = 9;

        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.gen, GenTag::Gen(2));
        let o = &merged.pf_outcomes[&0x400];
        assert_eq!((o.issued, o.timely, o.late), (20, 8, 12));
        assert_eq!(merged.timely_share(), Some(0.4));
        assert!(merged.has_feedback());

        let mut cross = a.clone();
        cross.gen = GenTag::Gen(3);
        merged.merge(&cross);
        assert_eq!(merged.gen, GenTag::Mixed, "cross-generation merge mixes");

        let plain = AggregateProfile::from_profile(&profile(), &PerfStats::default());
        assert!(!plain.has_feedback());
        assert_eq!(plain.timely_share(), None);
    }
}
