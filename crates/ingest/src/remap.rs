//! Mapping raw profile instruction pointers onto module PCs.
//!
//! A real `perf script` dump carries *runtime* addresses: the module's
//! PCs plus an ASLR slide, or symbols that need a table lookup. The
//! parser runs every PC through a [`PcRemapper`] before decoding, so the
//! same parsing code serves simulator exports (identity) and
//! production-style dumps (slide / table).

use std::collections::BTreeMap;

use apt_lir::Pc;

/// Maps a raw instruction pointer from the dump to a module PC.
pub trait PcRemapper {
    /// `None` means the address does not belong to the profiled module
    /// (another DSO, the kernel); the parser drops such records and
    /// counts them in [`crate::Ingested::skipped_unmapped`].
    fn map_pc(&self, raw: u64) -> Option<Pc>;
}

/// The identity mapping — simulator exports carry module PCs directly.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityRemap;

impl PcRemapper for IdentityRemap {
    fn map_pc(&self, raw: u64) -> Option<Pc> {
        Some(Pc(raw))
    }
}

/// Subtracts a load base (ASLR slide): `module PC = raw − base`.
/// Addresses below the base don't belong to the module.
#[derive(Debug, Clone, Copy)]
pub struct OffsetRemap {
    /// The mapped base address of the profiled module.
    pub base: u64,
}

impl PcRemapper for OffsetRemap {
    fn map_pc(&self, raw: u64) -> Option<Pc> {
        raw.checked_sub(self.base).map(Pc)
    }
}

/// An explicit address table (e.g. from a symbolizer); addresses absent
/// from the table are dropped.
#[derive(Debug, Clone, Default)]
pub struct TableRemap {
    map: BTreeMap<u64, u64>,
}

impl TableRemap {
    /// Builds the table from `(raw, module PC)` pairs.
    pub fn new(pairs: impl IntoIterator<Item = (u64, u64)>) -> TableRemap {
        TableRemap {
            map: pairs.into_iter().collect(),
        }
    }
}

impl PcRemapper for TableRemap {
    fn map_pc(&self, raw: u64) -> Option<Pc> {
        self.map.get(&raw).copied().map(Pc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_passes_through() {
        assert_eq!(IdentityRemap.map_pc(0x1234), Some(Pc(0x1234)));
    }

    #[test]
    fn offset_subtracts_the_slide() {
        let r = OffsetRemap { base: 0x5000 };
        assert_eq!(r.map_pc(0x5010), Some(Pc(0x10)));
        assert_eq!(r.map_pc(0x4fff), None);
    }

    #[test]
    fn table_maps_known_addresses_only() {
        let r = TableRemap::new([(0x9000, 0x10), (0x9004, 0x14)]);
        assert_eq!(r.map_pc(0x9004), Some(Pc(0x14)));
        assert_eq!(r.map_pc(0x9008), None);
    }
}
