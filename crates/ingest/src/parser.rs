//! Line-oriented parser for `perf script` textual output.
//!
//! Accepts the subset of `perf script` a PEBS + LBR profiling session
//! produces (and that [`apt_cpu::perfscript`] exports):
//!
//! ```text
//! # apt-get perf script v1
//! # stats: instructions=81236 cycles=312200 branches=4100 taken_branches=4000
//! aptgetsim     0 [000]     0.000112: cpu/branch-stack/: 0x88/0x80/P/-/-/12 0x88/0x80/P/-/-/0
//! aptgetsim     0 [000]     0.000105: cpu/mem-loads,ldlat=30/P: 0x24 weight: 120 lvl: RAM
//! ```
//!
//! Error handling follows the two failure modes of real dump files:
//!
//! * **Unknown event kinds** (`cycles`, `instructions`, context-switch
//!   records, …) are *skipped* and counted — `perf script` interleaves
//!   whatever events were recorded, and ingestion must not require a
//!   pre-filtered dump.
//! * **Truncated or malformed records** of a *known* kind are hard
//!   errors carrying the 1-based line number and the byte offset of the
//!   offending line — a cut-off dump silently dropping its tail would
//!   bias every downstream distribution.
//!
//! Timestamps are the absolute cycle count at a fictional 1 MHz clock
//! (`sec.usec`, so `cycle = sec × 10⁶ + usec` exactly — see the export
//! module docs). LBR entries arrive newest-first with per-entry cycle
//! deltas; the parser reconstructs absolute cycles from the line
//! timestamp backwards and stores snapshots oldest-first, the order the
//! analysis layer expects.

use std::collections::BTreeMap;
use std::fmt;
use std::io::BufRead;
use std::path::Path;

use apt_cpu::{LbrEntry, PebsRecord, PerfStats, ProfileData};
use apt_mem::Level;
use apt_trace::PcOutcomes;

use crate::remap::PcRemapper;

/// A hard parse failure, located to the byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Byte offset of the start of the offending line within the input.
    pub byte_offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "line {} (byte {}): {}",
            self.line, self.byte_offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// [`parse_file`] failures: I/O or parse.
#[derive(Debug)]
pub enum IngestError {
    Io(std::io::Error),
    Parse(ParseError),
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Io(e) => write!(f, "{e}"),
            IngestError::Parse(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for IngestError {}

impl From<ParseError> for IngestError {
    fn from(e: ParseError) -> IngestError {
        IngestError::Parse(e)
    }
}

/// The decoded dump.
#[derive(Debug, Clone, Default)]
pub struct Ingested {
    /// LBR snapshots + PEBS records, in per-stream encounter order.
    pub profile: ProfileData,
    /// Counters from the `# stats:` header comment, when present (real
    /// `perf script` dumps lack it; the simulator's exports carry it).
    pub stats: Option<PerfStats>,
    /// Event lines of kinds ingestion does not consume.
    pub skipped_unknown: usize,
    /// PEBS records / LBR entries whose PC the remapper rejected.
    pub skipped_unmapped: usize,
    /// Event lines consumed into `profile`.
    pub events: usize,
    /// The hint generation deployed while the dump was recorded, from
    /// the optional `# hintgen:` header (outcome-feedback dumps only).
    pub generation: Option<u64>,
    /// Per-PC prefetch-outcome records from `# pf-outcome:` headers,
    /// keyed by issuing prefetch PC.
    pub outcomes: BTreeMap<u64, PcOutcomes>,
}

impl Ingested {
    /// The header counters, or zeroed stats when the dump had none.
    pub fn stats_or_default(&self) -> PerfStats {
        self.stats.unwrap_or_default()
    }

    /// Exports ingestion counters (events consumed, lines skipped by
    /// reason, records by kind) into `registry`.
    pub fn export_metrics(&self, registry: &apt_metrics::Registry, labels: &[(&str, &str)]) {
        if !registry.is_enabled() {
            return;
        }
        fn join<'a>(
            base: &[(&'a str, &'a str)],
            extra: (&'a str, &'a str),
        ) -> Vec<(&'a str, &'a str)> {
            base.iter().copied().chain([extra]).collect()
        }
        let with = |extra| join(labels, extra);
        registry
            .counter(
                "apt_ingest_events_total",
                "perf-script event lines consumed into the profile",
                labels,
            )
            .add(self.events as u64);
        for (reason, n) in [
            ("unknown", self.skipped_unknown),
            ("unmapped", self.skipped_unmapped),
        ] {
            registry
                .counter(
                    "apt_ingest_skipped_total",
                    "Lines or records ingestion dropped, by reason",
                    &with(("reason", reason)),
                )
                .add(n as u64);
        }
        for (kind, n) in [
            ("lbr", self.profile.lbr_samples.len()),
            ("pebs", self.profile.pebs.len()),
        ] {
            registry
                .counter(
                    "apt_ingest_records_total",
                    "Profile records decoded, by kind",
                    &with(("kind", kind)),
                )
                .add(n as u64);
        }
    }
}

struct Cursor<'a> {
    line: usize,
    byte_offset: usize,
    text: &'a str,
}

impl Cursor<'_> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line,
            byte_offset: self.byte_offset,
            message: message.into(),
        }
    }

    fn context(&self) -> String {
        let head: String = self.text.chars().take(60).collect();
        if head.len() < self.text.len() {
            format!("`{head}…`")
        } else {
            format!("`{head}`")
        }
    }
}

/// Parses a whole dump. See the module docs for the accepted grammar.
pub fn parse_str(text: &str, remap: &dyn PcRemapper) -> Result<Ingested, ParseError> {
    match parse_reader(text.as_bytes(), remap) {
        Ok(out) => Ok(out),
        Err(IngestError::Parse(e)) => Err(e),
        // Reading from an in-memory `&[u8]` of valid UTF-8 cannot fail.
        Err(IngestError::Io(e)) => unreachable!("in-memory read failed: {e}"),
    }
}

/// Parses a dump incrementally from any [`BufRead`] source — a socket, a
/// pipe, a file — one line at a time, without materialising the whole
/// text in memory. Errors carry the same 1-based line number and byte
/// offset as [`parse_str`]; the two paths are line-for-line equivalent.
pub fn parse_reader<R: BufRead>(
    mut reader: R,
    remap: &dyn PcRemapper,
) -> Result<Ingested, IngestError> {
    apt_selfprof::prof_scope!("ingest/parse");
    let mut out = Ingested::default();
    let mut buf = String::new();
    let mut line = 0usize;
    let mut offset = 0usize;
    loop {
        buf.clear();
        let n = reader.read_line(&mut buf).map_err(IngestError::Io)?;
        if n == 0 {
            break;
        }
        line += 1;
        let text = buf.strip_suffix('\n').unwrap_or(&buf);
        let cur = Cursor {
            line,
            byte_offset: offset,
            text: text.trim_end_matches('\r'),
        };
        offset += n;
        parse_line(&cur, remap, &mut out)?;
    }
    Ok(out)
}

/// Reads and parses a dump file through the streaming path.
pub fn parse_file(path: impl AsRef<Path>, remap: &dyn PcRemapper) -> Result<Ingested, IngestError> {
    let file = std::fs::File::open(path).map_err(IngestError::Io)?;
    parse_reader(std::io::BufReader::new(file), remap)
}

fn parse_line(
    cur: &Cursor<'_>,
    remap: &dyn PcRemapper,
    out: &mut Ingested,
) -> Result<(), ParseError> {
    let line = cur.text;
    if line.trim().is_empty() {
        return Ok(());
    }
    if let Some(rest) = line.strip_prefix("# stats:") {
        out.stats = Some(parse_stats(cur, rest)?);
        return Ok(());
    }
    if let Some(rest) = line.strip_prefix("# hintgen:") {
        let v = rest.trim();
        out.generation =
            Some(v.parse().map_err(|_| {
                cur.err(format!("hintgen header has non-numeric generation `{v}`"))
            })?);
        return Ok(());
    }
    if let Some(rest) = line.strip_prefix("# pf-outcome:") {
        let (pc, o) = parse_pf_outcome(cur, rest)?;
        out.outcomes.insert(pc, o);
        return Ok(());
    }
    if line.starts_with('#') {
        return Ok(()); // Comment / header.
    }

    // Event framing: `comm pid [cpu] TIME: EVENT: payload…`.
    let tokens: Vec<&str> = line.split_whitespace().collect();
    if tokens.len() < 5 {
        return Err(cur.err(format!(
            "truncated event line: expected `comm pid [cpu] time: event: …`, got {}",
            cur.context()
        )));
    }
    let cycle = parse_timestamp(cur, tokens[3])?;
    let Some(event) = tokens[4].strip_suffix(':') else {
        return Err(cur.err(format!(
            "malformed event field `{}` (missing trailing `:`)",
            tokens[4]
        )));
    };
    let payload = &tokens[5..];

    if event.contains("mem-loads") {
        parse_mem_loads(cur, cycle, payload, remap, out)?;
        out.events += 1;
    } else if event.contains("branch-stack") || event.contains("branches") {
        parse_branch_stack(cur, cycle, payload, remap, out)?;
        out.events += 1;
    } else {
        out.skipped_unknown += 1;
    }
    Ok(())
}

fn parse_stats(cur: &Cursor<'_>, rest: &str) -> Result<PerfStats, ParseError> {
    let mut stats = PerfStats::default();
    for kv in rest.split_whitespace() {
        let Some((key, value)) = kv.split_once('=') else {
            return Err(cur.err(format!("malformed stats field `{kv}` (expected key=value)")));
        };
        let value: u64 = value.parse().map_err(|_| {
            cur.err(format!(
                "stats field `{key}` has non-numeric value `{value}`"
            ))
        })?;
        match key {
            "instructions" => stats.instructions = value,
            "cycles" => stats.cycles = value,
            "branches" => stats.branches = value,
            "taken_branches" => stats.taken_branches = value,
            _ => {} // Forward compatibility: ignore unknown counters.
        }
    }
    Ok(stats)
}

/// `# pf-outcome:` payload — `pc=0xHEX` then the nine outcome counters
/// as `key=value` pairs, in any order; unknown keys are ignored for
/// forward compatibility (same policy as `# stats:`).
fn parse_pf_outcome(cur: &Cursor<'_>, rest: &str) -> Result<(u64, PcOutcomes), ParseError> {
    let mut pc = None;
    let mut o = PcOutcomes::default();
    for kv in rest.split_whitespace() {
        let Some((key, value)) = kv.split_once('=') else {
            return Err(cur.err(format!(
                "malformed pf-outcome field `{kv}` (expected key=value)"
            )));
        };
        if key == "pc" {
            pc = Some(parse_pc(cur, value)?);
            continue;
        }
        let value: u64 = value.parse().map_err(|_| {
            cur.err(format!(
                "pf-outcome field `{key}` has non-numeric value `{value}`"
            ))
        })?;
        match key {
            "issued" => o.issued = value,
            "timely" => o.timely = value,
            "late" => o.late = value,
            "early" => o.early = value,
            "useless" => o.useless = value,
            "redundant" => o.redundant = value,
            "dropped" => o.dropped = value,
            "slack" => o.timely_slack_cycles = value,
            "headstart" => o.late_head_start_cycles = value,
            _ => {} // Forward compatibility: ignore unknown counters.
        }
    }
    let pc = pc.ok_or_else(|| cur.err("pf-outcome record is missing its pc= field"))?;
    Ok((pc, o))
}

/// `sec.usec` at the 1 MHz fiction: `cycle = sec × 10⁶ + usec`.
fn parse_timestamp(cur: &Cursor<'_>, tok: &str) -> Result<u64, ParseError> {
    let bad = || {
        cur.err(format!(
            "malformed timestamp `{tok}` (expected `sec.usec:`)"
        ))
    };
    let t = tok.strip_suffix(':').ok_or_else(bad)?;
    let (sec, usec) = t.split_once('.').ok_or_else(bad)?;
    if usec.len() != 6 {
        return Err(bad());
    }
    let sec: u64 = sec.parse().map_err(|_| bad())?;
    let usec: u64 = usec.parse().map_err(|_| bad())?;
    Ok(sec * 1_000_000 + usec)
}

/// Hex instruction pointer, `0x` prefix optional (`perf` prints bare hex).
fn parse_pc(cur: &Cursor<'_>, tok: &str) -> Result<u64, ParseError> {
    let digits = tok
        .strip_prefix("0x")
        .or_else(|| tok.strip_prefix("0X"))
        .unwrap_or(tok);
    u64::from_str_radix(digits, 16)
        .map_err(|_| cur.err(format!("malformed instruction pointer `{tok}`")))
}

/// `lvl:` → [`Level`]. Perf's `data_src` naming varies across kernels;
/// unknown names fall back to classifying by the sampled load weight
/// (latency in cycles), the same signal `ldlat` filters on.
fn parse_level(name: &str, weight: u64) -> Level {
    match name {
        "L1" => Level::L1,
        "L2" => Level::L2,
        "L3" | "LLC" => Level::Llc,
        "RAM" | "DRAM" | "LocRAM" | "RemRAM" => Level::Dram,
        _ => {
            if weight >= 80 {
                Level::Dram
            } else if weight >= 30 {
                Level::Llc
            } else if weight >= 10 {
                Level::L2
            } else {
                Level::L1
            }
        }
    }
}

/// Payload: `IP weight: N lvl: LVL`.
fn parse_mem_loads(
    cur: &Cursor<'_>,
    cycle: u64,
    payload: &[&str],
    remap: &dyn PcRemapper,
    out: &mut Ingested,
) -> Result<(), ParseError> {
    let [ip, w_key, w, l_key, lvl] = payload else {
        return Err(cur.err(format!(
            "truncated mem-loads record: expected `IP weight: N lvl: LVL`, got {} field(s) in {}",
            payload.len(),
            cur.context()
        )));
    };
    if *w_key != "weight:" || *l_key != "lvl:" {
        return Err(cur.err(format!(
            "malformed mem-loads record: expected `weight:`/`lvl:` markers, got {}",
            cur.context()
        )));
    }
    let raw_pc = parse_pc(cur, ip)?;
    let weight: u64 = w
        .parse()
        .map_err(|_| cur.err(format!("malformed mem-loads weight `{w}`")))?;
    let served = parse_level(lvl, weight);
    match remap.map_pc(raw_pc) {
        Some(pc) => out.profile.pebs.push(PebsRecord { pc, served, cycle }),
        None => out.skipped_unmapped += 1,
    }
    Ok(())
}

/// Payload: brstack entries newest-first, `from/to/mispred/in_tx/abort/
/// cycles` (6+ fields, perf ≥ 4.10) or the compact `from/to/cycles`
/// (3 fields). The cycles field is the delta to the next-older entry;
/// `-` means unknown. The line timestamp is the newest entry's absolute
/// cycle; older entries reconstruct backwards.
fn parse_branch_stack(
    cur: &Cursor<'_>,
    cycle: u64,
    payload: &[&str],
    remap: &dyn PcRemapper,
    out: &mut Ingested,
) -> Result<(), ParseError> {
    // (from, to, delta-to-next-older), newest first.
    let mut newest_first: Vec<(u64, u64, u64)> = Vec::with_capacity(payload.len());
    for entry in payload {
        let fields: Vec<&str> = entry.split('/').collect();
        let (from, to, cyc) = match fields.as_slice() {
            [from, to, cyc] => (from, to, cyc),
            [from, to, _mispred, _in_tx, _abort, cyc, ..] => (from, to, cyc),
            _ => {
                return Err(cur.err(format!(
                    "malformed branch-stack entry `{entry}` (expected from/to/cyc or \
                     from/to/M/T/A/cyc)"
                )));
            }
        };
        let delta = if *cyc == "-" {
            0
        } else {
            cyc.parse().map_err(|_| {
                cur.err(format!(
                    "malformed branch-stack cycle count `{cyc}` in `{entry}`"
                ))
            })?
        };
        newest_first.push((parse_pc(cur, from)?, parse_pc(cur, to)?, delta));
    }

    // Absolute cycles: newest = line timestamp, each delta steps back.
    let mut abs = cycle;
    let mut sample: Vec<LbrEntry> = Vec::with_capacity(newest_first.len());
    // The oldest (last printed) entry's own delta is unused by design.
    for (i, &(from, to, _)) in newest_first.iter().enumerate() {
        if i > 0 {
            // The *previous* (newer) entry's delta spans to this one.
            abs = abs.saturating_sub(newest_first[i - 1].2);
        }
        match (remap.map_pc(from), remap.map_pc(to)) {
            (Some(f), Some(t)) => sample.push(LbrEntry {
                from: f,
                to: t,
                cycle: abs,
            }),
            _ => out.skipped_unmapped += 1,
        }
    }
    sample.reverse(); // Analysis expects oldest-first.
    out.profile.lbr_samples.push(sample);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::remap::{IdentityRemap, OffsetRemap};
    use apt_lir::Pc;

    const CLEAN: &str = "\
# apt-get perf script v1
# stats: instructions=81236 cycles=312200 branches=4100 taken_branches=4000
aptgetsim     0 [000]     0.000105: cpu/mem-loads,ldlat=30/P: 0x24 weight: 120 lvl: RAM
aptgetsim     0 [000]     0.000112: cpu/branch-stack/: 0x88/0x80/P/-/-/12 0x88/0x80/P/-/-/0
";

    #[test]
    fn parses_a_clean_dump() {
        let r = parse_str(CLEAN, &IdentityRemap).expect("clean dump parses");
        let stats = r.stats.expect("stats header present");
        assert_eq!(stats.instructions, 81236);
        assert_eq!(stats.taken_branches, 4000);
        assert_eq!(r.events, 2);
        assert_eq!(r.skipped_unknown, 0);
        assert_eq!(r.profile.pebs.len(), 1);
        assert_eq!(r.profile.pebs[0].pc, Pc(0x24));
        assert_eq!(r.profile.pebs[0].cycle, 105);
        assert_eq!(r.profile.pebs[0].served, apt_mem::Level::Dram);
        // Newest at cycle 112, delta 12 back to the older entry; stored
        // oldest-first.
        assert_eq!(
            r.profile.lbr_samples,
            vec![vec![
                LbrEntry {
                    from: Pc(0x88),
                    to: Pc(0x80),
                    cycle: 100,
                },
                LbrEntry {
                    from: Pc(0x88),
                    to: Pc(0x80),
                    cycle: 112,
                },
            ]]
        );
    }

    #[test]
    fn unknown_events_are_skipped_and_counted() {
        let text = format!(
            "{CLEAN}swapper     0 [001]     0.000200: cycles: ffffffff81000000 [unknown]\n"
        );
        let r = parse_str(&text, &IdentityRemap).unwrap();
        assert_eq!(r.skipped_unknown, 1);
        assert_eq!(r.events, 2);
    }

    #[test]
    fn export_metrics_counts_events_and_skips() {
        let text = format!(
            "{CLEAN}swapper     0 [001]     0.000200: cycles: ffffffff81000000 [unknown]\n"
        );
        let r = parse_str(&text, &IdentityRemap).unwrap();
        let registry = apt_metrics::Registry::new();
        let labels = [("source", "test")];
        r.export_metrics(&registry, &labels);
        assert_eq!(
            registry.counter_value("apt_ingest_events_total", &labels),
            Some(2)
        );
        assert_eq!(
            registry.counter_value(
                "apt_ingest_skipped_total",
                &[("source", "test"), ("reason", "unknown")]
            ),
            Some(1)
        );
        assert_eq!(
            registry.counter_value(
                "apt_ingest_records_total",
                &[("source", "test"), ("kind", "pebs")]
            ),
            Some(1)
        );
        assert_eq!(
            registry.counter_value(
                "apt_ingest_records_total",
                &[("source", "test"), ("kind", "lbr")]
            ),
            Some(1)
        );
    }

    #[test]
    fn truncated_mem_loads_is_an_error_with_location() {
        let text = "aptgetsim 0 [000] 0.000105: cpu/mem-loads,ldlat=30/P: 0x24 weight:";
        let e = parse_str(text, &IdentityRemap).unwrap_err();
        assert_eq!(e.line, 1);
        assert_eq!(e.byte_offset, 0);
        assert!(e.message.contains("truncated mem-loads"), "{e}");
    }

    #[test]
    fn error_locations_are_exact() {
        let text = format!("{CLEAN}aptgetsim 0 [000] 0.000200: cpu/branch-stack/: 0x88/0x80\n");
        let e = parse_str(&text, &IdentityRemap).unwrap_err();
        assert_eq!(e.line, 5);
        assert_eq!(e.byte_offset, CLEAN.len());
        assert!(e.message.contains("branch-stack entry"), "{e}");
    }

    #[test]
    fn compact_three_field_brstack_entries_parse() {
        let text = "aptgetsim 0 [000] 0.000050: cpu/branch-stack/: 0x88/0x80/7 0x88/0x80/-\n";
        let r = parse_str(text, &IdentityRemap).unwrap();
        let s = &r.profile.lbr_samples[0];
        assert_eq!(s.len(), 2);
        assert_eq!(s[1].cycle, 50);
        assert_eq!(s[0].cycle, 43);
    }

    #[test]
    fn empty_branch_stack_is_preserved() {
        let text = "aptgetsim 0 [000] 0.000050: cpu/branch-stack/:\n";
        let r = parse_str(text, &IdentityRemap).unwrap();
        assert_eq!(r.profile.lbr_samples, vec![Vec::<LbrEntry>::new()]);
    }

    #[test]
    fn remapper_drops_foreign_addresses() {
        let text = "\
aptgetsim 0 [000] 0.000105: cpu/mem-loads,ldlat=30/P: 0x5024 weight: 120 lvl: RAM
aptgetsim 0 [000] 0.000200: cpu/mem-loads,ldlat=30/P: 0x24 weight: 120 lvl: RAM
";
        let r = parse_str(text, &OffsetRemap { base: 0x5000 }).unwrap();
        // 0x5024 − 0x5000 = 0x24 maps; the bare 0x24 is below the base.
        assert_eq!(r.profile.pebs.len(), 1);
        assert_eq!(r.profile.pebs[0].pc, Pc(0x24));
        assert_eq!(r.skipped_unmapped, 1);
    }

    #[test]
    fn unknown_level_names_classify_by_weight() {
        assert_eq!(parse_level("N/A", 200), Level::Dram);
        assert_eq!(parse_level("N/A", 40), Level::Llc);
        assert_eq!(parse_level("N/A", 12), Level::L2);
        assert_eq!(parse_level("N/A", 3), Level::L1);
        assert_eq!(parse_level("LFB", 250), Level::Dram);
    }

    /// A [`BufRead`] that hands out one byte per `fill_buf` call: the
    /// worst-case chunking a socket could produce.
    struct TrickleReader<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl std::io::Read for TrickleReader<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.pos >= self.bytes.len() || buf.is_empty() {
                return Ok(0);
            }
            buf[0] = self.bytes[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    impl BufRead for TrickleReader<'_> {
        fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
            Ok(&self.bytes[self.pos..(self.pos + 1).min(self.bytes.len())])
        }
        fn consume(&mut self, amt: usize) {
            self.pos += amt;
        }
    }

    #[test]
    fn streaming_path_matches_parse_str() {
        let text = format!(
            "{CLEAN}swapper     0 [001]     0.000200: cycles: ffffffff81000000 [unknown]\r\n\
             aptgetsim 0 [000] 0.000250: cpu/branch-stack/: 0x88/0x80/7 0x88/0x80/-\n"
        );
        let whole = parse_str(&text, &IdentityRemap).expect("parses");
        let trickled = parse_reader(
            TrickleReader {
                bytes: text.as_bytes(),
                pos: 0,
            },
            &IdentityRemap,
        )
        .expect("streams");
        assert_eq!(trickled.events, whole.events);
        assert_eq!(trickled.skipped_unknown, whole.skipped_unknown);
        assert_eq!(trickled.profile.pebs, whole.profile.pebs);
        assert_eq!(trickled.profile.lbr_samples, whole.profile.lbr_samples);
        assert_eq!(trickled.stats, whole.stats);
    }

    #[test]
    fn streaming_errors_keep_line_and_byte_offsets() {
        let text = format!("{CLEAN}aptgetsim 0 [000] 0.000200: cpu/branch-stack/: 0x88/0x80\n");
        let whole = parse_str(&text, &IdentityRemap).unwrap_err();
        let streamed = match parse_reader(
            TrickleReader {
                bytes: text.as_bytes(),
                pos: 0,
            },
            &IdentityRemap,
        ) {
            Err(IngestError::Parse(e)) => e,
            other => panic!("expected a parse error, got {other:?}"),
        };
        assert_eq!(streamed, whole);
        assert_eq!(streamed.line, 5);
        assert_eq!(streamed.byte_offset, CLEAN.len());
    }

    #[test]
    fn streaming_surfaces_io_errors() {
        struct FailingReader;
        impl std::io::Read for FailingReader {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::new(
                    std::io::ErrorKind::ConnectionReset,
                    "peer gone",
                ))
            }
        }
        impl BufRead for FailingReader {
            fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
                Err(std::io::Error::new(
                    std::io::ErrorKind::ConnectionReset,
                    "peer gone",
                ))
            }
            fn consume(&mut self, _: usize) {}
        }
        match parse_reader(FailingReader, &IdentityRemap) {
            Err(IngestError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::ConnectionReset);
            }
            other => panic!("expected an I/O error, got {other:?}"),
        }
    }

    #[test]
    fn malformed_timestamp_is_an_error() {
        let text = "aptgetsim 0 [000] abc: cpu/branch-stack/: 0x8/0x4/1\n";
        let e = parse_str(text, &IdentityRemap).unwrap_err();
        assert!(e.message.contains("timestamp"), "{e}");
    }

    #[test]
    fn stats_header_rejects_garbage_values() {
        let e = parse_str("# stats: instructions=lots\n", &IdentityRemap).unwrap_err();
        assert!(e.message.contains("non-numeric"), "{e}");
    }

    #[test]
    fn hintgen_and_pf_outcome_headers_are_decoded() {
        let text = format!(
            "{CLEAN}# hintgen: 2\n\
             # pf-outcome: pc=0x400100 issued=10 timely=6 late=2 early=1 useless=1 \
             redundant=0 dropped=0 slack=480 headstart=90\n"
        );
        let r = parse_str(&text, &IdentityRemap).expect("tagged dump parses");
        assert_eq!(r.generation, Some(2));
        assert_eq!(r.events, 2, "tags must not disturb event decoding");
        let o = r.outcomes.get(&0x400100).expect("outcome record present");
        assert_eq!(o.issued, 10);
        assert_eq!(o.timely, 6);
        assert_eq!(o.late, 2);
        assert_eq!(o.early, 1);
        assert_eq!(o.useless, 1);
        assert_eq!(o.timely_slack_cycles, 480);
        assert_eq!(o.late_head_start_cycles, 90);
    }

    #[test]
    fn untagged_dumps_report_no_generation_or_outcomes() {
        let r = parse_str(CLEAN, &IdentityRemap).unwrap();
        assert_eq!(r.generation, None);
        assert!(r.outcomes.is_empty());
    }

    #[test]
    fn malformed_outcome_headers_are_located_errors() {
        let e = parse_str("# hintgen: soon\n", &IdentityRemap).unwrap_err();
        assert!(e.message.contains("non-numeric generation"), "{e}");
        let e = parse_str("# pf-outcome: issued=1\n", &IdentityRemap).unwrap_err();
        assert!(e.message.contains("missing its pc="), "{e}");
        let e = parse_str("# pf-outcome: pc=0x10 timely=many\n", &IdentityRemap).unwrap_err();
        assert!(e.message.contains("non-numeric value"), "{e}");
    }

    #[test]
    fn tagged_export_round_trips_through_the_parser() {
        use apt_trace::OutcomeTable;
        let mut table = OutcomeTable::default();
        table.per_pc.insert(
            0x88,
            PcOutcomes {
                issued: 4,
                timely: 3,
                late: 1,
                timely_slack_cycles: 33,
                late_head_start_cycles: 7,
                ..PcOutcomes::default()
            },
        );
        let profile = apt_cpu::ProfileData::default();
        let stats = apt_cpu::PerfStats::default();
        let dump = apt_cpu::perfscript::export_perf_script_tagged(&profile, &stats, 7, &table);
        let r = parse_str(&dump, &IdentityRemap).expect("tagged export parses");
        assert_eq!(r.generation, Some(7));
        assert_eq!(r.outcomes.get(&0x88), table.per_pc.get(&0x88));
    }
}
