//! Profile ingestion from `perf script` dumps, the cross-run profile
//! database, and drift detection.
//!
//! The paper's deployment model (§3.6) is AutoFDO-style: profiles are
//! collected on production machines with `perf record`, shipped as text
//! dumps, and consumed by the compiler long after — and possibly far
//! away from — the run that produced them. This crate is that boundary:
//!
//! 1. [`parser`] — a line-oriented parser for `perf script` textual
//!    output covering the two event kinds APT-GET needs: PEBS
//!    memory-latency samples (`mem-loads`, weight + serving level) and
//!    LBR branch stacks (`branch-stack`, 32-deep from/to/cycles
//!    triples). Unknown event kinds are skipped; truncated records are
//!    hard errors with line and byte-offset. Raw instruction pointers
//!    pass through a pluggable [`remap::PcRemapper`] (identity, ASLR
//!    slide, or symbol table) before decoding into the simulator's
//!    [`apt_cpu::PebsRecord`] / [`apt_cpu::LbrSample`] types.
//! 2. [`aggregate`] + [`db`] — per-epoch module-agnostic aggregates
//!    (per-PC miss counts, exact iteration-latency multisets, trip-count
//!    sums) in a versioned on-disk database (`APTDB1`). Aggregates merge
//!    by pure count addition, so the merge is associative, commutative
//!    and deterministic, and every `u64` round-trips the disk format
//!    exactly.
//! 3. [`drift`] — compares the newest epoch against the merged history:
//!    per-loop-branch total-variation distance between latency
//!    distributions and the resulting Eq. 1 distance delta, plus
//!    delinquency-share shifts. A stale profile is flagged before it
//!    mis-tunes prefetch distances.
//! 4. [`analyze`] — re-derives prefetch hints from an aggregate alone
//!    (no raw samples), sharing Eq. 1/Eq. 2 with the sample-driven path
//!    in `apt-profile` so the two pipelines cannot diverge on decisions.

pub mod aggregate;
pub mod analyze;
pub mod db;
pub mod drift;
pub mod parser;
pub mod remap;

pub use aggregate::{AggregateProfile, GenTag, TripAgg};
pub use analyze::analyze_aggregate;
pub use db::{Epoch, ProfileDb};
pub use drift::{detect_drift, BranchDrift, DriftConfig, DriftReport, LoadDrift};
pub use parser::{parse_file, parse_reader, parse_str, IngestError, Ingested, ParseError};
pub use remap::{IdentityRemap, OffsetRemap, PcRemapper, TableRemap};
