//! Profile drift detection: is the stored history still telling the
//! truth about this program?
//!
//! Stale profiles are the failure mode of every AutoFDO-style pipeline
//! (§3.6): input distributions shift, memory latencies change with
//! co-runners, and a prefetch distance derived from last month's epochs
//! quietly stops hiding the misses. The detector compares the **newest
//! epoch** against the **merged baseline** of every earlier epoch along
//! the two axes that actually feed the model:
//!
//! * **Latency distributions** (per loop-branch PC) — total-variation
//!   distance between the two distributions over a *common* binning
//!   (geometry derived from the union multiset, so neither side's
//!   outliers skew the comparison), plus the end-to-end signal: the
//!   relative change in the Eq. 1 prefetch distance each side implies.
//! * **Delinquency shares** (per load PC) — a load responsible for 5 %
//!   of misses in the baseline and 30 % today means the ranking itself
//!   has shifted.
//!
//! Either signal past its threshold marks the entry *stale*; a stale
//! entry is a re-profile prompt, not an error.

use apt_profile::{eq1_distance, latency_peaks, AnalysisConfig, LatencySketch};

use crate::aggregate::AggregateProfile;

/// Drift thresholds and the analysis tunables behind the Eq. 1 replay.
#[derive(Debug, Clone, Copy)]
pub struct DriftConfig {
    /// Bins for the common-geometry TV comparison.
    pub tv_bins: usize,
    /// Minimum observations on *both* sides before a branch is compared.
    pub min_observations: u64,
    /// TV distance at or above which a latency distribution is stale.
    pub tv_threshold: f64,
    /// Relative Eq. 1 distance change at or above which a branch is
    /// stale (|new − old| / old).
    pub distance_delta_threshold: f64,
    /// Absolute delinquency-share change at or above which a load is
    /// stale.
    pub share_delta_threshold: f64,
    /// Eq. 1 tunables (histogram bins, smoothing, SNR, DRAM hint).
    pub analysis: AnalysisConfig,
}

impl Default for DriftConfig {
    fn default() -> DriftConfig {
        DriftConfig {
            tv_bins: 64,
            min_observations: 16,
            tv_threshold: 0.35,
            distance_delta_threshold: 0.25,
            share_delta_threshold: 0.10,
            analysis: AnalysisConfig::default(),
        }
    }
}

/// Drift verdict for one loop-branch PC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BranchDrift {
    pub pc: u64,
    /// Total-variation distance in `[0, 1]` over the common binning.
    pub tv_distance: f64,
    /// Eq. 1 distance the baseline implies.
    pub baseline_distance: u64,
    /// Eq. 1 distance the newest epoch implies.
    pub current_distance: u64,
    /// `|current − baseline| / baseline`.
    pub distance_delta: f64,
    pub baseline_obs: u64,
    pub current_obs: u64,
    pub stale: bool,
}

/// Drift verdict for one delinquent-load PC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadDrift {
    pub pc: u64,
    /// Share of DRAM-served miss samples in the baseline.
    pub baseline_share: f64,
    /// Share in the newest epoch.
    pub current_share: f64,
    pub stale: bool,
}

/// The full drift report.
#[derive(Debug, Clone, Default)]
pub struct DriftReport {
    /// Label of the epoch under test.
    pub current_label: String,
    /// Epochs merged into the baseline.
    pub baseline_epochs: usize,
    /// Per-branch verdicts, most drifted first.
    pub branches: Vec<BranchDrift>,
    /// Per-load verdicts, most drifted first.
    pub loads: Vec<LoadDrift>,
}

impl DriftReport {
    /// True if any branch or load is flagged stale.
    pub fn any_stale(&self) -> bool {
        self.branches.iter().any(|b| b.stale) || self.loads.iter().any(|l| l.stale)
    }

    /// The largest per-branch TV distance (0.0 with no branches).
    pub fn max_tv_distance(&self) -> f64 {
        self.branches
            .iter()
            .map(|b| b.tv_distance)
            .fold(0.0, f64::max)
    }

    /// The largest per-branch Eq. 1 distance delta (0.0 with no branches).
    pub fn max_distance_delta(&self) -> f64 {
        self.branches
            .iter()
            .map(|b| b.distance_delta)
            .fold(0.0, f64::max)
    }

    /// The `drift --fail-threshold` gate: true when any branch's TV
    /// distance or Eq. 1 distance delta reaches `threshold`.
    pub fn exceeds(&self, threshold: f64) -> bool {
        self.branches
            .iter()
            .any(|b| b.tv_distance >= threshold || b.distance_delta >= threshold)
    }

    /// Exports drift summary gauges and comparison counters into
    /// `registry`.
    pub fn export_metrics(&self, registry: &apt_metrics::Registry, labels: &[(&str, &str)]) {
        if !registry.is_enabled() {
            return;
        }
        registry
            .counter(
                "apt_ingest_drift_branches_total",
                "Branches compared by drift detection",
                labels,
            )
            .add(self.branches.len() as u64);
        registry
            .counter(
                "apt_ingest_drift_loads_total",
                "Loads compared by drift detection",
                labels,
            )
            .add(self.loads.len() as u64);
        registry
            .counter(
                "apt_ingest_drift_stale_total",
                "Branches and loads flagged stale",
                labels,
            )
            .add(
                (self.branches.iter().filter(|b| b.stale).count()
                    + self.loads.iter().filter(|l| l.stale).count()) as u64,
            );
        registry
            .gauge(
                "apt_ingest_drift_max_tv_distance",
                "Largest per-branch TV distance in the last drift report",
                labels,
            )
            .set(self.max_tv_distance());
        registry
            .gauge(
                "apt_ingest_drift_max_distance_delta",
                "Largest per-branch Eq. 1 distance delta in the last drift report",
                labels,
            )
            .set(self.max_distance_delta());
    }

    /// Human-readable rendering for logs and the CLI.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "drift report: epoch `{}` vs {} baseline epoch(s)\n",
            self.current_label, self.baseline_epochs
        ));
        out.push_str(&format!(
            "  verdict: {}\n",
            if self.any_stale() {
                "STALE — re-profile recommended"
            } else {
                "fresh"
            }
        ));
        for b in &self.branches {
            out.push_str(&format!(
                "  branch {:#x}: TV {:.3}, distance {} → {} (Δ {:.0}%), obs {}/{}{}\n",
                b.pc,
                b.tv_distance,
                b.baseline_distance,
                b.current_distance,
                b.distance_delta * 100.0,
                b.baseline_obs,
                b.current_obs,
                if b.stale { "  [STALE]" } else { "" }
            ));
        }
        for l in &self.loads {
            out.push_str(&format!(
                "  load {:#x}: miss share {:.1}% → {:.1}%{}\n",
                l.pc,
                l.baseline_share * 100.0,
                l.current_share * 100.0,
                if l.stale { "  [STALE]" } else { "" }
            ));
        }
        out
    }
}

/// Bins a sketch with an externally fixed geometry (for the common-grid
/// TV comparison).
fn binned(sketch: &LatencySketch, min: u64, bin_width: u64, nbins: usize) -> Vec<f64> {
    let mut counts = vec![0.0; nbins];
    for (v, c) in sketch.entries() {
        let b = (((v.saturating_sub(min)) / bin_width) as usize).min(nbins - 1);
        counts[b] += c as f64;
    }
    counts
}

/// Total-variation distance between two binned distributions.
fn tv_distance(a: &[f64], b: &[f64]) -> f64 {
    let (ta, tb): (f64, f64) = (a.iter().sum(), b.iter().sum());
    if ta == 0.0 || tb == 0.0 {
        return 0.0;
    }
    0.5 * a
        .iter()
        .zip(b)
        .map(|(x, y)| (x / ta - y / tb).abs())
        .sum::<f64>()
}

/// The Eq. 1 distance a sketch implies (histogram → smoothing → CWT
/// peaks → Eq. 1), exactly as the optimiser would derive it.
fn implied_distance(sketch: &LatencySketch, cfg: &AnalysisConfig) -> u64 {
    sketch
        .to_histogram(cfg.hist_bins, 0.995)
        .map(|h| {
            let peaks = latency_peaks(&h.smoothed(cfg.smoothing), cfg);
            eq1_distance(&peaks, cfg).2
        })
        .unwrap_or(1)
}

/// Compares `current` (the newest epoch) against `baseline` (the merged
/// history). See the module docs for the semantics.
pub fn detect_drift(
    baseline: &AggregateProfile,
    current: &AggregateProfile,
    current_label: &str,
    baseline_epochs: usize,
    cfg: &DriftConfig,
) -> DriftReport {
    let mut report = DriftReport {
        current_label: current_label.to_string(),
        baseline_epochs,
        ..Default::default()
    };

    // Branch latency drift: every branch PC with enough evidence on
    // both sides.
    for (pc, base_sketch) in &baseline.iter_lat {
        let Some(cur_sketch) = current.iter_lat.get(pc) else {
            continue;
        };
        let (b_obs, c_obs) = (base_sketch.total(), cur_sketch.total());
        if b_obs < cfg.min_observations || c_obs < cfg.min_observations {
            continue;
        }
        // Common binning from the union multiset: both sides measured
        // on the same grid, tail clipped once for both.
        let mut union = base_sketch.clone();
        union.merge(cur_sketch);
        let Some(grid) = union.to_histogram(cfg.tv_bins, 0.995) else {
            continue;
        };
        let nbins = grid.counts.len();
        let tv = tv_distance(
            &binned(base_sketch, grid.min, grid.bin_width, nbins),
            &binned(cur_sketch, grid.min, grid.bin_width, nbins),
        );
        let bd = implied_distance(base_sketch, &cfg.analysis);
        let cd = implied_distance(cur_sketch, &cfg.analysis);
        let delta = (cd as f64 - bd as f64).abs() / bd.max(1) as f64;
        report.branches.push(BranchDrift {
            pc: *pc,
            tv_distance: tv,
            baseline_distance: bd,
            current_distance: cd,
            distance_delta: delta,
            baseline_obs: b_obs,
            current_obs: c_obs,
            stale: tv >= cfg.tv_threshold || delta >= cfg.distance_delta_threshold,
        });
    }
    report.branches.sort_by(|a, b| {
        b.tv_distance
            .partial_cmp(&a.tv_distance)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.pc.cmp(&b.pc))
    });

    // Delinquency-share drift over DRAM-served misses.
    let base_total: u64 = baseline.pc_misses.values().map(|c| c[3]).sum();
    let cur_total: u64 = current.pc_misses.values().map(|c| c[3]).sum();
    if base_total > 0 && cur_total > 0 {
        let pcs: std::collections::BTreeSet<u64> = baseline
            .pc_misses
            .keys()
            .chain(current.pc_misses.keys())
            .copied()
            .collect();
        for pc in pcs {
            let bs = baseline.dram_misses(pc) as f64 / base_total as f64;
            let cs = current.dram_misses(pc) as f64 / cur_total as f64;
            // Only loads that matter on at least one side.
            if bs < 0.02 && cs < 0.02 {
                continue;
            }
            report.loads.push(LoadDrift {
                pc,
                baseline_share: bs,
                current_share: cs,
                stale: (cs - bs).abs() >= cfg.share_delta_threshold,
            });
        }
    }
    report.loads.sort_by(|a, b| {
        let da = (a.current_share - a.baseline_share).abs();
        let db = (b.current_share - b.baseline_share).abs();
        db.partial_cmp(&da)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.pc.cmp(&b.pc))
    });
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An aggregate whose branch `pc` saw `n` iteration latencies spread
    /// tightly around `center`, and whose load 0x24 has all the misses.
    fn agg_with_latencies(pc: u64, center: u64, n: u64) -> AggregateProfile {
        let mut agg = AggregateProfile::default();
        let sketch = agg.iter_lat.entry(pc).or_default();
        for i in 0..n {
            sketch.record(center + (i % 5));
        }
        agg.pc_misses.insert(0x24, [0, 0, 0, n]);
        agg.instructions = n * 1000;
        agg
    }

    #[test]
    fn identical_epochs_are_fresh() {
        let a = agg_with_latencies(0x88, 100, 200);
        let r = detect_drift(&a, &a.clone(), "same", 1, &DriftConfig::default());
        assert!(!r.any_stale(), "{}", r.render());
        assert_eq!(r.branches.len(), 1);
        assert!(r.branches[0].tv_distance < 1e-9);
    }

    #[test]
    fn shifted_latency_distribution_is_flagged_stale() {
        // Baseline iterations ~40 cycles; the new epoch jumps to ~400
        // (the backing store fell out of cache): both the TV distance
        // and the implied Eq. 1 distance move.
        let base = agg_with_latencies(0x88, 40, 300);
        let cur = agg_with_latencies(0x88, 400, 300);
        let r = detect_drift(&base, &cur, "shifted", 3, &DriftConfig::default());
        assert!(r.any_stale(), "{}", r.render());
        let b = &r.branches[0];
        assert!(b.stale);
        assert!(b.tv_distance > 0.9, "tv {}", b.tv_distance);
        assert!(r.render().contains("STALE"));
    }

    #[test]
    fn under_observed_branches_are_not_compared() {
        let base = agg_with_latencies(0x88, 40, 300);
        let cur = agg_with_latencies(0x88, 400, 4); // Too few samples.
        let r = detect_drift(&base, &cur, "sparse", 1, &DriftConfig::default());
        assert!(r.branches.is_empty());
    }

    #[test]
    fn delinquency_share_shift_is_flagged() {
        let mut base = agg_with_latencies(0x88, 40, 300);
        base.pc_misses.insert(0x24, [0, 0, 0, 90]);
        base.pc_misses.insert(0x48, [0, 0, 0, 10]);
        let mut cur = agg_with_latencies(0x88, 40, 300);
        cur.pc_misses.insert(0x24, [0, 0, 0, 30]);
        cur.pc_misses.insert(0x48, [0, 0, 0, 70]);
        let r = detect_drift(&base, &cur, "reranked", 1, &DriftConfig::default());
        assert!(r.loads.iter().any(|l| l.pc == 0x48 && l.stale));
        assert!(r.loads.iter().any(|l| l.pc == 0x24 && l.stale));
    }

    #[test]
    fn threshold_gate_and_maxima() {
        let base = agg_with_latencies(0x88, 40, 300);
        let cur = agg_with_latencies(0x88, 400, 300);
        let r = detect_drift(&base, &cur, "shifted", 1, &DriftConfig::default());
        let tv = r.max_tv_distance();
        assert!(tv > 0.9, "tv {tv}");
        assert!(r.exceeds(0.5));
        assert!(!r.exceeds(f64::max(tv, r.max_distance_delta()) + 0.01));
        // A fresh report exceeds nothing sensible.
        let fresh = detect_drift(&base, &base.clone(), "same", 1, &DriftConfig::default());
        assert!(!fresh.exceeds(0.5));
        assert_eq!(DriftReport::default().max_tv_distance(), 0.0);
        assert!(!DriftReport::default().exceeds(0.0_f64.max(1e-9)));
    }

    #[test]
    fn export_metrics_summarises_the_report() {
        let base = agg_with_latencies(0x88, 40, 300);
        let cur = agg_with_latencies(0x88, 400, 300);
        let r = detect_drift(&base, &cur, "shifted", 1, &DriftConfig::default());
        let registry = apt_metrics::Registry::new();
        let labels = [("workload", "BFS")];
        r.export_metrics(&registry, &labels);
        assert_eq!(
            registry.counter_value("apt_ingest_drift_branches_total", &labels),
            Some(r.branches.len() as u64)
        );
        let tv = registry
            .gauge_value("apt_ingest_drift_max_tv_distance", &labels)
            .unwrap();
        assert!((tv - r.max_tv_distance()).abs() < 1e-12);
        let stale = registry
            .counter_value("apt_ingest_drift_stale_total", &labels)
            .unwrap();
        assert!(stale >= 1);
    }

    #[test]
    fn tv_distance_bounds() {
        assert_eq!(tv_distance(&[1.0, 0.0], &[1.0, 0.0]), 0.0);
        assert!((tv_distance(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-12);
        assert_eq!(tv_distance(&[], &[]), 0.0);
    }
}
