//! The versioned on-disk profile database (`APTDB1` / `APTDB2`).
//!
//! One file holds the whole cross-run history as a sequence of labelled
//! epochs, each an [`AggregateProfile`]. The format follows the profile
//! cache's conventions (`APTPROF2` in `apt-bench`): an 8-byte magic, then
//! little-endian `u64` framing throughout, so every count round-trips
//! exactly. Corrupt or truncated files decode to `None` and are treated
//! as an empty database, never an error — the database accelerates and
//! informs, it is not a correctness dependency. Writes go through a
//! per-process temp file + rename, so concurrent ingests never tear an
//! epoch.
//!
//! **Versioning.** Feedback-free databases (no generation tags, no
//! prefetch-outcome records — everything written before the efficacy
//! loop existed, and every dump that skips the tags today) encode as
//! `APTDB1`, byte-for-byte the original layout. The moment any epoch
//! carries feedback, the file self-upgrades to `APTDB2`, which appends a
//! per-epoch feedback section (generation sentinel + per-PC outcome
//! counters). The choice is a pure function of content, so the bytes
//! stay deterministic regardless of write order or process.

use std::fs;
use std::path::{Path, PathBuf};

use apt_profile::LatencySketch;
use apt_trace::PcOutcomes;

use crate::aggregate::{AggregateProfile, GenTag, TripAgg};

/// Magic + format version; bump when the layout changes.
pub const MAGIC: &[u8; 8] = b"APTDB1\0\0";

/// v2 magic: v1 plus a per-epoch outcome-feedback section.
pub const MAGIC_V2: &[u8; 8] = b"APTDB2\0\0";

/// Generation sentinel for [`GenTag::Untagged`] in the v2 encoding.
const GEN_UNTAGGED: u64 = u64::MAX;
/// Generation sentinel for [`GenTag::Mixed`] in the v2 encoding.
const GEN_MIXED: u64 = u64::MAX - 1;

fn gen_to_u64(g: GenTag) -> u64 {
    match g {
        GenTag::Untagged => GEN_UNTAGGED,
        GenTag::Mixed => GEN_MIXED,
        GenTag::Gen(v) => v,
    }
}

fn gen_from_u64(v: u64) -> GenTag {
    match v {
        GEN_UNTAGGED => GenTag::Untagged,
        GEN_MIXED => GenTag::Mixed,
        v => GenTag::Gen(v),
    }
}

/// One ingested profile run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Epoch {
    /// Caller-chosen label (dump file name, date, host, …).
    pub label: String,
    /// The run's aggregate.
    pub agg: AggregateProfile,
}

/// The cross-run profile history.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileDb {
    /// Epochs in ingestion order (oldest first).
    pub epochs: Vec<Epoch>,
}

impl ProfileDb {
    /// An empty database.
    pub fn new() -> ProfileDb {
        ProfileDb::default()
    }

    /// Appends an epoch.
    pub fn push_epoch(&mut self, label: impl Into<String>, agg: AggregateProfile) {
        self.epochs.push(Epoch {
            label: label.into(),
            agg,
        });
    }

    /// The sample-count-weighted merge of every epoch — the baseline the
    /// optimiser and the drift detector consume.
    pub fn merged(&self) -> AggregateProfile {
        let mut out = AggregateProfile::default();
        for e in &self.epochs {
            out.merge(&e.agg);
        }
        out
    }

    /// Merge of every epoch except the last — the drift baseline.
    pub fn baseline(&self) -> AggregateProfile {
        let mut out = AggregateProfile::default();
        for e in &self.epochs[..self.epochs.len().saturating_sub(1)] {
            out.merge(&e.agg);
        }
        out
    }

    /// The default on-disk location: `$APT_PROFILE_DB` if set, else
    /// `target/apt-profile-db/profiles.aptdb` at the workspace root.
    pub fn default_path() -> PathBuf {
        if let Some(p) = std::env::var_os("APT_PROFILE_DB") {
            return PathBuf::from(p);
        }
        let root = std::env::var("CARGO_MANIFEST_DIR")
            .map(|d| PathBuf::from(d).join("../.."))
            .unwrap_or_else(|_| PathBuf::from("."));
        root.join("target/apt-profile-db/profiles.aptdb")
    }

    /// Loads a database; a missing, corrupt or truncated file is an
    /// empty database.
    pub fn load_or_empty(path: impl AsRef<Path>) -> ProfileDb {
        fs::read(path)
            .ok()
            .and_then(|b| decode(&b))
            .unwrap_or_default()
    }

    /// Opens a database for read-write use: removes orphaned temp files a
    /// crashed writer left behind, then loads. Because [`ProfileDb::save`]
    /// goes through temp-file + rename, a crash mid-write can only orphan
    /// a `<stem>.tmp.<pid>` sibling — the database file itself is either
    /// the old bytes or the new bytes, never torn. Only call this from a
    /// path that owns writes to `path` (a concurrent *live* writer's temp
    /// file would be swept too, failing that writer's rename).
    pub fn open(path: impl AsRef<Path>) -> ProfileDb {
        ProfileDb::cleanup_orphans(&path);
        ProfileDb::load_or_empty(path)
    }

    /// Removes `<stem>.tmp.<pid>` siblings of `path` (the temp names
    /// [`ProfileDb::save`] writes through) and returns how many were
    /// removed.
    pub fn cleanup_orphans(path: impl AsRef<Path>) -> usize {
        let path = path.as_ref();
        let Some(stem) = path.file_stem() else {
            return 0;
        };
        let dir = match path.parent() {
            Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
            _ => PathBuf::from("."),
        };
        let prefix = format!("{}.tmp.", stem.to_string_lossy());
        let Ok(entries) = fs::read_dir(&dir) else {
            return 0;
        };
        let mut removed = 0;
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let Some(pid) = name.strip_prefix(&prefix) else {
                continue;
            };
            if !pid.is_empty()
                && pid.bytes().all(|b| b.is_ascii_digit())
                && fs::remove_file(entry.path()).is_ok()
            {
                removed += 1;
            }
        }
        removed
    }

    /// Exports database-shape gauges (epoch count, merged sample volume)
    /// into `registry`.
    pub fn export_metrics(&self, registry: &apt_metrics::Registry, labels: &[(&str, &str)]) {
        if !registry.is_enabled() {
            return;
        }
        registry
            .gauge(
                "apt_ingest_db_epochs",
                "Epochs currently held by the profile database",
                labels,
            )
            .set(self.epochs.len() as f64);
        let merged = self.merged();
        registry
            .gauge(
                "apt_ingest_db_lbr_snapshots",
                "LBR snapshots across all epochs",
                labels,
            )
            .set(merged.lbr_snapshots as f64);
        registry
            .gauge(
                "apt_ingest_db_pebs_samples",
                "PEBS samples across all epochs",
                labels,
            )
            .set(merged.pebs_samples as f64);
        registry
            .gauge(
                "apt_ingest_db_tracked_branches",
                "Distinct branch PCs with latency sketches across all epochs",
                labels,
            )
            .set(merged.iter_lat.len() as f64);
    }

    /// Persists the database atomically (temp file + rename).
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        let bytes = encode(self);
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        fs::write(&tmp, &bytes)?;
        fs::rename(&tmp, path)
    }
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Serialises the database: `APTDB1` while no epoch carries outcome
/// feedback, `APTDB2` (with per-epoch feedback sections) otherwise.
pub fn encode(db: &ProfileDb) -> Vec<u8> {
    let v2 = db.epochs.iter().any(|e| e.agg.has_feedback());
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(if v2 { MAGIC_V2 } else { MAGIC });
    put_u64(&mut out, db.epochs.len() as u64);
    for e in &db.epochs {
        put_u64(&mut out, e.label.len() as u64);
        out.extend_from_slice(e.label.as_bytes());
        let a = &e.agg;
        for v in [
            a.instructions,
            a.cycles,
            a.branches,
            a.taken_branches,
            a.lbr_snapshots,
            a.pebs_samples,
        ] {
            put_u64(&mut out, v);
        }
        put_u64(&mut out, a.pc_misses.len() as u64);
        for (pc, counts) in &a.pc_misses {
            put_u64(&mut out, *pc);
            for c in counts {
                put_u64(&mut out, *c);
            }
        }
        put_u64(&mut out, a.iter_lat.len() as u64);
        for (pc, sketch) in &a.iter_lat {
            put_u64(&mut out, *pc);
            put_u64(&mut out, sketch.distinct() as u64);
            for (v, c) in sketch.entries() {
                put_u64(&mut out, v);
                put_u64(&mut out, c);
            }
        }
        put_u64(&mut out, a.trips.len() as u64);
        for (pc, t) in &a.trips {
            put_u64(&mut out, *pc);
            put_u64(&mut out, t.total);
            put_u64(&mut out, t.total_sq);
            put_u64(&mut out, t.runs);
            put_u64(&mut out, t.saturated_runs);
        }
        if v2 {
            put_u64(&mut out, gen_to_u64(a.gen));
            put_u64(&mut out, a.pf_outcomes.len() as u64);
            for (pc, o) in &a.pf_outcomes {
                put_u64(&mut out, *pc);
                for v in [
                    o.issued,
                    o.timely,
                    o.late,
                    o.early,
                    o.useless,
                    o.redundant,
                    o.dropped,
                    o.timely_slack_cycles,
                    o.late_head_start_cycles,
                ] {
                    put_u64(&mut out, v);
                }
            }
        }
    }
    out
}

/// Decodes a database; `None` on any corruption (wrong magic, truncated
/// framing, oversized lengths, trailing garbage).
pub fn decode(bytes: &[u8]) -> Option<ProfileDb> {
    let mut pos = 0usize;
    let take = |pos: &mut usize| -> Option<u64> {
        let end = pos.checked_add(8)?;
        let v = u64::from_le_bytes(bytes.get(*pos..end)?.try_into().ok()?);
        *pos = end;
        Some(v)
    };
    // Sanity bound shared by every length field: a corrupt count must
    // not trigger a giant allocation.
    let bounded = |n: u64| -> Option<usize> {
        if n > bytes.len() as u64 {
            None
        } else {
            Some(n as usize)
        }
    };

    let v2 = match bytes.get(..8)? {
        m if m == MAGIC => false,
        m if m == MAGIC_V2 => true,
        _ => return None,
    };
    pos += 8;

    let n_epochs = bounded(take(&mut pos)?)?;
    let mut db = ProfileDb::new();
    for _ in 0..n_epochs {
        let label_len = bounded(take(&mut pos)?)?;
        let end = pos.checked_add(label_len)?;
        let label = std::str::from_utf8(bytes.get(pos..end)?).ok()?.to_string();
        pos = end;

        let mut agg = AggregateProfile {
            instructions: take(&mut pos)?,
            cycles: take(&mut pos)?,
            branches: take(&mut pos)?,
            taken_branches: take(&mut pos)?,
            lbr_snapshots: take(&mut pos)?,
            pebs_samples: take(&mut pos)?,
            ..AggregateProfile::default()
        };
        let n_misses = bounded(take(&mut pos)?)?;
        for _ in 0..n_misses {
            let pc = take(&mut pos)?;
            let mut counts = [0u64; 4];
            for c in &mut counts {
                *c = take(&mut pos)?;
            }
            agg.pc_misses.insert(pc, counts);
        }
        let n_lat = bounded(take(&mut pos)?)?;
        for _ in 0..n_lat {
            let pc = take(&mut pos)?;
            let distinct = bounded(take(&mut pos)?)?;
            let mut sketch = LatencySketch::new();
            for _ in 0..distinct {
                let v = take(&mut pos)?;
                let c = take(&mut pos)?;
                sketch.record_n(v, c);
            }
            agg.iter_lat.insert(pc, sketch);
        }
        let n_trips = bounded(take(&mut pos)?)?;
        for _ in 0..n_trips {
            let pc = take(&mut pos)?;
            agg.trips.insert(
                pc,
                TripAgg {
                    total: take(&mut pos)?,
                    total_sq: take(&mut pos)?,
                    runs: take(&mut pos)?,
                    saturated_runs: take(&mut pos)?,
                },
            );
        }
        if v2 {
            agg.gen = gen_from_u64(take(&mut pos)?);
            let n_outcomes = bounded(take(&mut pos)?)?;
            for _ in 0..n_outcomes {
                let pc = take(&mut pos)?;
                agg.pf_outcomes.insert(
                    pc,
                    PcOutcomes {
                        issued: take(&mut pos)?,
                        timely: take(&mut pos)?,
                        late: take(&mut pos)?,
                        early: take(&mut pos)?,
                        useless: take(&mut pos)?,
                        redundant: take(&mut pos)?,
                        dropped: take(&mut pos)?,
                        timely_slack_cycles: take(&mut pos)?,
                        late_head_start_cycles: take(&mut pos)?,
                    },
                );
            }
        }
        db.epochs.push(Epoch { label, agg });
    }

    if pos != bytes.len() {
        return None; // Trailing garbage: treat as corrupt.
    }
    Some(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_cpu::{LbrEntry, PebsRecord, PerfStats, ProfileData};
    use apt_lir::Pc;
    use apt_mem::Level;

    fn sample_db() -> ProfileDb {
        let profile = ProfileData {
            lbr_samples: vec![vec![
                LbrEntry {
                    from: Pc(0x88),
                    to: Pc(0x80),
                    cycle: 100,
                },
                LbrEntry {
                    from: Pc(0x88),
                    to: Pc(0x80),
                    cycle: 112,
                },
                LbrEntry {
                    from: Pc(0x40),
                    to: Pc(0x44),
                    cycle: 140,
                },
            ]],
            pebs: vec![PebsRecord {
                pc: Pc(0x24),
                served: Level::Dram,
                cycle: 105,
            }],
        };
        let stats = PerfStats {
            instructions: 1_000_000,
            cycles: 312_200,
            branches: 4100,
            taken_branches: 4000,
            ..Default::default()
        };
        let mut db = ProfileDb::new();
        db.push_epoch("run-a", AggregateProfile::from_profile(&profile, &stats));
        db.push_epoch("run-b (später)", AggregateProfile::default());
        db
    }

    #[test]
    fn encode_decode_round_trips_exactly() {
        let mut db = sample_db();
        db.epochs[0].agg.instructions = u64::MAX; // Extremes must survive.
        let decoded = decode(&encode(&db)).expect("decodes");
        assert_eq!(decoded, db);
    }

    #[test]
    fn feedback_free_databases_stay_on_the_v1_bytes() {
        let bytes = encode(&sample_db());
        assert_eq!(&bytes[..8], MAGIC, "no feedback ⇒ v1 magic");
    }

    #[test]
    fn feedback_upgrades_to_v2_and_round_trips_exactly() {
        let mut db = sample_db();
        db.epochs[0].agg.gen = GenTag::Gen(3);
        db.epochs[0].agg.pf_outcomes.insert(
            0x400100,
            PcOutcomes {
                issued: u64::MAX,
                timely: 7,
                late: 2,
                early: 1,
                useless: 4,
                redundant: 9,
                dropped: 5,
                timely_slack_cycles: 480,
                late_head_start_cycles: 90,
            },
        );
        db.epochs[1].agg.gen = GenTag::Mixed;
        let bytes = encode(&db);
        assert_eq!(&bytes[..8], MAGIC_V2);
        assert_eq!(decode(&bytes).expect("decodes"), db);

        // The same corruption rules hold in v2.
        assert!(decode(&bytes[..bytes.len() - 1]).is_none());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(decode(&trailing).is_none());
    }

    #[test]
    fn generation_sentinels_round_trip_every_tag() {
        for g in [
            GenTag::Untagged,
            GenTag::Mixed,
            GenTag::Gen(0),
            GenTag::Gen(7),
        ] {
            assert_eq!(gen_from_u64(gen_to_u64(g)), g);
        }
    }

    #[test]
    fn corrupt_and_truncated_inputs_decode_to_none() {
        let bytes = encode(&sample_db());
        assert!(decode(&bytes[..bytes.len() - 1]).is_none());
        assert!(decode(&bytes[1..]).is_none());
        assert!(decode(b"not a database").is_none());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(decode(&trailing).is_none());
        // A corrupt length field must not allocate terabytes.
        let mut huge = bytes.clone();
        huge[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode(&huge).is_none());
    }

    #[test]
    fn save_load_round_trips_and_tolerates_missing_files() {
        let dir = std::env::temp_dir().join(format!("apt-db-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("profiles.aptdb");

        assert_eq!(ProfileDb::load_or_empty(&path), ProfileDb::new());
        let db = sample_db();
        db.save(&path).expect("saves");
        assert_eq!(ProfileDb::load_or_empty(&path), db);

        fs::write(&path, b"garbage").unwrap();
        assert_eq!(ProfileDb::load_or_empty(&path), ProfileDb::new());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_sweeps_orphaned_temp_files_and_keeps_the_shard() {
        let dir = std::env::temp_dir().join(format!("apt-db-orphans-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("profiles.aptdb");
        let db = sample_db();
        db.save(&path).expect("saves");

        // A writer that died between `fs::write` and `fs::rename` leaves
        // a partial temp file; a sibling database must survive it.
        let orphan = dir.join("profiles.tmp.99991");
        fs::write(&orphan, &encode(&db)[..20]).unwrap();
        // Unrelated files — including other databases and non-numeric
        // suffixes — are never touched.
        let other_db = dir.join("other.aptdb");
        fs::write(&other_db, b"keep").unwrap();
        let odd = dir.join("profiles.tmp.notapid");
        fs::write(&odd, b"keep").unwrap();

        assert_eq!(ProfileDb::open(&path), db);
        assert!(!orphan.exists(), "orphan temp file must be removed");
        assert!(other_db.exists());
        assert!(odd.exists());
        // A second open is a no-op.
        assert_eq!(ProfileDb::cleanup_orphans(&path), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_never_corrupts_an_existing_shard() {
        let dir = std::env::temp_dir().join(format!("apt-db-torn-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shard.aptdb");
        let committed = sample_db();
        committed.save(&path).expect("saves");

        // Simulate a crash at every byte of a later write: the temp file
        // holds an arbitrary prefix of the new bytes, the rename never
        // happened. Opening must always yield the committed database.
        let mut bigger = committed.clone();
        bigger.push_epoch("run-c", bigger.epochs[0].agg.clone());
        let new_bytes = encode(&bigger);
        for cut in [0, 1, 8, new_bytes.len() / 2, new_bytes.len() - 1] {
            let tmp = dir.join("shard.tmp.4242");
            fs::write(&tmp, &new_bytes[..cut]).unwrap();
            assert_eq!(ProfileDb::open(&path), committed, "cut at {cut}");
            assert!(!tmp.exists());
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn export_metrics_reports_db_shape() {
        let db = sample_db();
        let registry = apt_metrics::Registry::new();
        db.export_metrics(&registry, &[]);
        assert_eq!(registry.gauge_value("apt_ingest_db_epochs", &[]), Some(2.0));
        let merged = db.merged();
        assert_eq!(
            registry.gauge_value("apt_ingest_db_lbr_snapshots", &[]),
            Some(merged.lbr_snapshots as f64)
        );
        assert_eq!(
            registry.gauge_value("apt_ingest_db_tracked_branches", &[]),
            Some(merged.iter_lat.len() as f64)
        );
    }

    #[test]
    fn merged_and_baseline_split_the_last_epoch() {
        let db = sample_db();
        let merged = db.merged();
        assert_eq!(merged.cycles, db.epochs[0].agg.cycles);
        // Epoch 2 is empty, so the baseline (all but last) equals epoch 1.
        assert_eq!(db.baseline(), db.epochs[0].agg);
        assert_eq!(ProfileDb::new().baseline(), AggregateProfile::default());
    }

    #[test]
    fn merged_is_sample_count_weighted() {
        let mut db = sample_db();
        let extra = db.epochs[0].agg.clone();
        db.push_epoch("run-c", extra);
        let merged = db.merged();
        assert_eq!(merged.pebs_samples, 2 * db.epochs[0].agg.pebs_samples);
        assert_eq!(
            merged.dram_misses(0x24),
            2 * db.epochs[0].agg.dram_misses(0x24)
        );
    }
}
