//! Load-slice extraction: the backward data-dependence search of
//! Ainsworth & Jones, extended for outer-loop scopes (§3.5).
//!
//! Starting from a load's address, we walk the SSA use-def chain backwards.
//! The walk terminates at:
//!
//! * **induction-variable φs** of the scope loop or of loops nested inside
//!   it — these are the substitution points where the prefetch version adds
//!   the prefetch distance;
//! * **loop-invariant leaves** — values defined outside the scope loop
//!   (including function parameters and immediates), whose registers the
//!   prefetch slice reuses directly;
//!
//! and fails on any φ inside the scope that is not a recognised induction
//! variable (the pattern the pass cannot reason about).

use std::collections::HashMap;

use apt_lir::{BlockId, Function, Inst, InstId, Operand, Reg};

use crate::loops::LoopForest;

/// Position of an instruction inside a function.
pub type InstPos = (BlockId, InstId);

/// Why a load cannot be sliced for prefetching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SliceError {
    /// The position does not name a load instruction.
    NotALoad,
    /// The load is not inside the requested scope loop.
    NotInLoop,
    /// The walk reached a φ that is not a recognised induction variable.
    UnsupportedPhi(Reg),
    /// The scope loop has no recognisable induction variable.
    NoInductionVar,
    /// The walk never reached an induction variable (the address is
    /// loop-invariant — nothing to prefetch ahead of).
    NoIvDependence,
}

impl std::fmt::Display for SliceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SliceError::NotALoad => write!(f, "not a load instruction"),
            SliceError::NotInLoop => write!(f, "load is outside the scope loop"),
            SliceError::UnsupportedPhi(r) => write!(f, "unsupported phi {r} in slice"),
            SliceError::NoInductionVar => write!(f, "scope loop has no induction variable"),
            SliceError::NoIvDependence => write!(f, "address does not depend on an IV"),
        }
    }
}

impl std::error::Error for SliceError {}

/// A successfully extracted load slice.
#[derive(Debug, Clone)]
pub struct SliceInfo {
    /// Instructions to clone, in dependency (topological) order; the target
    /// load itself is *not* included.
    pub insts: Vec<InstPos>,
    /// The target load.
    pub load: InstPos,
    /// IV φs the slice terminates at: `(loop index in the forest, φ reg)`.
    pub ivs: Vec<(usize, Reg)>,
    /// Number of loads among `insts` — the indirection depth. Zero means
    /// the access is direct (plain strided), which hardware prefetchers
    /// already cover.
    pub intermediate_loads: usize,
}

impl SliceInfo {
    /// True if the final load's address depends on another load — the
    /// `A[B[i]]` pattern targeted by software prefetching.
    pub fn is_indirect(&self) -> bool {
        self.intermediate_loads > 0
    }
}

/// Map from register to its defining instruction position.
pub struct DefMap {
    map: HashMap<Reg, InstPos>,
}

impl DefMap {
    /// Builds the definition map of `func`.
    pub fn build(func: &Function) -> DefMap {
        let mut map = HashMap::new();
        for (b, block) in func.iter_blocks() {
            for (i, inst) in block.insts.iter().enumerate() {
                if let Some(d) = inst.dst() {
                    map.insert(d, (b, InstId(i as u32)));
                }
            }
        }
        DefMap { map }
    }

    /// The position defining `r`, if `r` is not a parameter.
    pub fn get(&self, r: Reg) -> Option<InstPos> {
        self.map.get(&r).copied()
    }
}

/// A backward expression slice (no target load attached).
#[derive(Debug, Clone, Default)]
pub struct ExprSlice {
    /// Instructions to clone, in dependency (topological) order.
    pub insts: Vec<InstPos>,
    /// IV φs the slice terminates at: `(loop index, φ reg)`.
    pub ivs: Vec<(usize, Reg)>,
    /// Loads among `insts`.
    pub loads: usize,
}

/// Extracts the backward slice of an arbitrary operand relative to the
/// loop `scope`: every contributing instruction defined inside the scope,
/// terminating at IV φs (of the scope or loops nested in it) and at
/// loop-invariant leaves.
pub fn expr_slice(
    func: &Function,
    forest: &LoopForest,
    defs: &DefMap,
    root: Operand,
    scope: usize,
) -> Result<ExprSlice, SliceError> {
    let scope_loop = &forest.loops[scope];

    // IV φ registers of the scope loop and every loop nested inside it.
    let mut iv_phis: Vec<(usize, Reg)> = Vec::new();
    for (i, l) in forest.loops.iter().enumerate() {
        if !scope_loop.blocks.is_superset(&l.blocks) {
            continue;
        }
        if let Some(iv) = l.iv {
            iv_phis.push((i, iv.phi));
        }
    }

    let mut visited: HashMap<Reg, ()> = HashMap::new();
    let mut out = ExprSlice::default();

    // Iterative post-order DFS over the use-def graph.
    enum Frame {
        Enter(Reg),
        Exit(InstPos),
    }
    let mut stack: Vec<Frame> = Vec::new();
    if let Operand::Reg(r) = root {
        stack.push(Frame::Enter(r));
    }
    while let Some(frame) = stack.pop() {
        match frame {
            Frame::Enter(r) => {
                if visited.contains_key(&r) {
                    continue;
                }
                visited.insert(r, ());
                let Some((db, di)) = defs.get(r) else {
                    continue; // Function parameter: invariant leaf.
                };
                if !scope_loop.contains(db) {
                    continue; // Defined outside the scope: invariant leaf.
                }
                let def = &func.block(db).insts[di.0 as usize];
                if def.is_phi() {
                    if let Some(&(li_, phi)) = iv_phis.iter().find(|(_, p)| *p == r) {
                        if !out.ivs.contains(&(li_, phi)) {
                            out.ivs.push((li_, phi));
                        }
                        continue;
                    }
                    return Err(SliceError::UnsupportedPhi(r));
                }
                if matches!(def, Inst::Load { .. }) {
                    out.loads += 1;
                }
                stack.push(Frame::Exit((db, di)));
                def.for_each_operand(|op| {
                    if let Operand::Reg(r2) = op {
                        stack.push(Frame::Enter(r2));
                    }
                });
            }
            Frame::Exit(pos) => out.insts.push(pos),
        }
    }
    Ok(out)
}

/// Extracts the prefetch slice of the load at `load`, relative to the loop
/// `scope` (an index into `forest.loops`).
///
/// For inner-loop injection, `scope` is the innermost loop containing the
/// load; for outer-loop injection it is that loop's parent. The returned
/// slice contains every contributing instruction defined *inside* the scope
/// loop, so the clone is self-contained at any insertion point dominated by
/// values defined outside the scope.
pub fn extract_slice(
    func: &Function,
    forest: &LoopForest,
    defs: &DefMap,
    load: InstPos,
    scope: usize,
) -> Result<SliceInfo, SliceError> {
    let (lb, li) = load;
    let inst = func
        .block(lb)
        .insts
        .get(li.0 as usize)
        .ok_or(SliceError::NotALoad)?;
    let Inst::Load { addr, .. } = inst else {
        return Err(SliceError::NotALoad);
    };
    let scope_loop = &forest.loops[scope];
    if !scope_loop.contains(lb) {
        return Err(SliceError::NotInLoop);
    }
    if forest.loops[scope].iv.is_none() {
        return Err(SliceError::NoInductionVar);
    }

    let parts = expr_slice(func, forest, defs, *addr, scope)?;
    if parts.ivs.is_empty() {
        return Err(SliceError::NoIvDependence);
    }

    Ok(SliceInfo {
        insts: parts.insts,
        load,
        ivs: parts.ivs,
        intermediate_loads: parts.loads,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loops::analyze_loops;
    use apt_lir::{FuncId, FunctionBuilder, Module, Width};

    /// `for i { s += T[B[i]] }` — the canonical indirect pattern.
    fn indirect_module() -> Module {
        let mut m = Module::new("t");
        let f = m.add_function("k", &["t", "b", "n"]);
        {
            let mut bd = FunctionBuilder::new(m.function_mut(f));
            let (t, bb, n) = (bd.param(0), bd.param(1), bd.param(2));
            let s = bd.loop_up_reduce(0, n, 1, 0, |bd, iv, acc| {
                let bi = bd.load_elem(bb, iv, Width::W4, false);
                let v = bd.load_elem(t, bi, Width::W4, false);
                bd.add(acc, v).into()
            });
            bd.ret(Some(s));
        }
        m
    }

    /// Finds the `n`-th load of the function, in program order.
    fn nth_load(func: &apt_lir::Function, n: usize) -> InstPos {
        let mut count = 0;
        for (b, block) in func.iter_blocks() {
            for (i, inst) in block.insts.iter().enumerate() {
                if matches!(inst, Inst::Load { .. }) {
                    if count == n {
                        return (b, InstId(i as u32));
                    }
                    count += 1;
                }
            }
        }
        panic!("load {n} not found");
    }

    #[test]
    fn extracts_indirect_slice() {
        let m = indirect_module();
        let func = m.function(FuncId(0));
        let forest = analyze_loops(func);
        let defs = DefMap::build(func);
        let target = nth_load(func, 1); // T[B[i]].
        let scope = forest.innermost_of(target.0).unwrap();
        let s = extract_slice(func, &forest, &defs, target, scope).unwrap();
        assert!(s.is_indirect());
        assert_eq!(s.intermediate_loads, 1);
        assert_eq!(s.ivs.len(), 1);
        // Slice: mul, add (B addr), load B[i], mul, add (T addr) = 5.
        assert_eq!(s.insts.len(), 5);
        // Dependency order: every instruction's operands precede it.
        let positions: Vec<usize> = s.insts.iter().map(|&(_, InstId(i))| i as usize).collect();
        let mut sorted = positions.clone();
        sorted.sort_unstable();
        assert_eq!(positions, sorted, "single-block slice must be in order");
    }

    #[test]
    fn direct_load_is_not_indirect() {
        let m = indirect_module();
        let func = m.function(FuncId(0));
        let forest = analyze_loops(func);
        let defs = DefMap::build(func);
        let target = nth_load(func, 0); // B[i] — a plain strided load.
        let scope = forest.innermost_of(target.0).unwrap();
        let s = extract_slice(func, &forest, &defs, target, scope).unwrap();
        assert!(!s.is_indirect());
        assert_eq!(s.intermediate_loads, 0);
    }

    #[test]
    fn rejects_non_load_position() {
        let m = indirect_module();
        let func = m.function(FuncId(0));
        let forest = analyze_loops(func);
        let defs = DefMap::build(func);
        let e = extract_slice(func, &forest, &defs, (BlockId(1), InstId(0)), 0).unwrap_err();
        assert_eq!(e, SliceError::NotALoad);
    }

    #[test]
    fn rejects_loop_invariant_address() {
        // for i { v = *p } — address independent of i.
        let mut m = Module::new("t");
        let f = m.add_function("k", &["p", "n"]);
        {
            let mut bd = FunctionBuilder::new(m.function_mut(f));
            let (p, n) = (bd.param(0), bd.param(1));
            bd.loop_up(0, n, 1, |bd, _iv| {
                let _ = bd.load(p, Width::W8, false);
            });
            bd.ret(None::<Operand>);
        }
        let func = m.function(FuncId(0));
        let forest = analyze_loops(func);
        let defs = DefMap::build(func);
        let target = nth_load(func, 0);
        let scope = forest.innermost_of(target.0).unwrap();
        let e = extract_slice(func, &forest, &defs, target, scope).unwrap_err();
        assert_eq!(e, SliceError::NoIvDependence);
    }

    #[test]
    fn nested_scope_includes_outer_dependence() {
        // for j { b0 = BO[j]; for i { v = T[B[i] + b0] } }.
        let mut m = Module::new("t");
        let f = m.add_function("k", &["t", "bi", "bo", "n", "inner"]);
        {
            let mut bd = FunctionBuilder::new(m.function_mut(f));
            let (t, bi, bo, n, inner) = (
                bd.param(0),
                bd.param(1),
                bd.param(2),
                bd.param(3),
                bd.param(4),
            );
            bd.loop_up(0, n, 1, |bd, j| {
                let b0 = bd.load_elem(bo, j, Width::W4, false);
                bd.loop_up(0, inner, 1, |bd, i| {
                    let x = bd.load_elem(bi, i, Width::W4, false);
                    let idx = bd.add(x, b0);
                    let _ = bd.load_elem(t, idx, Width::W4, false);
                });
            });
            bd.ret(None::<Operand>);
        }
        let func = m.function(FuncId(0));
        let forest = analyze_loops(func);
        let defs = DefMap::build(func);
        let target = nth_load(func, 2); // The T load.
        let inner_idx = forest.innermost_of(target.0).unwrap();
        let outer_idx = forest.parent_of(inner_idx).unwrap();

        // Inner scope: BO[j] load is an invariant leaf → 1 intermediate load.
        let s_in = extract_slice(func, &forest, &defs, target, inner_idx).unwrap();
        assert_eq!(s_in.intermediate_loads, 1);
        assert_eq!(s_in.ivs.len(), 1);

        // Outer scope: the BO[j] load joins the slice → 2 loads, 2 IVs.
        let s_out = extract_slice(func, &forest, &defs, target, outer_idx).unwrap();
        assert_eq!(s_out.intermediate_loads, 2);
        assert_eq!(s_out.ivs.len(), 2);
        assert!(s_out.insts.len() > s_in.insts.len());
    }
}

/// If `root` is an *affine* function of the φ register `iv` — i.e.
/// `root = stride · iv + loop-invariant` — returns `stride` (in the units
/// of the expression, so for a byte address this is the byte stride per
/// inner iteration). Returns `None` for non-affine chains (e.g. addresses
/// that go through a load).
///
/// Used by outer-loop injection to avoid issuing several prefetches into
/// the same cache line when an inner loop walks a bucket contiguously.
pub fn affine_stride(func: &Function, defs: &DefMap, root: Operand, iv: Reg) -> Option<i64> {
    fn eval(
        func: &Function,
        defs: &DefMap,
        op: Operand,
        iv: Reg,
        memo: &mut HashMap<Reg, Option<i64>>,
        depth: usize,
    ) -> Option<i64> {
        if depth > 64 {
            return None;
        }
        let r = match op {
            Operand::Imm(_) => return Some(0),
            Operand::Reg(r) => r,
        };
        if r == iv {
            return Some(1);
        }
        if let Some(&m) = memo.get(&r) {
            return m;
        }
        memo.insert(r, None); // Cycle guard.
        let result = (|| -> Option<i64> {
            let Some((db, di)) = defs.get(r) else {
                return Some(0); // Parameter: invariant.
            };
            let def = &func.block(db).insts[di.0 as usize];
            use apt_lir::BinOp as B;
            match def {
                Inst::Phi { .. } => Some(0), // A different loop's value: constant per inner iteration.
                Inst::Bin { op, a, b, .. } => {
                    let ca = eval(func, defs, *a, iv, memo, depth + 1)?;
                    let cb = eval(func, defs, *b, iv, memo, depth + 1)?;
                    match op {
                        B::Add => Some(ca.wrapping_add(cb)),
                        B::Sub => Some(ca.wrapping_sub(cb)),
                        B::Mul => match (*a, *b) {
                            (_, Operand::Imm(k)) if cb == 0 => Some(ca.wrapping_mul(k as i64)),
                            (Operand::Imm(k), _) if ca == 0 => Some(cb.wrapping_mul(k as i64)),
                            _ if ca == 0 && cb == 0 => Some(0),
                            _ => None,
                        },
                        B::Shl => match *b {
                            Operand::Imm(k) if k < 63 => Some(ca.wrapping_shl(k as u32)),
                            _ if ca == 0 && cb == 0 => Some(0),
                            _ => None,
                        },
                        _ if ca == 0 && cb == 0 => Some(0),
                        _ => None,
                    }
                }
                Inst::Load { addr, .. } => {
                    // A load's value is invariant only if its address is.
                    if eval(func, defs, *addr, iv, memo, depth + 1)? == 0 {
                        Some(0)
                    } else {
                        None
                    }
                }
                Inst::Un { a, .. } | Inst::Select { cond: a, .. } => {
                    // Conservative: invariant-in, invariant-out only.
                    let mut all_zero = eval(func, defs, *a, iv, memo, depth + 1)? == 0;
                    def.for_each_operand(|o| {
                        if all_zero {
                            if let Some(c) = eval(func, defs, o, iv, memo, depth + 1) {
                                all_zero &= c == 0;
                            } else {
                                all_zero = false;
                            }
                        }
                    });
                    if all_zero {
                        Some(0)
                    } else {
                        None
                    }
                }
                _ => None,
            }
        })();
        memo.insert(r, result);
        result
    }
    let mut memo = HashMap::new();
    eval(func, defs, root, iv, &mut memo, 0)
}

#[cfg(test)]
mod affine_tests {
    use super::*;
    use apt_lir::{FuncId, FunctionBuilder, Module, Width};

    #[test]
    fn detects_contiguous_bucket_scan() {
        // for i { for s { v = T[base + s] } } — stride 4 bytes in s.
        let mut m = Module::new("t");
        let f = m.add_function("k", &["t", "n"]);
        {
            let mut bd = FunctionBuilder::new(m.function_mut(f));
            let (t, n) = (bd.param(0), bd.param(1));
            bd.loop_up(0, n, 1, |bd, i| {
                let base = bd.mul(i, 16u64);
                bd.loop_up(0, 8u64, 1, |bd, s| {
                    let off = bd.add(base, s);
                    let _ = bd.load_elem(t, off, Width::W4, false);
                });
            });
            bd.ret(None::<Operand>);
        }
        let func = m.function(FuncId(0));
        let defs = DefMap::build(func);
        // Find the load and the inner IV.
        let forest = crate::loops::analyze_loops(func);
        let inner = forest
            .loops
            .iter()
            .position(|l| l.depth == 2)
            .expect("nested loop");
        let iv = forest.loops[inner].iv.unwrap().phi;
        let mut addr = None;
        for (_, block) in func.iter_blocks() {
            for inst in &block.insts {
                if let Inst::Load { addr: a, .. } = inst {
                    addr = Some(*a);
                }
            }
        }
        assert_eq!(affine_stride(func, &defs, addr.unwrap(), iv), Some(4));
    }

    #[test]
    fn load_dependent_address_is_not_affine() {
        // v = T[B[s]] — non-affine in s.
        let mut m = Module::new("t");
        let f = m.add_function("k", &["t", "b", "n"]);
        {
            let mut bd = FunctionBuilder::new(m.function_mut(f));
            let (t, bb, n) = (bd.param(0), bd.param(1), bd.param(2));
            bd.loop_up(0, n, 1, |bd, s| {
                let x = bd.load_elem(bb, s, Width::W4, false);
                let _ = bd.load_elem(t, x, Width::W4, false);
            });
            bd.ret(None::<Operand>);
        }
        let func = m.function(FuncId(0));
        let defs = DefMap::build(func);
        let forest = crate::loops::analyze_loops(func);
        let iv = forest.loops[0].iv.unwrap().phi;
        // The last load's address.
        let mut addrs = vec![];
        for (_, block) in func.iter_blocks() {
            for inst in &block.insts {
                if let Inst::Load { addr: a, .. } = inst {
                    addrs.push(*a);
                }
            }
        }
        // B[s] is affine (stride 4); T[B[s]] is not.
        assert_eq!(affine_stride(func, &defs, addrs[0], iv), Some(4));
        assert_eq!(affine_stride(func, &defs, addrs[1], iv), None);
    }
}
