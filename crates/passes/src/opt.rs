//! Classic clean-up passes run after prefetch injection, standing in for
//! the `-O3` re-compile of the paper's toolchain: constant folding,
//! loop-invariant code motion, and dead-code elimination.
//!
//! Their practical effect here is to keep the injected prefetch slices
//! lean — e.g. the `bound − 1` clamp operand is loop-invariant and LICM
//! hoists it out of the hot loop.

use std::collections::HashMap;

use apt_lir::eval::{eval_bin, eval_un};
use apt_lir::{BlockId, Function, Inst, Module, Operand, Reg, Terminator};

use crate::loops::{analyze_loops, LoopInfo};

/// Statistics from one optimisation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Instructions folded to constants.
    pub folded: u64,
    /// Instructions hoisted out of loops.
    pub hoisted: u64,
    /// Dead instructions removed.
    pub removed: u64,
}

impl OptStats {
    fn changed(&self) -> bool {
        self.folded + self.hoisted + self.removed > 0
    }

    fn add(&mut self, other: OptStats) {
        self.folded += other.folded;
        self.hoisted += other.hoisted;
        self.removed += other.removed;
    }
}

/// Runs fold → LICM → DCE to a fixpoint (bounded) on every function.
pub fn optimize_module(module: &mut Module) -> OptStats {
    let mut total = OptStats::default();
    for func in module.functions.iter_mut() {
        for _round in 0..8 {
            let mut round = OptStats::default();
            round.add(constant_fold(func));
            round.add(licm(func));
            round.add(dce(func));
            total.add(round);
            if !round.changed() {
                break;
            }
        }
    }
    total
}

/// Rewrites every use of `from` to `to` (instructions and terminators).
fn replace_uses(func: &mut Function, from: Reg, to: Operand) {
    let rewrite = |op: Operand| if op == Operand::Reg(from) { to } else { op };
    for block in func.blocks.iter_mut() {
        for inst in block.insts.iter_mut() {
            inst.map_operands(rewrite);
        }
        match &mut block.term {
            Terminator::CondBr { cond, .. } => *cond = rewrite(*cond),
            Terminator::Ret { value: Some(v) } => *v = rewrite(*v),
            _ => {}
        }
    }
}

/// Folds pure instructions with all-constant operands into immediates.
pub fn constant_fold(func: &mut Function) -> OptStats {
    let mut stats = OptStats::default();
    loop {
        // (block, index, dst, value) of the next foldable instruction.
        let mut subst: Option<(BlockId, usize, Reg, u64)> = None;
        'search: for (bid, block) in func.iter_blocks() {
            for (idx, inst) in block.insts.iter().enumerate() {
                let folded = match inst {
                    Inst::Bin { dst, op, a, b } => match (a.imm(), b.imm()) {
                        (Some(x), Some(y)) => Some((*dst, eval_bin(*op, x, y))),
                        _ => None,
                    },
                    Inst::Un { dst, op, a } => a.imm().map(|x| (*dst, eval_un(*op, x))),
                    Inst::Select {
                        dst,
                        cond,
                        if_true,
                        if_false,
                    } => match (cond.imm(), if_true.imm(), if_false.imm()) {
                        (Some(c), Some(t), Some(e)) => Some((*dst, if c != 0 { t } else { e })),
                        _ => None,
                    },
                    _ => None,
                };
                if let Some((dst, value)) = folded {
                    subst = Some((bid, idx, dst, value));
                    break 'search;
                }
            }
        }
        match subst {
            Some((bid, idx, reg, value)) => {
                // Remove the instruction *before* rewriting uses, or the
                // scan would find the same constant instruction forever.
                func.block_mut(bid).insts.remove(idx);
                replace_uses(func, reg, Operand::Imm(value));
                stats.folded += 1;
            }
            None => return stats,
        }
    }
}

/// True if the instruction can be removed/hoisted freely: pure, and never
/// faults. Plain loads are excluded (hoisting one past its loop guard
/// could fault); speculative loads are non-faulting by definition but are
/// left in place anyway — their address is rarely invariant.
fn is_speculatable(inst: &Inst) -> bool {
    matches!(
        inst,
        Inst::Bin { .. } | Inst::Un { .. } | Inst::Select { .. }
    )
}

/// True if the instruction has no side effects (may be removed if unused).
fn is_pure(inst: &Inst) -> bool {
    !matches!(inst, Inst::Store { .. } | Inst::Prefetch { .. })
}

/// Removes pure instructions whose results are never used.
pub fn dce(func: &mut Function) -> OptStats {
    let mut stats = OptStats::default();
    loop {
        // Collect all used registers.
        let mut used: HashMap<Reg, ()> = HashMap::new();
        for block in func.blocks.iter() {
            for inst in block.insts.iter() {
                inst.for_each_operand(|op| {
                    if let Operand::Reg(r) = op {
                        used.insert(r, ());
                    }
                });
            }
            block.term.for_each_operand(|op| {
                if let Operand::Reg(r) = op {
                    used.insert(r, ());
                }
            });
        }
        let mut removed_any = false;
        for block in func.blocks.iter_mut() {
            let before = block.insts.len();
            block.insts.retain(|inst| {
                let dead = is_pure(inst)
                    && !matches!(inst, Inst::Load { spec: false, .. })
                    && inst.dst().map(|d| !used.contains_key(&d)).unwrap_or(false);
                !dead
            });
            let removed = before - block.insts.len();
            stats.removed += removed as u64;
            removed_any |= removed > 0;
        }
        if !removed_any {
            return stats;
        }
    }
}

/// Finds the unique predecessor of a loop header outside the loop.
fn preheader_of(func: &Function, l: &LoopInfo) -> Option<BlockId> {
    let mut pre = None;
    for (b, block) in func.iter_blocks() {
        if l.contains(b) {
            continue;
        }
        if block.term.successors().contains(&l.header) {
            if pre.is_some() {
                return None; // Multiple outside predecessors.
            }
            pre = Some(b);
        }
    }
    pre
}

/// Hoists loop-invariant speculatable instructions to loop pre-headers.
pub fn licm(func: &mut Function) -> OptStats {
    let mut stats = OptStats::default();
    loop {
        let forest = analyze_loops(func);
        // Definition → block map for invariance checks.
        let mut def_block: HashMap<Reg, BlockId> = HashMap::new();
        for (b, block) in func.iter_blocks() {
            for inst in &block.insts {
                if let Some(d) = inst.dst() {
                    def_block.insert(d, b);
                }
            }
        }

        // Innermost-first (deepest loops first) so values bubble outwards
        // across rounds.
        let mut order: Vec<usize> = (0..forest.loops.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(forest.loops[i].depth));

        let mut moved: Option<(BlockId, usize, BlockId)> = None;
        'outer: for &li in &order {
            let l = &forest.loops[li];
            let Some(pre) = preheader_of(func, l) else {
                continue;
            };
            for &b in &l.blocks {
                let block = func.block(b);
                for (i, inst) in block.insts.iter().enumerate() {
                    if !is_speculatable(inst) {
                        continue;
                    }
                    let mut invariant = true;
                    inst.for_each_operand(|op| {
                        if let Operand::Reg(r) = op {
                            if let Some(db) = def_block.get(&r) {
                                if l.contains(*db) {
                                    invariant = false;
                                }
                            }
                        }
                    });
                    if invariant {
                        moved = Some((b, i, pre));
                        break 'outer;
                    }
                }
            }
        }

        match moved {
            Some((b, i, pre)) => {
                let inst = func.block_mut(b).insts.remove(i);
                let at = func.block(pre).insts.len();
                func.block_mut(pre).insts.insert(at, inst);
                stats.hoisted += 1;
            }
            None => return stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_lir::verify::verify_module;
    use apt_lir::{BinOp, FunctionBuilder, Width};

    #[test]
    fn folds_constant_chains() {
        let mut m = Module::new("t");
        let f = m.add_function("k", &[]);
        {
            let mut b = FunctionBuilder::new(m.function_mut(f));
            let x = b.add(2u64, 3u64);
            let y = b.mul(x, 4u64);
            b.ret(Some(y));
        }
        let stats = optimize_module(&mut m);
        assert_eq!(stats.folded, 2);
        // Folding removes the instruction itself; nothing is left for DCE.
        assert_eq!(stats.removed, 0);
        verify_module(&m).unwrap();
        let func = m.function(apt_lir::FuncId(0));
        assert_eq!(func.inst_count(), 0);
        assert_eq!(
            func.block(apt_lir::BlockId(0)).term,
            apt_lir::Terminator::Ret {
                value: Some(Operand::Imm(20))
            }
        );
    }

    #[test]
    fn dce_keeps_side_effects_and_plain_loads() {
        let mut m = Module::new("t");
        let f = m.add_function("k", &["p"]);
        {
            let mut b = FunctionBuilder::new(m.function_mut(f));
            let p = b.param(0);
            let _unused_alu = b.add(p, 1); // Dead: removable.
            let _unused_load = b.load(p, Width::W8, false); // Kept: may fault.
            b.store(p, 7u64, Width::W8); // Kept: side effect.
            b.prefetch(p); // Kept: side effect.
            b.ret(None::<Operand>);
        }
        let stats = dce(&mut m.functions[0]);
        assert_eq!(stats.removed, 1);
        assert_eq!(m.function(apt_lir::FuncId(0)).inst_count(), 3);
    }

    #[test]
    fn licm_hoists_invariant_arithmetic() {
        // for i { y = n*8; use(y+i) } — n*8 is invariant.
        let mut m = Module::new("t");
        let f = m.add_function("k", &["a", "n"]);
        {
            let mut b = FunctionBuilder::new(m.function_mut(f));
            let (a, n) = (b.param(0), b.param(1));
            b.loop_up(0, n, 1, |b, i| {
                let y = b.mul(n, 8u64);
                let idx = b.add(y, i);
                let v = b.load_elem(a, idx, Width::W8, false);
                b.store_elem(a, i, v, Width::W8);
            });
            b.ret(None::<Operand>);
        }
        let before_body = m
            .function(apt_lir::FuncId(0))
            .block(apt_lir::BlockId(1))
            .insts
            .len();
        let stats = licm(&mut m.functions[0]);
        assert!(stats.hoisted >= 1);
        verify_module(&m).unwrap();
        let after_body = m
            .function(apt_lir::FuncId(0))
            .block(apt_lir::BlockId(1))
            .insts
            .len();
        assert!(after_body < before_body);
        // The hoisted mul now lives in the guard/preheader block.
        let guard = m.function(apt_lir::FuncId(0)).block(apt_lir::BlockId(0));
        assert!(guard
            .insts
            .iter()
            .any(|i| matches!(i, Inst::Bin { op: BinOp::Mul, .. })));
    }

    #[test]
    fn optimises_injected_prefetch_slices() {
        // The bound−1 clamp operand of an injected slice is invariant and
        // must be hoisted.
        let mut m = Module::new("t");
        let f = m.add_function("k", &["t", "b", "n"]);
        {
            let mut bd = FunctionBuilder::new(m.function_mut(f));
            let (t, bb, n) = (bd.param(0), bd.param(1), bd.param(2));
            bd.loop_up(0, n, 1, |bd, i| {
                let x = bd.load_elem(bb, i, Width::W4, false);
                let _ = bd.load_elem(t, x, Width::W4, false);
            });
            bd.ret(None::<Operand>);
        }
        crate::inject::ainsworth_jones(&mut m, 16);
        // The loop body lives in bb1 (guard = bb0, exit = bb2).
        let body_len = |m: &Module| {
            m.function(apt_lir::FuncId(0))
                .block(apt_lir::BlockId(1))
                .insts
                .len()
        };
        let before = body_len(&m);
        let stats = optimize_module(&mut m);
        assert!(stats.hoisted >= 1, "{stats:?}");
        verify_module(&m).unwrap();
        // Hoisting shrinks the hot loop body (the clamp's `bound − 1`).
        assert!(body_len(&m) < before, "{} !< {}", body_len(&m), before);
    }

    #[test]
    fn optimisation_preserves_semantics_shape() {
        // Folding + DCE + LICM must leave a verifiable module with the
        // same observable structure (stores/prefetches intact).
        let mut m = Module::new("t");
        let f = m.add_function("k", &["a", "n"]);
        {
            let mut b = FunctionBuilder::new(m.function_mut(f));
            let (a, n) = (b.param(0), b.param(1));
            b.loop_up(0, n, 1, |b, i| {
                let c = b.add(2u64, 2u64); // Foldable.
                let inv = b.mul(n, c); // Then hoistable.
                let idx = b.add(inv, i);
                b.prefetch(idx);
                b.store_elem(a, i, idx, Width::W8);
            });
            b.ret(None::<Operand>);
        }
        let count_effects = |m: &Module| {
            m.functions[0]
                .blocks
                .iter()
                .flat_map(|b| b.insts.iter())
                .filter(|i| matches!(i, Inst::Store { .. } | Inst::Prefetch { .. }))
                .count()
        };
        let before = count_effects(&m);
        optimize_module(&mut m);
        verify_module(&m).unwrap();
        assert_eq!(count_effects(&m), before);
    }
}
