//! Prefetch injection: cloning load-slices into prefetch kernels.
//!
//! Two entry points:
//!
//! * [`ainsworth_jones`] — the static baseline: every indirect load in a
//!   loop gets an inner-loop prefetch at one global compile-time distance
//!   (the `-DFETCHDIST` flag of §2.1);
//! * [`inject_prefetches`] — APT-GET: per-load distances and injection
//!   sites coming from the LBR profile analysis.
//!
//! The prefetch index is always *clamped* to the loop bound
//! (`min(iv + distance, bound − 1)`, Listing 4) so the cloned intermediate
//! loads never access out of bounds.

use apt_lir::{BinOp, BlockId, FuncId, Function, Inst, InstId, Module, Operand, Reg, Terminator};

use crate::loops::{analyze_loops, InductionVar, LoopForest};
use crate::slice::{extract_slice, DefMap, InstPos, SliceError, SliceInfo};

/// Where to place the prefetch relative to the load's loop nest (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Site {
    /// Inside the loop immediately containing the load.
    Inner,
    /// In the enclosing loop, prefetching a future outer iteration.
    Outer,
}

/// One injection request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectionSpec {
    pub func: FuncId,
    /// The delinquent load, as a position in the *current* module.
    pub load: InstPos,
    /// Prefetch distance in loop iterations.
    pub distance: u64,
    pub site: Site,
    /// For [`Site::Outer`]: how many leading inner iterations to cover per
    /// outer iteration (the `%iv2` sweep of §3.5). The injector collapses
    /// sweep steps that land in the same cache line. Ignored for inner.
    pub fanout: u64,
    /// For [`Site::Outer`]: if outer injection is structurally impossible
    /// (no enclosing counted loop), retry as an inner-site injection at
    /// this distance instead of giving up.
    pub fallback_inner_distance: Option<u64>,
}

/// One successfully injected prefetch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Injected {
    pub func: FuncId,
    pub load: InstPos,
    pub distance: u64,
    pub site: Site,
    /// Instructions added to the function.
    pub insts_added: usize,
}

/// One skipped request and the reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Skipped {
    pub func: FuncId,
    pub load: InstPos,
    pub reason: String,
}

/// Outcome of an injection batch.
#[derive(Debug, Clone, Default)]
pub struct InjectionReport {
    pub injected: Vec<Injected>,
    pub skipped: Vec<Skipped>,
}

impl InjectionReport {
    /// Total instructions added across all injections.
    pub fn insts_added(&self) -> usize {
        self.injected.iter().map(|i| i.insts_added).sum()
    }
}

/// Applies a batch of injection specs to `module`.
///
/// Specs are applied one at a time with the analyses recomputed in
/// between; the positions of later specs are shifted to account for
/// earlier insertions, so all specs must be expressed against the module
/// as it was on entry.
pub fn inject_prefetches(module: &mut Module, specs: &[InjectionSpec]) -> InjectionReport {
    let mut report = InjectionReport::default();
    let mut pending: Vec<InjectionSpec> = specs.to_vec();
    // Deduplicate identical (func, load) targets, keeping the first.
    let mut seen: Vec<(FuncId, InstPos)> = Vec::new();
    pending.retain(|s| {
        if seen.contains(&(s.func, s.load)) {
            false
        } else {
            seen.push((s.func, s.load));
            true
        }
    });

    let mut i = 0;
    while i < pending.len() {
        let spec = pending[i];
        i += 1;
        let func = module.function_mut(spec.func);
        let attempt = inject_one(func, &spec);
        let attempt = match (attempt, spec.site, spec.fallback_inner_distance) {
            (Err(_), Site::Outer, Some(d)) => {
                // §3.3 fallback: stay in the inner loop.
                let inner_spec = InjectionSpec {
                    site: Site::Inner,
                    distance: d,
                    ..spec
                };
                inject_one(module.function_mut(spec.func), &inner_spec)
            }
            (r, _, _) => r,
        };
        match attempt {
            Ok((insertions, added)) => {
                report.injected.push(Injected {
                    func: spec.func,
                    load: spec.load,
                    distance: spec.distance,
                    site: spec.site,
                    insts_added: added,
                });
                // Shift later specs in the same function past the inserts.
                for later in pending.iter_mut().skip(i) {
                    if later.func != spec.func {
                        continue;
                    }
                    for &(b, at, n) in &insertions {
                        if later.load.0 == b && later.load.1 .0 as usize >= at {
                            later.load.1 .0 += n as u32;
                        }
                    }
                }
            }
            Err(reason) => report.skipped.push(Skipped {
                func: spec.func,
                load: spec.load,
                reason,
            }),
        }
    }
    report
}

/// The static Ainsworth & Jones pass: finds every *indirect* load inside a
/// loop and injects an inner-loop prefetch at the single `distance`.
pub fn ainsworth_jones(module: &mut Module, distance: u64) -> InjectionReport {
    let specs = detect_indirect_loads(module)
        .into_iter()
        .map(|(func, load)| InjectionSpec {
            func,
            load,
            distance,
            site: Site::Inner,
            fanout: 1,
            fallback_inner_distance: None,
        })
        .collect::<Vec<_>>();
    inject_prefetches(module, &specs)
}

/// Finds every load whose inner-loop slice is indirect and injectable —
/// the candidate set of the static pass.
pub fn detect_indirect_loads(module: &Module) -> Vec<(FuncId, InstPos)> {
    let mut out = Vec::new();
    for (fid, func) in module.iter_functions() {
        let forest = analyze_loops(func);
        if forest.loops.is_empty() {
            continue;
        }
        let defs = DefMap::build(func);
        for (b, block) in func.iter_blocks() {
            let Some(scope) = forest.innermost_of(b) else {
                continue;
            };
            for (i, inst) in block.insts.iter().enumerate() {
                if !matches!(inst, Inst::Load { .. }) {
                    continue;
                }
                let pos = (b, InstId(i as u32));
                match extract_slice(func, &forest, &defs, pos, scope) {
                    Ok(s)
                        if s.is_indirect()
                        // Only injectable when the loop bound is known.
                        && forest.loops[scope]
                            .iv
                            .map(|iv| iv.bound.is_some())
                            .unwrap_or(false) =>
                    {
                        out.push((fid, pos));
                    }
                    _ => {}
                }
            }
        }
    }
    out
}

/// `(block, position, count)` insertions plus the number of instructions
/// added — what each injection strategy reports back.
type Insertions = Result<(Vec<(BlockId, usize, usize)>, usize), String>;

/// Performs one injection; returns the list of `(block, position, count)`
/// insertions and the number of instructions added.
fn inject_one(func: &mut Function, spec: &InjectionSpec) -> Insertions {
    let forest = analyze_loops(func);
    let defs = DefMap::build(func);
    let inner_idx = forest
        .innermost_of(spec.load.0)
        .ok_or_else(|| "load is not inside a loop".to_string())?;

    match spec.site {
        Site::Inner => inject_inner(func, &forest, &defs, spec, inner_idx),
        Site::Outer => {
            let outer_idx = forest
                .parent_of(inner_idx)
                .ok_or_else(|| "no enclosing outer loop".to_string())?;
            inject_outer(func, &forest, &defs, spec, inner_idx, outer_idx)
        }
    }
}

/// Emits `min(iv*mult + add, bound − 1)` before position `at` in `block`,
/// returning the clamped index register and the instructions emitted.
fn emit_future_index(
    func: &mut Function,
    iv: &InductionVar,
    distance: u64,
    new_insts: &mut Vec<Inst>,
) -> Reg {
    let (mult, add) = iv.update.advance_by(distance);
    let mut cur: Operand = Operand::Reg(iv.phi);
    if mult != 1 {
        let r = func.fresh_reg();
        new_insts.push(Inst::Bin {
            dst: r,
            op: BinOp::Mul,
            a: cur,
            b: Operand::Imm(mult),
        });
        cur = Operand::Reg(r);
    }
    if add != 0 {
        let r = func.fresh_reg();
        new_insts.push(Inst::Bin {
            dst: r,
            op: BinOp::Add,
            a: cur,
            b: Operand::Imm(add),
        });
        cur = Operand::Reg(r);
    }
    let bound = iv.bound.expect("caller checked the bound");
    // bound − 1.
    let bm1 = func.fresh_reg();
    new_insts.push(Inst::Bin {
        dst: bm1,
        op: BinOp::Sub,
        a: bound,
        b: Operand::Imm(1),
    });
    // min(future, bound − 1), signed (loop IVs are signed counters).
    let clamped = func.fresh_reg();
    new_insts.push(Inst::Bin {
        dst: clamped,
        op: BinOp::MinS,
        a: cur,
        b: Operand::Reg(bm1),
    });
    clamped
}

fn subst_lookup(remap: &[(Reg, Operand)], op: Operand) -> Operand {
    match op {
        Operand::Reg(r) => remap
            .iter()
            .find(|(k, _)| *k == r)
            .map(|(_, v)| *v)
            .unwrap_or(op),
        imm => imm,
    }
}

/// Clones the given instructions with operand substitution, extending
/// `remap` with clone mappings as it goes.
fn clone_insts(
    func: &mut Function,
    insts: &[InstPos],
    remap: &mut Vec<(Reg, Operand)>,
    new_insts: &mut Vec<Inst>,
) {
    for &(b, i) in insts {
        let mut inst = func.block(b).insts[i.0 as usize].clone();
        inst.map_operands(|op| subst_lookup(remap, op));
        let fresh = func.fresh_reg();
        if let Some(old) = inst.dst() {
            remap.push((old, Operand::Reg(fresh)));
        }
        // Re-target the destination register; cloned loads are marked
        // speculative (prefetch-slice loads must never fault).
        match &mut inst {
            Inst::Load { dst, spec, .. } => {
                *dst = fresh;
                *spec = true;
            }
            Inst::Phi { dst, .. }
            | Inst::Bin { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::Select { dst, .. } => *dst = fresh,
            Inst::Store { .. } | Inst::Prefetch { .. } => {}
        }
        new_insts.push(inst);
    }
}

/// Clones `slice` with the given IV substitutions, appending to
/// `new_insts`; the final load becomes a `prefetch`.
fn clone_slice(
    func: &mut Function,
    slice: &SliceInfo,
    subst: &[(Reg, Operand)],
    new_insts: &mut Vec<Inst>,
) {
    let mut remap: Vec<(Reg, Operand)> = subst.to_vec();
    clone_insts(func, &slice.insts, &mut remap, new_insts);
    // The target load becomes a prefetch of its (remapped) address.
    let (lb, li) = slice.load;
    let Inst::Load { addr, .. } = &func.block(lb).insts[li.0 as usize] else {
        unreachable!("slice target is a load");
    };
    let addr = subst_lookup(&remap, *addr);
    new_insts.push(Inst::Prefetch { addr });
}

fn inject_inner(
    func: &mut Function,
    forest: &LoopForest,
    defs: &DefMap,
    spec: &InjectionSpec,
    scope: usize,
) -> Insertions {
    let iv = forest.loops[scope]
        .iv
        .ok_or_else(|| SliceError::NoInductionVar.to_string())?;
    if iv.bound.is_none() {
        return Err("loop bound unknown; cannot clamp the prefetch index".into());
    }
    let slice = extract_slice(func, forest, defs, spec.load, scope).map_err(|e| e.to_string())?;

    let mut new_insts: Vec<Inst> = Vec::new();
    let future = emit_future_index(func, &iv, spec.distance, &mut new_insts);
    clone_slice(
        func,
        &slice,
        &[(iv.phi, Operand::Reg(future))],
        &mut new_insts,
    );

    // Insert immediately before the original load.
    let (lb, li) = spec.load;
    let n = new_insts.len();
    let at = li.0 as usize;
    func.block_mut(lb).insts.splice(at..at, new_insts);
    Ok((vec![(lb, at, n)], n))
}

fn inject_outer(
    func: &mut Function,
    forest: &LoopForest,
    defs: &DefMap,
    spec: &InjectionSpec,
    inner_idx: usize,
    outer_idx: usize,
) -> Insertions {
    let outer_iv = forest.loops[outer_idx]
        .iv
        .ok_or("outer loop has no induction variable")?;
    if outer_iv.bound.is_none() {
        return Err("outer loop bound unknown; cannot clamp".into());
    }
    let inner_iv = forest.loops[inner_idx]
        .iv
        .ok_or("inner loop has no induction variable")?;

    let slice =
        extract_slice(func, forest, defs, spec.load, outer_idx).map_err(|e| e.to_string())?;
    // The only IVs the clone can substitute are the outer and inner ones.
    if slice
        .ivs
        .iter()
        .any(|&(_, phi)| phi != outer_iv.phi && phi != inner_iv.phi)
    {
        return Err("slice depends on an unrelated loop's IV".into());
    }

    // The inner loop's *initial value* may itself depend on the outer IV
    // (e.g. `row_ptr[frontier[fi]]` in BFS): its defining expression must
    // be re-evaluated at the future outer iteration too.
    let init_parts = match inner_iv.init {
        Operand::Imm(_) => crate::slice::ExprSlice::default(),
        reg @ Operand::Reg(_) => {
            let p = crate::slice::expr_slice(func, forest, defs, reg, outer_idx)
                .map_err(|e| e.to_string())?;
            if p.ivs.iter().any(|&(_, phi)| phi != outer_iv.phi) {
                return Err("inner-loop init depends on an unrelated IV".into());
            }
            p
        }
    };

    // Insertion point: the inner loop's pre-header — the block inside the
    // outer loop that branches into the inner loop — before its terminator.
    let inner_header = forest.loops[inner_idx].header;
    let preheader = find_preheader(func, forest, inner_idx, outer_idx, inner_header)
        .ok_or("inner loop has no pre-header inside the outer loop")?;

    let mut new_insts: Vec<Inst> = Vec::new();
    let future = emit_future_index(func, &outer_iv, spec.distance, &mut new_insts);

    // Clone the init expression once, at the future outer iteration.
    let mut base_subst: Vec<(Reg, Operand)> = vec![(outer_iv.phi, Operand::Reg(future))];
    clone_insts(func, &init_parts.insts, &mut base_subst, &mut new_insts);
    let init_val = subst_lookup(&base_subst, inner_iv.init);

    // Sweep the first `fanout` inner iterations of the future outer
    // iteration (§3.5: "%iv2 is swept from 0 to the average trip count").
    // Instructions already cloned for the init expression are reused.
    let addr_only: Vec<InstPos> = slice
        .insts
        .iter()
        .copied()
        .filter(|p| !init_parts.insts.contains(p))
        .collect();
    // When the load walks memory contiguously in the inner IV (affine
    // address, small stride) one prefetch covers a whole line: collapse
    // the sweep accordingly.
    let fanout_iters = spec.fanout.max(1);
    let load_addr = {
        let (lb, li) = slice.load;
        let Inst::Load { addr, .. } = &func.block(lb).insts[li.0 as usize] else {
            unreachable!("slice target is a load")
        };
        *addr
    };
    let (npf, kstep) = match crate::slice::affine_stride(func, defs, load_addr, inner_iv.phi) {
        Some(0) => (1, 1),
        Some(s) => {
            let s = s.unsigned_abs().max(1);
            let iters_per_line = (64 / s).max(1);
            (fanout_iters.div_ceil(iters_per_line), iters_per_line)
        }
        None => (fanout_iters, 1),
    };
    for j in 0..npf {
        let k = j * kstep;
        // Inner IV value at inner iteration k: init*m + a.
        let (m, a) = inner_iv.update.advance_by(k);
        let inner_val = match init_val {
            Operand::Imm(v) => Operand::Imm(v.wrapping_mul(m).wrapping_add(a)),
            Operand::Reg(_) => {
                let mut cur = init_val;
                if m != 1 {
                    let r = func.fresh_reg();
                    new_insts.push(Inst::Bin {
                        dst: r,
                        op: BinOp::Mul,
                        a: cur,
                        b: Operand::Imm(m),
                    });
                    cur = Operand::Reg(r);
                }
                if a != 0 {
                    let r = func.fresh_reg();
                    new_insts.push(Inst::Bin {
                        dst: r,
                        op: BinOp::Add,
                        a: cur,
                        b: Operand::Imm(a),
                    });
                    cur = Operand::Reg(r);
                }
                cur
            }
        };
        let mut subst = base_subst.clone();
        subst.push((inner_iv.phi, inner_val));
        let per_k = SliceInfo {
            insts: addr_only.clone(),
            load: slice.load,
            ivs: slice.ivs.clone(),
            intermediate_loads: slice.intermediate_loads,
        };
        clone_slice(func, &per_k, &subst, &mut new_insts);
    }

    let at = func.block(preheader).insts.len();
    let n = new_insts.len();
    func.block_mut(preheader).insts.splice(at..at, new_insts);
    Ok((vec![(preheader, at, n)], n))
}

/// The block inside `outer` (but outside `inner`) that branches to the
/// inner loop's header or guard.
fn find_preheader(
    func: &Function,
    forest: &LoopForest,
    inner_idx: usize,
    outer_idx: usize,
    inner_header: BlockId,
) -> Option<BlockId> {
    let inner = &forest.loops[inner_idx];
    let outer = &forest.loops[outer_idx];
    for (b, block) in func.iter_blocks() {
        if inner.contains(b) || !outer.contains(b) {
            continue;
        }
        let hits_inner = match &block.term {
            Terminator::Br { target } => *target == inner_header,
            Terminator::CondBr { then_, else_, .. } => {
                *then_ == inner_header || *else_ == inner_header
            }
            Terminator::Ret { .. } => false,
        };
        if hits_inner {
            return Some(b);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_lir::verify::verify_module;
    use apt_lir::{FunctionBuilder, Width};

    /// `for i { s += T[B[i]] }`.
    fn indirect_module() -> Module {
        let mut m = Module::new("t");
        let f = m.add_function("k", &["t", "b", "n"]);
        {
            let mut bd = FunctionBuilder::new(m.function_mut(f));
            let (t, bb, n) = (bd.param(0), bd.param(1), bd.param(2));
            let s = bd.loop_up_reduce(0, n, 1, 0, |bd, iv, acc| {
                let bi = bd.load_elem(bb, iv, Width::W4, false);
                let v = bd.load_elem(t, bi, Width::W4, false);
                bd.add(acc, v).into()
            });
            bd.ret(Some(s));
        }
        m
    }

    /// Nested: `for j { b0 = BO[j]; for i { s += T[B[i] + b0] } }`.
    fn nested_module() -> Module {
        let mut m = Module::new("t");
        let f = m.add_function("k", &["t", "bi", "bo", "n", "inner"]);
        {
            let mut bd = FunctionBuilder::new(m.function_mut(f));
            let (t, bi, bo, n, inner) = (
                bd.param(0),
                bd.param(1),
                bd.param(2),
                bd.param(3),
                bd.param(4),
            );
            bd.loop_up(0, n, 1, |bd, j| {
                let b0 = bd.load_elem(bo, j, Width::W4, false);
                bd.loop_up(0, inner, 1, |bd, i| {
                    let x = bd.load_elem(bi, i, Width::W4, false);
                    let idx = bd.add(x, b0);
                    let _ = bd.load_elem(t, idx, Width::W4, false);
                });
            });
            bd.ret(None::<Operand>);
        }
        m
    }

    fn count_prefetches(m: &Module) -> usize {
        m.iter_functions()
            .flat_map(|(_, f)| f.blocks.iter())
            .flat_map(|b| b.insts.iter())
            .filter(|i| matches!(i, Inst::Prefetch { .. }))
            .count()
    }

    #[test]
    fn aj_injects_one_prefetch_for_indirect_load() {
        let mut m = indirect_module();
        let report = ainsworth_jones(&mut m, 32);
        assert_eq!(report.injected.len(), 1);
        assert_eq!(report.skipped.len(), 0);
        assert_eq!(count_prefetches(&m), 1);
        verify_module(&m).unwrap();
    }

    #[test]
    fn aj_detection_skips_direct_loads() {
        let m = indirect_module();
        let found = detect_indirect_loads(&m);
        // Only T[B[i]] qualifies, not B[i].
        assert_eq!(found.len(), 1);
    }

    #[test]
    fn injected_clamp_uses_min() {
        let mut m = indirect_module();
        ainsworth_jones(&mut m, 32);
        let has_min = m
            .iter_functions()
            .flat_map(|(_, f)| f.blocks.iter())
            .flat_map(|b| b.insts.iter())
            .any(|i| {
                matches!(
                    i,
                    Inst::Bin {
                        op: BinOp::MinS,
                        ..
                    }
                )
            });
        assert!(has_min, "prefetch index must be clamped");
    }

    #[test]
    fn nested_inner_injection_verifies() {
        let mut m = nested_module();
        let report = ainsworth_jones(&mut m, 16);
        assert_eq!(report.injected.len(), 1);
        verify_module(&m).unwrap();
    }

    #[test]
    fn nested_outer_injection_verifies() {
        let mut m = nested_module();
        let loads = detect_indirect_loads(&m);
        assert_eq!(loads.len(), 1);
        let (func, load) = loads[0];
        let report = inject_prefetches(
            &mut m,
            &[InjectionSpec {
                func,
                load,
                distance: 2,
                site: Site::Outer,
                fanout: 4,
                fallback_inner_distance: None,
            }],
        );
        assert_eq!(report.injected.len(), 1, "{:?}", report.skipped);
        // One prefetch per fanout step.
        assert_eq!(count_prefetches(&m), 4);
        verify_module(&m).unwrap();
    }

    #[test]
    fn outer_injection_without_parent_is_skipped() {
        let mut m = indirect_module();
        let loads = detect_indirect_loads(&m);
        let (func, load) = loads[0];
        let report = inject_prefetches(
            &mut m,
            &[InjectionSpec {
                func,
                load,
                distance: 2,
                site: Site::Outer,
                fanout: 1,
                fallback_inner_distance: None,
            }],
        );
        assert_eq!(report.injected.len(), 0);
        assert_eq!(report.skipped.len(), 1);
        assert!(report.skipped[0].reason.contains("outer"));
    }

    #[test]
    fn duplicate_specs_deduplicated() {
        let mut m = indirect_module();
        let loads = detect_indirect_loads(&m);
        let (func, load) = loads[0];
        let spec = InjectionSpec {
            func,
            load,
            distance: 8,
            site: Site::Inner,
            fanout: 1,
            fallback_inner_distance: None,
        };
        let report = inject_prefetches(&mut m, &[spec, spec]);
        assert_eq!(report.injected.len(), 1);
        assert_eq!(count_prefetches(&m), 1);
    }

    #[test]
    fn geometric_loop_injection_verifies() {
        // for (i = 1; i < n; i *= 2) { v = T[B[i]] }.
        let mut m = Module::new("t");
        let f = m.add_function("k", &["t", "b", "n"]);
        {
            let mut bd = FunctionBuilder::new(m.function_mut(f));
            let (t, bb, n) = (bd.param(0), bd.param(1), bd.param(2));
            bd.loop_geometric(1, n, 2, |bd, iv| {
                let x = bd.load_elem(bb, iv, Width::W4, false);
                let _ = bd.load_elem(t, x, Width::W4, false);
            });
            bd.ret(None::<Operand>);
        }
        let report = ainsworth_jones(&mut m, 2);
        assert_eq!(report.injected.len(), 1, "{:?}", report.skipped);
        verify_module(&m).unwrap();
        // Distance 2 on a ×2 loop means iv*4: a Mul by 4 must appear.
        let has_mul4 = m
            .iter_functions()
            .flat_map(|(_, f)| f.blocks.iter())
            .flat_map(|b| b.insts.iter())
            .any(|i| {
                matches!(
                    i,
                    Inst::Bin {
                        op: BinOp::Mul,
                        b: Operand::Imm(4),
                        ..
                    }
                )
            });
        assert!(has_mul4);
    }

    #[test]
    fn report_counts_added_instructions() {
        let mut m = indirect_module();
        let report = ainsworth_jones(&mut m, 32);
        assert!(report.insts_added() >= 7);
    }
}
