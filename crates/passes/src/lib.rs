//! Compiler passes for automated software prefetching.
//!
//! Implements both prefetch-injection schemes the paper evaluates:
//!
//! * [`inject::ainsworth_jones`] — the static state of the art (CGO'17):
//!   find every indirect load inside a loop, extract its load-slice by
//!   backward data-dependence search up to the loop induction PHIs, and
//!   inject an inner-loop prefetch at a single compile-time distance;
//! * [`inject::inject_prefetches`] — APT-GET's profile-guided variant
//!   (§3.5): per-load distances, inner *or outer* injection sites, clamped
//!   prefetch indices, non-canonical induction variables and multi-exit
//!   loops.
//!
//! The analyses ([`loops`], [`slice`]) are shared by both.

pub mod inject;
pub mod loops;
pub mod opt;
pub mod slice;

pub use inject::{
    ainsworth_jones, detect_indirect_loads, inject_prefetches, InjectionReport, InjectionSpec, Site,
};
pub use loops::{analyze_loops, IvUpdate, LoopForest, LoopInfo};
pub use opt::{optimize_module, OptStats};
pub use slice::{extract_slice, SliceError, SliceInfo};
