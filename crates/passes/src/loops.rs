//! Natural-loop analysis: loop forest, induction variables, bounds.

use std::collections::BTreeSet;

use apt_lir::cfg::Cfg;
use apt_lir::{BinOp, BlockId, Function, ICmpPred, Inst, InstId, Operand, Reg, Terminator};

/// How the induction variable advances each iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IvUpdate {
    /// `iv += step` (canonical).
    Add(u64),
    /// `iv *= factor` (non-canonical, §3.5: `i *= 2`).
    Mul(u64),
    /// `iv <<= k` (non-canonical).
    Shl(u64),
}

impl IvUpdate {
    /// The induction value `distance` iterations ahead of `iv`, expressed
    /// as `(multiplier, addend)`: `future = iv * multiplier + addend`.
    pub fn advance_by(self, distance: u64) -> (u64, u64) {
        match self {
            IvUpdate::Add(step) => (1, step.wrapping_mul(distance)),
            IvUpdate::Mul(factor) => {
                let mut m = 1u64;
                for _ in 0..distance.min(63) {
                    m = m.saturating_mul(factor);
                }
                (m, 0)
            }
            IvUpdate::Shl(k) => {
                let shift = (k.saturating_mul(distance)).min(63);
                (1u64 << shift, 0)
            }
        }
    }
}

/// A recognised induction variable of a loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InductionVar {
    /// The φ register (lives in the loop header).
    pub phi: Reg,
    /// Initial value on loop entry.
    pub init: Operand,
    /// Per-iteration update.
    pub update: IvUpdate,
    /// Register holding the updated value (`iv.next`).
    pub next: Reg,
    /// Loop bound compared against on the back edge, if recognisable:
    /// `(bound, true)` when the comparison is on `iv.next`, `(bound,
    /// false)` when on `iv` itself.
    pub bound: Option<Operand>,
}

/// One natural loop.
#[derive(Debug, Clone)]
pub struct LoopInfo {
    /// Loop header (the back-edge target; for rotated loops also the body).
    pub header: BlockId,
    /// Back-edge sources.
    pub latches: Vec<BlockId>,
    /// All blocks in the loop.
    pub blocks: BTreeSet<BlockId>,
    /// Index of the enclosing loop in the forest, if any.
    pub parent: Option<usize>,
    /// Nesting depth (outermost = 1).
    pub depth: u32,
    /// The primary induction variable, if recognised.
    pub iv: Option<InductionVar>,
}

impl LoopInfo {
    /// True if `b` belongs to this loop.
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.contains(&b)
    }
}

/// All loops of a function, sorted outer-to-inner (parents precede
/// children).
#[derive(Debug, Clone)]
pub struct LoopForest {
    pub loops: Vec<LoopInfo>,
    /// Innermost loop containing each block, if any.
    innermost: Vec<Option<usize>>,
}

impl LoopForest {
    /// Innermost loop containing block `b`.
    pub fn innermost_of(&self, b: BlockId) -> Option<usize> {
        self.innermost[b.0 as usize]
    }

    /// The parent loop of loop `i`, if any.
    pub fn parent_of(&self, i: usize) -> Option<usize> {
        self.loops[i].parent
    }
}

/// Computes the loop forest of `func`.
pub fn analyze_loops(func: &Function) -> LoopForest {
    let cfg = Cfg::build(func);
    // Group back edges by header.
    let mut by_header: Vec<(BlockId, Vec<BlockId>)> = Vec::new();
    for (tail, header) in cfg.back_edges() {
        match by_header.iter_mut().find(|(h, _)| *h == header) {
            Some((_, tails)) => tails.push(tail),
            None => by_header.push((header, vec![tail])),
        }
    }

    let mut loops: Vec<LoopInfo> = Vec::new();
    for (header, latches) in by_header {
        let blocks = natural_loop_blocks(&cfg, header, &latches);
        loops.push(LoopInfo {
            header,
            latches,
            blocks,
            parent: None,
            depth: 0,
            iv: None,
        });
    }

    // Sort by size descending so parents precede children, then link
    // parents (smallest enclosing loop with a strict superset of blocks).
    loops.sort_by_key(|l| std::cmp::Reverse(l.blocks.len()));
    for i in 0..loops.len() {
        let mut parent: Option<usize> = None;
        for j in (0..i).rev() {
            if loops[j].blocks.is_superset(&loops[i].blocks) && loops[j].header != loops[i].header {
                parent = Some(match parent {
                    None => j,
                    Some(p) if loops[j].blocks.len() <= loops[p].blocks.len() => j,
                    Some(p) => p,
                });
            }
        }
        loops[i].parent = parent;
        loops[i].depth = match parent {
            None => 1,
            Some(p) => loops[p].depth + 1,
        };
    }

    // Innermost map: later (smaller) loops override earlier ones.
    let mut innermost = vec![None; func.blocks.len()];
    for (i, l) in loops.iter().enumerate() {
        for b in &l.blocks {
            innermost[b.0 as usize] = Some(i);
        }
    }

    // Induction variables.
    for l in &mut loops {
        l.iv = find_induction_var(func, l);
    }

    LoopForest { loops, innermost }
}

fn natural_loop_blocks(cfg: &Cfg, header: BlockId, latches: &[BlockId]) -> BTreeSet<BlockId> {
    let mut blocks: BTreeSet<BlockId> = BTreeSet::new();
    blocks.insert(header);
    let mut work: Vec<BlockId> = Vec::new();
    for &l in latches {
        if blocks.insert(l) {
            work.push(l);
        }
    }
    while let Some(b) = work.pop() {
        for &p in &cfg.preds[b.0 as usize] {
            if blocks.insert(p) {
                work.push(p);
            }
        }
    }
    blocks
}

/// Looks up the instruction defining `r`, if it is defined in `func`.
fn def_of(func: &Function, r: Reg) -> Option<(BlockId, InstId, &Inst)> {
    for (b, block) in func.iter_blocks() {
        for (i, inst) in block.insts.iter().enumerate() {
            if inst.dst() == Some(r) {
                return Some((b, InstId(i as u32), inst));
            }
        }
    }
    None
}

/// Recognises the loop's primary induction variable: a header φ whose
/// in-loop incoming is `phi ⊕ constant` for ⊕ ∈ {+, *, <<}.
fn find_induction_var(func: &Function, l: &LoopInfo) -> Option<InductionVar> {
    let header = func.block(l.header);
    for inst in header.insts.iter().take_while(|i| i.is_phi()) {
        let Inst::Phi { dst, incomings } = inst else {
            unreachable!()
        };
        let mut init: Option<Operand> = None;
        let mut latch_val: Option<Operand> = None;
        for (pred, op) in incomings {
            if l.contains(*pred) {
                latch_val = Some(*op);
            } else {
                init = Some(*op);
            }
        }
        let (Some(init), Some(Operand::Reg(next))) = (init, latch_val) else {
            continue;
        };
        let Some((def_block, _, def)) = def_of(func, next) else {
            continue;
        };
        if !l.contains(def_block) {
            continue;
        }
        let update = match def {
            Inst::Bin { op, a, b, .. } => {
                let (x, y) = (*a, *b);
                let matches_phi = |o: Operand| o == Operand::Reg(*dst);
                let const_other = |o: Operand, other: Operand| {
                    if matches_phi(o) {
                        other.imm()
                    } else {
                        None
                    }
                };
                match op {
                    BinOp::Add => const_other(x, y)
                        .or_else(|| const_other(y, x))
                        .map(IvUpdate::Add),
                    BinOp::Mul => const_other(x, y)
                        .or_else(|| const_other(y, x))
                        .map(IvUpdate::Mul),
                    BinOp::Shl => const_other(x, y).map(IvUpdate::Shl),
                    _ => None,
                }
            }
            _ => None,
        };
        let Some(update) = update else { continue };

        let bound = find_bound(func, l, *dst, next);
        return Some(InductionVar {
            phi: *dst,
            init,
            update,
            next,
            bound,
        });
    }
    None
}

/// Finds the loop bound from a latch terminator of the form
/// `br (icmp lt iv.next, bound), header, exit` (or on `iv` itself).
fn find_bound(func: &Function, l: &LoopInfo, phi: Reg, next: Reg) -> Option<Operand> {
    for &latch in &l.latches {
        let term = &func.block(latch).term;
        let Terminator::CondBr { cond, .. } = term else {
            continue;
        };
        let Operand::Reg(c) = cond else { continue };
        let Some((_, _, def)) = def_of(func, *c) else {
            continue;
        };
        if let Inst::Bin {
            op: BinOp::ICmp(pred),
            a,
            b,
            ..
        } = def
        {
            let on_iv = |o: Operand| o == Operand::Reg(next) || o == Operand::Reg(phi);
            match pred {
                ICmpPred::Lts | ICmpPred::Ltu | ICmpPred::Les | ICmpPred::Leu if on_iv(*a) => {
                    return Some(*b);
                }
                ICmpPred::Gts | ICmpPred::Gtu | ICmpPred::Ges | ICmpPred::Geu if on_iv(*b) => {
                    return Some(*a);
                }
                _ => {}
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_lir::{FunctionBuilder, Module, Width};

    fn nested_module() -> Module {
        let mut m = Module::new("t");
        let f = m.add_function("k", &["a", "n", "m"]);
        {
            let mut b = FunctionBuilder::new(m.function_mut(f));
            let (a, n, mm) = (b.param(0), b.param(1), b.param(2));
            b.loop_up(0, n, 1, |b, i| {
                b.loop_up(0, mm, 1, |b, j| {
                    let idx = b.add(i, j);
                    let v = b.load_elem(a, idx, Width::W8, false);
                    b.store_elem(a, j, v, Width::W8);
                });
            });
            b.ret(None::<Operand>);
        }
        m
    }

    #[test]
    fn finds_two_nested_loops() {
        let m = nested_module();
        let forest = analyze_loops(m.function(apt_lir::FuncId(0)));
        assert_eq!(forest.loops.len(), 2);
        let outer = &forest.loops[0];
        let inner = &forest.loops[1];
        assert_eq!(outer.depth, 1);
        assert_eq!(inner.depth, 2);
        assert_eq!(inner.parent, Some(0));
        assert!(outer.blocks.is_superset(&inner.blocks));
    }

    #[test]
    fn recognises_canonical_ivs_and_bounds() {
        let m = nested_module();
        let func = m.function(apt_lir::FuncId(0));
        let forest = analyze_loops(func);
        for l in &forest.loops {
            let iv = l.iv.expect("canonical loop has an IV");
            assert_eq!(iv.update, IvUpdate::Add(1));
            assert!(iv.bound.is_some());
            assert_eq!(iv.init, Operand::Imm(0));
        }
        // Outer bound is %1 (n), inner bound %2 (m).
        let outer_bound = forest.loops[0].iv.unwrap().bound.unwrap();
        let inner_bound = forest.loops[1].iv.unwrap().bound.unwrap();
        assert_eq!(outer_bound, Operand::Reg(Reg(1)));
        assert_eq!(inner_bound, Operand::Reg(Reg(2)));
    }

    #[test]
    fn innermost_map_points_to_inner_loop() {
        let m = nested_module();
        let func = m.function(apt_lir::FuncId(0));
        let forest = analyze_loops(func);
        let inner = &forest.loops[1];
        let idx = forest.innermost_of(inner.header).unwrap();
        assert_eq!(idx, 1);
    }

    #[test]
    fn geometric_iv_recognised() {
        let mut m = Module::new("t");
        let f = m.add_function("g", &["n"]);
        {
            let mut b = FunctionBuilder::new(m.function_mut(f));
            let n = b.param(0);
            b.loop_geometric(1, n, 2, |b, iv| {
                b.prefetch(iv);
            });
            b.ret(None::<Operand>);
        }
        let forest = analyze_loops(m.function(apt_lir::FuncId(0)));
        assert_eq!(forest.loops.len(), 1);
        let iv = forest.loops[0].iv.unwrap();
        assert_eq!(iv.update, IvUpdate::Mul(2));
    }

    #[test]
    fn straight_line_code_has_no_loops() {
        let mut m = Module::new("t");
        let f = m.add_function("s", &[]);
        {
            let mut b = FunctionBuilder::new(m.function_mut(f));
            let v = b.add(1, 2);
            b.ret(Some(v));
        }
        let forest = analyze_loops(m.function(apt_lir::FuncId(0)));
        assert!(forest.loops.is_empty());
    }

    #[test]
    fn iv_advance_math() {
        assert_eq!(IvUpdate::Add(1).advance_by(16), (1, 16));
        assert_eq!(IvUpdate::Add(4).advance_by(8), (1, 32));
        assert_eq!(IvUpdate::Mul(2).advance_by(3), (8, 0));
        assert_eq!(IvUpdate::Shl(1).advance_by(4), (16, 0));
    }
}
