//! Property tests of the injection machinery over randomly shaped loop
//! nests: injection must always leave a verifiable module with exactly
//! the expected number of prefetches, whatever the distances.

use apt_lir::{FunctionBuilder, Module, Operand, Width};
use apt_passes::{
    ainsworth_jones, detect_indirect_loads, inject_prefetches, optimize_module, InjectionSpec, Site,
};
use proptest::prelude::*;

/// A randomly parameterised two-level indirect kernel:
/// `for j { b0 = BO[j*ostride]; for i { v = T[BI[i*istride] + b0] } }`.
fn nested_kernel(ostride: u64, istride: u64, extra_work: usize) -> Module {
    let mut m = Module::new("gen");
    let f = m.add_function("k", &["t", "bi", "bo", "n", "inner"]);
    {
        let mut b = FunctionBuilder::new(m.function_mut(f));
        let (t, bi, bo, n, inner) = (b.param(0), b.param(1), b.param(2), b.param(3), b.param(4));
        b.loop_up(0, n, 1, |b, j| {
            let jo = b.mul(j, ostride);
            let b0 = b.load_elem(bo, jo, Width::W4, false);
            b.loop_up(0, inner, 1, |b, i| {
                let io = b.mul(i, istride);
                let x = b.load_elem(bi, io, Width::W4, false);
                let idx = b.add(x, b0);
                let v = b.load_elem(t, idx, Width::W4, false);
                let mut acc = v;
                for k in 0..extra_work {
                    acc = b.add(acc, k as u64);
                }
                b.store_elem(t, idx, acc, Width::W4);
            });
        });
        b.ret(None::<Operand>);
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn aj_injection_always_verifies(
        ostride in 1u64..4,
        istride in 1u64..4,
        work in 0usize..8,
        distance in 1u64..512,
    ) {
        let mut m = nested_kernel(ostride, istride, work);
        let report = ainsworth_jones(&mut m, distance);
        prop_assert!(!report.injected.is_empty());
        apt_lir::verify::verify_module(&m).unwrap();
    }

    #[test]
    fn outer_injection_always_verifies(
        ostride in 1u64..4,
        istride in 1u64..4,
        work in 0usize..8,
        distance in 1u64..64,
        fanout in 1u64..12,
    ) {
        let m0 = nested_kernel(ostride, istride, work);
        let loads = detect_indirect_loads(&m0);
        prop_assert_eq!(loads.len(), 1);
        let (func, load) = loads[0];
        let mut m = m0;
        let report = inject_prefetches(&mut m, &[InjectionSpec {
            func,
            load,
            distance,
            site: Site::Outer,
            fanout,
            fallback_inner_distance: Some(1),
        }]);
        prop_assert_eq!(report.injected.len(), 1, "{:?}", report.skipped);
        apt_lir::verify::verify_module(&m).unwrap();
        // The clean-up passes must also leave a valid module.
        optimize_module(&mut m);
        apt_lir::verify::verify_module(&m).unwrap();
    }

    /// Injection is idempotent in count: re-running detection on an
    /// injected module finds no *new* work beyond the original loads
    /// (prefetch-slice clones are never themselves indirect candidates
    /// that grow the set unboundedly).
    #[test]
    fn detection_does_not_explode_after_injection(
        distance in 1u64..64,
    ) {
        let mut m = nested_kernel(1, 1, 2);
        let before = detect_indirect_loads(&m).len();
        ainsworth_jones(&mut m, distance);
        let after = detect_indirect_loads(&m).len();
        prop_assert!(after <= before + 1, "before {} after {}", before, after);
    }

    /// optimize_module is a fixpoint: running it twice changes nothing
    /// the second time.
    #[test]
    fn optimizer_reaches_fixpoint(
        ostride in 1u64..4,
        work in 0usize..8,
        distance in 1u64..64,
    ) {
        let mut m = nested_kernel(ostride, 1, work);
        ainsworth_jones(&mut m, distance);
        optimize_module(&mut m);
        let snapshot = apt_lir::print::module_to_string(&m);
        let second = optimize_module(&mut m);
        prop_assert_eq!(second, apt_passes::OptStats::default());
        prop_assert_eq!(apt_lir::print::module_to_string(&m), snapshot);
    }
}

/// §3.5: "support for multiple and complex exit conditions to break out of
/// a loop such as `for(i:K){if(cond(i)) break;}`".
#[test]
fn multi_exit_loop_is_injectable() {
    use apt_lir::ICmpPred;
    let mut m = Module::new("t");
    let f = m.add_function("k", &["t", "b", "n", "limit"]);
    {
        let mut bd = FunctionBuilder::new(m.function_mut(f));
        let (t, bb, n, limit) = (bd.param(0), bd.param(1), bd.param(2), bd.param(3));
        // Hand-rolled rotated loop with an extra break edge.
        let body = bd.new_block("body");
        let brk = bd.new_block("break.check");
        let exit = bd.new_block("exit");
        let guard = bd.current_block();
        let enter = bd.icmp(ICmpPred::Lts, 0u64, n);
        bd.cond_br(enter, body, exit);

        bd.switch_to(body);
        let (iv, iv_phi) = bd.phi_placeholder();
        let x = bd.load_elem(bb, iv, Width::W4, false);
        let v = bd.load_elem(t, x, Width::W4, false); // Indirect target.
        bd.store_elem(t, iv, v, Width::W4);
        // break if v > limit.
        let cond_break = bd.icmp(ICmpPred::Gtu, v, limit);
        bd.cond_br(cond_break, exit, brk);

        bd.switch_to(brk);
        let iv_next = bd.add(iv, 1);
        let again = bd.icmp(ICmpPred::Lts, iv_next, n);
        bd.cond_br(again, body, exit);
        bd.set_phi_incomings(iv_phi, vec![(guard, 0u64.into()), (brk, iv_next.into())]);

        bd.switch_to(exit);
        bd.ret(None::<Operand>);
    }
    apt_lir::verify::verify_module(&m).unwrap();

    let loads = detect_indirect_loads(&m);
    assert_eq!(loads.len(), 1, "the T[B[i]] load must be detected");
    let mut m2 = m.clone();
    let report = ainsworth_jones(&mut m2, 8);
    assert_eq!(report.injected.len(), 1, "{:?}", report.skipped);
    apt_lir::verify::verify_module(&m2).unwrap();
    // A clamped prefetch index must be present (the break does not defeat
    // the bound analysis: the latch comparison still names `n`).
    let has_min = m2
        .iter_functions()
        .flat_map(|(_, f)| f.blocks.iter())
        .flat_map(|b| b.insts.iter())
        .any(|i| {
            matches!(
                i,
                apt_lir::Inst::Bin {
                    op: apt_lir::BinOp::MinS,
                    ..
                }
            )
        });
    assert!(has_min);
}
