//! The simulated machine: functional interpreter + timing + profilers.

use apt_lir::eval::{bin_cost, eval_bin, eval_un, sign_extend};
use apt_lir::{AddressMap, BlockId, FuncId, Reg};
use apt_lir::{Inst, Module, Operand, Pc, Terminator};
use apt_mem::{Hierarchy, MemConfig};
use apt_trace::{TraceConfig, TraceReport};

use crate::lbr::{LbrRing, LbrSample};
use crate::memimg::{MemFault, MemImage};
use crate::pebs::PebsSampler;
use crate::stats::{PerfStats, ProfileData};

/// Simulation configuration: memory system plus profiling knobs.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Memory-hierarchy configuration.
    pub mem: MemConfig,
    /// Cycles between LBR snapshots (`perf record -b` period); 0 disables.
    ///
    /// The paper samples at ~1 ms ≈ 2.3 M cycles on a 2.3 GHz part; scaled
    /// runs default to a denser period so short simulations still collect
    /// enough samples.
    pub lbr_sample_period: u64,
    /// Sample every Nth LLC-missing load (PEBS); 0 disables.
    pub pebs_period: u64,
    /// Abort after this many retired instructions (runaway guard).
    pub inst_limit: u64,
    /// Structured-tracing configuration (off by default: the hierarchy
    /// hooks reduce to a single predictable branch each).
    pub trace: TraceConfig,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            mem: MemConfig::default(),
            lbr_sample_period: 20_000,
            pebs_period: 64,
            inst_limit: 20_000_000_000,
            trace: TraceConfig::off(),
        }
    }
}

impl SimConfig {
    /// Configuration with all profiling disabled (measurement runs).
    pub fn no_profiling(mem: MemConfig) -> SimConfig {
        SimConfig {
            mem,
            lbr_sample_period: 0,
            pebs_period: 0,
            ..SimConfig::default()
        }
    }
}

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// No function with the given name exists in the module.
    UnknownFunction(String),
    /// Wrong number of call arguments.
    ArityMismatch {
        func: String,
        expected: usize,
        got: usize,
    },
    /// An out-of-bounds memory access at the given instruction PC.
    Fault { pc: Pc, fault: MemFault },
    /// The configured instruction limit was exceeded.
    InstLimit,
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            SimError::ArityMismatch {
                func,
                expected,
                got,
            } => write!(f, "`{func}` expects {expected} args, got {got}"),
            SimError::Fault { pc, fault } => write!(f, "{fault} at pc {pc}"),
            SimError::InstLimit => write!(f, "instruction limit exceeded"),
        }
    }
}

impl std::error::Error for SimError {}

/// A machine instance: module text + data image + caches + profilers.
///
/// Cache and profiler state persists across [`Machine::call`]s, so
/// multi-phase workloads (e.g. Brandes' BC) run with warm caches exactly
/// like consecutive phases of a real process.
pub struct Machine<'m> {
    module: &'m Module,
    map: AddressMap,
    cfg: SimConfig,
    /// Functional data memory.
    pub image: MemImage,
    hier: Hierarchy,
    lbr: LbrRing,
    lbr_samples: Vec<LbrSample>,
    next_lbr_sample: u64,
    pebs: PebsSampler,
    instructions: u64,
    cycles: u64,
    branches: u64,
    taken_branches: u64,
}

impl<'m> Machine<'m> {
    /// Creates a machine executing `module` against `image`.
    pub fn new(module: &'m Module, cfg: SimConfig, image: MemImage) -> Machine<'m> {
        let mut hier = Hierarchy::new(&cfg.mem);
        if cfg.trace.is_active() {
            hier.set_trace(cfg.trace);
        }
        Machine {
            module,
            map: module.assign_pcs(),
            cfg,
            image,
            hier,
            lbr: LbrRing::new(),
            lbr_samples: Vec::new(),
            next_lbr_sample: if cfg.lbr_sample_period == 0 {
                u64::MAX
            } else {
                cfg.lbr_sample_period
            },
            pebs: PebsSampler::new(cfg.pebs_period),
            instructions: 0,
            cycles: 0,
            branches: 0,
            taken_branches: 0,
        }
    }

    /// The PC layout of the module under execution.
    pub fn address_map(&self) -> &AddressMap {
        &self.map
    }

    /// Cumulative statistics so far.
    pub fn stats(&self) -> PerfStats {
        PerfStats {
            instructions: self.instructions,
            cycles: self.cycles,
            branches: self.branches,
            taken_branches: self.taken_branches,
            mem: self.hier.counters,
        }
    }

    /// Exports the machine's cumulative counters into `registry`: core
    /// stats ([`PerfStats::export_metrics`], which includes the memory
    /// counters) plus live MSHR-pressure gauges only the hierarchy knows.
    pub fn export_metrics(&self, registry: &apt_metrics::Registry, labels: &[(&str, &str)]) {
        if !registry.is_enabled() {
            return;
        }
        self.stats().export_metrics(registry, labels);
        registry
            .gauge(
                "apt_mem_mshr_peak_occupancy",
                "Peak fill-buffer occupancy of the last exported simulation",
                labels,
            )
            .set(self.hier.mshr_peak() as f64);
        registry
            .gauge(
                "apt_mem_mshr_capacity",
                "Configured fill-buffer entries",
                labels,
            )
            .set(self.hier.mshr_capacity() as f64);
    }

    /// Takes the collected hardware profiles.
    pub fn take_profile(&mut self) -> ProfileData {
        ProfileData {
            lbr_samples: std::mem::take(&mut self.lbr_samples),
            pebs: self.pebs.take_records(),
        }
    }

    /// Renders the profiles collected so far as `perf script` text (see
    /// [`crate::perfscript`]), without consuming them.
    pub fn export_perf_script(&self) -> String {
        let profile = ProfileData {
            lbr_samples: self.lbr_samples.clone(),
            pebs: self.pebs.records().to_vec(),
        };
        crate::perfscript::export_perf_script(&profile, &self.stats())
    }

    /// Ends structured tracing and takes everything it gathered (events,
    /// per-PC prefetch outcomes). Still-outstanding prefetches finalize as
    /// `useless`, so call this after the workload has finished.
    pub fn take_trace(&mut self) -> TraceReport {
        // Install any still-ready fills first so prefetches whose data
        // arrived (but was never demanded) classify as useless/early
        // rather than staying in-flight.
        self.hier.drain(self.cycles);
        self.hier.take_trace()
    }

    /// Calls `func` with `args`; returns its return value, if any.
    pub fn call(&mut self, func: &str, args: &[u64]) -> Result<Option<u64>, SimError> {
        let (fid, f) = self
            .module
            .function_by_name(func)
            .ok_or_else(|| SimError::UnknownFunction(func.to_string()))?;
        if f.arity() != args.len() {
            return Err(SimError::ArityMismatch {
                func: func.to_string(),
                expected: f.arity(),
                got: args.len(),
            });
        }
        self.exec(fid, args)
    }

    #[inline]
    fn val(regs: &[u64], op: Operand) -> u64 {
        match op {
            Operand::Reg(Reg(r)) => regs[r as usize],
            Operand::Imm(v) => v,
        }
    }

    #[inline]
    fn retire(&mut self, cost: u64) {
        self.instructions += 1;
        self.cycles += cost;
        if self.cycles >= self.next_lbr_sample {
            self.lbr_samples.push(self.lbr.snapshot());
            self.next_lbr_sample = self.cycles + self.cfg.lbr_sample_period;
        }
    }

    fn exec(&mut self, fid: FuncId, args: &[u64]) -> Result<Option<u64>, SimError> {
        let func = self.module.function(fid);
        let mut regs = vec![0u64; func.next_reg as usize];
        regs[..args.len()].copy_from_slice(args);

        let mut cur: BlockId = func.entry;
        let mut prev: Option<BlockId> = None;
        // Scratch for parallel-copy φ resolution.
        let mut phi_tmp: Vec<(u32, u64)> = Vec::new();

        loop {
            if self.instructions > self.cfg.inst_limit {
                return Err(SimError::InstLimit);
            }
            let block = func.block(cur);
            let base_pc = self.map.block_start_pc(fid, cur).0;

            // φ prefix: parallel copies selected by the edge we arrived on.
            let phi_count = block.phi_count();
            if phi_count > 0 {
                let from = prev.expect("phi in entry block rejected by verifier");
                phi_tmp.clear();
                for inst in &block.insts[..phi_count] {
                    let Inst::Phi { dst, incomings } = inst else {
                        unreachable!("phi prefix")
                    };
                    let (_, op) = incomings
                        .iter()
                        .find(|(p, _)| *p == from)
                        .expect("verifier guarantees an incoming per predecessor");
                    phi_tmp.push((dst.0, Self::val(&regs, *op)));
                }
                for &(d, v) in &phi_tmp {
                    regs[d as usize] = v;
                }
            }

            // Straight-line body.
            for (i, inst) in block.insts.iter().enumerate().skip(phi_count) {
                let pc = Pc(base_pc + 4 * i as u64);
                match inst {
                    Inst::Phi { .. } => unreachable!("phi prefix"),
                    Inst::Bin { dst, op, a, b } => {
                        let x = Self::val(&regs, *a);
                        let y = Self::val(&regs, *b);
                        regs[dst.0 as usize] = eval_bin(*op, x, y);
                        self.retire(bin_cost(*op));
                    }
                    Inst::Un { dst, op, a } => {
                        let x = Self::val(&regs, *a);
                        regs[dst.0 as usize] = eval_un(*op, x);
                        self.retire(1);
                    }
                    Inst::Select {
                        dst,
                        cond,
                        if_true,
                        if_false,
                    } => {
                        let c = Self::val(&regs, *cond);
                        regs[dst.0 as usize] = if c != 0 {
                            Self::val(&regs, *if_true)
                        } else {
                            Self::val(&regs, *if_false)
                        };
                        self.retire(1);
                    }
                    Inst::Load {
                        dst,
                        addr,
                        width,
                        sext,
                        spec,
                    } => {
                        let a = Self::val(&regs, *addr);
                        let w = width.bytes();
                        let raw = match self.image.read(a, w) {
                            Ok(v) => v,
                            // Speculative (prefetch-slice) loads never
                            // fault: out-of-range reads yield 0 and skip
                            // the memory system.
                            Err(_) if *spec => {
                                regs[dst.0 as usize] = 0;
                                self.retire(1);
                                continue;
                            }
                            Err(fault) => return Err(SimError::Fault { pc, fault }),
                        };
                        let v = if *sext { sign_extend(raw, w) } else { raw };
                        regs[dst.0 as usize] = v;
                        let r = self.hier.demand_load(pc.0, a, self.cycles);
                        self.pebs.observe(pc, r.served, self.cycles);
                        self.retire(r.latency);
                    }
                    Inst::Store { addr, value, width } => {
                        let a = Self::val(&regs, *addr);
                        let v = Self::val(&regs, *value);
                        self.image
                            .write(a, v, width.bytes())
                            .map_err(|fault| SimError::Fault { pc, fault })?;
                        self.hier.store(pc.0, a, self.cycles);
                        self.retire(1);
                    }
                    Inst::Prefetch { addr } => {
                        let a = Self::val(&regs, *addr);
                        // Prefetching unmapped addresses is architecturally
                        // a no-op (like x86 PREFETCHT0), so no fault check.
                        self.hier.sw_prefetch(pc.0, a, self.cycles);
                        self.retire(1);
                    }
                }
            }

            // Terminator.
            let term_pc = self.map.term_pc(fid, cur);
            match &block.term {
                Terminator::Br { target } => {
                    self.branches += 1;
                    self.taken_branches += 1;
                    self.retire(1);
                    self.lbr
                        .record(term_pc, self.map.block_start_pc(fid, *target), self.cycles);
                    prev = Some(cur);
                    cur = *target;
                }
                Terminator::CondBr { cond, then_, else_ } => {
                    let c = Self::val(&regs, *cond);
                    self.branches += 1;
                    self.retire(1);
                    prev = Some(cur);
                    if c != 0 {
                        self.taken_branches += 1;
                        self.lbr
                            .record(term_pc, self.map.block_start_pc(fid, *then_), self.cycles);
                        cur = *then_;
                    } else {
                        cur = *else_;
                    }
                }
                Terminator::Ret { value } => {
                    self.retire(1);
                    return Ok(value.map(|v| Self::val(&regs, v)));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_lir::{BinOp, FCmpPred, FunctionBuilder, ICmpPred, UnOp, Width};

    fn sum_module() -> Module {
        let mut m = Module::new("t");
        let f = m.add_function("sum", &["a", "n"]);
        {
            let mut b = FunctionBuilder::new(m.function_mut(f));
            let (a, n) = (b.param(0), b.param(1));
            let s = b.loop_up_reduce(0, n, 1, 0, |b, iv, acc| {
                let v = b.load_elem(a, iv, Width::W8, false);
                b.add(acc, v).into()
            });
            b.ret(Some(s));
        }
        apt_lir::verify::verify_module(&m).unwrap();
        m
    }

    #[test]
    fn functional_sum_is_correct() {
        let m = sum_module();
        let mut img = MemImage::new();
        let data: Vec<u64> = (1..=100).collect();
        let base = img.alloc_u64_slice(&data);
        let mut mach = Machine::new(&m, SimConfig::default(), img);
        let r = mach.call("sum", &[base, 100]).unwrap();
        assert_eq!(r, Some(5050));
        let stats = mach.stats();
        assert!(stats.instructions > 400);
        assert!(stats.cycles > stats.instructions);
    }

    #[test]
    fn export_metrics_reflects_the_run() {
        let m = sum_module();
        let mut img = MemImage::new();
        let data: Vec<u64> = (1..=100).collect();
        let base = img.alloc_u64_slice(&data);
        let mut mach = Machine::new(&m, SimConfig::default(), img);
        mach.call("sum", &[base, 100]).unwrap();
        let registry = apt_metrics::Registry::new();
        let labels = [("workload", "sum")];
        mach.export_metrics(&registry, &labels);
        let stats = mach.stats();
        assert_eq!(
            registry.counter_value("apt_cpu_instructions_total", &labels),
            Some(stats.instructions)
        );
        assert_eq!(
            registry.counter_value("apt_cpu_cycles_total", &labels),
            Some(stats.cycles)
        );
        assert_eq!(
            registry.counter_value("apt_mem_demand_loads_total", &labels),
            Some(stats.mem.loads)
        );
        let ipc = registry.gauge_value("apt_cpu_ipc_ratio", &labels).unwrap();
        assert!((ipc - stats.ipc()).abs() < 1e-12);
        let cap = registry
            .gauge_value("apt_mem_mshr_capacity", &labels)
            .unwrap();
        assert!(cap >= 1.0);
        // Disabled registries see nothing and cost nothing.
        let off = apt_metrics::Registry::disabled();
        mach.export_metrics(&off, &labels);
        assert_eq!(
            off.counter_value("apt_cpu_instructions_total", &labels),
            None
        );
    }

    #[test]
    fn zero_trip_loop_returns_init() {
        let m = sum_module();
        let mut img = MemImage::new();
        let base = img.alloc_u64_slice(&[7]);
        let mut mach = Machine::new(&m, SimConfig::default(), img);
        assert_eq!(mach.call("sum", &[base, 0]).unwrap(), Some(0));
    }

    #[test]
    fn unknown_function_errors() {
        let m = sum_module();
        let mut mach = Machine::new(&m, SimConfig::default(), MemImage::new());
        assert_eq!(
            mach.call("nope", &[]),
            Err(SimError::UnknownFunction("nope".into()))
        );
    }

    #[test]
    fn arity_mismatch_errors() {
        let m = sum_module();
        let mut mach = Machine::new(&m, SimConfig::default(), MemImage::new());
        assert!(matches!(
            mach.call("sum", &[1]),
            Err(SimError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn oob_load_faults_with_pc() {
        let m = sum_module();
        let mut mach = Machine::new(&m, SimConfig::default(), MemImage::new());
        let e = mach.call("sum", &[0x1000_0000, 4]).unwrap_err();
        assert!(matches!(e, SimError::Fault { .. }), "{e}");
    }

    #[test]
    fn inst_limit_aborts() {
        let m = sum_module();
        let mut img = MemImage::new();
        let base = img.alloc_u64_slice(&vec![0u64; 1000]);
        let cfg = SimConfig {
            inst_limit: 100,
            ..SimConfig::default()
        };
        let mut mach = Machine::new(&m, cfg, img);
        assert_eq!(mach.call("sum", &[base, 1000]), Err(SimError::InstLimit));
    }

    #[test]
    fn lbr_records_loop_back_edges() {
        let m = sum_module();
        let mut img = MemImage::new();
        let base = img.alloc_u64_slice(&vec![1u64; 64]);
        let mut mach = Machine::new(&m, SimConfig::default(), img);
        mach.call("sum", &[base, 64]).unwrap();
        // 63 back-edge takes + 1 guard take = 64 taken branches.
        let stats = mach.stats();
        assert_eq!(stats.taken_branches, 64);
        assert_eq!(stats.branches, 65); // + the final not-taken exit.
    }

    #[test]
    fn sign_extension_rules() {
        assert_eq!(sign_extend(0xff, 1), u64::MAX);
        assert_eq!(sign_extend(0x7f, 1), 0x7f);
        assert_eq!(sign_extend(0xffff_ffff, 4), u64::MAX);
        assert_eq!(sign_extend(5, 8), 5);
    }

    #[test]
    fn eval_bin_signed_ops() {
        let neg1 = (-1i64) as u64;
        assert_eq!(eval_bin(BinOp::ICmp(ICmpPred::Lts), neg1, 0), 1);
        assert_eq!(eval_bin(BinOp::ICmp(ICmpPred::Ltu), neg1, 0), 0);
        assert_eq!(eval_bin(BinOp::ShrA, neg1, 8), neg1);
        assert_eq!(eval_bin(BinOp::DivS, neg1, 1), neg1);
        assert_eq!(eval_bin(BinOp::DivU, 1, 0), 0); // Trap value.
        assert_eq!(eval_bin(BinOp::MinS, neg1, 3), neg1);
        assert_eq!(eval_bin(BinOp::MinU, neg1, 3), 3);
    }

    #[test]
    fn eval_float_ops() {
        let a = 2.5f64.to_bits();
        let b = 0.5f64.to_bits();
        assert_eq!(f64::from_bits(eval_bin(BinOp::FAdd, a, b)), 3.0);
        assert_eq!(f64::from_bits(eval_bin(BinOp::FDiv, a, b)), 5.0);
        assert_eq!(eval_bin(BinOp::FCmp(FCmpPred::Gt), a, b), 1);
        assert_eq!(eval_un(UnOp::IToF, 3), 3.0f64.to_bits());
        assert_eq!(eval_un(UnOp::FToI, 3.9f64.to_bits()), 3);
    }
}
