//! The simulated machine: functional interpreter + timing + profilers.

use apt_lir::eval::{bin_cost, eval_bin, eval_un, sign_extend};
use apt_lir::{AddressMap, BlockId, FuncId, Reg};
use apt_lir::{Inst, Module, Operand, Pc, Terminator};
use apt_mem::{Hierarchy, MemConfig};
use apt_timeline::{Timeline, WindowOutcomes, WindowSample};
use apt_trace::{PcOutcomes, TraceConfig, TraceReport};

use crate::lbr::{LbrRing, LbrSample};
use crate::memimg::{MemFault, MemImage};
use crate::pebs::PebsSampler;
use crate::stats::{PerfStats, ProfileData};

/// Simulation configuration: memory system plus profiling knobs.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Memory-hierarchy configuration.
    pub mem: MemConfig,
    /// Cycles between LBR snapshots (`perf record -b` period); 0 disables.
    ///
    /// The paper samples at ~1 ms ≈ 2.3 M cycles on a 2.3 GHz part; scaled
    /// runs default to a denser period so short simulations still collect
    /// enough samples.
    pub lbr_sample_period: u64,
    /// Sample every Nth LLC-missing load (PEBS); 0 disables.
    pub pebs_period: u64,
    /// Abort after this many retired instructions (runaway guard).
    pub inst_limit: u64,
    /// Structured-tracing configuration (off by default: the hierarchy
    /// hooks reduce to a single predictable branch each).
    pub trace: TraceConfig,
    /// Cycles per telemetry window ([`Machine::take_timeline`]); 0
    /// disables sampling. Sampling is passive — it reads counters that are
    /// maintained anyway — so it is on by default; the cost is one
    /// predictable branch per retired instruction plus ~¼ KiB of samples
    /// per million cycles.
    pub timeline_window: u64,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            mem: MemConfig::default(),
            lbr_sample_period: 20_000,
            pebs_period: 64,
            inst_limit: 20_000_000_000,
            trace: TraceConfig::off(),
            timeline_window: 10_000,
        }
    }
}

impl SimConfig {
    /// Configuration with all profiling disabled (measurement runs).
    pub fn no_profiling(mem: MemConfig) -> SimConfig {
        SimConfig {
            mem,
            lbr_sample_period: 0,
            pebs_period: 0,
            ..SimConfig::default()
        }
    }
}

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// No function with the given name exists in the module.
    UnknownFunction(String),
    /// Wrong number of call arguments.
    ArityMismatch {
        func: String,
        expected: usize,
        got: usize,
    },
    /// An out-of-bounds memory access at the given instruction PC.
    Fault { pc: Pc, fault: MemFault },
    /// The configured instruction limit was exceeded.
    InstLimit,
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            SimError::ArityMismatch {
                func,
                expected,
                got,
            } => write!(f, "`{func}` expects {expected} args, got {got}"),
            SimError::Fault { pc, fault } => write!(f, "{fault} at pc {pc}"),
            SimError::InstLimit => write!(f, "instruction limit exceeded"),
        }
    }
}

impl std::error::Error for SimError {}

/// A machine instance: module text + data image + caches + profilers.
///
/// Cache and profiler state persists across [`Machine::call`]s, so
/// multi-phase workloads (e.g. Brandes' BC) run with warm caches exactly
/// like consecutive phases of a real process.
pub struct Machine<'m> {
    module: &'m Module,
    map: AddressMap,
    cfg: SimConfig,
    /// Functional data memory.
    pub image: MemImage,
    hier: Hierarchy,
    lbr: LbrRing,
    lbr_samples: Vec<LbrSample>,
    next_lbr_sample: u64,
    pebs: PebsSampler,
    instructions: u64,
    cycles: u64,
    branches: u64,
    taken_branches: u64,
    // Telemetry windows (see `close_window`): samples emitted so far, the
    // next boundary, and the cumulative-counter snapshot at the last close.
    timeline: Vec<WindowSample>,
    next_window: u64,
    win_index: u64,
    win_start: PerfStats,
    win_start_mshr_occ: u64,
    win_start_outcomes: PcOutcomes,
    timeline_done: bool,
}

impl<'m> Machine<'m> {
    /// Creates a machine executing `module` against `image`.
    pub fn new(module: &'m Module, cfg: SimConfig, image: MemImage) -> Machine<'m> {
        let mut hier = Hierarchy::new(&cfg.mem);
        if cfg.trace.is_active() {
            hier.set_trace(cfg.trace);
        }
        Machine {
            module,
            map: module.assign_pcs(),
            cfg,
            image,
            hier,
            lbr: LbrRing::new(),
            lbr_samples: Vec::new(),
            next_lbr_sample: if cfg.lbr_sample_period == 0 {
                u64::MAX
            } else {
                cfg.lbr_sample_period
            },
            pebs: PebsSampler::new(cfg.pebs_period),
            instructions: 0,
            cycles: 0,
            branches: 0,
            taken_branches: 0,
            timeline: Vec::new(),
            next_window: if cfg.timeline_window == 0 {
                u64::MAX
            } else {
                cfg.timeline_window
            },
            win_index: 0,
            win_start: PerfStats::default(),
            win_start_mshr_occ: 0,
            win_start_outcomes: PcOutcomes::default(),
            timeline_done: false,
        }
    }

    /// The PC layout of the module under execution.
    pub fn address_map(&self) -> &AddressMap {
        &self.map
    }

    /// Cumulative statistics so far.
    pub fn stats(&self) -> PerfStats {
        PerfStats {
            instructions: self.instructions,
            cycles: self.cycles,
            branches: self.branches,
            taken_branches: self.taken_branches,
            mem: self.hier.counters,
        }
    }

    /// Exports the machine's cumulative counters into `registry`: core
    /// stats ([`PerfStats::export_metrics`], which includes the memory
    /// counters) plus live MSHR-pressure gauges only the hierarchy knows.
    pub fn export_metrics(&self, registry: &apt_metrics::Registry, labels: &[(&str, &str)]) {
        if !registry.is_enabled() {
            return;
        }
        self.stats().export_metrics(registry, labels);
        registry
            .gauge(
                "apt_mem_mshr_peak_occupancy",
                "Peak fill-buffer occupancy of the last exported simulation",
                labels,
            )
            .set(self.hier.mshr_peak() as f64);
        registry
            .gauge(
                "apt_mem_mshr_capacity",
                "Configured fill-buffer entries",
                labels,
            )
            .set(self.hier.mshr_capacity() as f64);
    }

    /// Takes the collected hardware profiles.
    pub fn take_profile(&mut self) -> ProfileData {
        ProfileData {
            lbr_samples: std::mem::take(&mut self.lbr_samples),
            pebs: self.pebs.take_records(),
        }
    }

    /// Renders the profiles collected so far as `perf script` text (see
    /// [`crate::perfscript`]), without consuming them.
    pub fn export_perf_script(&self) -> String {
        let profile = ProfileData {
            lbr_samples: self.lbr_samples.clone(),
            pebs: self.pebs.records().to_vec(),
        };
        crate::perfscript::export_perf_script(&profile, &self.stats())
    }

    /// Ends structured tracing and takes everything it gathered (events,
    /// per-PC prefetch outcomes). Still-outstanding prefetches finalize as
    /// `useless`, so call this after the workload has finished.
    pub fn take_trace(&mut self) -> TraceReport {
        // Flush the final telemetry window before the outcome tracker
        // finalizes (it needs the pre-finalize pending count), then install
        // any still-ready fills so prefetches whose data arrived (but was
        // never demanded) classify as useless/early rather than in-flight.
        self.finish_timeline();
        self.hier.drain(self.cycles);
        self.hier.take_trace()
    }

    /// Calls `func` with `args`; returns its return value, if any.
    pub fn call(&mut self, func: &str, args: &[u64]) -> Result<Option<u64>, SimError> {
        let mut st = self.begin_call(func, args)?;
        match self.run_core(&mut st, u64::MAX)? {
            CoreOutcome::Done(v) => Ok(v),
            CoreOutcome::Paused => unreachable!("unbounded run_core always finishes"),
        }
    }

    /// Resolves `func`, checks arity, and returns the initial detailed
    /// activation state without executing anything. Drive it with
    /// [`Machine::run_core`]; [`Machine::call`] is the unbounded
    /// combination of the two.
    pub fn begin_call(&mut self, func: &str, args: &[u64]) -> Result<CoreState, SimError> {
        let (fid, f) = self
            .module
            .function_by_name(func)
            .ok_or_else(|| SimError::UnknownFunction(func.to_string()))?;
        if f.arity() != args.len() {
            return Err(SimError::ArityMismatch {
                func: func.to_string(),
                expected: f.arity(),
                got: args.len(),
            });
        }
        let mut regs = vec![0u64; f.next_reg as usize];
        regs[..args.len()].copy_from_slice(args);
        Ok(CoreState {
            fid,
            regs,
            block: f.entry,
        })
    }

    #[inline]
    fn val(regs: &[u64], op: Operand) -> u64 {
        match op {
            Operand::Reg(Reg(r)) => regs[r as usize],
            Operand::Imm(v) => v,
        }
    }

    #[inline]
    fn retire(&mut self, cost: u64) {
        self.instructions += 1;
        self.cycles += cost;
        if self.cycles >= self.next_lbr_sample {
            self.lbr_samples.push(self.lbr.snapshot());
            self.next_lbr_sample = self.cycles + self.cfg.lbr_sample_period;
        }
        if self.cycles >= self.next_window {
            self.close_window(0);
            // One instruction can cost more than a whole window; realign to
            // the next boundary past `cycles` rather than emitting a
            // backlog of empty windows.
            let w = self.cfg.timeline_window;
            self.next_window = (self.cycles / w + 1) * w;
        }
    }

    /// Closes the current telemetry window at `self.cycles`: emits the
    /// delta of every cumulative counter since the last close. Purely
    /// observational — it never mutates cache, MSHR, or tracer *state*,
    /// only reads (and re-anchors) monotone counters, so enabling the
    /// timeline cannot change simulated results.
    fn close_window(&mut self, pending_useless: u64) {
        let end = self.stats();
        let s = self.win_start;
        let (mshr_occ_cum, mshr_peak) = self.hier.mshr_window_stats(self.cycles);
        let out = self.hier.tracer.outcome_totals();
        let o = self.win_start_outcomes;
        self.timeline.push(WindowSample {
            index: self.win_index,
            start_cycle: s.cycles,
            end_cycle: end.cycles,
            start_instr: s.instructions,
            instructions: end.instructions - s.instructions,
            cycles: end.cycles - s.cycles,
            branches: end.branches - s.branches,
            taken_branches: end.taken_branches - s.taken_branches,
            loads: end.mem.loads - s.mem.loads,
            stores: end.mem.stores - s.mem.stores,
            l1_hits: end.mem.l1_hits - s.mem.l1_hits,
            l2_hits: end.mem.l2_hits - s.mem.l2_hits,
            llc_hits: end.mem.llc_hits - s.mem.llc_hits,
            demand_fills: end.mem.demand_fills - s.mem.demand_fills,
            fb_hits_swpf: end.mem.fb_hits_swpf - s.mem.fb_hits_swpf,
            fb_hits_other: end.mem.fb_hits_other - s.mem.fb_hits_other,
            sw_pf_issued: end.mem.sw_pf_issued - s.mem.sw_pf_issued,
            sw_pf_redundant: end.mem.sw_pf_redundant - s.mem.sw_pf_redundant,
            sw_pf_dropped_full: end.mem.sw_pf_dropped_full - s.mem.sw_pf_dropped_full,
            sw_pf_offcore: end.mem.sw_pf_offcore - s.mem.sw_pf_offcore,
            sw_pf_oncore: end.mem.sw_pf_oncore - s.mem.sw_pf_oncore,
            hw_pf_offcore: end.mem.hw_pf_offcore - s.mem.hw_pf_offcore,
            pf_evicted_unused: end.mem.pf_evicted_unused - s.mem.pf_evicted_unused,
            pf_used: end.mem.pf_used - s.mem.pf_used,
            stall_l2: end.mem.stall_l2 - s.mem.stall_l2,
            stall_llc: end.mem.stall_llc - s.mem.stall_llc,
            stall_dram: end.mem.stall_dram - s.mem.stall_dram,
            mshr_occ_cycles: mshr_occ_cum - self.win_start_mshr_occ,
            mshr_peak: mshr_peak as u64,
            outcomes: WindowOutcomes {
                issued: out.issued - o.issued,
                timely: out.timely - o.timely,
                late: out.late - o.late,
                early: out.early - o.early,
                useless: out.useless - o.useless + pending_useless,
                redundant: out.redundant - o.redundant,
                dropped: out.dropped - o.dropped,
            },
        });
        self.win_index += 1;
        self.win_start = end;
        self.win_start_mshr_occ = mshr_occ_cum;
        self.win_start_outcomes = out;
    }

    /// Flushes the final (usually partial) telemetry window. Idempotent;
    /// called from [`Machine::take_timeline`] and [`Machine::take_trace`]
    /// so either call order sees complete windows. Prefetches still
    /// unclassified at this point count as `useless`, mirroring the
    /// outcome tracker's finalization rule.
    fn finish_timeline(&mut self) {
        if self.timeline_done || self.cfg.timeline_window == 0 {
            return;
        }
        self.timeline_done = true;
        // Install any already-arrived fills so their classifications land
        // in the final window (`take_trace` does the same drain).
        self.hier.drain(self.cycles);
        let pending = self.hier.tracer.outcome_pending() as u64;
        if self.instructions > self.win_start.instructions || pending > 0 {
            self.close_window(pending);
        }
    }

    /// Ends telemetry collection and returns the window stream. The final
    /// partial window is flushed first, so the samples sum exactly to the
    /// end-of-run [`Machine::stats`] totals.
    pub fn take_timeline(&mut self) -> Timeline {
        self.finish_timeline();
        Timeline {
            window: self.cfg.timeline_window,
            samples: std::mem::take(&mut self.timeline),
        }
    }

    /// Runs the detailed core from `st` until the function returns or at
    /// least `fuel` more instructions have retired, pausing at the next
    /// block boundary (the overshoot is at most one block, so the state
    /// stays a clean `(regs, block)` pair the functional interpreter can
    /// pick up). Timing, profiling, and telemetry behave exactly as in an
    /// unbounded run — a paused-and-resumed execution is byte-identical to
    /// a straight one.
    pub fn run_core(&mut self, st: &mut CoreState, fuel: u64) -> Result<CoreOutcome, SimError> {
        apt_selfprof::prof_scope!("cpu/exec");
        let fid = st.fid;
        let func = self.module.function(fid);
        let regs = &mut st.regs;
        let mut cur: BlockId = st.block;
        let run_start = self.instructions;
        // Scratch for parallel-copy φ resolution.
        let mut phi_tmp: Vec<(u32, u64)> = Vec::new();

        // φ-nodes resolve when the edge into their block is taken (the
        // incoming value is picked by predecessor, and at that point the
        // predecessor's registers are exactly the edge's source values).
        // Resolving on entry via a `prev` block would be equivalent; the
        // edge formulation is what lets a pause point be just `(regs,
        // block)` with no edge memory.
        fn apply_phis(
            func: &apt_lir::Function,
            from: BlockId,
            target: BlockId,
            regs: &mut [u64],
            phi_tmp: &mut Vec<(u32, u64)>,
        ) {
            let block = func.block(target);
            let phi_count = block.phi_count();
            if phi_count == 0 {
                return;
            }
            phi_tmp.clear();
            for inst in &block.insts[..phi_count] {
                let Inst::Phi { dst, incomings } = inst else {
                    unreachable!("phi prefix")
                };
                let (_, op) = incomings
                    .iter()
                    .find(|(p, _)| *p == from)
                    .expect("verifier guarantees an incoming per predecessor");
                phi_tmp.push((dst.0, Machine::val(regs, *op)));
            }
            for &(d, v) in phi_tmp.iter() {
                regs[d as usize] = v;
            }
        }

        loop {
            if self.instructions > self.cfg.inst_limit {
                return Err(SimError::InstLimit);
            }
            let fetch_scope = apt_selfprof::ScopeGuard::enter("cpu/step/fetch");
            let block = func.block(cur);
            let base_pc = self.map.block_start_pc(fid, cur).0;
            // (Block lookup stands in for fetch/decode; φs retire free.)
            let phi_count = block.phi_count();

            drop(fetch_scope);

            // Straight-line body.
            apt_selfprof::prof_scope!("cpu/step/exec");
            for (i, inst) in block.insts.iter().enumerate().skip(phi_count) {
                let pc = Pc(base_pc + 4 * i as u64);
                match inst {
                    Inst::Phi { .. } => unreachable!("phi prefix"),
                    Inst::Bin { dst, op, a, b } => {
                        let x = Self::val(regs, *a);
                        let y = Self::val(regs, *b);
                        regs[dst.0 as usize] = eval_bin(*op, x, y);
                        self.retire(bin_cost(*op));
                    }
                    Inst::Un { dst, op, a } => {
                        let x = Self::val(regs, *a);
                        regs[dst.0 as usize] = eval_un(*op, x);
                        self.retire(1);
                    }
                    Inst::Select {
                        dst,
                        cond,
                        if_true,
                        if_false,
                    } => {
                        let c = Self::val(regs, *cond);
                        regs[dst.0 as usize] = if c != 0 {
                            Self::val(regs, *if_true)
                        } else {
                            Self::val(regs, *if_false)
                        };
                        self.retire(1);
                    }
                    Inst::Load {
                        dst,
                        addr,
                        width,
                        sext,
                        spec,
                    } => {
                        let a = Self::val(regs, *addr);
                        let w = width.bytes();
                        let raw = match self.image.read(a, w) {
                            Ok(v) => v,
                            // Speculative (prefetch-slice) loads never
                            // fault: out-of-range reads yield 0 and skip
                            // the memory system.
                            Err(_) if *spec => {
                                regs[dst.0 as usize] = 0;
                                self.retire(1);
                                continue;
                            }
                            Err(fault) => return Err(SimError::Fault { pc, fault }),
                        };
                        let v = if *sext { sign_extend(raw, w) } else { raw };
                        regs[dst.0 as usize] = v;
                        let r = {
                            apt_selfprof::prof_scope!("cpu/step/mem");
                            self.hier.demand_load(pc.0, a, self.cycles)
                        };
                        self.pebs.observe(pc, r.served, self.cycles);
                        self.retire(r.latency);
                    }
                    Inst::Store { addr, value, width } => {
                        let a = Self::val(regs, *addr);
                        let v = Self::val(regs, *value);
                        self.image
                            .write(a, v, width.bytes())
                            .map_err(|fault| SimError::Fault { pc, fault })?;
                        {
                            apt_selfprof::prof_scope!("cpu/step/mem");
                            self.hier.store(pc.0, a, self.cycles);
                        }
                        self.retire(1);
                    }
                    Inst::Prefetch { addr } => {
                        let a = Self::val(regs, *addr);
                        // Prefetching unmapped addresses is architecturally
                        // a no-op (like x86 PREFETCHT0), so no fault check.
                        {
                            apt_selfprof::prof_scope!("cpu/step/mem");
                            self.hier.sw_prefetch(pc.0, a, self.cycles);
                        }
                        self.retire(1);
                    }
                }
            }

            // Terminator.
            let term_pc = self.map.term_pc(fid, cur);
            match &block.term {
                Terminator::Br { target } => {
                    self.branches += 1;
                    self.taken_branches += 1;
                    self.retire(1);
                    self.lbr
                        .record(term_pc, self.map.block_start_pc(fid, *target), self.cycles);
                    apply_phis(func, cur, *target, regs, &mut phi_tmp);
                    cur = *target;
                }
                Terminator::CondBr { cond, then_, else_ } => {
                    let c = Self::val(regs, *cond);
                    self.branches += 1;
                    self.retire(1);
                    let target = if c != 0 {
                        self.taken_branches += 1;
                        self.lbr
                            .record(term_pc, self.map.block_start_pc(fid, *then_), self.cycles);
                        *then_
                    } else {
                        *else_
                    };
                    apply_phis(func, cur, target, regs, &mut phi_tmp);
                    cur = target;
                }
                Terminator::Ret { value } => {
                    self.retire(1);
                    return Ok(CoreOutcome::Done(value.map(|v| Self::val(regs, v))));
                }
            }
            if self.instructions - run_start >= fuel {
                st.block = cur;
                return Ok(CoreOutcome::Paused);
            }
        }
    }

    /// Advances the architectural instruction count and the cycle clock
    /// without executing anything — the bookkeeping half of a functional
    /// fast-forward (`apt-sample` executes the skipped instructions on the
    /// `apt-lir` interpreter and charges their estimated cycles here).
    /// Profiling/telemetry boundaries are realigned past the new clock so
    /// a skip never emits a backlog of samples or empty windows.
    pub fn skip_ahead(&mut self, insts: u64, cycles: u64) {
        self.instructions += insts;
        self.cycles += cycles;
        if self.cfg.lbr_sample_period != 0 && self.cycles >= self.next_lbr_sample {
            self.next_lbr_sample = self.cycles + self.cfg.lbr_sample_period;
        }
        let w = self.cfg.timeline_window;
        if w != 0 && self.cycles >= self.next_window {
            self.next_window = (self.cycles / w + 1) * w;
        }
    }

    /// A functional-warming view of this machine's memory for fast-forward
    /// phases: reads/writes hit the architectural image and every access
    /// (and software prefetch) warms the cache hierarchy, state-only.
    pub fn warm_mem(&mut self) -> WarmMem<'_> {
        WarmMem {
            image: &mut self.image,
            hier: &mut self.hier,
            last_line: u64::MAX,
        }
    }

    /// The tracer's cumulative per-outcome totals (see `apt-trace`) — the
    /// counter snapshot `apt-sample` diffs around measurement windows.
    pub fn outcome_totals(&self) -> PcOutcomes {
        self.hier.tracer.outcome_totals()
    }

    /// Installs any already-arrived fills and returns how many prefetches
    /// are still unclassified — the count that finalizes as `useless` when
    /// tracing ends (mirrors [`Machine::finish_timeline`]'s bookkeeping).
    pub fn settle_outcomes(&mut self) -> u64 {
        self.hier.drain(self.cycles);
        self.hier.tracer.outcome_pending() as u64
    }

    /// Closes an MSHR accounting window at the current cycle: cumulative
    /// `∫occupancy` and the peak since the previous close (delegates to
    /// `Hierarchy::mshr_window_stats`).
    pub fn mshr_window_stats(&mut self) -> (u64, usize) {
        self.hier.mshr_window_stats(self.cycles)
    }
}

/// A paused detailed activation: the SSA register file plus the block
/// about to execute, whose φ-copies have already been applied. Block
/// boundaries are the only pause points, so this pair is the complete
/// architectural state — interchangeable with `apt_lir::Interp`
/// checkpoints, which use the same convention.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreState {
    fid: FuncId,
    /// SSA register file.
    pub regs: Vec<u64>,
    /// Block about to execute (φ-copies already applied).
    pub block: BlockId,
}

impl CoreState {
    /// The function this activation executes.
    pub fn fid(&self) -> FuncId {
        self.fid
    }
}

/// Outcome of a fueled [`Machine::run_core`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreOutcome {
    /// The function returned.
    Done(Option<u64>),
    /// The fuel budget was reached; the activation paused at a block
    /// boundary and can be resumed (or handed to the interpreter).
    Paused,
}

/// Functional-warming memory for fast-forward phases (see
/// [`Machine::warm_mem`]). Implements the interpreter's `Memory` trait:
/// architectural semantics are the image's, and every in-bounds access
/// additionally moves cache tag/LRU state the way the detailed path
/// would — without counters, tracer events, stalls, or MSHR traffic.
pub struct WarmMem<'a> {
    image: &'a mut MemImage,
    hier: &'a mut Hierarchy,
    /// Last demand-accessed line — a 1-entry filter. A repeat access to
    /// the line that just warmed is exactly a no-op (the line is L1-MRU
    /// with its usage bit already settled), so it can skip the hierarchy
    /// probe entirely. Invalidated by prefetches, whose fills could evict
    /// the filtered line.
    last_line: u64,
}

impl apt_lir::eval::Memory for WarmMem<'_> {
    fn read(&mut self, addr: u64, width: u64) -> Option<u64> {
        // Explicit inherent-method call: `self.image` is `&mut MemImage`,
        // where plain `.read()` would resolve to the trait method again.
        match MemImage::read(self.image, addr, width) {
            Ok(v) => {
                let line = apt_mem::line_of(addr);
                if line != self.last_line {
                    self.hier.warm_access(addr);
                    self.last_line = line;
                }
                Some(v)
            }
            // Faulting (speculative) loads skip the memory system in the
            // detailed path too.
            Err(_) => None,
        }
    }

    fn write(&mut self, addr: u64, value: u64, width: u64) -> Option<()> {
        match MemImage::write(self.image, addr, value, width) {
            Ok(()) => {
                let line = apt_mem::line_of(addr);
                if line != self.last_line {
                    self.hier.warm_access(addr);
                    self.last_line = line;
                }
                Some(())
            }
            Err(_) => None,
        }
    }

    fn prefetch(&mut self, addr: u64) {
        // Unmapped prefetches are architectural no-ops but still probe the
        // hierarchy, exactly like `Hierarchy::sw_prefetch`.
        self.hier.warm_prefetch(addr);
        self.last_line = u64::MAX;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_lir::{BinOp, FCmpPred, FunctionBuilder, ICmpPred, UnOp, Width};

    fn sum_module() -> Module {
        let mut m = Module::new("t");
        let f = m.add_function("sum", &["a", "n"]);
        {
            let mut b = FunctionBuilder::new(m.function_mut(f));
            let (a, n) = (b.param(0), b.param(1));
            let s = b.loop_up_reduce(0, n, 1, 0, |b, iv, acc| {
                let v = b.load_elem(a, iv, Width::W8, false);
                b.add(acc, v).into()
            });
            b.ret(Some(s));
        }
        apt_lir::verify::verify_module(&m).unwrap();
        m
    }

    #[test]
    fn functional_sum_is_correct() {
        let m = sum_module();
        let mut img = MemImage::new();
        let data: Vec<u64> = (1..=100).collect();
        let base = img.alloc_u64_slice(&data);
        let mut mach = Machine::new(&m, SimConfig::default(), img);
        let r = mach.call("sum", &[base, 100]).unwrap();
        assert_eq!(r, Some(5050));
        let stats = mach.stats();
        assert!(stats.instructions > 400);
        assert!(stats.cycles > stats.instructions);
    }

    #[test]
    fn export_metrics_reflects_the_run() {
        let m = sum_module();
        let mut img = MemImage::new();
        let data: Vec<u64> = (1..=100).collect();
        let base = img.alloc_u64_slice(&data);
        let mut mach = Machine::new(&m, SimConfig::default(), img);
        mach.call("sum", &[base, 100]).unwrap();
        let registry = apt_metrics::Registry::new();
        let labels = [("workload", "sum")];
        mach.export_metrics(&registry, &labels);
        let stats = mach.stats();
        assert_eq!(
            registry.counter_value("apt_cpu_instructions_total", &labels),
            Some(stats.instructions)
        );
        assert_eq!(
            registry.counter_value("apt_cpu_cycles_total", &labels),
            Some(stats.cycles)
        );
        assert_eq!(
            registry.counter_value("apt_mem_demand_loads_total", &labels),
            Some(stats.mem.loads)
        );
        let ipc = registry.gauge_value("apt_cpu_ipc_ratio", &labels).unwrap();
        assert!((ipc - stats.ipc()).abs() < 1e-12);
        let cap = registry
            .gauge_value("apt_mem_mshr_capacity", &labels)
            .unwrap();
        assert!(cap >= 1.0);
        // Disabled registries see nothing and cost nothing.
        let off = apt_metrics::Registry::disabled();
        mach.export_metrics(&off, &labels);
        assert_eq!(
            off.counter_value("apt_cpu_instructions_total", &labels),
            None
        );
    }

    #[test]
    fn zero_trip_loop_returns_init() {
        let m = sum_module();
        let mut img = MemImage::new();
        let base = img.alloc_u64_slice(&[7]);
        let mut mach = Machine::new(&m, SimConfig::default(), img);
        assert_eq!(mach.call("sum", &[base, 0]).unwrap(), Some(0));
    }

    #[test]
    fn unknown_function_errors() {
        let m = sum_module();
        let mut mach = Machine::new(&m, SimConfig::default(), MemImage::new());
        assert_eq!(
            mach.call("nope", &[]),
            Err(SimError::UnknownFunction("nope".into()))
        );
    }

    #[test]
    fn arity_mismatch_errors() {
        let m = sum_module();
        let mut mach = Machine::new(&m, SimConfig::default(), MemImage::new());
        assert!(matches!(
            mach.call("sum", &[1]),
            Err(SimError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn oob_load_faults_with_pc() {
        let m = sum_module();
        let mut mach = Machine::new(&m, SimConfig::default(), MemImage::new());
        let e = mach.call("sum", &[0x1000_0000, 4]).unwrap_err();
        assert!(matches!(e, SimError::Fault { .. }), "{e}");
    }

    #[test]
    fn inst_limit_aborts() {
        let m = sum_module();
        let mut img = MemImage::new();
        let base = img.alloc_u64_slice(&vec![0u64; 1000]);
        let cfg = SimConfig {
            inst_limit: 100,
            ..SimConfig::default()
        };
        let mut mach = Machine::new(&m, cfg, img);
        assert_eq!(mach.call("sum", &[base, 1000]), Err(SimError::InstLimit));
    }

    #[test]
    fn lbr_records_loop_back_edges() {
        let m = sum_module();
        let mut img = MemImage::new();
        let base = img.alloc_u64_slice(&vec![1u64; 64]);
        let mut mach = Machine::new(&m, SimConfig::default(), img);
        mach.call("sum", &[base, 64]).unwrap();
        // 63 back-edge takes + 1 guard take = 64 taken branches.
        let stats = mach.stats();
        assert_eq!(stats.taken_branches, 64);
        assert_eq!(stats.branches, 65); // + the final not-taken exit.
    }

    fn assert_timeline_conserves(timeline: &Timeline, stats: &PerfStats) {
        let t = timeline.total();
        assert_eq!(t.instructions, stats.instructions);
        assert_eq!(t.cycles, stats.cycles);
        assert_eq!(t.branches, stats.branches);
        assert_eq!(t.taken_branches, stats.taken_branches);
        assert_eq!(t.loads, stats.mem.loads);
        assert_eq!(t.stores, stats.mem.stores);
        assert_eq!(t.l1_hits, stats.mem.l1_hits);
        assert_eq!(t.demand_fills, stats.mem.demand_fills);
        assert_eq!(t.sw_pf_issued, stats.mem.sw_pf_issued);
        assert_eq!(t.stall_dram, stats.mem.stall_dram);
    }

    #[test]
    fn timeline_windows_sum_to_run_totals() {
        let m = sum_module();
        let mut img = MemImage::new();
        let data: Vec<u64> = (1..=4000).collect();
        let base = img.alloc_u64_slice(&data);
        let cfg = SimConfig {
            timeline_window: 1_000,
            ..SimConfig::default()
        };
        let mut mach = Machine::new(&m, cfg, img);
        mach.call("sum", &[base, 4000]).unwrap();
        let stats = mach.stats();
        let timeline = mach.take_timeline();
        assert!(timeline.samples.len() > 3, "expected several windows");
        assert_timeline_conserves(&timeline, &stats);
        // Windows tile the cycle axis without gaps and in order.
        for pair in timeline.samples.windows(2) {
            assert_eq!(pair[0].end_cycle, pair[1].start_cycle);
            assert_eq!(pair[0].index + 1, pair[1].index);
        }
        // The last window is partial unless the run ended on a boundary.
        let last = timeline.samples.last().unwrap();
        assert_eq!(last.end_cycle, stats.cycles);
    }

    #[test]
    fn window_larger_than_run_yields_one_window() {
        let m = sum_module();
        let mut img = MemImage::new();
        let base = img.alloc_u64_slice(&[1, 2, 3]);
        let cfg = SimConfig {
            timeline_window: 1_000_000_000,
            ..SimConfig::default()
        };
        let mut mach = Machine::new(&m, cfg, img);
        mach.call("sum", &[base, 3]).unwrap();
        let stats = mach.stats();
        let timeline = mach.take_timeline();
        assert_eq!(timeline.samples.len(), 1);
        assert_timeline_conserves(&timeline, &stats);
    }

    #[test]
    fn timeline_disabled_collects_nothing() {
        let m = sum_module();
        let mut img = MemImage::new();
        let base = img.alloc_u64_slice(&[1, 2, 3]);
        let cfg = SimConfig {
            timeline_window: 0,
            ..SimConfig::default()
        };
        let mut mach = Machine::new(&m, cfg, img);
        mach.call("sum", &[base, 3]).unwrap();
        assert!(mach.take_timeline().is_empty());
    }

    #[test]
    fn take_timeline_is_idempotent_and_trace_order_agnostic() {
        let m = sum_module();
        let mut img = MemImage::new();
        let data: Vec<u64> = (1..=500).collect();
        let base = img.alloc_u64_slice(&data);
        let cfg = SimConfig {
            timeline_window: 1_000,
            trace: TraceConfig::outcomes(),
            ..SimConfig::default()
        };
        let mut mach = Machine::new(&m, cfg, img);
        mach.call("sum", &[base, 500]).unwrap();
        let stats = mach.stats();
        // take_trace first: it must flush the final window itself.
        let report = mach.take_trace();
        let timeline = mach.take_timeline();
        assert_timeline_conserves(&timeline, &stats);
        // Window outcome mixes sum to the finalized outcome table.
        let mix = timeline.total().outcomes;
        assert_eq!(mix.issued, report.outcomes.total.issued);
        assert_eq!(mix.timely, report.outcomes.total.timely);
        assert_eq!(mix.late, report.outcomes.total.late);
        assert_eq!(mix.useless, report.outcomes.total.useless);
        assert_eq!(mix.classified(), report.outcomes.total.classified());
        // A second take returns an empty stream, not duplicates.
        assert!(mach.take_timeline().is_empty());
    }

    #[test]
    fn timeline_does_not_change_simulated_results() {
        let m = sum_module();
        let data: Vec<u64> = (1..=2000).collect();
        let run = |window: u64| {
            let mut img = MemImage::new();
            let base = img.alloc_u64_slice(&data);
            let cfg = SimConfig {
                timeline_window: window,
                ..SimConfig::default()
            };
            let mut mach = Machine::new(&m, cfg, img);
            let r = mach.call("sum", &[base, 2000]).unwrap();
            (r, mach.stats())
        };
        let (r_off, s_off) = run(0);
        for w in [100, 1_000, 977] {
            let (r_on, s_on) = run(w);
            assert_eq!(r_on, r_off);
            assert_eq!(s_on.cycles, s_off.cycles, "window={w}");
            assert_eq!(s_on.mem.loads, s_off.mem.loads);
        }
    }

    #[test]
    fn sign_extension_rules() {
        assert_eq!(sign_extend(0xff, 1), u64::MAX);
        assert_eq!(sign_extend(0x7f, 1), 0x7f);
        assert_eq!(sign_extend(0xffff_ffff, 4), u64::MAX);
        assert_eq!(sign_extend(5, 8), 5);
    }

    #[test]
    fn eval_bin_signed_ops() {
        let neg1 = (-1i64) as u64;
        assert_eq!(eval_bin(BinOp::ICmp(ICmpPred::Lts), neg1, 0), 1);
        assert_eq!(eval_bin(BinOp::ICmp(ICmpPred::Ltu), neg1, 0), 0);
        assert_eq!(eval_bin(BinOp::ShrA, neg1, 8), neg1);
        assert_eq!(eval_bin(BinOp::DivS, neg1, 1), neg1);
        assert_eq!(eval_bin(BinOp::DivU, 1, 0), 0); // Trap value.
        assert_eq!(eval_bin(BinOp::MinS, neg1, 3), neg1);
        assert_eq!(eval_bin(BinOp::MinU, neg1, 3), 3);
    }

    #[test]
    fn eval_float_ops() {
        let a = 2.5f64.to_bits();
        let b = 0.5f64.to_bits();
        assert_eq!(f64::from_bits(eval_bin(BinOp::FAdd, a, b)), 3.0);
        assert_eq!(f64::from_bits(eval_bin(BinOp::FDiv, a, b)), 5.0);
        assert_eq!(eval_bin(BinOp::FCmp(FCmpPred::Gt), a, b), 1);
        assert_eq!(eval_un(UnOp::IToF, 3), 3.0f64.to_bits());
        assert_eq!(eval_un(UnOp::FToI, 3.9f64.to_bits()), 3);
    }
}
