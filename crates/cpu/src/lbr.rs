//! The Last Branch Record: a 32-entry ring of retired taken branches.
//!
//! Mirrors Intel's LBR with the cycle-count format the paper relies on
//! (§3.1, Fig. 3): each entry holds the branch PC (`from`), the target PC
//! (`to`), and the cycle at which the branch retired. Snapshots are ordered
//! oldest → newest.

use apt_lir::Pc;

/// Number of LBR entries on the modelled CPU (§3.6 discusses this limit).
pub const LBR_ENTRIES: usize = 32;

/// One retired taken branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LbrEntry {
    /// PC of the taken branch instruction.
    pub from: Pc,
    /// PC of the branch target (start of the next basic block).
    pub to: Pc,
    /// Retirement cycle.
    pub cycle: u64,
}

/// A snapshot of the ring at a sampling event, oldest entry first.
pub type LbrSample = Vec<LbrEntry>;

/// The live ring buffer.
#[derive(Debug, Clone)]
pub struct LbrRing {
    buf: [LbrEntry; LBR_ENTRIES],
    len: usize,
    head: usize,
}

impl Default for LbrRing {
    fn default() -> LbrRing {
        LbrRing::new()
    }
}

impl LbrRing {
    /// An empty ring.
    pub fn new() -> LbrRing {
        LbrRing {
            buf: [LbrEntry {
                from: Pc(0),
                to: Pc(0),
                cycle: 0,
            }; LBR_ENTRIES],
            len: 0,
            head: 0,
        }
    }

    /// Records a retired taken branch, overwriting the oldest entry when
    /// full.
    #[inline]
    pub fn record(&mut self, from: Pc, to: Pc, cycle: u64) {
        self.buf[self.head] = LbrEntry { from, to, cycle };
        self.head = (self.head + 1) % LBR_ENTRIES;
        if self.len < LBR_ENTRIES {
            self.len += 1;
        }
    }

    /// Number of valid entries (≤ 32).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no branch has retired yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Snapshots the ring, oldest entry first.
    pub fn snapshot(&self) -> LbrSample {
        let mut out = Vec::with_capacity(self.len);
        let start = (self.head + LBR_ENTRIES - self.len) % LBR_ENTRIES;
        for i in 0..self.len {
            out.push(self.buf[(start + i) % LBR_ENTRIES]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_wraps() {
        let mut r = LbrRing::new();
        assert!(r.is_empty());
        for i in 0..40u64 {
            r.record(Pc(i * 4), Pc(i * 4 + 4), i * 10);
        }
        assert_eq!(r.len(), LBR_ENTRIES);
        let s = r.snapshot();
        assert_eq!(s.len(), LBR_ENTRIES);
        // Oldest surviving entry is branch #8 (40 - 32).
        assert_eq!(s[0].from, Pc(8 * 4));
        assert_eq!(s[31].from, Pc(39 * 4));
        // Monotone cycles.
        assert!(s.windows(2).all(|w| w[0].cycle <= w[1].cycle));
    }

    #[test]
    fn partial_ring_snapshot() {
        let mut r = LbrRing::new();
        r.record(Pc(4), Pc(8), 100);
        r.record(Pc(12), Pc(16), 200);
        let s = r.snapshot();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].cycle, 100);
        assert_eq!(s[1].cycle, 200);
    }

    #[test]
    fn snapshot_does_not_consume() {
        let mut r = LbrRing::new();
        r.record(Pc(4), Pc(8), 1);
        assert_eq!(r.snapshot().len(), 1);
        assert_eq!(r.snapshot().len(), 1);
        assert_eq!(r.len(), 1);
    }
}
