//! Aggregate run statistics and collected profiles.

use apt_mem::MemCounters;

use crate::lbr::LbrSample;
use crate::pebs::PebsRecord;

/// `perf stat`-style counters for one simulation (cumulative across calls
/// on the same [`crate::Machine`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerfStats {
    /// Retired instructions (terminators included).
    pub instructions: u64,
    /// Elapsed cycles.
    pub cycles: u64,
    /// Retired branches (conditional + unconditional).
    pub branches: u64,
    /// Retired *taken* branches (what the LBR records).
    pub taken_branches: u64,
    /// Memory-system counters.
    pub mem: MemCounters,
}

impl PerfStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// LLC misses per kilo-instruction, the paper's Fig. 7 metric
    /// (`offcore_requests.demand_data_rd`, fill-buffer hits included).
    pub fn mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.mem.demand_data_rd() as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Fraction of cycles stalled on L3 or DRAM (Fig. 5).
    pub fn memory_bound_fraction(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.mem.memory_bound_stalls() as f64 / self.cycles as f64
        }
    }

    /// Adds this run's core counters (and, via [`MemCounters`], the memory
    /// counters) into `registry` under the given base labels, plus derived
    /// IPC / MPKI gauges for the run.
    pub fn export_metrics(&self, registry: &apt_metrics::Registry, labels: &[(&str, &str)]) {
        if !registry.is_enabled() {
            return;
        }
        registry
            .counter("apt_cpu_instructions_total", "Retired instructions", labels)
            .add(self.instructions);
        registry
            .counter("apt_cpu_cycles_total", "Simulated elapsed cycles", labels)
            .add(self.cycles);
        registry
            .counter("apt_cpu_branches_total", "Retired branches", labels)
            .add(self.branches);
        registry
            .counter(
                "apt_cpu_taken_branches_total",
                "Retired taken branches",
                labels,
            )
            .add(self.taken_branches);
        registry
            .gauge(
                "apt_cpu_ipc_ratio",
                "Instructions per cycle of the last exported run",
                labels,
            )
            .set(self.ipc());
        registry
            .gauge(
                "apt_cpu_mpki",
                "LLC misses per kilo-instruction of the last exported run",
                labels,
            )
            .set(self.mpki());
        registry
            .gauge(
                "apt_cpu_memory_bound_fraction",
                "Fraction of cycles stalled on L3/DRAM in the last exported run",
                labels,
            )
            .set(self.memory_bound_fraction());
        self.mem.export_metrics(registry, labels);
    }
}

/// Hardware profiles collected during a run.
#[derive(Debug, Clone, Default)]
pub struct ProfileData {
    /// Periodic LBR snapshots (`perf record -b` equivalent).
    pub lbr_samples: Vec<LbrSample>,
    /// Precise LLC-miss load samples.
    pub pebs: Vec<PebsRecord>,
}

impl ProfileData {
    /// Merges another profile into this one.
    pub fn merge(&mut self, other: ProfileData) {
        self.lbr_samples.extend(other.lbr_samples);
        self.pebs.extend(other.pebs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let s = PerfStats {
            instructions: 1000,
            cycles: 2000,
            mem: MemCounters {
                demand_fills: 40,
                fb_hits_swpf: 10,
                stall_llc: 100,
                stall_dram: 300,
                ..Default::default()
            },
            ..Default::default()
        };
        assert!((s.ipc() - 0.5).abs() < 1e-12);
        assert!((s.mpki() - 50.0).abs() < 1e-12);
        assert!((s.memory_bound_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn zero_division_guards() {
        let s = PerfStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.mpki(), 0.0);
        assert_eq!(s.memory_bound_fraction(), 0.0);
    }
}
