//! Functional memory: a flat byte image with a bump allocator.
//!
//! Workload data (graphs, tables, key arrays) is allocated here and its
//! simulated addresses are passed to kernels as function arguments. The
//! image starts at [`DATA_BASE`], well away from the synthetic text section
//! of `apt-lir::pcmap`.

use std::fmt;

/// Base address of the data segment.
pub const DATA_BASE: u64 = 0x1000_0000;

/// An out-of-bounds or misaligned access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemFault {
    pub addr: u64,
    pub width: u64,
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "memory fault at {:#x} (width {})", self.addr, self.width)
    }
}

impl std::error::Error for MemFault {}

/// A flat, bump-allocated memory image.
#[derive(Debug, Clone, Default)]
pub struct MemImage {
    bytes: Vec<u8>,
}

impl MemImage {
    /// Creates an empty image.
    pub fn new() -> MemImage {
        MemImage::default()
    }

    /// Total allocated bytes (the workload's data footprint).
    pub fn footprint(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// Allocates `len` bytes aligned to `align` (a power of two), returning
    /// the simulated address. Contents are zeroed.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn alloc(&mut self, len: u64, align: u64) -> u64 {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let cur = self.bytes.len() as u64;
        let aligned = (cur + align - 1) & !(align - 1);
        self.bytes.resize((aligned + len) as usize, 0);
        DATA_BASE + aligned
    }

    /// Allocates and initialises a `u32` array; returns its base address.
    pub fn alloc_u32_slice(&mut self, data: &[u32]) -> u64 {
        let base = self.alloc(data.len() as u64 * 4, 64);
        for (i, &v) in data.iter().enumerate() {
            self.write_u32(base + i as u64 * 4, v).expect("in bounds");
        }
        base
    }

    /// Allocates and initialises a `u64` array; returns its base address.
    pub fn alloc_u64_slice(&mut self, data: &[u64]) -> u64 {
        let base = self.alloc(data.len() as u64 * 8, 64);
        for (i, &v) in data.iter().enumerate() {
            self.write_u64(base + i as u64 * 8, v).expect("in bounds");
        }
        base
    }

    /// Allocates and initialises an `f64` array; returns its base address.
    pub fn alloc_f64_slice(&mut self, data: &[f64]) -> u64 {
        let base = self.alloc(data.len() as u64 * 8, 64);
        for (i, &v) in data.iter().enumerate() {
            self.write_u64(base + i as u64 * 8, v.to_bits())
                .expect("in bounds");
        }
        base
    }

    #[inline]
    fn offset(&self, addr: u64, width: u64) -> Result<usize, MemFault> {
        let off = addr.wrapping_sub(DATA_BASE);
        if addr < DATA_BASE || off + width > self.bytes.len() as u64 {
            Err(MemFault { addr, width })
        } else {
            Ok(off as usize)
        }
    }

    /// Reads `width` (1/2/4/8) bytes, little-endian, zero-extended.
    ///
    /// Width-specialized: each arm is a fixed-size `from_le_bytes`, so the
    /// compiler emits a plain load instead of a variable-length `memcpy` —
    /// this is the hottest function of the reference interpreter and the
    /// sampled fast-forward path.
    #[inline]
    pub fn read(&self, addr: u64, width: u64) -> Result<u64, MemFault> {
        let off = self.offset(addr, width)?;
        let b = &self.bytes[off..];
        Ok(match width {
            1 => b[0] as u64,
            2 => u16::from_le_bytes([b[0], b[1]]) as u64,
            4 => u32::from_le_bytes([b[0], b[1], b[2], b[3]]) as u64,
            8 => u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]),
            w => {
                let mut buf = [0u8; 8];
                buf[..w as usize].copy_from_slice(&b[..w as usize]);
                u64::from_le_bytes(buf)
            }
        })
    }

    /// Writes the low `width` bytes of `value`, little-endian.
    #[inline]
    pub fn write(&mut self, addr: u64, value: u64, width: u64) -> Result<(), MemFault> {
        let off = self.offset(addr, width)?;
        let b = &mut self.bytes[off..];
        let v = value.to_le_bytes();
        match width {
            1 => b[0] = v[0],
            2 => b[..2].copy_from_slice(&v[..2]),
            4 => b[..4].copy_from_slice(&v[..4]),
            8 => b[..8].copy_from_slice(&v[..8]),
            w => b[..w as usize].copy_from_slice(&v[..w as usize]),
        }
        Ok(())
    }

    /// Reads a `u32`.
    pub fn read_u32(&self, addr: u64) -> Result<u32, MemFault> {
        self.read(addr, 4).map(|v| v as u32)
    }

    /// Reads a `u64`.
    pub fn read_u64(&self, addr: u64) -> Result<u64, MemFault> {
        self.read(addr, 8)
    }

    /// Reads an `f64`.
    pub fn read_f64(&self, addr: u64) -> Result<f64, MemFault> {
        self.read(addr, 8).map(f64::from_bits)
    }

    /// Writes a `u32`.
    pub fn write_u32(&mut self, addr: u64, v: u32) -> Result<(), MemFault> {
        self.write(addr, v as u64, 4)
    }

    /// Writes a `u64`.
    pub fn write_u64(&mut self, addr: u64, v: u64) -> Result<(), MemFault> {
        self.write(addr, v, 8)
    }

    /// Reads back a `u32` array (for result checking).
    pub fn read_u32_slice(&self, base: u64, len: usize) -> Result<Vec<u32>, MemFault> {
        (0..len)
            .map(|i| self.read_u32(base + i as u64 * 4))
            .collect()
    }

    /// Reads back a `u64` array (for result checking).
    pub fn read_u64_slice(&self, base: u64, len: usize) -> Result<Vec<u64>, MemFault> {
        (0..len)
            .map(|i| self.read_u64(base + i as u64 * 8))
            .collect()
    }

    /// Reads back an `f64` array (for result checking).
    pub fn read_f64_slice(&self, base: u64, len: usize) -> Result<Vec<f64>, MemFault> {
        (0..len)
            .map(|i| self.read_f64(base + i as u64 * 8))
            .collect()
    }

    /// The raw data segment (address [`DATA_BASE`] onwards).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// FNV-1a digest of the full data segment — a cheap architectural
    /// fingerprint for differential testing: two executions that leave
    /// memory in the same state produce the same digest.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in &self.bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// The reference interpreter reads and writes the image with exactly the
/// simulator's bounds behaviour, so `apt_lir::eval::run_function` and
/// [`crate::Machine`] observe identical memory.
impl apt_lir::eval::Memory for MemImage {
    fn read(&mut self, addr: u64, width: u64) -> Option<u64> {
        MemImage::read(self, addr, width).ok()
    }

    fn write(&mut self, addr: u64, value: u64, width: u64) -> Option<()> {
        MemImage::write(self, addr, value, width).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_aligned_and_disjoint() {
        let mut m = MemImage::new();
        let a = m.alloc(10, 64);
        let b = m.alloc(10, 64);
        assert_eq!(a % 64, 0);
        assert_eq!(b % 64, 0);
        assert!(b >= a + 10);
        assert!(a >= DATA_BASE);
    }

    #[test]
    fn rw_round_trip() {
        let mut m = MemImage::new();
        let a = m.alloc(64, 8);
        m.write(a, 0xdead_beef_cafe, 8).unwrap();
        assert_eq!(m.read(a, 8).unwrap(), 0xdead_beef_cafe);
        m.write(a + 8, 0x1234_5678, 4).unwrap();
        assert_eq!(m.read(a + 8, 4).unwrap(), 0x1234_5678);
        // Narrow read is zero-extended.
        assert_eq!(m.read(a + 8, 2).unwrap(), 0x5678);
    }

    #[test]
    fn out_of_bounds_faults() {
        let mut m = MemImage::new();
        let a = m.alloc(8, 8);
        assert!(m.read(a + 8, 1).is_err());
        assert!(m.read(DATA_BASE - 4, 4).is_err());
        assert!(m.write(a + 4, 0, 8).is_err()); // Straddles the end.
    }

    #[test]
    fn slice_helpers_round_trip() {
        let mut m = MemImage::new();
        let xs = [3u32, 1, 4, 1, 5];
        let base = m.alloc_u32_slice(&xs);
        assert_eq!(m.read_u32_slice(base, 5).unwrap(), xs);
        let ys = [1.5f64, -2.25];
        let fb = m.alloc_f64_slice(&ys);
        assert_eq!(m.read_f64_slice(fb, 2).unwrap(), ys);
    }

    #[test]
    fn footprint_tracks_allocations() {
        let mut m = MemImage::new();
        assert_eq!(m.footprint(), 0);
        m.alloc(100, 64);
        assert!(m.footprint() >= 100);
    }

    #[test]
    fn digest_tracks_contents() {
        let mut a = MemImage::new();
        let pa = a.alloc(64, 8);
        let mut b = a.clone();
        assert_eq!(a.digest(), b.digest());
        b.write(pa, 1, 8).unwrap();
        assert_ne!(a.digest(), b.digest());
        a.write(pa, 1, 8).unwrap();
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn memory_trait_matches_inherent_semantics() {
        use apt_lir::eval::Memory;
        let mut m = MemImage::new();
        let a = m.alloc(16, 8);
        Memory::write(&mut m, a, 0xabcd, 4).unwrap();
        assert_eq!(Memory::read(&mut m, a, 4), Some(0xabcd));
        assert_eq!(Memory::read(&mut m, a + 16, 4), None);
        assert_eq!(Memory::write(&mut m, a + 16, 0, 4), None);
    }
}
