//! PEBS-style precise sampling of LLC-missing loads.
//!
//! The paper's first profiling step (§3.2) captures *delinquent load PCs* —
//! loads that frequently miss the last-level cache — with precise
//! event-based sampling. We model the same mechanism: every `period`-th
//! demand load served by DRAM is recorded with its exact PC.

use apt_lir::Pc;
use apt_mem::Level;

/// One precise load sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PebsRecord {
    /// PC of the sampled load instruction.
    pub pc: Pc,
    /// The level that served it.
    pub served: Level,
    /// Retirement cycle.
    pub cycle: u64,
}

/// Counter-based sampler for LLC-miss events.
#[derive(Debug, Clone)]
pub struct PebsSampler {
    period: u64,
    countdown: u64,
    records: Vec<PebsRecord>,
}

impl PebsSampler {
    /// Samples every `period`-th LLC miss (period 0 disables sampling).
    pub fn new(period: u64) -> PebsSampler {
        PebsSampler {
            period,
            countdown: period,
            records: Vec::new(),
        }
    }

    /// Observes a retired demand load; records it when the period elapses.
    #[inline]
    pub fn observe(&mut self, pc: Pc, served: Level, cycle: u64) {
        if self.period == 0 || served != Level::Dram {
            return;
        }
        self.countdown -= 1;
        if self.countdown == 0 {
            self.countdown = self.period;
            self.records.push(PebsRecord { pc, served, cycle });
        }
    }

    /// The samples collected so far.
    pub fn records(&self) -> &[PebsRecord] {
        &self.records
    }

    /// Takes ownership of the collected samples.
    pub fn take_records(&mut self) -> Vec<PebsRecord> {
        std::mem::take(&mut self.records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_every_nth_llc_miss() {
        let mut s = PebsSampler::new(3);
        for i in 0..10 {
            s.observe(Pc(0x100), Level::Dram, i);
        }
        assert_eq!(s.records().len(), 3);
        assert_eq!(s.records()[0].cycle, 2);
    }

    #[test]
    fn ignores_cache_hits() {
        let mut s = PebsSampler::new(1);
        s.observe(Pc(0x100), Level::L1, 0);
        s.observe(Pc(0x100), Level::Llc, 1);
        assert!(s.records().is_empty());
        s.observe(Pc(0x100), Level::Dram, 2);
        assert_eq!(s.records().len(), 1);
    }

    #[test]
    fn zero_period_disables() {
        let mut s = PebsSampler::new(0);
        s.observe(Pc(0x100), Level::Dram, 0);
        assert!(s.records().is_empty());
    }

    #[test]
    fn take_records_drains() {
        let mut s = PebsSampler::new(1);
        s.observe(Pc(0x100), Level::Dram, 0);
        assert_eq!(s.take_records().len(), 1);
        assert!(s.records().is_empty());
    }
}
