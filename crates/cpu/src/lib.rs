//! Execution-driven timing simulator for `apt-lir` programs.
//!
//! This crate stands in for the paper's evaluation machine: it *functionally
//! executes* IR while charging cycle costs against the `apt-mem` hierarchy,
//! and it implements the two hardware profiling facilities APT-GET relies
//! on:
//!
//! * **LBR** ([`lbr`]) — a 32-entry ring of retired taken branches with
//!   cycle timestamps, snapshotted periodically like `perf record -b`;
//! * **PEBS** ([`pebs`]) — precise sampling of loads that miss the LLC,
//!   yielding the delinquent-load PCs of §3.2.
//!
//! The core is scalar and in-order: ALU operations retire at fixed costs,
//! demand loads block for the full hierarchy latency, software prefetches
//! are fire-and-forget. See `apt-mem` for the rationale and the latency
//! calibration.
//!
//! The machine also emits cycle-windowed telemetry ([`Machine::take_timeline`],
//! `apt-timeline`): every `SimConfig::timeline_window` cycles it snapshots
//! the cumulative counters and records the per-window delta, giving a
//! time-resolved view whose windows sum exactly to the end-of-run totals.

pub mod lbr;
pub mod machine;
pub mod memimg;
pub mod pebs;
pub mod perfscript;
pub mod stats;

pub use lbr::{LbrEntry, LbrRing, LbrSample, LBR_ENTRIES};
pub use machine::{CoreOutcome, CoreState, Machine, SimConfig, SimError, WarmMem};
pub use memimg::MemImage;
pub use pebs::PebsRecord;
pub use perfscript::export_perf_script;
pub use stats::{PerfStats, ProfileData};

pub use apt_timeline::{Timeline, WindowOutcomes, WindowSample};
