//! `perf script`-compatible export of collected hardware profiles.
//!
//! The paper's profiles come from `perf record` on production machines;
//! the textual `perf script` dump is the interchange format every
//! downstream tool consumes. This module renders the simulator's
//! [`ProfileData`] in that shape so the `apt-ingest` crate can exercise
//! its real-profile ingestion path against dumps from *every* registered
//! workload, and so the two paths (in-memory profile vs. exported dump)
//! can be pinned byte-identical by the round-trip test.
//!
//! ## Format (v1)
//!
//! One event per line, `perf script -F comm,pid,cpu,time,event` framing:
//!
//! ```text
//! # apt-get perf script v1
//! # stats: instructions=81236 cycles=312200 branches=4100 taken_branches=4000
//! aptgetsim     0 [000]     0.020000: cpu/branch-stack/: 0x88/0x80/P/-/-/12 0x88/0x80/P/-/-/0
//! aptgetsim     0 [000]     0.020123: cpu/mem-loads,ldlat=30/P: 0x24 weight: 120 lvl: RAM
//! ```
//!
//! * **time** — the simulator has no wall clock, so the timestamp encodes
//!   the cycle count at a fictional 1 MHz: `cycle 20123` prints as
//!   `0.020123`. Microsecond precision makes the u64 cycle round-trip
//!   exact (perf itself prints µs).
//! * **branch-stack** — LBR entries *newest first* (perf's `brstack`
//!   order), `from/to/mispred/in_tx/abort/cycles` with perf's cycle
//!   semantics: each entry's cycles field is the delta to the next-older
//!   entry. The line's timestamp is the newest entry's absolute cycle, so
//!   absolute cycles reconstruct exactly; the oldest entry's delta (to a
//!   branch before the snapshot) is unknowable and prints as `0`.
//! * **mem-loads** — one PEBS record: instruction pointer, an advisory
//!   `weight` (nominal latency of the serving level, like PEBS load
//!   latency), and `lvl`, the serving memory level in perf's `data_src`
//!   naming (`L1`/`L2`/`L3`/`RAM`). Parsers key on `lvl`.
//! * **`# stats:`** — carries the profiling run's core counters; real
//!   `perf script` dumps lack it, so ingestion treats it as optional.
//!
//! The two event streams are merged in timestamp order (stable: LBR
//! before PEBS on ties), preserving each stream's internal order — a
//! parser that keeps per-stream encounter order reconstructs the original
//! `ProfileData` vectors exactly.

use apt_mem::Level;
use apt_trace::OutcomeTable;

use crate::stats::{PerfStats, ProfileData};

/// First line of every export.
pub const HEADER: &str = "# apt-get perf script v1";

/// The `comm` / `pid` / `cpu` columns of the simulated process.
const COMM: &str = "aptgetsim";

/// Nominal PEBS load weight per serving level (advisory; ingestion keys
/// on the `lvl` field).
fn level_weight(l: Level) -> u64 {
    match l {
        Level::L1 => 4,
        Level::L2 => 14,
        Level::Llc => 40,
        Level::Dram => 120,
    }
}

/// Perf `data_src`-style level name.
fn level_name(l: Level) -> &'static str {
    match l {
        Level::L1 => "L1",
        Level::L2 => "L2",
        Level::Llc => "L3",
        Level::Dram => "RAM",
    }
}

/// Renders a cycle count as a perf timestamp (fictional 1 MHz clock).
fn timestamp(cycle: u64) -> String {
    format!("{}.{:06}", cycle / 1_000_000, cycle % 1_000_000)
}

fn line_prefix(out: &mut String, cycle: u64) {
    out.push_str(&format!("{COMM} {:>5} [000] {:>12}: ", 0, timestamp(cycle)));
}

/// Serialises a collected profile (plus the run's counters) to the
/// `perf script` text format described in the module docs.
pub fn export_perf_script(profile: &ProfileData, stats: &PerfStats) -> String {
    export_tagged(profile, stats, None, None)
}

/// [`export_perf_script`] plus outcome feedback: the hint **generation**
/// that was deployed while the run executed and the run's per-PC
/// prefetch-outcome table, carried as `# hintgen:` / `# pf-outcome:`
/// header comments. Parsers that predate the tags skip them as ordinary
/// comments, so a tagged dump stays valid v1 input everywhere.
pub fn export_perf_script_tagged(
    profile: &ProfileData,
    stats: &PerfStats,
    generation: u64,
    outcomes: &OutcomeTable,
) -> String {
    export_tagged(profile, stats, Some(generation), Some(outcomes))
}

fn export_tagged(
    profile: &ProfileData,
    stats: &PerfStats,
    generation: Option<u64>,
    outcomes: Option<&OutcomeTable>,
) -> String {
    let mut out = String::with_capacity(
        128 + profile
            .lbr_samples
            .iter()
            .map(|s| 24 + s.len() * 28)
            .sum::<usize>()
            + profile.pebs.len() * 64,
    );
    out.push_str(HEADER);
    out.push('\n');
    out.push_str(&format!(
        "# stats: instructions={} cycles={} branches={} taken_branches={}\n",
        stats.instructions, stats.cycles, stats.branches, stats.taken_branches
    ));
    if let Some(generation) = generation {
        out.push_str(&format!("# hintgen: {generation}\n"));
    }
    if let Some(outcomes) = outcomes {
        for (pc, o) in &outcomes.per_pc {
            out.push_str(&format!(
                "# pf-outcome: pc={pc:#x} issued={} timely={} late={} early={} useless={} \
                 redundant={} dropped={} slack={} headstart={}\n",
                o.issued,
                o.timely,
                o.late,
                o.early,
                o.useless,
                o.redundant,
                o.dropped,
                o.timely_slack_cycles,
                o.late_head_start_cycles
            ));
        }
    }

    // Two-pointer merge of the (individually time-ordered) streams.
    // An empty snapshot has no newest entry; it inherits the previous
    // snapshot's timestamp to keep the merge stable and order-preserving.
    let mut li = 0usize;
    let mut pi = 0usize;
    let mut last_lbr_cycle = 0u64;
    while li < profile.lbr_samples.len() || pi < profile.pebs.len() {
        let lbr_cycle = profile.lbr_samples.get(li).map(|s| {
            let c = s.last().map(|e| e.cycle).unwrap_or(last_lbr_cycle);
            c.max(last_lbr_cycle)
        });
        let take_lbr = match (lbr_cycle, profile.pebs.get(pi)) {
            (Some(lc), Some(p)) => lc <= p.cycle,
            (Some(_), None) => true,
            (None, _) => false,
        };
        if take_lbr {
            let sample = &profile.lbr_samples[li];
            let cycle = lbr_cycle.expect("lbr stream non-empty");
            last_lbr_cycle = cycle;
            line_prefix(&mut out, cycle);
            out.push_str("cpu/branch-stack/:");
            // Newest first; each entry's cycles field is the delta to the
            // next-older one, 0 for the oldest (pre-snapshot delta).
            for (i, e) in sample.iter().enumerate().rev() {
                let delta = if i == 0 {
                    0
                } else {
                    e.cycle - sample[i - 1].cycle
                };
                out.push_str(&format!(" {:#x}/{:#x}/P/-/-/{}", e.from.0, e.to.0, delta));
            }
            out.push('\n');
            li += 1;
        } else {
            let r = &profile.pebs[pi];
            line_prefix(&mut out, r.cycle);
            out.push_str(&format!(
                "cpu/mem-loads,ldlat=30/P: {:#x} weight: {} lvl: {}\n",
                r.pc.0,
                level_weight(r.served),
                level_name(r.served)
            ));
            pi += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lbr::LbrEntry;
    use crate::pebs::PebsRecord;
    use apt_lir::Pc;

    fn profile() -> ProfileData {
        ProfileData {
            lbr_samples: vec![
                vec![
                    LbrEntry {
                        from: Pc(0x88),
                        to: Pc(0x80),
                        cycle: 100,
                    },
                    LbrEntry {
                        from: Pc(0x88),
                        to: Pc(0x80),
                        cycle: 112,
                    },
                ],
                vec![],
            ],
            pebs: vec![PebsRecord {
                pc: Pc(0x24),
                served: Level::Dram,
                cycle: 105,
            }],
        }
    }

    #[test]
    fn renders_header_stats_and_events() {
        let stats = PerfStats {
            instructions: 81236,
            cycles: 312_200,
            ..Default::default()
        };
        let text = export_perf_script(&profile(), &stats);
        assert!(text.starts_with(HEADER));
        assert!(text.contains("# stats: instructions=81236 cycles=312200"));
        // Newest entry first, delta to the older one is 12, oldest gets 0.
        assert!(text.contains("cpu/branch-stack/: 0x88/0x80/P/-/-/12 0x88/0x80/P/-/-/0"));
        assert!(text.contains("cpu/mem-loads,ldlat=30/P: 0x24 weight: 120 lvl: RAM"));
    }

    #[test]
    fn events_are_time_ordered_and_streams_stay_ordered() {
        let text = export_perf_script(&profile(), &PerfStats::default());
        let events: Vec<&str> = text.lines().filter(|l| !l.starts_with('#')).collect();
        assert_eq!(events.len(), 3);
        // Snapshot at cycle 112 precedes the PEBS record at 105? No:
        // 105 < 112, so mem-loads sorts between the two brstack lines
        // only if its cycle allows — here the first snapshot is at 112,
        // so the PEBS record at 105 comes first.
        assert!(events[0].contains("mem-loads"));
        assert!(events[1].contains("branch-stack"));
        // The empty snapshot inherits the previous timestamp and stays
        // after its predecessor.
        assert!(events[2].ends_with("cpu/branch-stack/:"));
    }

    #[test]
    fn timestamp_encodes_cycles_at_microsecond_precision() {
        assert_eq!(timestamp(0), "0.000000");
        assert_eq!(timestamp(20_123), "0.020123");
        assert_eq!(timestamp(3_000_001), "3.000001");
    }

    #[test]
    fn tagged_export_adds_comment_headers_and_nothing_else() {
        use apt_trace::PcOutcomes;
        let mut outcomes = OutcomeTable::default();
        let o = PcOutcomes {
            issued: 10,
            timely: 6,
            late: 2,
            early: 1,
            useless: 1,
            redundant: 0,
            dropped: 0,
            timely_slack_cycles: 480,
            late_head_start_cycles: 90,
        };
        outcomes.per_pc.insert(0x400100, o);
        outcomes.total.add(&o);
        let stats = PerfStats::default();
        let tagged = export_perf_script_tagged(&profile(), &stats, 3, &outcomes);
        assert!(tagged.contains("# hintgen: 3\n"), "{tagged}");
        assert!(
            tagged.contains(
                "# pf-outcome: pc=0x400100 issued=10 timely=6 late=2 early=1 useless=1 \
                 redundant=0 dropped=0 slack=480 headstart=90\n"
            ),
            "{tagged}"
        );
        // Stripping the new comments reproduces the untagged export
        // exactly: the tags ride along, they don't reshape events.
        let stripped: String = tagged
            .lines()
            .filter(|l| !l.starts_with("# hintgen:") && !l.starts_with("# pf-outcome:"))
            .map(|l| format!("{l}\n"))
            .collect();
        assert_eq!(stripped, export_perf_script(&profile(), &stats));
    }
}
