//! Property tests of the interpreter: simulated execution of randomly
//! generated programs matches a native Rust evaluation of the same
//! program, and timing metadata stays consistent.

use apt_cpu::{Machine, MemImage, SimConfig};
use apt_lir::{FunctionBuilder, Module, Operand, Width};
use proptest::prelude::*;

/// A random straight-line arithmetic program over two inputs.
#[derive(Debug, Clone)]
enum Op {
    Add(u64),
    Sub(u64),
    Mul(u64),
    Xor(u64),
    Shl(u8),
    Shr(u8),
    MixB, // Combine with the second parameter.
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<u64>().prop_map(Op::Add),
        any::<u64>().prop_map(Op::Sub),
        any::<u64>().prop_map(Op::Mul),
        any::<u64>().prop_map(Op::Xor),
        (0u8..64).prop_map(Op::Shl),
        (0u8..64).prop_map(Op::Shr),
        Just(Op::MixB),
    ]
}

fn native_eval(ops: &[Op], a: u64, b: u64) -> u64 {
    let mut v = a;
    for op in ops {
        v = match op {
            Op::Add(k) => v.wrapping_add(*k),
            Op::Sub(k) => v.wrapping_sub(*k),
            Op::Mul(k) => v.wrapping_mul(*k),
            Op::Xor(k) => v ^ k,
            Op::Shl(k) => v << k,
            Op::Shr(k) => v >> k,
            Op::MixB => v.wrapping_add(b).rotate_left(1) ^ b,
        };
    }
    v
}

fn build_program(ops: &[Op]) -> Module {
    let mut m = Module::new("gen");
    let f = m.add_function("k", &["a", "b"]);
    {
        let mut bd = FunctionBuilder::new(m.function_mut(f));
        let (a, b) = (bd.param(0), bd.param(1));
        let mut v: Operand = a.into();
        for op in ops {
            v = match op {
                Op::Add(k) => bd.add(v, *k).into(),
                Op::Sub(k) => bd.sub(v, *k).into(),
                Op::Mul(k) => bd.mul(v, *k).into(),
                Op::Xor(k) => bd.xor(v, *k).into(),
                Op::Shl(k) => bd.shl(v, *k as u64).into(),
                Op::Shr(k) => bd.shr(v, *k as u64).into(),
                Op::MixB => {
                    // v.wrapping_add(b).rotate_left(1) ^ b
                    let s = bd.add(v, b);
                    let hi = bd.shl(s, 1u64);
                    let lo = bd.shr(s, 63u64);
                    let rot = bd.bin(apt_lir::BinOp::Or, hi, lo);
                    bd.xor(rot, b).into()
                }
            };
        }
        bd.ret(Some(v));
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn interpreter_matches_native_arithmetic(
        ops in prop::collection::vec(op_strategy(), 0..24),
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        let m = build_program(&ops);
        apt_lir::verify::verify_module(&m).unwrap();
        let mut mach = Machine::new(&m, SimConfig::default(), MemImage::new());
        let got = mach.call("k", &[a, b]).unwrap();
        prop_assert_eq!(got, Some(native_eval(&ops, a, b)));
    }

    /// A loop summing i*k for i in 0..n matches the closed form.
    #[test]
    fn loop_sums_match_closed_form(n in 0u64..500, k in 0u64..1000) {
        let mut m = Module::new("t");
        let f = m.add_function("sum", &["n", "k"]);
        {
            let mut bd = FunctionBuilder::new(m.function_mut(f));
            let (n_, k_) = (bd.param(0), bd.param(1));
            let s = bd.loop_up_reduce(0, n_, 1, 0, |bd, iv, acc| {
                let t = bd.mul(iv, k_);
                bd.add(acc, t).into()
            });
            bd.ret(Some(s));
        }
        let mut mach = Machine::new(&m, SimConfig::default(), MemImage::new());
        let got = mach.call("sum", &[n, k]).unwrap();
        let want = (0..n).map(|i| i.wrapping_mul(k)).fold(0u64, u64::wrapping_add);
        prop_assert_eq!(got, Some(want));
    }

    /// Memory round-trips: a store loop followed by a load loop recovers
    /// every value.
    #[test]
    fn store_load_round_trip(values in prop::collection::vec(any::<u64>(), 1..100)) {
        let mut m = Module::new("t");
        let f = m.add_function("copy", &["src", "dst", "n"]);
        {
            let mut bd = FunctionBuilder::new(m.function_mut(f));
            let (src, dst, n) = (bd.param(0), bd.param(1), bd.param(2));
            bd.loop_up(0, n, 1, |bd, i| {
                let v = bd.load_elem(src, i, Width::W8, false);
                bd.store_elem(dst, i, v, Width::W8);
            });
            bd.ret(None::<Operand>);
        }
        let mut img = MemImage::new();
        let src = img.alloc_u64_slice(&values);
        let dst = img.alloc(values.len() as u64 * 8, 64);
        let mut mach = Machine::new(&m, SimConfig::default(), img);
        mach.call("copy", &[src, dst, values.len() as u64]).unwrap();
        let out = mach.image.read_u64_slice(dst, values.len()).unwrap();
        prop_assert_eq!(out, values);
    }

    /// Cycles grow monotonically with the amount of executed work.
    #[test]
    fn cycles_monotone_in_iterations(n1 in 1u64..200, extra in 1u64..200) {
        let mut m = Module::new("t");
        let f = m.add_function("spin", &["n"]);
        {
            let mut bd = FunctionBuilder::new(m.function_mut(f));
            let n = bd.param(0);
            let s = bd.loop_up_reduce(0, n, 1, 0, |bd, iv, acc| {
                bd.add(acc, iv).into()
            });
            bd.ret(Some(s));
        }
        let run = |n: u64| {
            let mut mach = Machine::new(&m, SimConfig::default(), MemImage::new());
            mach.call("spin", &[n]).unwrap();
            mach.stats().cycles
        };
        prop_assert!(run(n1 + extra) > run(n1));
    }

    /// Timeline conservation over random workloads and window sizes:
    /// whatever the window (tiny, non-divisor, or larger than the whole
    /// run), the field-wise sum of the window samples equals the
    /// end-of-run counters, the windows tile the cycle axis, and the
    /// final partial window is emitted.
    #[test]
    fn timeline_conserves_for_any_window_size(
        values in prop::collection::vec(any::<u64>(), 1..120),
        window in prop_oneof![
            1u64..64,                       // tiny: many windows, partial tail
            977u64..10_000,                 // non-divisor mid-size windows
            1_000_000u64..1_000_000_000,    // far larger than any run here
        ],
    ) {
        let mut m = Module::new("t");
        let f = m.add_function("copy", &["src", "dst", "n"]);
        {
            let mut bd = FunctionBuilder::new(m.function_mut(f));
            let (src, dst, n) = (bd.param(0), bd.param(1), bd.param(2));
            bd.loop_up(0, n, 1, |bd, i| {
                let v = bd.load_elem(src, i, Width::W8, false);
                let w = bd.mul(v, 3u64);
                bd.store_elem(dst, i, w, Width::W8);
            });
            bd.ret(None::<Operand>);
        }
        let mut img = MemImage::new();
        let src = img.alloc_u64_slice(&values);
        let dst = img.alloc(values.len() as u64 * 8, 64);
        let cfg = SimConfig { timeline_window: window, ..SimConfig::default() };
        let mut mach = Machine::new(&m, cfg, img);
        mach.call("copy", &[src, dst, values.len() as u64]).unwrap();
        let stats = mach.stats();
        let timeline = mach.take_timeline();

        prop_assert!(!timeline.samples.is_empty(), "no windows emitted");
        if window > stats.cycles {
            prop_assert_eq!(timeline.samples.len(), 1, "window > run must yield one window");
        }
        let total = timeline.total();
        prop_assert_eq!(total.instructions, stats.instructions);
        prop_assert_eq!(total.cycles, stats.cycles);
        prop_assert_eq!(total.branches, stats.branches);
        prop_assert_eq!(total.loads, stats.mem.loads);
        prop_assert_eq!(total.stores, stats.mem.stores);
        prop_assert_eq!(total.l1_hits, stats.mem.l1_hits);
        prop_assert_eq!(total.demand_fills, stats.mem.demand_fills);
        prop_assert_eq!(total.stall_dram, stats.mem.stall_dram);
        // Windows tile the cycle axis in order, and the last (possibly
        // partial) window closes exactly at the end of the run.
        for pair in timeline.samples.windows(2) {
            prop_assert_eq!(pair[0].end_cycle, pair[1].start_cycle);
            prop_assert_eq!(pair[0].index + 1, pair[1].index);
        }
        prop_assert_eq!(timeline.samples[0].start_cycle, 0);
        prop_assert_eq!(timeline.samples.last().unwrap().end_cycle, stats.cycles);
    }

    /// The LBR never exceeds its architectural depth and cycles are
    /// monotone within a snapshot.
    #[test]
    fn lbr_snapshots_are_well_formed(n in 2u64..2000) {
        let mut m = Module::new("t");
        let f = m.add_function("spin", &["n"]);
        {
            let mut bd = FunctionBuilder::new(m.function_mut(f));
            let nn = bd.param(0);
            bd.loop_up(0, nn, 1, |bd, iv| {
                let _ = bd.mul(iv, 3u64);
            });
            bd.ret(None::<Operand>);
        }
        let cfg = SimConfig {
            lbr_sample_period: 50,
            ..SimConfig::default()
        };
        let mut mach = Machine::new(&m, cfg, MemImage::new());
        mach.call("spin", &[n]).unwrap();
        let prof = mach.take_profile();
        prop_assert!(!prof.lbr_samples.is_empty());
        for s in &prof.lbr_samples {
            prop_assert!(s.len() <= apt_cpu::LBR_ENTRIES);
            prop_assert!(s.windows(2).all(|w| w[0].cycle <= w[1].cycle));
        }
    }
}
