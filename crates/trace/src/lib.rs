//! Observability layer for the APT-GET reproduction.
//!
//! The simulator's PMU counters (`apt-mem::counters`) only report *aggregate*
//! end-of-run totals. The paper's whole argument, however, is about per-load
//! *timeliness*: every software prefetch is timely, late, or early (Fig. 1,
//! Table 1). This crate adds the instrumentation needed to see that at
//! per-PC granularity, without perturbing the hot simulation loop when it is
//! switched off:
//!
//! * [`event`] — a compact, allocation-free structured event record
//!   ([`TraceEvent`]) for the hierarchy hooks: MSHR allocate/drop,
//!   fill-buffer hit, software-prefetch issue, demand miss, eviction,
//!   fill completion;
//! * [`sink`] — the [`EventSink`] trait with a fixed-capacity
//!   [`RingRecorder`] plus pluggable [`EventFilter`]s (by kind, PC, line);
//! * [`outcome`] — per-PC software-prefetch outcome attribution: every
//!   issued prefetch is classified *timely / late / early / useless /
//!   redundant / dropped*, conserving the aggregate PMU counters exactly;
//! * [`tracer`] — the [`Tracer`] handle embedded in the memory hierarchy.
//!   With [`TraceConfig::off`] every hook is a single branch on a `None`
//!   discriminant, so measurement runs stay as fast as before;
//! * [`span`] — wall-clock phase spans for the `AptGet::optimize` pipeline
//!   (the `--explain` timeline);
//! * [`chrome`] — a hand-rolled Chrome trace-event JSON writer (no serde,
//!   per DESIGN.md §8) loadable in `chrome://tracing` / Perfetto.
//!
//! The crate is intentionally zero-dependency and sits below `apt-mem` in
//! the workspace DAG so the hierarchy can emit events directly.

pub mod chrome;
pub mod event;
pub mod outcome;
pub mod sink;
pub mod span;
pub mod tracer;

pub use chrome::ChromeTrace;
pub use event::{EventKind, PfDisposition, PfSource, TraceEvent};
pub use outcome::{OutcomeTable, OutcomeTracker, PcOutcomes, PfOutcome};
pub use sink::{CountingSink, EventFilter, EventSink, RingRecorder, VecSink};
pub use span::{render_spans, Span, SpanGuard, SpanRecorder};
pub use tracer::{TraceConfig, TraceReport, Tracer};
