//! The [`Tracer`] handle the memory hierarchy embeds.
//!
//! Design constraints (ISSUE acceptance criteria):
//!
//! * with tracing **off**, every hook must compile down to one predictable
//!   branch on a boolean — no allocation, no indirect call — so the
//!   `substrate_criterion` hot loop is unchanged within noise;
//! * with tracing **on**, the tracer feeds a fixed-capacity
//!   [`RingRecorder`] (events) and an [`OutcomeTracker`] (per-PC
//!   attribution) without unbounded memory growth.
//!
//! The tracer is a concrete `Clone` struct rather than a `dyn EventSink`
//! so `Hierarchy` keeps its `Clone` derive and the hot path never makes a
//! virtual call.

use crate::event::{EventKind, PfDisposition, PfSource, TraceEvent};
use crate::outcome::{OutcomeTable, OutcomeTracker};
use crate::sink::{EventFilter, EventSink, RingRecorder};

/// What to collect. `Copy` so it can live inside the simulator's `Copy`
/// configuration structs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Record structured [`TraceEvent`]s into the ring buffer.
    pub events: bool,
    /// Track per-PC software-prefetch outcomes.
    pub outcomes: bool,
    /// Ring capacity when `events` is set (latest N kept).
    pub ring_capacity: usize,
    /// Filter applied before an event enters the ring.
    pub filter: EventFilter,
}

impl TraceConfig {
    /// Everything disabled: hooks reduce to one `if !active` branch.
    pub const fn off() -> TraceConfig {
        TraceConfig {
            events: false,
            outcomes: false,
            ring_capacity: 0,
            filter: EventFilter::ALL,
        }
    }

    /// Outcome attribution only (what `--explain` needs).
    pub const fn outcomes() -> TraceConfig {
        TraceConfig {
            events: false,
            outcomes: true,
            ring_capacity: 0,
            filter: EventFilter::ALL,
        }
    }

    /// Outcomes plus the event ring (what `--trace-out` needs).
    pub const fn full(ring_capacity: usize) -> TraceConfig {
        TraceConfig {
            events: true,
            outcomes: true,
            ring_capacity,
            filter: EventFilter::ALL,
        }
    }

    pub fn with_filter(mut self, filter: EventFilter) -> TraceConfig {
        self.filter = filter;
        self
    }

    pub fn is_active(&self) -> bool {
        self.events || self.outcomes
    }
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig::off()
    }
}

/// Everything a finished simulation hands back to the caller.
#[derive(Debug, Clone, Default)]
pub struct TraceReport {
    /// Latest events, oldest first (empty unless `events` was enabled).
    pub events: Vec<TraceEvent>,
    /// Events offered to the ring, including overwritten ones.
    pub events_offered: u64,
    /// Conserved per-PC outcome table (empty unless `outcomes` was on).
    pub outcomes: OutcomeTable,
}

/// The hook target embedded in `Hierarchy`.
#[derive(Debug, Clone)]
pub struct Tracer {
    /// Single hot-path guard: true iff any collection is enabled.
    active: bool,
    cfg: TraceConfig,
    ring: RingRecorder,
    outcomes: Option<OutcomeTracker>,
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::new(TraceConfig::off())
    }
}

impl Tracer {
    pub fn new(cfg: TraceConfig) -> Tracer {
        Tracer {
            active: cfg.is_active(),
            cfg,
            ring: RingRecorder::new(if cfg.events { cfg.ring_capacity } else { 1 }),
            outcomes: if cfg.outcomes {
                Some(OutcomeTracker::new())
            } else {
                None
            },
        }
    }

    /// The hot-path guard. `#[inline]` so callers' `if !t.is_active()`
    /// early-outs stay branch-only when tracing is off.
    #[inline(always)]
    pub fn is_active(&self) -> bool {
        self.active
    }

    pub fn config(&self) -> TraceConfig {
        self.cfg
    }

    #[inline]
    fn emit(&mut self, cycle: u64, pc: u64, line: u64, kind: EventKind) {
        if self.cfg.events {
            let ev = TraceEvent {
                cycle,
                pc,
                line,
                kind,
            };
            if self.cfg.filter.accepts(&ev) {
                self.ring.record(ev);
            }
        }
    }

    // ---- hooks (all no-ops unless active; callers check `is_active` first
    // so argument computation is also skipped on the fast path) ----

    /// Software prefetch executed with the given issue-time disposition.
    #[inline]
    pub fn sw_pf_issue(&mut self, cycle: u64, pc: u64, line: u64, disposition: PfDisposition) {
        if !self.active {
            return;
        }
        self.emit(cycle, pc, line, EventKind::SwPfIssue { disposition });
        if let Some(o) = self.outcomes.as_mut() {
            o.on_issue(pc, line, cycle, disposition);
        }
    }

    /// MSHR entry allocated for `line`, data ready at `ready`.
    #[inline]
    pub fn mshr_alloc(&mut self, cycle: u64, pc: u64, line: u64, source: PfSource, ready: u64) {
        if !self.active {
            return;
        }
        self.emit(cycle, pc, line, EventKind::MshrAlloc { source, ready });
    }

    /// Request dropped because the MSHR file was full.
    #[inline]
    pub fn mshr_drop(&mut self, cycle: u64, pc: u64, line: u64, source: PfSource) {
        if !self.active {
            return;
        }
        self.emit(cycle, pc, line, EventKind::MshrDrop { source });
    }

    /// Outstanding fill for `line` completed and installed.
    #[inline]
    pub fn fill(&mut self, cycle: u64, line: u64, source: PfSource) {
        if !self.active {
            return;
        }
        self.emit(cycle, 0, line, EventKind::Fill { source });
        if source == PfSource::Sw {
            if let Some(o) = self.outcomes.as_mut() {
                o.on_fill(line, cycle);
            }
        }
    }

    /// Demand load coalesced onto an in-flight fill.
    #[inline]
    pub fn fb_hit(&mut self, cycle: u64, pc: u64, line: u64, swpf: bool) {
        if !self.active {
            return;
        }
        self.emit(cycle, pc, line, EventKind::FbHit { swpf });
        if swpf {
            if let Some(o) = self.outcomes.as_mut() {
                o.on_fb_hit(line, cycle);
            }
        }
    }

    /// Demand load missed all levels and allocated a blocking DRAM fill.
    #[inline]
    pub fn demand_fill(&mut self, cycle: u64, pc: u64, line: u64) {
        if !self.active {
            return;
        }
        self.emit(cycle, pc, line, EventKind::DemandFill);
    }

    /// Line evicted from the LLC.
    #[inline]
    pub fn eviction(&mut self, cycle: u64, line: u64, unused_prefetch: bool) {
        if !self.active {
            return;
        }
        self.emit(cycle, 0, line, EventKind::Eviction { unused_prefetch });
        if unused_prefetch {
            if let Some(o) = self.outcomes.as_mut() {
                o.on_unused_eviction(line);
            }
        }
    }

    /// First demand use of a line installed by a prefetch. `swpf` is true
    /// when the install source was a software prefetch.
    #[inline]
    pub fn pf_first_use(&mut self, cycle: u64, pc: u64, line: u64, swpf: bool) {
        if !self.active {
            return;
        }
        self.emit(cycle, pc, line, EventKind::PfFirstUse);
        if swpf {
            if let Some(o) = self.outcomes.as_mut() {
                o.on_first_use(line, cycle);
            }
        }
    }

    /// Cumulative outcome classification totals so far (all counters are
    /// bump-only, so snapshots at two points in time can be diffed to get
    /// the classifications that became terminal in between). Zero when
    /// outcome tracking is off.
    pub fn outcome_totals(&self) -> crate::PcOutcomes {
        self.outcomes
            .as_ref()
            .map(|o| o.table().total)
            .unwrap_or_default()
    }

    /// Prefetches issued but not yet classified (these finalize as
    /// `useless` in [`Tracer::take_report`]). Zero when tracking is off.
    pub fn outcome_pending(&self) -> usize {
        self.outcomes
            .as_ref()
            .map_or(0, OutcomeTracker::pending_len)
    }

    /// Ends collection and returns everything gathered. The tracer resets
    /// to an inactive state.
    pub fn take_report(&mut self) -> TraceReport {
        let events_offered = self.ring.offered();
        let events = self.ring.take_in_order();
        let outcomes = self
            .outcomes
            .take()
            .map(OutcomeTracker::finalize)
            .unwrap_or_default();
        self.active = false;
        TraceReport {
            events,
            events_offered,
            outcomes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_tracer_collects_nothing() {
        let mut t = Tracer::new(TraceConfig::off());
        assert!(!t.is_active());
        t.sw_pf_issue(1, 0x40, 7, PfDisposition::Offcore);
        t.demand_fill(2, 0x44, 8);
        let r = t.take_report();
        assert!(r.events.is_empty());
        assert_eq!(r.outcomes.total.issued, 0);
    }

    #[test]
    fn full_tracer_records_and_classifies() {
        let mut t = Tracer::new(TraceConfig::full(64));
        t.sw_pf_issue(10, 0x40, 7, PfDisposition::Offcore);
        t.mshr_alloc(10, 0x40, 7, PfSource::Sw, 210);
        t.fill(210, 7, PfSource::Sw);
        t.pf_first_use(250, 0x48, 7, true);
        let r = t.take_report();
        assert_eq!(r.events.len(), 4);
        assert_eq!(r.outcomes.total.timely, 1);
        assert_eq!(r.outcomes.total.issued, 1);
        assert!(r.outcomes.is_conserved());
    }

    #[test]
    fn outcomes_only_skips_ring() {
        let mut t = Tracer::new(TraceConfig::outcomes());
        t.sw_pf_issue(10, 0x40, 7, PfDisposition::DroppedFull);
        let r = t.take_report();
        assert!(r.events.is_empty());
        assert_eq!(r.outcomes.total.dropped, 1);
    }

    #[test]
    fn filter_applies_to_ring_not_outcomes() {
        let cfg = TraceConfig::full(64).with_filter(EventFilter::only_kind(EventKind::DemandFill));
        let mut t = Tracer::new(cfg);
        t.sw_pf_issue(1, 0x40, 7, PfDisposition::Redundant);
        t.demand_fill(2, 0x44, 8);
        let r = t.take_report();
        assert_eq!(r.events.len(), 1);
        assert_eq!(r.events[0].kind, EventKind::DemandFill);
        // Outcome attribution is unaffected by event filters.
        assert_eq!(r.outcomes.total.redundant, 1);
    }

    #[test]
    fn hw_fill_does_not_touch_outcomes() {
        let mut t = Tracer::new(TraceConfig::full(8));
        t.sw_pf_issue(1, 0x40, 7, PfDisposition::Offcore);
        t.fill(100, 7, PfSource::Hw); // HW fill for same line: ignored by tracker
        t.pf_first_use(200, 0x48, 7, false); // HW first-use: ignored too
        let r = t.take_report();
        // Still pending at finalize → useless.
        assert_eq!(r.outcomes.total.useless, 1);
    }
}
