//! Per-PC software-prefetch outcome attribution.
//!
//! Every software prefetch is eventually classified into exactly one of:
//!
//! - **timely** — the line was demanded after the fill completed and the
//!   demand hit in cache (APT-GET's goal state, §2.1);
//! - **late** — a demand load arrived while the fill was still in flight
//!   and coalesced onto it (`LOAD_HIT_PRE.SW_PF` in the paper);
//! - **early** — the line was evicted from the LLC before any demand
//!   touched it (prefetch distance too large);
//! - **useless** — never demanded and never observed evicted by the end of
//!   the run (dead hint, e.g. past the end of an array);
//! - **redundant** — the line was already resident in L1 or already in
//!   flight when the prefetch issued (no-op);
//! - **dropped** — discarded at issue because the MSHR file was full.
//!
//! Conservation: `issued == timely + late + early + useless + redundant +
//! dropped` once [`OutcomeTracker::finalize`] has run, and `late` / `dropped`
//! reconcile exactly with the PMU counters `fb_hits_swpf` /
//! `sw_pf_dropped_full`.

use std::collections::BTreeMap;

use crate::event::PfDisposition;

/// Terminal classification of one software prefetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PfOutcome {
    Timely,
    Late,
    Early,
    Useless,
    Redundant,
    Dropped,
}

impl PfOutcome {
    pub fn name(self) -> &'static str {
        match self {
            PfOutcome::Timely => "timely",
            PfOutcome::Late => "late",
            PfOutcome::Early => "early",
            PfOutcome::Useless => "useless",
            PfOutcome::Redundant => "redundant",
            PfOutcome::Dropped => "dropped",
        }
    }
}

/// Lifecycle state of a tracked in-flight / resident prefetched line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PendingState {
    /// MSHR allocated, fill not yet complete.
    InFlight,
    /// Fill complete (or served on-core); awaiting first demand use.
    Resident,
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    pc: u64,
    issue_cycle: u64,
    /// Cycle the fill completed (issue cycle for on-core hits). Used to
    /// report timeliness slack = first_use − ready.
    ready_cycle: u64,
    state: PendingState,
}

/// Outcome tallies for one injected prefetch PC.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PcOutcomes {
    pub issued: u64,
    pub timely: u64,
    pub late: u64,
    pub early: u64,
    pub useless: u64,
    pub redundant: u64,
    pub dropped: u64,
    /// Σ (first_use_cycle − fill_ready_cycle) over timely prefetches;
    /// divide by `timely` for mean slack.
    pub timely_slack_cycles: u64,
    /// Σ (coalesce_cycle − issue_cycle) over late prefetches: how long the
    /// demand waited behind the in-flight fill's issue point.
    pub late_head_start_cycles: u64,
}

impl PcOutcomes {
    /// Sum of all terminal classifications.
    pub fn classified(&self) -> u64 {
        self.timely + self.late + self.early + self.useless + self.redundant + self.dropped
    }

    /// Fraction of issues that were timely (0 if none issued).
    pub fn timely_ratio(&self) -> f64 {
        if self.issued == 0 {
            0.0
        } else {
            self.timely as f64 / self.issued as f64
        }
    }

    /// Mean cycles a timely prefetch's data sat ready before first use.
    pub fn mean_timely_slack(&self) -> f64 {
        if self.timely == 0 {
            0.0
        } else {
            self.timely_slack_cycles as f64 / self.timely as f64
        }
    }

    fn bump(&mut self, outcome: PfOutcome) {
        match outcome {
            PfOutcome::Timely => self.timely += 1,
            PfOutcome::Late => self.late += 1,
            PfOutcome::Early => self.early += 1,
            PfOutcome::Useless => self.useless += 1,
            PfOutcome::Redundant => self.redundant += 1,
            PfOutcome::Dropped => self.dropped += 1,
        }
    }

    /// Accumulates another tally into this one (merging runs).
    pub fn add(&mut self, other: &PcOutcomes) {
        self.issued += other.issued;
        self.timely += other.timely;
        self.late += other.late;
        self.early += other.early;
        self.useless += other.useless;
        self.redundant += other.redundant;
        self.dropped += other.dropped;
        self.timely_slack_cycles += other.timely_slack_cycles;
        self.late_head_start_cycles += other.late_head_start_cycles;
    }
}

/// Finalized per-PC breakdown plus totals.
#[derive(Debug, Clone, Default)]
pub struct OutcomeTable {
    /// Keyed by issuing (injected) prefetch PC, in PC order.
    pub per_pc: BTreeMap<u64, PcOutcomes>,
    pub total: PcOutcomes,
}

impl OutcomeTable {
    /// `issued == timely+late+early+useless+redundant+dropped` for every
    /// row and the total. Holds after `finalize`.
    pub fn is_conserved(&self) -> bool {
        self.total.issued == self.total.classified()
            && self.per_pc.values().all(|pc| pc.issued == pc.classified())
    }

    /// Plain-text table, one row per PC plus a totals row.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:>10}  {:>8} {:>8} {:>7} {:>7} {:>8} {:>9} {:>8}  {:>10}\n",
            "pc",
            "issued",
            "timely",
            "late",
            "early",
            "useless",
            "redundant",
            "dropped",
            "slack/avg"
        ));
        let mut row = |label: String, o: &PcOutcomes| {
            out.push_str(&format!(
                "{label:>10}  {:>8} {:>8} {:>7} {:>7} {:>8} {:>9} {:>8}  {:>10.1}\n",
                o.issued,
                o.timely,
                o.late,
                o.early,
                o.useless,
                o.redundant,
                o.dropped,
                o.mean_timely_slack()
            ));
        };
        for (pc, o) in &self.per_pc {
            row(format!("{pc:#x}"), o);
        }
        row("TOTAL".to_string(), &self.total);
        out
    }
}

/// Live state machine that classifies software prefetches from hook calls.
///
/// The tracker keys pending prefetches by cache line: the simulated MSHR
/// coalesces by line, and a later prefetch to a still-pending line is
/// reported `Redundant` at issue, so at most one software prefetch is
/// tracked per line at a time.
#[derive(Debug, Clone, Default)]
pub struct OutcomeTracker {
    pending: BTreeMap<u64, Pending>,
    table: OutcomeTable,
}

impl OutcomeTracker {
    pub fn new() -> OutcomeTracker {
        OutcomeTracker::default()
    }

    fn finish(&mut self, pc: u64, outcome: PfOutcome) {
        self.table.per_pc.entry(pc).or_default().bump(outcome);
        self.table.total.bump(outcome);
    }

    /// A software prefetch executed. For `Offcore`/`Oncore` the line enters
    /// the pending map; `Redundant`/`DroppedFull` are terminal immediately.
    pub fn on_issue(&mut self, pc: u64, line: u64, cycle: u64, disposition: PfDisposition) {
        self.table.per_pc.entry(pc).or_default().issued += 1;
        self.table.total.issued += 1;
        match disposition {
            PfDisposition::Redundant => self.finish(pc, PfOutcome::Redundant),
            PfDisposition::DroppedFull => self.finish(pc, PfOutcome::Dropped),
            PfDisposition::Offcore | PfDisposition::Oncore => {
                let state = if disposition == PfDisposition::Offcore {
                    PendingState::InFlight
                } else {
                    PendingState::Resident
                };
                // A stale Resident entry for this line means the earlier
                // prefetch's data aged out of the hierarchy unobserved
                // (otherwise this issue would have been Redundant or the
                // line would have seen a first use). Close it as useless.
                if let Some(old) = self.pending.insert(
                    line,
                    Pending {
                        pc,
                        issue_cycle: cycle,
                        ready_cycle: cycle,
                        state,
                    },
                ) {
                    self.finish(old.pc, PfOutcome::Useless);
                }
            }
        }
    }

    /// An off-core software-prefetch fill completed.
    pub fn on_fill(&mut self, line: u64, cycle: u64) {
        if let Some(p) = self.pending.get_mut(&line) {
            if p.state == PendingState::InFlight {
                p.state = PendingState::Resident;
                p.ready_cycle = cycle;
            }
        }
    }

    /// A demand load coalesced onto an in-flight software-prefetch fill:
    /// the prefetch was **late**.
    pub fn on_fb_hit(&mut self, line: u64, cycle: u64) {
        if let Some(p) = self.pending.remove(&line) {
            let head_start = cycle.saturating_sub(p.issue_cycle);
            let o = self.table.per_pc.entry(p.pc).or_default();
            o.late_head_start_cycles += head_start;
            self.table.total.late_head_start_cycles += head_start;
            self.finish(p.pc, PfOutcome::Late);
        }
    }

    /// First demand access hit a line installed by a software prefetch:
    /// the prefetch was **timely**.
    pub fn on_first_use(&mut self, line: u64, cycle: u64) {
        if let Some(p) = self.pending.remove(&line) {
            let slack = cycle.saturating_sub(p.ready_cycle);
            let o = self.table.per_pc.entry(p.pc).or_default();
            o.timely_slack_cycles += slack;
            self.table.total.timely_slack_cycles += slack;
            self.finish(p.pc, PfOutcome::Timely);
        }
    }

    /// A never-demanded prefetched line left the LLC: the prefetch was
    /// **early** (distance overshot the reuse window).
    pub fn on_unused_eviction(&mut self, line: u64) {
        if let Some(p) = self.pending.remove(&line) {
            self.finish(p.pc, PfOutcome::Early);
        }
    }

    /// Number of prefetches still awaiting classification.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Ends the run: every still-pending prefetch becomes **useless** and
    /// the conserved table is returned.
    pub fn finalize(mut self) -> OutcomeTable {
        let pending: Vec<Pending> = self.pending.values().copied().collect();
        self.pending.clear();
        for p in pending {
            self.finish(p.pc, PfOutcome::Useless);
        }
        debug_assert!(self.table.is_conserved());
        self.table
    }

    /// Read-only view of the (not yet conserved) table mid-run.
    pub fn table(&self) -> &OutcomeTable {
        &self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PC: u64 = 0x4010;

    #[test]
    fn timely_path_records_slack() {
        let mut t = OutcomeTracker::new();
        t.on_issue(PC, 7, 100, PfDisposition::Offcore);
        t.on_fill(7, 300);
        t.on_first_use(7, 350);
        let table = t.finalize();
        let o = table.per_pc[&PC];
        assert_eq!((o.issued, o.timely), (1, 1));
        assert_eq!(o.timely_slack_cycles, 50);
        assert!(table.is_conserved());
    }

    #[test]
    fn late_path_records_head_start() {
        let mut t = OutcomeTracker::new();
        t.on_issue(PC, 7, 100, PfDisposition::Offcore);
        t.on_fb_hit(7, 180);
        let table = t.finalize();
        let o = table.per_pc[&PC];
        assert_eq!((o.issued, o.late), (1, 1));
        assert_eq!(o.late_head_start_cycles, 80);
    }

    #[test]
    fn early_useless_redundant_dropped() {
        let mut t = OutcomeTracker::new();
        t.on_issue(PC, 1, 0, PfDisposition::Offcore);
        t.on_fill(1, 200);
        t.on_unused_eviction(1); // early
        t.on_issue(PC, 2, 10, PfDisposition::Offcore); // never used → useless
        t.on_issue(PC, 3, 20, PfDisposition::Redundant);
        t.on_issue(PC, 4, 30, PfDisposition::DroppedFull);
        let table = t.finalize();
        let o = table.per_pc[&PC];
        assert_eq!(o.issued, 4);
        assert_eq!((o.early, o.useless, o.redundant, o.dropped), (1, 1, 1, 1));
        assert!(table.is_conserved());
    }

    #[test]
    fn superseded_resident_line_counts_useless() {
        let mut t = OutcomeTracker::new();
        t.on_issue(PC, 9, 0, PfDisposition::Oncore);
        // Same line prefetched again much later after silently aging out.
        t.on_issue(PC, 9, 5_000, PfDisposition::Offcore);
        t.on_fill(9, 5_200);
        t.on_first_use(9, 5_250);
        let table = t.finalize();
        let o = table.per_pc[&PC];
        assert_eq!((o.issued, o.timely, o.useless), (2, 1, 1));
        assert!(table.is_conserved());
    }

    #[test]
    fn oncore_hit_is_ready_immediately() {
        let mut t = OutcomeTracker::new();
        t.on_issue(PC, 7, 100, PfDisposition::Oncore);
        t.on_first_use(7, 120);
        let o = t.finalize().per_pc[&PC];
        assert_eq!(o.timely, 1);
        assert_eq!(o.timely_slack_cycles, 20);
    }

    #[test]
    fn render_has_total_row() {
        let mut t = OutcomeTracker::new();
        t.on_issue(PC, 7, 0, PfDisposition::Redundant);
        let table = t.finalize();
        let s = table.render();
        assert!(s.contains("TOTAL"));
        assert!(s.contains("0x4010"));
    }
}
