//! Pipeline spans: named, nested phases with wall-time, simulated cycles,
//! and free-form key/value detail.
//!
//! `AptGet::optimize` wraps each phase (profile run, delinquency ranking,
//! LBR matching, CWT peaks, Eq.1/Eq.2, injection, cleanup) in a span.
//! Spans render both as the human-readable part of `--explain` and as
//! Chrome trace-event "X" entries.

use std::time::Instant;

/// One completed phase.
#[derive(Debug, Clone)]
pub struct Span {
    pub name: String,
    /// Nesting depth (0 = top level).
    pub depth: usize,
    /// Wall-clock time relative to the recorder's creation.
    pub start_us: u64,
    pub wall_us: u64,
    /// Simulated cycles consumed inside the span (0 for pure-analysis
    /// phases that never advance the simulator).
    pub sim_cycles: u64,
    /// Key outputs, e.g. `("delinquent_pc", "0x4010")`.
    pub detail: Vec<(String, String)>,
}

impl Span {
    /// `detail` value for `key`, if recorded.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.detail
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Handle to a span that is still open; returned by [`SpanRecorder::begin`]
/// and consumed by [`SpanRecorder::end`].
#[derive(Debug)]
#[must_use = "pass the guard back to SpanRecorder::end to close the span"]
pub struct SpanGuard {
    index: usize,
    started: Instant,
}

/// Collects spans for one pipeline run.
#[derive(Debug)]
pub struct SpanRecorder {
    epoch: Instant,
    spans: Vec<Span>,
    open_depth: usize,
}

impl Default for SpanRecorder {
    fn default() -> SpanRecorder {
        SpanRecorder::new()
    }
}

impl SpanRecorder {
    pub fn new() -> SpanRecorder {
        SpanRecorder {
            epoch: Instant::now(),
            spans: Vec::new(),
            open_depth: 0,
        }
    }

    /// Opens a span. Spans close LIFO (strict nesting).
    pub fn begin(&mut self, name: &str) -> SpanGuard {
        let started = Instant::now();
        let index = self.spans.len();
        self.spans.push(Span {
            name: name.to_string(),
            depth: self.open_depth,
            start_us: started.duration_since(self.epoch).as_micros() as u64,
            wall_us: 0,
            sim_cycles: 0,
            detail: Vec::new(),
        });
        self.open_depth += 1;
        SpanGuard { index, started }
    }

    /// Closes a span opened by [`SpanRecorder::begin`].
    pub fn end(&mut self, guard: SpanGuard) {
        self.open_depth = self.open_depth.saturating_sub(1);
        let span = &mut self.spans[guard.index];
        span.wall_us = guard.started.elapsed().as_micros() as u64;
    }

    /// Attaches a key/value detail to the span behind `guard`.
    pub fn note(&mut self, guard: &SpanGuard, key: &str, value: impl ToString) {
        self.spans[guard.index]
            .detail
            .push((key.to_string(), value.to_string()));
    }

    /// Records simulated cycles consumed inside the span behind `guard`.
    pub fn add_sim_cycles(&mut self, guard: &SpanGuard, cycles: u64) {
        self.spans[guard.index].sim_cycles += cycles;
    }

    /// Convenience: run `f` inside a span named `name`.
    pub fn scoped<T>(
        &mut self,
        name: &str,
        f: impl FnOnce(&mut SpanRecorder, &SpanGuard) -> T,
    ) -> T {
        let guard = self.begin(name);
        let out = f(self, &guard);
        self.end(guard);
        out
    }

    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    pub fn into_spans(self) -> Vec<Span> {
        self.spans
    }

    /// Indented plain-text rendering of the recorded phases.
    pub fn render(&self) -> String {
        render_spans(&self.spans)
    }
}

/// Indented plain-text rendering of a span slice (see
/// [`SpanRecorder::render`]).
pub fn render_spans(spans: &[Span]) -> String {
    let mut out = String::new();
    for s in spans {
        out.push_str(&"  ".repeat(s.depth));
        out.push_str(&format!("{} ({} µs", s.name, s.wall_us));
        if s.sim_cycles > 0 {
            out.push_str(&format!(", {} sim cycles", s.sim_cycles));
        }
        out.push(')');
        for (k, v) in &s.detail {
            out.push_str(&format!("\n{}- {k}: {v}", "  ".repeat(s.depth + 1)));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_carry_detail() {
        let mut r = SpanRecorder::new();
        let outer = r.begin("optimize");
        let inner = r.begin("profile-run");
        r.note(&inner, "instructions", 1234u64);
        r.add_sim_cycles(&inner, 999);
        r.end(inner);
        r.end(outer);

        let spans = r.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!((spans[0].depth, spans[1].depth), (0, 1));
        assert_eq!(spans[1].get("instructions"), Some("1234"));
        assert_eq!(spans[1].sim_cycles, 999);
        assert_eq!(spans[0].get("missing"), None);

        let text = r.render();
        assert!(text.contains("optimize"));
        assert!(text.contains("  profile-run"));
        assert!(text.contains("instructions: 1234"));
        assert!(text.contains("999 sim cycles"));
    }

    #[test]
    fn scoped_runs_closure_and_closes() {
        let mut r = SpanRecorder::new();
        let v = r.scoped("phase", |r, g| {
            r.note(g, "k", "v");
            42
        });
        assert_eq!(v, 42);
        assert_eq!(r.spans().len(), 1);
        assert_eq!(r.spans()[0].get("k"), Some("v"));
    }
}
