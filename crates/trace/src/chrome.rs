//! Hand-rolled Chrome trace-event JSON (DESIGN.md §8: no serde).
//!
//! Emits the stable subset of the [Trace Event Format] that
//! `chrome://tracing` and Perfetto load: an object with a `traceEvents`
//! array of complete ("X") and instant ("i") events. Pipeline spans become
//! "X" events on one thread row; simulator [`TraceEvent`]s become "i"
//! events on a second row, with the simulated cycle mapped to the
//! microsecond timestamp axis.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::event::{EventKind, TraceEvent};
use crate::span::Span;

/// Builder for one trace JSON document.
#[derive(Debug, Clone, Default)]
pub struct ChromeTrace {
    entries: Vec<String>,
}

/// JSON string escaping for the characters that can appear in span names
/// and detail values (quotes, backslashes, control characters).
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn push_str_field(out: &mut String, key: &str, value: &str, trailing_comma: bool) {
    out.push('"');
    escape_into(out, key);
    out.push_str("\":\"");
    escape_into(out, value);
    out.push('"');
    if trailing_comma {
        out.push(',');
    }
}

impl ChromeTrace {
    pub fn new() -> ChromeTrace {
        ChromeTrace::default()
    }

    /// Number of entries queued so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Adds a complete ("X") event for one pipeline span on thread `tid`.
    pub fn push_span(&mut self, span: &Span, tid: u32) {
        self.push_span_at(span, tid, span.start_us);
    }

    /// [`ChromeTrace::push_span`] with an explicit timeline position.
    ///
    /// Campaign merging uses this: each worker records spans against its
    /// own epoch, and the merger re-bases them onto the campaign clock so
    /// parallel cells line up on one shared time axis.
    pub fn push_span_at(&mut self, span: &Span, tid: u32, start_us: u64) {
        let mut e = String::with_capacity(128);
        e.push('{');
        push_str_field(&mut e, "name", &span.name, true);
        push_str_field(&mut e, "ph", "X", true);
        push_str_field(&mut e, "cat", "pipeline", true);
        e.push_str(&format!(
            "\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{tid},\"args\":{{",
            start_us, span.wall_us
        ));
        let mut first = true;
        if span.sim_cycles > 0 {
            e.push_str(&format!("\"sim_cycles\":\"{}\"", span.sim_cycles));
            first = false;
        }
        for (k, v) in &span.detail {
            if !first {
                e.push(',');
            }
            push_str_field(&mut e, k, v, false);
            first = false;
        }
        e.push_str("}}");
        self.entries.push(e);
    }

    /// Adds an instant ("i") event for one simulator event on thread `tid`,
    /// using the simulated cycle as the timestamp.
    pub fn push_sim_event(&mut self, ev: &TraceEvent, tid: u32) {
        let mut e = String::with_capacity(128);
        e.push('{');
        push_str_field(&mut e, "name", ev.kind.name(), true);
        push_str_field(&mut e, "ph", "i", true);
        push_str_field(&mut e, "cat", "sim", true);
        push_str_field(&mut e, "s", "t", true);
        e.push_str(&format!(
            "\"ts\":{},\"pid\":1,\"tid\":{tid},\"args\":{{",
            ev.cycle
        ));
        e.push_str(&format!(
            "\"pc\":\"{:#x}\",\"line\":\"{:#x}\"",
            ev.pc, ev.line
        ));
        if let Some(extra) = kind_detail(ev.kind) {
            e.push(',');
            push_str_field(&mut e, "detail", extra, false);
        }
        e.push_str("}}");
        self.entries.push(e);
    }

    /// Appends every entry of `other`, preserving order.
    ///
    /// Workers build their traces independently (each on its own `tid`
    /// row, named via [`ChromeTrace::name_thread`]); the campaign runner
    /// folds them into one document with this.
    pub fn append(&mut self, other: ChromeTrace) {
        self.entries.extend(other.entries);
    }

    /// Adds a counter ("C") sample — a stepped area track in the viewer.
    ///
    /// The serve dashboard uses this for committer queue depth over time:
    /// one sample per batch drain, all on a dedicated `tid` row.
    pub fn push_counter(&mut self, name: &str, ts: u64, value: u64, tid: u32) {
        let mut e = String::with_capacity(96);
        e.push('{');
        push_str_field(&mut e, "name", name, true);
        push_str_field(&mut e, "ph", "C", true);
        push_str_field(&mut e, "cat", "daemon", true);
        e.push_str(&format!(
            "\"ts\":{ts},\"pid\":1,\"tid\":{tid},\"args\":{{\"value\":{value}}}}}"
        ));
        self.entries.push(e);
    }

    /// Adds metadata naming a thread row in the viewer.
    pub fn name_thread(&mut self, tid: u32, name: &str) {
        let mut e = String::with_capacity(96);
        e.push('{');
        push_str_field(&mut e, "name", "thread_name", true);
        push_str_field(&mut e, "ph", "M", true);
        e.push_str(&format!("\"pid\":1,\"tid\":{tid},\"args\":{{"));
        push_str_field(&mut e, "name", name, false);
        e.push_str("}}");
        self.entries.push(e);
    }

    /// Serializes the full document.
    pub fn to_json(&self) -> String {
        let mut out =
            String::with_capacity(64 + self.entries.iter().map(|e| e.len() + 2).sum::<usize>());
        out.push_str("{\"traceEvents\":[");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            out.push_str(e);
        }
        out.push_str("\n],\"displayTimeUnit\":\"ns\"}\n");
        out
    }
}

fn kind_detail(kind: EventKind) -> Option<&'static str> {
    match kind {
        EventKind::SwPfIssue { disposition } => Some(disposition.name()),
        EventKind::MshrAlloc { source, .. }
        | EventKind::MshrDrop { source }
        | EventKind::Fill { source } => Some(source.name()),
        EventKind::FbHit { swpf: true } => Some("sw-pf"),
        EventKind::FbHit { swpf: false } => Some("other"),
        EventKind::Eviction {
            unused_prefetch: true,
        } => Some("unused-prefetch"),
        EventKind::Eviction {
            unused_prefetch: false,
        } => None,
        EventKind::DemandFill | EventKind::PfFirstUse => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::PfDisposition;

    /// Minimal structural JSON check: balanced braces/brackets outside
    /// strings, valid escapes. Enough to catch writer bugs without a
    /// JSON-parsing dependency.
    fn assert_balanced_json(s: &str) {
        let mut depth_obj = 0i32;
        let mut depth_arr = 0i32;
        let mut in_str = false;
        let mut chars = s.chars();
        while let Some(c) = chars.next() {
            if in_str {
                match c {
                    '\\' => {
                        chars.next().expect("dangling escape");
                    }
                    '"' => in_str = false,
                    _ => {}
                }
            } else {
                match c {
                    '"' => in_str = true,
                    '{' => depth_obj += 1,
                    '}' => depth_obj -= 1,
                    '[' => depth_arr += 1,
                    ']' => depth_arr -= 1,
                    _ => {}
                }
                assert!(depth_obj >= 0 && depth_arr >= 0);
            }
        }
        assert!(!in_str, "unterminated string");
        assert_eq!((depth_obj, depth_arr), (0, 0), "unbalanced json");
    }

    #[test]
    fn document_shape() {
        let mut t = ChromeTrace::new();
        t.name_thread(1, "pipeline");
        t.push_span(
            &Span {
                name: "profile-run".into(),
                depth: 0,
                start_us: 5,
                wall_us: 120,
                sim_cycles: 9001,
                detail: vec![("instructions".into(), "42".into())],
            },
            1,
        );
        t.push_sim_event(
            &TraceEvent {
                cycle: 77,
                pc: 0x4010,
                line: 0x99,
                kind: EventKind::SwPfIssue {
                    disposition: PfDisposition::Offcore,
                },
            },
            2,
        );
        let json = t.to_json();
        assert_balanced_json(&json);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"profile-run\""));
        assert!(json.contains("\"dur\":120"));
        assert!(json.contains("\"sim_cycles\":\"9001\""));
        assert!(json.contains("\"ts\":77"));
        assert!(json.contains("\"detail\":\"offcore\""));
        assert!(json.contains("\"pc\":\"0x4010\""));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn escaping() {
        let mut out = String::new();
        escape_into(&mut out, "a\"b\\c\nd\te\u{1}");
        assert_eq!(out, "a\\\"b\\\\c\\nd\\te\\u0001");
        let mut t = ChromeTrace::new();
        t.name_thread(1, "quo\"te");
        assert_balanced_json(&t.to_json());
    }

    #[test]
    fn counter_samples_form_a_track() {
        let mut t = ChromeTrace::new();
        t.push_counter("queue_depth", 10, 3, 0);
        t.push_counter("queue_depth", 20, 0, 0);
        let json = t.to_json();
        assert_balanced_json(&json);
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"ts\":10"));
        assert!(json.contains("\"args\":{\"value\":3}"));
        assert!(json.contains("\"args\":{\"value\":0}"));
    }

    #[test]
    fn empty_document_is_valid() {
        let t = ChromeTrace::new();
        assert!(t.is_empty());
        assert_balanced_json(&t.to_json());
    }

    #[test]
    fn merged_worker_traces_share_one_document() {
        let span = Span {
            name: "cell".into(),
            depth: 0,
            start_us: 3,
            wall_us: 10,
            sim_cycles: 0,
            detail: vec![],
        };
        let mut merged = ChromeTrace::new();
        for worker in 0..2u32 {
            let mut t = ChromeTrace::new();
            t.name_thread(worker + 1, &format!("worker-{worker}"));
            // Re-based onto the campaign clock: worker 1 started 100 µs in.
            t.push_span_at(&span, worker + 1, 100 * worker as u64 + span.start_us);
            merged.append(t);
        }
        let json = merged.to_json();
        assert_balanced_json(&json);
        assert!(json.contains("\"worker-0\""));
        assert!(json.contains("\"worker-1\""));
        assert!(json.contains("\"ts\":3"));
        assert!(json.contains("\"ts\":103"));
        assert_eq!(merged.len(), 4);
    }
}
