//! Event sinks: where structured [`TraceEvent`]s go.
//!
//! The hot loop talks to a concrete recorder (no `dyn` in the fast path);
//! the [`EventSink`] trait exists so tools and tests can plug alternative
//! consumers (counting, collecting) behind the same interface.

use crate::event::{EventKind, TraceEvent};

/// A consumer of structured trace events.
pub trait EventSink {
    /// Receives one event. Implementations must not assume ordering beyond
    /// monotonically non-decreasing `cycle` within one simulation.
    fn record(&mut self, ev: TraceEvent);

    /// Total events offered to the sink (including any it discarded).
    fn offered(&self) -> u64;
}

/// A `Copy` predicate applied before an event reaches a sink.
///
/// All fields are conjunctive: an event passes if it matches the kind mask
/// AND the optional PC restriction AND the optional line restriction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventFilter {
    /// Bitmask over [`EventKind::id`]; bit `i` set ⇒ kind `i` passes.
    pub kind_mask: u32,
    /// If `Some`, only events with exactly this PC pass.
    pub pc: Option<u64>,
    /// If `Some`, only events touching exactly this cache line pass.
    pub line: Option<u64>,
}

impl EventFilter {
    /// Passes every event.
    pub const ALL: EventFilter = EventFilter {
        kind_mask: u32::MAX,
        pc: None,
        line: None,
    };

    /// Passes no event.
    pub const NONE: EventFilter = EventFilter {
        kind_mask: 0,
        pc: None,
        line: None,
    };

    /// Restricts to a single kind (chainable with [`EventFilter::also_kind`]).
    pub fn only_kind(kind: EventKind) -> EventFilter {
        EventFilter {
            kind_mask: 1 << kind.id(),
            ..EventFilter::ALL
        }
    }

    /// Adds one more kind to the mask.
    pub fn also_kind(mut self, kind: EventKind) -> EventFilter {
        self.kind_mask |= 1 << kind.id();
        self
    }

    /// Restricts to a single issuing PC.
    pub fn at_pc(mut self, pc: u64) -> EventFilter {
        self.pc = Some(pc);
        self
    }

    /// Restricts to a single cache line.
    pub fn at_line(mut self, line: u64) -> EventFilter {
        self.line = Some(line);
        self
    }

    /// Whether `ev` passes the filter.
    #[inline]
    pub fn accepts(&self, ev: &TraceEvent) -> bool {
        self.kind_mask & (1 << ev.kind.id()) != 0
            && self.pc.is_none_or(|pc| pc == ev.pc)
            && self.line.is_none_or(|line| line == ev.line)
    }
}

impl Default for EventFilter {
    fn default() -> EventFilter {
        EventFilter::ALL
    }
}

/// Fixed-capacity ring buffer keeping the **latest** `capacity` events.
///
/// Allocates once at construction; recording never allocates, so it is safe
/// to leave enabled during long simulations — old events are overwritten.
#[derive(Debug, Clone)]
pub struct RingRecorder {
    buf: Vec<TraceEvent>,
    capacity: usize,
    /// Next write position when the ring has wrapped.
    head: usize,
    offered: u64,
}

impl RingRecorder {
    pub fn new(capacity: usize) -> RingRecorder {
        RingRecorder {
            buf: Vec::with_capacity(capacity),
            capacity: capacity.max(1),
            head: 0,
            offered: 0,
        }
    }

    /// Number of events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events dropped because the ring wrapped.
    pub fn dropped(&self) -> u64 {
        self.offered - self.buf.len() as u64
    }

    /// Events in arrival order, oldest first.
    pub fn iter_in_order(&self) -> impl Iterator<Item = &TraceEvent> {
        let (newer, older) = self.buf.split_at(self.head.min(self.buf.len()));
        older.iter().chain(newer.iter())
    }

    /// Drains into a plain `Vec`, oldest first, leaving the ring empty.
    pub fn take_in_order(&mut self) -> Vec<TraceEvent> {
        let out: Vec<TraceEvent> = self.iter_in_order().copied().collect();
        self.buf.clear();
        self.head = 0;
        out
    }
}

impl EventSink for RingRecorder {
    #[inline]
    fn record(&mut self, ev: TraceEvent) {
        self.offered += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    fn offered(&self) -> u64 {
        self.offered
    }
}

/// Unbounded collector, mainly for tests and small traces.
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    pub events: Vec<TraceEvent>,
}

impl EventSink for VecSink {
    fn record(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    fn offered(&self) -> u64 {
        self.events.len() as u64
    }
}

/// Counts events per kind without storing them.
#[derive(Debug, Clone, Default)]
pub struct CountingSink {
    pub by_kind: [u64; EventKind::COUNT],
    offered: u64,
}

impl CountingSink {
    pub fn count_of(&self, kind: EventKind) -> u64 {
        self.by_kind[kind.id()]
    }
}

impl EventSink for CountingSink {
    fn record(&mut self, ev: TraceEvent) {
        self.offered += 1;
        self.by_kind[ev.kind.id()] += 1;
    }

    fn offered(&self) -> u64 {
        self.offered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::PfDisposition;

    fn ev(cycle: u64) -> TraceEvent {
        TraceEvent {
            cycle,
            pc: 0x40,
            line: cycle,
            kind: EventKind::DemandFill,
        }
    }

    #[test]
    fn ring_keeps_latest_in_order() {
        let mut r = RingRecorder::new(3);
        for c in 0..7 {
            r.record(ev(c));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.offered(), 7);
        assert_eq!(r.dropped(), 4);
        let cycles: Vec<u64> = r.iter_in_order().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![4, 5, 6]);
        assert_eq!(
            r.take_in_order()
                .iter()
                .map(|e| e.cycle)
                .collect::<Vec<_>>(),
            vec![4, 5, 6]
        );
        assert!(r.is_empty());
    }

    #[test]
    fn ring_below_capacity() {
        let mut r = RingRecorder::new(8);
        r.record(ev(1));
        r.record(ev(2));
        let cycles: Vec<u64> = r.iter_in_order().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![1, 2]);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn filter_conjunction() {
        let e = TraceEvent {
            cycle: 9,
            pc: 0x40,
            line: 7,
            kind: EventKind::SwPfIssue {
                disposition: PfDisposition::Offcore,
            },
        };
        assert!(EventFilter::ALL.accepts(&e));
        assert!(!EventFilter::NONE.accepts(&e));
        assert!(EventFilter::only_kind(e.kind).accepts(&e));
        assert!(!EventFilter::only_kind(EventKind::DemandFill).accepts(&e));
        assert!(EventFilter::only_kind(EventKind::DemandFill)
            .also_kind(e.kind)
            .accepts(&e));
        assert!(EventFilter::ALL.at_pc(0x40).at_line(7).accepts(&e));
        assert!(!EventFilter::ALL.at_pc(0x44).accepts(&e));
        assert!(!EventFilter::ALL.at_line(8).accepts(&e));
    }

    #[test]
    fn counting_sink_tallies_by_kind() {
        let mut s = CountingSink::default();
        s.record(ev(1));
        s.record(ev(2));
        s.record(TraceEvent {
            kind: EventKind::PfFirstUse,
            ..ev(3)
        });
        assert_eq!(s.count_of(EventKind::DemandFill), 2);
        assert_eq!(s.count_of(EventKind::PfFirstUse), 1);
        assert_eq!(s.offered(), 3);
    }
}
