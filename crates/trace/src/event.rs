//! Compact structured event records for the memory-hierarchy hooks.
//!
//! Events are `Copy` and allocation-free so the recorder can run inside the
//! simulation hot loop. One [`TraceEvent`] is emitted per hook firing; the
//! [`EventKind`] payload carries the hook-specific data.

/// Who created a fill request (mirror of `apt-mem`'s `ReqSource`, kept
/// separate because this crate sits *below* `apt-mem` in the workspace
/// dependency DAG).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PfSource {
    /// A demand load/store.
    Demand,
    /// A software `prefetch` instruction.
    Sw,
    /// A hardware prefetcher (stride or next-line).
    Hw,
}

impl PfSource {
    pub fn name(self) -> &'static str {
        match self {
            PfSource::Demand => "demand",
            PfSource::Sw => "sw-pf",
            PfSource::Hw => "hw-pf",
        }
    }
}

/// What happened to a software prefetch at issue time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PfDisposition {
    /// Allocated an MSHR entry and went to DRAM.
    Offcore,
    /// Served by an on-chip level (L2/LLC → L1 install).
    Oncore,
    /// Line already resident in L1 or already in flight: no-op.
    Redundant,
    /// No free MSHR entry: the prefetch was discarded.
    DroppedFull,
}

impl PfDisposition {
    pub fn name(self) -> &'static str {
        match self {
            PfDisposition::Offcore => "offcore",
            PfDisposition::Oncore => "oncore",
            PfDisposition::Redundant => "redundant",
            PfDisposition::DroppedFull => "dropped-full",
        }
    }
}

/// The hook a [`TraceEvent`] came from, with its payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A software `prefetch` instruction executed.
    SwPfIssue { disposition: PfDisposition },
    /// An MSHR (fill-buffer) entry was allocated.
    MshrAlloc { source: PfSource, ready: u64 },
    /// A prefetch was dropped because the MSHR file was full.
    MshrDrop { source: PfSource },
    /// An outstanding fill completed and installed into the hierarchy.
    Fill { source: PfSource },
    /// A demand load coalesced onto an in-flight fill (`LOAD_HIT_PRE`);
    /// `swpf` marks the paper's late-software-prefetch case.
    FbHit { swpf: bool },
    /// A demand load missed every level and allocated a blocking DRAM fill.
    DemandFill,
    /// A line was evicted from the LLC; `unused_prefetch` marks the
    /// paper's early-prefetch failure (prefetched, never demanded).
    Eviction { unused_prefetch: bool },
    /// First demand access to a prefetch-installed line.
    PfFirstUse,
}

impl EventKind {
    /// Dense id used by kind filters and counting sinks.
    pub fn id(self) -> usize {
        match self {
            EventKind::SwPfIssue { .. } => 0,
            EventKind::MshrAlloc { .. } => 1,
            EventKind::MshrDrop { .. } => 2,
            EventKind::Fill { .. } => 3,
            EventKind::FbHit { .. } => 4,
            EventKind::DemandFill => 5,
            EventKind::Eviction { .. } => 6,
            EventKind::PfFirstUse => 7,
        }
    }

    /// Number of distinct kinds (for counting sinks).
    pub const COUNT: usize = 8;

    /// Stable display name of the kind.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::SwPfIssue { .. } => "sw_pf_issue",
            EventKind::MshrAlloc { .. } => "mshr_alloc",
            EventKind::MshrDrop { .. } => "mshr_drop",
            EventKind::Fill { .. } => "fill",
            EventKind::FbHit { .. } => "fb_hit",
            EventKind::DemandFill => "demand_fill",
            EventKind::Eviction { .. } => "eviction",
            EventKind::PfFirstUse => "pf_first_use",
        }
    }
}

/// One structured event from the simulated memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated cycle at which the hook fired.
    pub cycle: u64,
    /// Program counter responsible (issuing load/prefetch), 0 if none.
    pub pc: u64,
    /// Cache-line index the event concerns.
    pub line: u64,
    /// Hook identity + payload.
    pub kind: EventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_ids_are_dense_and_unique() {
        let kinds = [
            EventKind::SwPfIssue {
                disposition: PfDisposition::Offcore,
            },
            EventKind::MshrAlloc {
                source: PfSource::Sw,
                ready: 0,
            },
            EventKind::MshrDrop {
                source: PfSource::Sw,
            },
            EventKind::Fill {
                source: PfSource::Hw,
            },
            EventKind::FbHit { swpf: true },
            EventKind::DemandFill,
            EventKind::Eviction {
                unused_prefetch: false,
            },
            EventKind::PfFirstUse,
        ];
        let mut seen = [false; EventKind::COUNT];
        for k in kinds {
            assert!(k.id() < EventKind::COUNT);
            assert!(!seen[k.id()], "duplicate id for {}", k.name());
            seen[k.id()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(EventKind::DemandFill.name(), "demand_fill");
        assert_eq!(PfDisposition::DroppedFull.name(), "dropped-full");
        assert_eq!(PfSource::Sw.name(), "sw-pf");
    }
}
