//! The profiling → analysis → injection → measurement pipeline.

use apt_cpu::{Machine, MemImage, PerfStats, ProfileData, SimConfig, SimError};
use apt_ingest::{analyze_aggregate, ProfileDb};
use apt_lir::Module;
use apt_passes::{ainsworth_jones, inject_prefetches, optimize_module, InjectionReport};
use apt_profile::{analyze_traced, AnalysisConfig, AnalysisResult};
use apt_timeline::Timeline;
use apt_trace::{SpanRecorder, TraceConfig, TraceReport};

/// Configuration of the whole pipeline.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Simulator configuration for the *profiling* run (LBR + PEBS on).
    pub profile_sim: SimConfig,
    /// Simulator configuration for measurement runs (profiling off).
    pub measure_sim: SimConfig,
    /// The §3.2–§3.4 analysis tunables.
    pub analysis: AnalysisConfig,
}

impl Default for PipelineConfig {
    fn default() -> PipelineConfig {
        PipelineConfig::with_sim(SimConfig::default())
    }
}

impl PipelineConfig {
    /// A pipeline over a specific simulator configuration.
    pub fn with_sim(sim: SimConfig) -> PipelineConfig {
        PipelineConfig {
            profile_sim: sim,
            measure_sim: SimConfig::no_profiling(sim.mem),
            analysis: AnalysisConfig {
                dram_latency_hint: sim.mem.dram_latency,
                pebs_period: sim.pebs_period,
                ..AnalysisConfig::default()
            },
        }
    }
}

/// Outcome of one simulated execution.
pub struct Execution {
    /// `perf stat` counters for the whole call schedule.
    pub stats: PerfStats,
    /// Return value of each call.
    pub rets: Vec<Option<u64>>,
    /// Final data image (for result checking).
    pub image: MemImage,
    /// Hardware profiles (empty when profiling is disabled).
    pub profile: ProfileData,
    /// Cycle-windowed telemetry (empty when `sim.timeline_window` is 0).
    /// Summing every window reproduces `stats` exactly — see `apt-timeline`.
    pub timeline: Timeline,
}

/// Executes a call schedule against `module` and collects statistics.
pub fn execute(
    module: &Module,
    image: MemImage,
    calls: &[(String, Vec<u64>)],
    sim: &SimConfig,
) -> Result<Execution, SimError> {
    Ok(execute_traced(module, image, calls, sim, TraceConfig::off())?.0)
}

/// [`execute`] with structured tracing enabled per `trace` (overriding
/// whatever `sim.trace` says). Returns the execution plus the trace
/// report: ring-buffered events and the conserved per-PC prefetch-outcome
/// table.
pub fn execute_traced(
    module: &Module,
    image: MemImage,
    calls: &[(String, Vec<u64>)],
    sim: &SimConfig,
    trace: TraceConfig,
) -> Result<(Execution, TraceReport), SimError> {
    let cfg = SimConfig { trace, ..*sim };
    let mut machine = Machine::new(module, cfg, image);
    let mut rets = Vec::with_capacity(calls.len());
    for (func, args) in calls {
        rets.push(machine.call(func, args)?);
    }
    let stats = machine.stats();
    let profile = machine.take_profile();
    let report = machine.take_trace();
    let timeline = machine.take_timeline();
    Ok((
        Execution {
            stats,
            rets,
            image: machine.image,
            profile,
            timeline,
        },
        report,
    ))
}

/// An APT-GET-optimised module plus everything learned on the way.
pub struct Optimized {
    /// The instrumented module.
    pub module: Module,
    /// Profile analysis (delinquent loads, distances, sites, notes).
    pub analysis: AnalysisResult,
    /// What was injected and what was skipped.
    pub injection: InjectionReport,
    /// Statistics of the profiling run itself.
    pub profile_stats: PerfStats,
}

/// The APT-GET optimiser.
#[derive(Debug, Clone, Copy, Default)]
pub struct AptGet {
    cfg: PipelineConfig,
}

impl AptGet {
    /// Creates an optimiser with the given configuration.
    pub fn new(cfg: PipelineConfig) -> AptGet {
        AptGet { cfg }
    }

    /// The active configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.cfg
    }

    /// Runs the full §3.4 flow: one profiling run of `calls` on `module`,
    /// the analytical model, and prefetch injection. The returned module
    /// computes exactly what the input module computes.
    pub fn optimize(
        &self,
        module: &Module,
        image: MemImage,
        calls: &[(String, Vec<u64>)],
    ) -> Result<Optimized, SimError> {
        let mut spans = SpanRecorder::new();
        self.optimize_traced(module, image, calls, &mut spans)
    }

    /// [`AptGet::optimize`], additionally emitting one span per pipeline
    /// phase (profile run, delinquency ranking, LBR matching, CWT peaks,
    /// Eq. 1/Eq. 2, injection, -O3 cleanup) into `spans`. The spans carry
    /// wall-time, simulated cycles and the key outputs of each phase —
    /// the data behind `--explain` and `--trace-out`.
    pub fn optimize_traced(
        &self,
        module: &Module,
        image: MemImage,
        calls: &[(String, Vec<u64>)],
        spans: &mut SpanRecorder,
    ) -> Result<Optimized, SimError> {
        self.optimize_cached(module, image, calls, None, spans)
            .map(|(opt, _)| opt)
    }

    /// The cache-aware §3.4 flow. With `cached = Some((profile, stats))`
    /// the profiling run is skipped entirely and the stored profile drives
    /// the analysis — the AutoFDO deployment model of §3.6, and the fast
    /// path of the campaign runner's on-disk profile cache. With `None`,
    /// one profiling run of `calls` collects the profile, and it is
    /// *returned* alongside the optimisation so the caller can persist it.
    ///
    /// Every type crossing this boundary (`Module`, `MemImage`,
    /// `ProfileData`, `PerfStats`, `Optimized`) is `Send`, so campaign
    /// workers can shard cells across threads freely.
    pub fn optimize_cached(
        &self,
        module: &Module,
        image: MemImage,
        calls: &[(String, Vec<u64>)],
        cached: Option<(ProfileData, PerfStats)>,
        spans: &mut SpanRecorder,
    ) -> Result<(Optimized, Option<(ProfileData, PerfStats)>), SimError> {
        let (profile, profile_stats, collected) = match cached {
            Some((profile, stats)) => {
                let hit = spans.begin("profile-cache");
                spans.note(&hit, "lbr_samples", profile.lbr_samples.len());
                spans.note(&hit, "pebs_records", profile.pebs.len());
                spans.end(hit);
                (profile, stats, false)
            }
            None => {
                let prof = spans.begin("profile-run");
                let exec = execute(module, image, calls, &self.cfg.profile_sim)?;
                spans.add_sim_cycles(&prof, exec.stats.cycles);
                spans.note(&prof, "instructions", exec.stats.instructions);
                spans.note(&prof, "lbr_samples", exec.profile.lbr_samples.len());
                spans.note(&prof, "pebs_records", exec.profile.pebs.len());
                spans.end(prof);
                (exec.profile, exec.stats, true)
            }
        };
        let opt = self.optimize_with_profile_traced(module, &profile, profile_stats, spans);
        Ok((opt, collected.then_some((profile, profile_stats))))
    }

    /// Optimises from the cross-run profile database instead of a raw
    /// profile: the sample-count-weighted merge of every stored epoch
    /// drives the aggregate analysis path (`apt-ingest`'s mirror of the
    /// §3.4 model), then injection and -O3 cleanup run as usual. This is
    /// the §3.6 AutoFDO deployment flow — `perf record` in production,
    /// `aptgetsim ingest` per run, re-optimise from accumulated history
    /// with no profiling run at build time.
    pub fn optimize_from_db(&self, module: &Module, db: &ProfileDb) -> Optimized {
        let agg = db.merged();
        // The analysis only reads the counters the aggregate carries;
        // reconstruct the stats it gates on (MPKI needs instructions).
        let profile_stats = PerfStats {
            instructions: agg.instructions,
            cycles: agg.cycles,
            branches: agg.branches,
            taken_branches: agg.taken_branches,
            ..Default::default()
        };
        let map = module.assign_pcs();
        let analysis = analyze_aggregate(module, &map, &agg, &self.cfg.analysis);

        let mut optimized = module.clone();
        let injection = inject_prefetches(&mut optimized, &analysis.specs());
        optimize_module(&mut optimized);
        Optimized {
            module: optimized,
            analysis,
            injection,
            profile_stats,
        }
    }

    /// Applies the analysis to an already-collected profile (used by the
    /// Fig. 12 train/test experiment to reuse a training profile).
    pub fn optimize_with_profile(
        &self,
        module: &Module,
        profile: &ProfileData,
        profile_stats: PerfStats,
    ) -> Optimized {
        let mut spans = SpanRecorder::new();
        self.optimize_with_profile_traced(module, profile, profile_stats, &mut spans)
    }

    /// [`AptGet::optimize_with_profile`] with span recording.
    pub fn optimize_with_profile_traced(
        &self,
        module: &Module,
        profile: &ProfileData,
        profile_stats: PerfStats,
        spans: &mut SpanRecorder,
    ) -> Optimized {
        let map = module.assign_pcs();
        let analysis = spans.scoped("analysis", |spans, g| {
            let r = analyze_traced(
                module,
                &map,
                profile,
                &profile_stats,
                &self.cfg.analysis,
                spans,
            );
            spans.note(g, "hints", r.hints.len());
            for note in &r.notes {
                spans.note(g, "note", note);
            }
            r
        });

        let mut optimized = module.clone();
        let inj = spans.begin("injection");
        let injection = inject_prefetches(&mut optimized, &analysis.specs());
        spans.note(&inj, "injected", injection.injected.len());
        spans.note(&inj, "skipped", injection.skipped.len());
        spans.end(inj);

        // The paper's flow re-compiles at -O3 after injection: fold,
        // hoist the loop-invariant parts of the slices, sweep dead code.
        let cleanup = spans.begin("o3-cleanup");
        optimize_module(&mut optimized);
        spans.end(cleanup);
        Optimized {
            module: optimized,
            analysis,
            injection,
            profile_stats,
        }
    }
}

/// The Ainsworth & Jones baseline: static inner-loop injection of every
/// indirect load at one global distance.
pub fn ainsworth_jones_optimize(module: &Module, distance: u64) -> (Module, InjectionReport) {
    let mut m = module.clone();
    let report = ainsworth_jones(&mut m, distance);
    // Same -O3-style clean-up as the APT-GET path (fair comparison).
    optimize_module(&mut m);
    (m, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_lir::{FunctionBuilder, Width};

    /// `sum += T[B[i]]` over a table much larger than the scaled LLC.
    fn indirect_program() -> (Module, MemImage, Vec<(String, Vec<u64>)>) {
        let mut module = Module::new("t");
        let f = module.add_function("kernel", &["t", "b", "n"]);
        {
            let mut bd = FunctionBuilder::new(module.function_mut(f));
            let (t, b, n) = (bd.param(0), bd.param(1), bd.param(2));
            let s = bd.loop_up_reduce(0, n, 1, 0, |bd, iv, acc| {
                let x = bd.load_elem(b, iv, Width::W4, false);
                let v = bd.load_elem(t, x, Width::W4, false);
                bd.add(acc, v).into()
            });
            bd.ret(Some(s));
        }
        let mut image = MemImage::new();
        let tlen = 1u32 << 20; // 4 MiB of u32.
        let t: Vec<u32> = (0..tlen).map(|i| i % 1000).collect();
        let b: Vec<u32> = (0..200_000u32)
            .map(|i| i.wrapping_mul(2_654_435_761) % tlen)
            .collect();
        let tb = image.alloc_u32_slice(&t);
        let bb = image.alloc_u32_slice(&b);
        let calls = vec![("kernel".to_string(), vec![tb, bb, 200_000])];
        (module, image, calls)
    }

    #[test]
    fn pipeline_finds_the_delinquent_load_and_speeds_it_up() {
        let (module, image, calls) = indirect_program();
        let cfg = PipelineConfig::default();
        let apt = AptGet::new(cfg);
        let opt = apt.optimize(&module, image.clone(), &calls).unwrap();
        assert_eq!(opt.injection.injected.len(), 1, "{:?}", opt.analysis.notes);
        let hint = &opt.analysis.hints[0];
        assert!(hint.distance >= 2, "distance {}", hint.distance);

        let base = execute(&module, image.clone(), &calls, &cfg.measure_sim).unwrap();
        let tuned = execute(&opt.module, image, &calls, &cfg.measure_sim).unwrap();
        assert_eq!(base.rets, tuned.rets);
        let speedup = base.stats.cycles as f64 / tuned.stats.cycles as f64;
        assert!(speedup > 1.3, "speedup {speedup}");
    }

    #[test]
    fn aj_baseline_also_helps_here() {
        let (module, image, calls) = indirect_program();
        let cfg = PipelineConfig::default();
        let (aj, report) = ainsworth_jones_optimize(&module, 32);
        assert_eq!(report.injected.len(), 1);
        let base = execute(&module, image.clone(), &calls, &cfg.measure_sim).unwrap();
        let tuned = execute(&aj, image, &calls, &cfg.measure_sim).unwrap();
        assert_eq!(base.rets, tuned.rets);
        assert!(base.stats.cycles > tuned.stats.cycles);
    }

    #[test]
    fn optimize_is_deterministic() {
        let (module, image, calls) = indirect_program();
        let apt = AptGet::new(PipelineConfig::default());
        let a = apt.optimize(&module, image.clone(), &calls).unwrap();
        let b = apt.optimize(&module, image, &calls).unwrap();
        assert_eq!(
            apt_lir::print::module_to_string(&a.module),
            apt_lir::print::module_to_string(&b.module)
        );
    }

    #[test]
    fn profiling_run_collects_samples() {
        let (module, image, calls) = indirect_program();
        let exec = execute(&module, image, &calls, &SimConfig::default()).unwrap();
        assert!(!exec.profile.lbr_samples.is_empty());
        assert!(!exec.profile.pebs.is_empty());
    }

    #[test]
    fn cached_profile_reproduces_the_cold_optimization() {
        let (module, image, calls) = indirect_program();
        let apt = AptGet::new(PipelineConfig::default());
        let mut spans = SpanRecorder::new();
        let (cold, collected) = apt
            .optimize_cached(&module, image.clone(), &calls, None, &mut spans)
            .unwrap();
        let (profile, stats) = collected.expect("cold run returns the collected profile");

        let mut spans2 = SpanRecorder::new();
        let (warm, collected2) = apt
            .optimize_cached(&module, image, &calls, Some((profile, stats)), &mut spans2)
            .unwrap();
        assert!(collected2.is_none(), "warm run must not re-profile");
        assert_eq!(
            apt_lir::print::module_to_string(&cold.module),
            apt_lir::print::module_to_string(&warm.module)
        );
        assert_eq!(cold.analysis.hints.len(), warm.analysis.hints.len());
        assert!(spans2.spans().iter().any(|s| s.name == "profile-cache"));
        assert!(!spans2.spans().iter().any(|s| s.name == "profile-run"));
    }

    #[test]
    fn db_path_optimizes_from_an_exported_profile() {
        let (module, image, calls) = indirect_program();
        let cfg = PipelineConfig::default();
        let apt = AptGet::new(cfg);

        // Profile run → perf-script text → ingest → one DB epoch.
        let exec = execute(&module, image.clone(), &calls, &cfg.profile_sim).unwrap();
        let dump = apt_cpu::perfscript::export_perf_script(&exec.profile, &exec.stats);
        let ing = apt_ingest::parse_str(&dump, &apt_ingest::IdentityRemap).unwrap();
        let mut db = ProfileDb::new();
        db.push_epoch(
            "run",
            apt_ingest::AggregateProfile::from_profile(&ing.profile, &ing.stats_or_default()),
        );

        let opt = apt.optimize_from_db(&module, &db);
        assert_eq!(opt.injection.injected.len(), 1, "{:?}", opt.analysis.notes);
        assert!(opt.analysis.hints[0].distance >= 2);

        let base = execute(&module, image.clone(), &calls, &cfg.measure_sim).unwrap();
        let tuned = execute(&opt.module, image, &calls, &cfg.measure_sim).unwrap();
        assert_eq!(base.rets, tuned.rets);
        assert!(base.stats.cycles > tuned.stats.cycles);

        // Same database, same module — the DB path is deterministic.
        let again = apt.optimize_from_db(&module, &db);
        assert_eq!(
            apt_lir::print::module_to_string(&opt.module),
            apt_lir::print::module_to_string(&again.module)
        );
    }

    /// The campaign runner ships whole pipeline cells across threads; every
    /// type crossing that boundary must stay `Send`.
    #[test]
    fn pipeline_types_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Module>();
        assert_send::<MemImage>();
        assert_send::<PipelineConfig>();
        assert_send::<AptGet>();
        assert_send::<Execution>();
        assert_send::<Optimized>();
        assert_send::<ProfileData>();
        assert_send::<PerfStats>();
        assert_send::<SimError>();
    }
}
