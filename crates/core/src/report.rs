//! Comparison reporting helpers for the experiment harness.

use apt_cpu::PerfStats;

/// Execution-time speedup of `opt` over `base` (in simulated cycles).
/// A zero-cycle optimised run yields `f64::INFINITY`, consistent with
/// [`Comparison::mpki_reduction`] — a 0.0 here would read as a slowdown
/// and poison [`geomean`] aggregation.
pub fn speedup(base: &PerfStats, opt: &PerfStats) -> f64 {
    if opt.cycles == 0 {
        return f64::INFINITY;
    }
    base.cycles as f64 / opt.cycles as f64
}

/// Geometric mean (the paper's average-speedup aggregator, §4.3).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// A named bundle of per-variant statistics for one workload.
#[derive(Debug, Clone)]
pub struct Comparison {
    pub workload: String,
    pub baseline: PerfStats,
    /// `(variant name, stats)` — e.g. "A&J", "APT-GET".
    pub variants: Vec<(String, PerfStats)>,
}

impl Comparison {
    /// Speedup of a named variant over the baseline.
    pub fn speedup_of(&self, name: &str) -> Option<f64> {
        self.variants
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| speedup(&self.baseline, s))
    }

    /// Instruction overhead (Fig. 11): variant instructions / baseline.
    pub fn instruction_overhead(&self, name: &str) -> Option<f64> {
        self.variants
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s.instructions as f64 / self.baseline.instructions.max(1) as f64)
    }

    /// MPKI reduction factor (Fig. 7): baseline MPKI / variant MPKI.
    pub fn mpki_reduction(&self, name: &str) -> Option<f64> {
        self.variants.iter().find(|(n, _)| n == name).map(|(_, s)| {
            let v = s.mpki();
            if v <= 0.0 {
                f64::INFINITY
            } else {
                self.baseline.mpki() / v
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(cycles: u64, instructions: u64) -> PerfStats {
        PerfStats {
            cycles,
            instructions,
            ..Default::default()
        }
    }

    #[test]
    fn speedup_ratio() {
        assert_eq!(speedup(&stats(200, 1), &stats(100, 1)), 2.0);
        assert_eq!(speedup(&stats(200, 1), &stats(0, 1)), f64::INFINITY);
    }

    #[test]
    fn geomean_matches_hand_computation() {
        let g = geomean(&[1.0, 4.0]);
        assert!((g - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn comparison_lookups() {
        let c = Comparison {
            workload: "BFS".into(),
            baseline: stats(1000, 500),
            variants: vec![("APT-GET".into(), stats(500, 600))],
        };
        assert_eq!(c.speedup_of("APT-GET"), Some(2.0));
        assert_eq!(c.instruction_overhead("APT-GET"), Some(1.2));
        assert_eq!(c.speedup_of("nope"), None);
    }
}

/// Renders statistics in `perf stat` style (the tool the paper reads its
/// numbers with, §4.1).
pub fn format_perf_stat(workload: &str, s: &PerfStats) -> String {
    let mut out = String::new();
    out.push_str(&format!(" Performance counter stats for '{workload}':\n\n"));
    let row = |out: &mut String, value: String, name: &str, extra: String| {
        out.push_str(&format!("  {value:>18}      {name:<34} {extra}\n"));
    };
    row(&mut out, format!("{}", s.cycles), "cycles", String::new());
    row(
        &mut out,
        format!("{}", s.instructions),
        "instructions",
        format!("#  {:.2}  insn per cycle", s.ipc()),
    );
    row(
        &mut out,
        format!("{}", s.branches),
        "branches",
        format!(
            "#  {:.1}% taken",
            if s.branches == 0 {
                0.0
            } else {
                s.taken_branches as f64 * 100.0 / s.branches as f64
            }
        ),
    );
    row(
        &mut out,
        format!("{}", s.mem.loads),
        "mem-loads",
        String::new(),
    );
    row(
        &mut out,
        format!("{}", s.mem.demand_data_rd()),
        "offcore_requests.demand_data_rd",
        format!("#  {:.2} MPKI", s.mpki()),
    );
    row(
        &mut out,
        format!("{}", s.mem.all_data_rd()),
        "offcore_requests.all_data_rd",
        String::new(),
    );
    row(
        &mut out,
        format!("{}", s.mem.fb_hits_swpf),
        "load_hit_pre.sw_pf",
        format!(
            "#  {:.1}% of sw prefetches late",
            s.mem.late_prefetch_ratio() * 100.0
        ),
    );
    row(
        &mut out,
        format!("{}", s.mem.sw_pf_issued),
        "sw_prefetch_access.t0",
        String::new(),
    );
    row(
        &mut out,
        format!("{}", s.mem.memory_bound_stalls()),
        "cycle_activity.stalls_l3_miss",
        format!("#  {:.1}% of cycles", s.memory_bound_fraction() * 100.0),
    );
    out
}

#[cfg(test)]
mod perf_stat_tests {
    use super::*;

    #[test]
    fn formats_all_counters() {
        let s = PerfStats {
            instructions: 1_000_000,
            cycles: 2_000_000,
            branches: 100,
            taken_branches: 80,
            ..Default::default()
        };
        let text = format_perf_stat("bfs", &s);
        assert!(text.contains("perf") || text.contains("Performance"));
        assert!(text.contains("insn per cycle"));
        assert!(text.contains("offcore_requests.demand_data_rd"));
        assert!(text.contains("80.0% taken"));
    }
}
