//! APT-GET: profile-guided timely software prefetching — the end-to-end
//! pipeline.
//!
//! This crate glues the substrates together into the paper's §3.4 flow:
//!
//! ```text
//!            ┌────────────┐   LBR + PEBS   ┌─────────────┐   hints
//!  program ─▶│ profiling  │───────────────▶│  analytical │─────────┐
//!            │    run     │                │    model    │         │
//!            └────────────┘                └─────────────┘         ▼
//!            ┌────────────┐    optimised module   ┌────────────────────┐
//!  program ─▶│ APT-GET    │◀──────────────────────│ prefetch injection │
//!            │ measurement│                       └────────────────────┘
//!            └────────────┘
//! ```
//!
//! # Examples
//!
//! ```
//! use aptget::{execute, AptGet, PipelineConfig};
//! use apt_cpu::MemImage;
//! use apt_lir::{FunctionBuilder, Module, Width};
//!
//! // A toy indirect kernel: sum += T[B[i]].
//! let mut module = Module::new("demo");
//! let f = module.add_function("kernel", &["t", "b", "n"]);
//! {
//!     let mut bd = FunctionBuilder::new(module.function_mut(f));
//!     let (t, b, n) = (bd.param(0), bd.param(1), bd.param(2));
//!     let s = bd.loop_up_reduce(0u64, n, 1, 0u64, |bd, iv, acc| {
//!         let x = bd.load_elem(b, iv, Width::W4, false);
//!         let v = bd.load_elem(t, x, Width::W4, false);
//!         bd.add(acc, v).into()
//!     });
//!     bd.ret(Some(s));
//! }
//!
//! let mut image = MemImage::new();
//! let t = image.alloc_u32_slice(&vec![1u32; 1 << 16]);
//! let b = image.alloc_u32_slice(&(0..4096u32).map(|i| (i * 97) % 65536).collect::<Vec<_>>());
//! let calls = vec![("kernel".to_string(), vec![t, b, 4096])];
//!
//! let cfg = PipelineConfig::default();
//! let opt = AptGet::new(cfg).optimize(&module, image.clone(), &calls).unwrap();
//! let base = execute(&module, image.clone(), &calls, &cfg.measure_sim).unwrap();
//! let tuned = execute(&opt.module, image, &calls, &cfg.measure_sim).unwrap();
//! assert_eq!(base.rets, tuned.rets); // Prefetching never changes results.
//! ```

pub mod explain;
pub mod pipeline;
pub mod report;

pub use explain::{chrome_trace_json, format_explain, injected_prefetch_pcs};
pub use pipeline::{
    ainsworth_jones_optimize, execute, execute_traced, AptGet, Execution, Optimized, PipelineConfig,
};
pub use report::{format_perf_stat, geomean, speedup, Comparison};

// Re-export the pieces callers typically need alongside the pipeline.
pub use apt_cpu::{Machine, MemImage, PerfStats, ProfileData, SimConfig, SimError};
pub use apt_ingest::{
    analyze_aggregate, detect_drift, parse_file, parse_str, AggregateProfile, DriftConfig,
    DriftReport, GenTag, IdentityRemap, Ingested, OffsetRemap, ProfileDb,
};
pub use apt_lir::Module;
pub use apt_mem::MemConfig;
pub use apt_passes::{InjectionReport, InjectionSpec, Site};
pub use apt_profile::hintfile;
pub use apt_profile::{AnalysisConfig, AnalysisResult, LoadHint};
pub use apt_timeline::{
    detect_phases, phase_diff, timeline_to_json, Phase, PhaseConfig, PhaseDiff, Timeline,
    TimelineDiff, WindowSample,
};
pub use apt_trace::{Span, SpanRecorder, TraceConfig, TraceReport, Tracer};
