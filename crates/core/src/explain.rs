//! The `--explain` layer: human-readable pipeline reports and Chrome
//! trace-event JSON assembly.
//!
//! `--explain` answers "what did APT-GET decide and why, and did it
//! work?": the recorded pipeline spans (profile run → delinquency ranking
//! → LBR matching → CWT peaks → Eq. 1/Eq. 2 → injection → -O3 cleanup),
//! the per-hint decisions with §3.6 fallback reasons, and — when a traced
//! measurement run is supplied — the per-injected-PC prefetch-outcome
//! table, reconciled against the PMU counters.

use apt_lir::{Inst, Module};
use apt_trace::{render_spans, ChromeTrace, Span, TraceReport};

use crate::pipeline::Optimized;
use crate::PerfStats;

/// PCs of all `prefetch` instructions in `module`, with a
/// `function/block` label per PC. In an APT-GET-optimised module these
/// are exactly the injected hints.
pub fn injected_prefetch_pcs(module: &Module) -> Vec<(u64, String)> {
    let map = module.assign_pcs();
    let mut out = Vec::new();
    for (fid, func) in module.iter_functions() {
        for (bid, block) in func.iter_blocks() {
            let base = map.block_start_pc(fid, bid).0;
            for (i, inst) in block.insts.iter().enumerate() {
                if matches!(inst, Inst::Prefetch { .. }) {
                    out.push((base + 4 * i as u64, format!("{}/b{}", func.name, bid.0)));
                }
            }
        }
    }
    out
}

/// Renders the full explain report.
///
/// `measured` is the optimised module's measurement run under
/// `TraceConfig::outcomes()` (or `full`): its `PerfStats` and the trace
/// report whose outcome table the report reconciles. Pass `None` for an
/// analysis-only report.
pub fn format_explain(
    opt: &Optimized,
    spans: &[Span],
    measured: Option<(&PerfStats, &TraceReport)>,
) -> String {
    let mut out = String::new();
    out.push_str("=== APT-GET explain ===\n\n");

    out.push_str("--- pipeline phases ---\n");
    if spans.is_empty() {
        out.push_str("(no spans recorded)\n");
    } else {
        out.push_str(&render_spans(spans));
    }

    out.push_str("\n--- decisions ---\n");
    if opt.analysis.hints.is_empty() {
        out.push_str("no delinquent loads worth prefetching\n");
    }
    for h in &opt.analysis.hints {
        out.push_str(&format!(
            "load {}: {:.1}% of LLC-miss samples\n",
            h.pc,
            h.share * 100.0
        ));
        if h.peaks.is_empty() {
            out.push_str("  latency peaks: none (§3.6 fallback)\n");
        } else {
            out.push_str("  latency peaks:");
            for p in &h.peaks {
                out.push_str(&format!(" {}cy({:.0}%)", p.latency, p.mass * 100.0));
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "  Eq.1: IC = {:.1} cy, MC = {:.1} cy -> distance {}\n",
            h.ic_latency, h.mc_latency, h.distance
        ));
        match h.trip_count {
            Some(t) => out.push_str(&format!(
                "  Eq.2: trip count {:.1} vs k*d -> site {:?}, fanout {}\n",
                t, h.site, h.fanout
            )),
            None => out.push_str(&format!(
                "  Eq.2: trip count unmeasured -> site {:?}, fanout {}\n",
                h.site, h.fanout
            )),
        }
        if let Some(fd) = h.inner_distance {
            out.push_str(&format!("  inner-site fallback distance: {fd}\n"));
        }
    }
    if !opt.analysis.notes.is_empty() {
        out.push_str("\n--- analysis notes (§3.6 fallbacks) ---\n");
        for n in &opt.analysis.notes {
            out.push_str(&format!("* {n}\n"));
        }
    }

    out.push_str(&format!(
        "\n--- injection ---\n{} injected, {} skipped, {} instructions added\n",
        opt.injection.injected.len(),
        opt.injection.skipped.len(),
        opt.injection.insts_added()
    ));
    for s in &opt.injection.skipped {
        out.push_str(&format!("skipped load at {:?}: {}\n", s.load, s.reason));
    }
    let pcs = injected_prefetch_pcs(&opt.module);
    for (pc, site) in &pcs {
        out.push_str(&format!("prefetch pc {pc:#x} at {site}\n"));
    }

    if let Some((stats, trace)) = measured {
        out.push_str("\n--- prefetch outcomes (measured) ---\n");
        out.push_str(&trace.outcomes.render());
        let t = &trace.outcomes.total;
        out.push_str(&format!(
            "\ntimely ratio: {:.1}%   mean timely slack: {:.0} cycles\n",
            t.timely_ratio() * 100.0,
            t.mean_timely_slack()
        ));
        out.push_str("\n--- PMU reconciliation ---\n");
        let m = &stats.mem;
        let line = |out: &mut String, name: &str, pmu: u64, table: u64| {
            let mark = if pmu == table { "ok" } else { "MISMATCH" };
            out.push_str(&format!(
                "{name:<24} pmu {pmu:>10}  trace {table:>10}  [{mark}]\n"
            ));
        };
        line(&mut out, "sw_pf_issued", m.sw_pf_issued, t.issued);
        line(&mut out, "fb_hits_swpf (late)", m.fb_hits_swpf, t.late);
        line(
            &mut out,
            "sw_pf_dropped (full)",
            m.sw_pf_dropped_full,
            t.dropped,
        );
        line(&mut out, "sw_pf_redundant", m.sw_pf_redundant, t.redundant);
        if !trace.outcomes.is_conserved() {
            out.push_str("WARNING: outcome table is not conserved\n");
        }
    }
    out
}

/// Assembles the Chrome trace-event JSON document (`--trace-out`):
/// pipeline spans as complete events on one thread row, simulator events
/// (if any were recorded) as instants on a second row.
pub fn chrome_trace_json(spans: &[Span], trace: Option<&TraceReport>) -> String {
    let mut ct = ChromeTrace::new();
    ct.name_thread(1, "pipeline (wall µs)");
    for s in spans {
        ct.push_span(s, 1);
    }
    if let Some(t) = trace {
        if !t.events.is_empty() {
            ct.name_thread(2, "simulator (cycles)");
            for ev in &t.events {
                ct.push_sim_event(ev, 2);
            }
        }
    }
    ct.to_json()
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_lir::{FunctionBuilder, Width};

    fn module_with_prefetch() -> Module {
        let mut m = Module::new("t");
        let f = m.add_function("k", &["a", "n"]);
        {
            let mut b = FunctionBuilder::new(m.function_mut(f));
            let (a, n) = (b.param(0), b.param(1));
            let s = b.loop_up_reduce(0, n, 1, 0, |b, iv, acc| {
                let addr = b.elem_addr(a, iv, Width::W8);
                b.prefetch(addr);
                let v = b.load_elem(a, iv, Width::W8, false);
                b.add(acc, v).into()
            });
            b.ret(Some(s));
        }
        m
    }

    #[test]
    fn finds_injected_prefetch_pcs() {
        let m = module_with_prefetch();
        let pcs = injected_prefetch_pcs(&m);
        assert_eq!(pcs.len(), 1);
        assert!(pcs[0].1.starts_with("k/b"));
    }

    #[test]
    fn chrome_json_without_trace_is_wellformed() {
        let json = chrome_trace_json(&[], None);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("}\n"));
    }
}
