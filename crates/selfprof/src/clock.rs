//! Time sources for the self-profiler.
//!
//! Every timestamp the profiler records flows through the [`Clock`] trait
//! so that tests can inject a deterministic [`FakeClock`] and assert the
//! rendered artifacts byte-for-byte, while production sessions use the
//! process-monotonic [`MonotonicClock`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic microsecond counter. Implementations must be cheap and
/// callable from any thread; the profiler never subtracts timestamps from
/// different clocks.
pub trait Clock: Send + Sync {
    /// Microseconds since an arbitrary (per-clock) epoch.
    fn now_us(&self) -> u64;
}

/// Shared clocks read through the `Arc` transparently, so a component
/// can hold `Arc<dyn Clock>` and hand clones to worker threads while
/// still treating the handle itself as a [`Clock`].
impl<C: Clock + ?Sized> Clock for std::sync::Arc<C> {
    fn now_us(&self) -> u64 {
        (**self).now_us()
    }
}

/// Wall-clock time from [`Instant`], anchored at construction.
pub struct MonotonicClock {
    epoch: Instant,
}

impl MonotonicClock {
    pub fn new() -> MonotonicClock {
        MonotonicClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }
}

/// A deterministic clock for byte-stable tests: every `now_us` call
/// returns the current reading and then advances it by a fixed step, so a
/// single-threaded scope sequence always observes the same durations.
pub struct FakeClock {
    step_us: u64,
    now: AtomicU64,
}

impl FakeClock {
    /// A clock that starts at 0 and advances `step_us` per reading.
    pub fn new(step_us: u64) -> FakeClock {
        FakeClock {
            step_us,
            now: AtomicU64::new(0),
        }
    }

    /// Jumps the clock forward by `us` (on top of the per-read step).
    pub fn advance(&self, us: u64) {
        self.now.fetch_add(us, Ordering::Relaxed);
    }
}

impl Clock for FakeClock {
    fn now_us(&self) -> u64 {
        self.now.fetch_add(self.step_us, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_never_goes_backwards() {
        let c = MonotonicClock::new();
        let a = c.now_us();
        let b = c.now_us();
        assert!(b >= a);
    }

    #[test]
    fn arc_wrapped_clocks_share_state() {
        let shared: std::sync::Arc<dyn Clock> = std::sync::Arc::new(FakeClock::new(2));
        let clone = std::sync::Arc::clone(&shared);
        assert_eq!(shared.now_us(), 0);
        assert_eq!(clone.now_us(), 2, "both handles read the same counter");
    }

    #[test]
    fn fake_clock_is_deterministic() {
        let c = FakeClock::new(3);
        assert_eq!(c.now_us(), 0);
        assert_eq!(c.now_us(), 3);
        c.advance(100);
        assert_eq!(c.now_us(), 106);
    }
}
