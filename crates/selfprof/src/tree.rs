//! Merged call trees: the aggregation format behind folded stacks and
//! flamegraphs.
//!
//! A [`CallTree`] maps scope names to [`CallNode`]s carrying inclusive
//! microseconds and hit counts. Merging is pointwise addition over the
//! path-keyed maps, which makes it associative and commutative — the
//! campaign runner can fold per-worker trees together in any order and
//! land on the same totals. Exclusive time is *derived* at render time
//! (`inclusive − Σ children inclusive`, saturating), so it conserves by
//! construction.

use std::collections::BTreeMap;

/// One aggregated scope: inclusive time, number of times entered, and
/// child scopes keyed by name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CallNode {
    /// Total wall micros spent inside this scope, children included.
    pub incl_us: u64,
    /// Number of times the scope was entered.
    pub hits: u64,
    pub children: BTreeMap<String, CallNode>,
}

impl CallNode {
    /// Sum of the children's inclusive micros.
    pub fn children_incl_us(&self) -> u64 {
        self.children.values().map(|c| c.incl_us).sum()
    }

    /// Exclusive micros: inclusive minus children, floored at zero.
    /// (A clock with coarse resolution can make children appear to
    /// out-run their parent by a tick; saturation keeps the folded
    /// output well-formed instead of panicking.)
    pub fn excl_us(&self) -> u64 {
        self.incl_us.saturating_sub(self.children_incl_us())
    }

    fn merge_from(&mut self, other: &CallNode) {
        self.incl_us += other.incl_us;
        self.hits += other.hits;
        for (name, child) in &other.children {
            self.children
                .entry(name.clone())
                .or_default()
                .merge_from(child);
        }
    }
}

/// A forest of root scopes. Thread profiles and worker profiles are each
/// a `CallTree`; [`CallTree::merge`] folds them together.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CallTree {
    pub roots: BTreeMap<String, CallNode>,
}

impl CallTree {
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// Adds `other` into `self` (pointwise sum over paths).
    pub fn merge(&mut self, other: &CallTree) {
        for (name, node) in &other.roots {
            self.roots.entry(name.clone()).or_default().merge_from(node);
        }
    }

    /// Sum of root inclusive micros — the tree's total attributed time.
    pub fn total_incl_us(&self) -> u64 {
        self.roots.values().map(|n| n.incl_us).sum()
    }

    /// Looks up a node by path, e.g. `&["cpu/exec", "cpu/step/mem"]`.
    pub fn node(&self, path: &[&str]) -> Option<&CallNode> {
        let (first, rest) = path.split_first()?;
        let mut cur = self.roots.get(*first)?;
        for seg in rest {
            cur = cur.children.get(*seg)?;
        }
        Some(cur)
    }

    /// True when every node's children sum to at most its inclusive time
    /// — the conservation invariant the proptests pin down.
    pub fn conserves(&self) -> bool {
        fn ok(n: &CallNode) -> bool {
            n.children_incl_us() <= n.incl_us && n.children.values().all(ok)
        }
        self.roots.values().all(ok)
    }

    /// Brendan Gregg folded-stack text: one `a;b;c <exclusive-us>` line
    /// per node with nonzero exclusive time, in deterministic
    /// (lexicographic path) order. Feedable straight into `flamegraph.pl`.
    pub fn folded(&self) -> String {
        fn walk(out: &mut String, prefix: &str, name: &str, node: &CallNode) {
            let path = if prefix.is_empty() {
                name.to_string()
            } else {
                format!("{prefix};{name}")
            };
            let excl = node.excl_us();
            if excl > 0 || node.children.is_empty() {
                out.push_str(&path);
                out.push(' ');
                out.push_str(&excl.to_string());
                out.push('\n');
            }
            for (cname, child) in &node.children {
                walk(out, &path, cname, child);
            }
        }
        let mut out = String::new();
        for (name, node) in &self.roots {
            walk(&mut out, "", name, node);
        }
        out
    }

    /// Flat `(path, excl_us, incl_us, hits)` rows sorted by descending
    /// exclusive time (ties broken by path) — the "hot scopes" table.
    pub fn hot_scopes(&self) -> Vec<(String, u64, u64, u64)> {
        fn walk(out: &mut Vec<(String, u64, u64, u64)>, prefix: &str, name: &str, node: &CallNode) {
            let path = if prefix.is_empty() {
                name.to_string()
            } else {
                format!("{prefix};{name}")
            };
            out.push((path.clone(), node.excl_us(), node.incl_us, node.hits));
            for (cname, child) in &node.children {
                walk(out, &path, cname, child);
            }
        }
        let mut rows = Vec::new();
        for (name, node) in &self.roots {
            walk(&mut rows, "", name, node);
        }
        rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        rows
    }
}

/// A per-thread frame-stack recorder. Scope enter/exit events append into
/// a flat arena; [`Recorder::tree`] converts the arena into a
/// [`CallTree`]. Names are `&'static str` so the hot path never
/// allocates for an already-seen scope.
#[derive(Debug)]
pub struct Recorder {
    nodes: Vec<RecNode>,
    /// Open frames: `(arena index, entry timestamp)`.
    stack: Vec<(usize, u64)>,
    /// Children of the virtual root (top-level scopes).
    roots: Vec<usize>,
}

#[derive(Debug)]
struct RecNode {
    name: &'static str,
    incl_us: u64,
    hits: u64,
    children: Vec<usize>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    pub fn new() -> Recorder {
        Recorder {
            nodes: Vec::new(),
            stack: Vec::new(),
            roots: Vec::new(),
        }
    }

    fn child_of(&mut self, siblings_of: Option<usize>, name: &'static str) -> usize {
        // Linear scan: real scope trees have a handful of children per
        // node, and the common case (scope already exists) touches only
        // this node's child list.
        let list = match siblings_of {
            Some(p) => &self.nodes[p].children,
            None => &self.roots,
        };
        for &idx in list {
            if self.nodes[idx].name == name {
                return idx;
            }
        }
        let idx = self.nodes.len();
        self.nodes.push(RecNode {
            name,
            incl_us: 0,
            hits: 0,
            children: Vec::new(),
        });
        match siblings_of {
            Some(p) => self.nodes[p].children.push(idx),
            None => self.roots.push(idx),
        }
        idx
    }

    pub fn enter(&mut self, name: &'static str, now_us: u64) {
        let parent = self.stack.last().map(|&(idx, _)| idx);
        let idx = self.child_of(parent, name);
        self.stack.push((idx, now_us));
    }

    pub fn exit(&mut self, now_us: u64) {
        if let Some((idx, start)) = self.stack.pop() {
            let node = &mut self.nodes[idx];
            node.incl_us += now_us.saturating_sub(start);
            node.hits += 1;
        }
    }

    /// Closes any still-open frames at `now_us` (used at session end so a
    /// scope spanning `Session::finish` still conserves time).
    pub fn close_open_frames(&mut self, now_us: u64) {
        while !self.stack.is_empty() {
            self.exit(now_us);
        }
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Converts the arena into the mergeable map form.
    pub fn tree(&self) -> CallTree {
        fn convert(rec: &Recorder, idx: usize) -> (String, CallNode) {
            let n = &rec.nodes[idx];
            let mut node = CallNode {
                incl_us: n.incl_us,
                hits: n.hits,
                children: BTreeMap::new(),
            };
            for &c in &n.children {
                let (name, child) = convert(rec, c);
                // Same name can only appear once per child list
                // (child_of dedups), so no merge needed here.
                node.children.insert(name, child);
            }
            (n.name.to_string(), node)
        }
        let mut tree = CallTree::default();
        for &r in &self.roots {
            let (name, node) = convert(self, r);
            tree.roots.insert(name, node);
        }
        tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record_demo() -> CallTree {
        let mut r = Recorder::new();
        r.enter("a", 0);
        r.enter("b", 10);
        r.exit(30);
        r.enter("b", 30);
        r.exit(40);
        r.enter("c", 40);
        r.exit(45);
        r.exit(100);
        r.tree()
    }

    #[test]
    fn recorder_builds_inclusive_and_hits() {
        let t = record_demo();
        let a = t.node(&["a"]).unwrap();
        assert_eq!(a.incl_us, 100);
        assert_eq!(a.hits, 1);
        let b = t.node(&["a", "b"]).unwrap();
        assert_eq!((b.incl_us, b.hits), (30, 2));
        let c = t.node(&["a", "c"]).unwrap();
        assert_eq!((c.incl_us, c.hits), (5, 1));
        assert_eq!(a.excl_us(), 100 - 35);
        assert!(t.conserves());
    }

    #[test]
    fn merge_sums_pointwise() {
        let t = record_demo();
        let mut m = CallTree::default();
        m.merge(&t);
        m.merge(&t);
        assert_eq!(m.node(&["a"]).unwrap().incl_us, 200);
        assert_eq!(m.node(&["a", "b"]).unwrap().hits, 4);
        assert_eq!(m.total_incl_us(), 200);
        assert!(m.conserves());
    }

    #[test]
    fn folded_lines_are_exclusive_and_sorted() {
        let t = record_demo();
        assert_eq!(t.folded(), "a 65\na;b 30\na;c 5\n");
    }

    #[test]
    fn hot_scopes_sort_by_exclusive() {
        let t = record_demo();
        let rows = t.hot_scopes();
        assert_eq!(rows[0].0, "a");
        assert_eq!(rows[0].1, 65);
        assert_eq!(rows[1].0, "a;b");
    }

    #[test]
    fn unbalanced_exit_is_ignored() {
        let mut r = Recorder::new();
        r.exit(5);
        assert!(r.is_empty());
        r.enter("x", 0);
        r.close_open_frames(7);
        assert_eq!(r.tree().node(&["x"]).unwrap().incl_us, 7);
    }
}
