//! Inline-SVG icicle flamegraph rendering.
//!
//! Follows the `crates/timeline` HTML discipline (see
//! `crates/timeline/src/html.rs`): no JavaScript, no external
//! references, fixed-precision coordinates, fully deterministic bytes
//! for a given tree. Hover details ride in `<title>` elements, which
//! every browser shows as a tooltip without scripting. The page wrapper
//! itself lives in `apt-bench` so this crate stays dependency-free.

use crate::tree::{CallNode, CallTree};

const W: f64 = 720.0;
const ROW_H: f64 = 17.0;
const PAD_T: f64 = 4.0;
const PAD_B: f64 = 4.0;
/// Approximate monospace advance width at font-size 10.
const CHAR_W: f64 = 6.1;

/// Warm flamegraph palette; a scope keeps its color across reports
/// because the pick is a pure hash of its name.
const FLAME_COLORS: [&str; 10] = [
    "#e6550d", "#fd8d3c", "#fdae6b", "#d94801", "#f16913", "#e6850d", "#f4a340", "#de6a10",
    "#ef7f27", "#fca55d",
];

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

fn color_of(name: &str) -> &'static str {
    FLAME_COLORS[(fnv1a(name) % FLAME_COLORS.len() as u64) as usize]
}

fn px(v: f64) -> String {
    format!("{v:.1}")
}

/// Human-readable wall time for tooltips.
fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.1}ms", us as f64 / 1e3)
    } else {
        format!("{us}\u{00b5}s")
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

fn depth_of(node: &CallNode) -> usize {
    1 + node
        .children
        .values()
        .map(depth_of)
        .max()
        .unwrap_or_default()
}

/// Emits one frame rectangle (with tooltip and clipped label) and
/// recurses into children laid out left-to-right in name order.
fn frame(
    out: &mut String,
    name: &str,
    node: &CallNode,
    x_us: u64,
    depth: usize,
    scale: f64,
    total: u64,
) {
    let x = x_us as f64 * scale;
    let w = (node.incl_us as f64 * scale).max(0.3);
    let y = PAD_T + depth as f64 * ROW_H;
    let pct = 100.0 * node.incl_us as f64 / total.max(1) as f64;
    let tip = format!(
        "{name}: {} incl ({pct:.1}%), {} excl, {} hit{}",
        fmt_us(node.incl_us),
        fmt_us(node.excl_us()),
        node.hits,
        if node.hits == 1 { "" } else { "s" },
    );
    out.push_str(&format!(
        "<g><rect x='{}' y='{}' width='{}' height='{}' fill='{}' stroke='#fff' stroke-width='0.5'><title>{}</title></rect>",
        px(x),
        px(y),
        px(w),
        px(ROW_H - 1.0),
        color_of(name),
        escape(&tip)
    ));
    let fit = ((w - 4.0) / CHAR_W).floor().max(0.0) as usize;
    if fit >= 3 {
        let label: String = if name.chars().count() <= fit {
            name.to_string()
        } else {
            name.chars()
                .take(fit.saturating_sub(1))
                .chain(['\u{2026}'])
                .collect()
        };
        out.push_str(&format!(
            "<text x='{}' y='{}' font-size='10' font-family='monospace' fill='#fff'>{}</text>",
            px(x + 2.0),
            px(y + ROW_H - 5.0),
            escape(&label)
        ));
    }
    out.push_str("</g>");
    let mut child_x = x_us;
    for (cname, child) in &node.children {
        frame(out, cname, child, child_x, depth + 1, scale, total);
        child_x += child.incl_us;
    }
}

/// Renders an icicle-layout flamegraph (root on top, callees below;
/// width proportional to inclusive wall time) as a self-contained
/// `<svg>` element. `root_label` names the synthetic top frame, e.g.
/// `"all workers"`.
pub fn flamegraph_svg(tree: &CallTree, root_label: &str) -> String {
    let total = tree.total_incl_us();
    let depth = 1 + tree.roots.values().map(depth_of).max().unwrap_or_default();
    let h = PAD_T + depth as f64 * ROW_H + PAD_B;
    let mut out = format!(
        "<svg viewBox='0 0 {W} {h}' width='{W}' height='{h}'>",
        h = px(h)
    );
    if total == 0 {
        out.push_str(&format!(
            "<text x='4' y='{}' font-size='10' fill='#888'>no samples</text>",
            px(PAD_T + 11.0)
        ));
        out.push_str("</svg>");
        return out;
    }
    let scale = W / total as f64;
    // Synthetic root spanning the whole width.
    let root = CallNode {
        incl_us: total,
        hits: 1,
        children: Default::default(),
    };
    frame(&mut out, root_label, &root, 0, 0, scale, total);
    let mut x_us = 0;
    for (name, node) in &tree.roots {
        frame(&mut out, name, node, x_us, 1, scale, total);
        x_us += node.incl_us;
    }
    out.push_str("</svg>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::Recorder;

    fn demo_tree() -> CallTree {
        let mut r = Recorder::new();
        r.enter("bench/cell", 0);
        r.enter("cpu/exec", 5);
        r.enter("cpu/step/mem", 10);
        r.exit(60);
        r.exit(80);
        r.enter("report/render", 80);
        r.exit(90);
        r.exit(100);
        r.tree()
    }

    #[test]
    fn svg_is_self_contained_and_deterministic() {
        let svg = flamegraph_svg(&demo_tree(), "all");
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(!svg.contains("http"));
        assert!(!svg.contains("script"));
        assert!(svg.contains("bench/cell"));
        assert!(svg.contains("<title>"));
        assert_eq!(svg, flamegraph_svg(&demo_tree(), "all"));
    }

    #[test]
    fn empty_tree_renders_placeholder() {
        let svg = flamegraph_svg(&CallTree::default(), "all");
        assert!(svg.contains("no samples"));
        assert!(svg.ends_with("</svg>"));
    }

    #[test]
    fn scope_colors_are_stable_hashes() {
        assert_eq!(color_of("cpu/exec"), color_of("cpu/exec"));
    }

    #[test]
    fn tooltip_times_are_compact() {
        assert_eq!(fmt_us(87), "87\u{00b5}s");
        assert_eq!(fmt_us(12_345), "12.3ms");
        assert_eq!(fmt_us(2_500_000), "2.50s");
    }
}
