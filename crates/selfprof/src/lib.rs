//! # apt-selfprof
//!
//! A zero-dependency scoped wall-time profiler for the simulator itself.
//! ROADMAP's interval-simulation item claims the cycle-accurate machine
//! dominates campaign wall time; this crate exists to measure that claim
//! instead of assuming it.
//!
//! * [`clock`] — the [`Clock`] trait: monotonic by default, injectable
//!   [`FakeClock`] so rendered artifacts are byte-stable under test.
//! * [`tree`] — merged call trees (inclusive/exclusive micros + hit
//!   counts); merging is associative across workers. Emits Brendan-Gregg
//!   folded-stack text.
//! * [`flame`] — deterministic inline-SVG icicle flamegraphs.
//! * the collector — a process-global [`Session`] plus the
//!   [`prof_scope!`] macro. Disabled cost is a single relaxed load and a
//!   branch, the same contract as `crates/metrics` handles, asserted by
//!   a microbench test.
//!
//! Profiling never feeds back into simulation state, so enabling it
//! cannot perturb the deterministic campaign table (asserted in
//! `apt-bench`).
//!
//! ```
//! let session = apt_selfprof::begin(std::sync::Arc::new(apt_selfprof::FakeClock::new(1)));
//! {
//!     apt_selfprof::prof_scope!("demo/work");
//! }
//! let profile = session.finish();
//! assert_eq!(profile.merged().node(&["demo/work"]).unwrap().hits, 1);
//! ```

pub mod clock;
mod collect;
pub mod flame;
pub mod tree;

pub use clock::{Clock, FakeClock, MonotonicClock};
pub use collect::{begin, begin_monotonic, set_thread_label, Profile, ScopeGuard, Session};
pub use flame::flamegraph_svg;
pub use tree::{CallNode, CallTree, Recorder};

/// Opens a named profiling scope that closes at the end of the enclosing
/// block. Nested scopes build the call tree; when no session is active
/// this is one relaxed atomic load and a branch.
#[macro_export]
macro_rules! prof_scope {
    ($name:expr) => {
        let _selfprof_scope = $crate::ScopeGuard::enter($name);
    };
}
