//! Global profiling session and the scope guard behind `prof_scope!`.
//!
//! Instrumentation sites are scattered across crates whose hot types
//! (e.g. `SimConfig`) are `Copy` and must not grow profiler handles, so
//! the collector is process-global: at most one [`Session`] is active at
//! a time (a static gate serializes concurrent tests), and each thread
//! lazily binds a private frame-stack recorder to the active session the
//! first time it enters a scope.
//!
//! The overhead contract matches `crates/metrics`: with no session
//! active, [`ScopeGuard::enter`] is one relaxed atomic load and a branch
//! (asserted by the microbench test below). Sessions are epoch-numbered
//! so a guard can never report into a session other than the one it
//! entered under.

use crate::clock::{Clock, MonotonicClock};
use crate::tree::{CallTree, Recorder};
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

static ENABLED: AtomicBool = AtomicBool::new(false);
static EPOCH: AtomicU64 = AtomicU64::new(0);
/// Serializes whole sessions (held for the session's lifetime).
static GATE: Mutex<()> = Mutex::new(());
/// The active session's shared state, if any.
static CURRENT: Mutex<Option<Arc<SessionShared>>> = Mutex::new(None);

/// `Mutex::lock` that shrugs off poisoning: a panicking profiled test
/// must not wedge every later session.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

struct SessionShared {
    epoch: u64,
    clock: Arc<dyn Clock>,
    threads: Mutex<Vec<Arc<ThreadSlot>>>,
}

struct ThreadSlot {
    label: Mutex<String>,
    rec: Mutex<Recorder>,
}

struct Binding {
    epoch: u64,
    shared: Arc<SessionShared>,
    slot: Arc<ThreadSlot>,
}

thread_local! {
    static TLS: RefCell<Option<Binding>> = const { RefCell::new(None) };
}

/// Runs `f` with this thread's binding to the active session, binding
/// lazily if needed. Returns `None` when no session is active.
fn with_binding<R>(f: impl FnOnce(&Binding) -> R) -> Option<R> {
    TLS.with(|tls| {
        let mut b = tls.borrow_mut();
        let epoch = EPOCH.load(Ordering::Acquire);
        let stale = !matches!(&*b, Some(bind) if bind.epoch == epoch);
        if stale {
            let shared = match &*lock(&CURRENT) {
                Some(s) if s.epoch == epoch => Arc::clone(s),
                _ => return None,
            };
            let slot = Arc::new(ThreadSlot {
                label: Mutex::new(String::from("thread")),
                rec: Mutex::new(Recorder::new()),
            });
            lock(&shared.threads).push(Arc::clone(&slot));
            *b = Some(Binding {
                epoch,
                shared,
                slot,
            });
        }
        b.as_ref().map(f)
    })
}

/// An active profiling session. Dropping without [`Session::finish`]
/// discards the collected profile but still disables collection.
pub struct Session {
    shared: Arc<SessionShared>,
    _gate: MutexGuard<'static, ()>,
}

/// Starts a session with an injected clock (tests pass
/// [`crate::FakeClock`] for byte-stable output). Blocks until any other
/// session has finished.
pub fn begin(clock: Arc<dyn Clock>) -> Session {
    let gate = lock(&GATE);
    let epoch = EPOCH.fetch_add(1, Ordering::AcqRel) + 1;
    let shared = Arc::new(SessionShared {
        epoch,
        clock,
        threads: Mutex::new(Vec::new()),
    });
    *lock(&CURRENT) = Some(Arc::clone(&shared));
    ENABLED.store(true, Ordering::Release);
    Session {
        shared,
        _gate: gate,
    }
}

/// Starts a session on the default monotonic wall clock.
pub fn begin_monotonic() -> Session {
    begin(Arc::new(MonotonicClock::new()))
}

impl Session {
    /// Stops collection and returns the per-thread profile. Scopes still
    /// open on any thread are closed at the current clock reading so the
    /// trees conserve time.
    pub fn finish(self) -> Profile {
        ENABLED.store(false, Ordering::Release);
        EPOCH.fetch_add(1, Ordering::AcqRel);
        *lock(&CURRENT) = None;
        let now = self.shared.clock.now_us();
        let slots: Vec<Arc<ThreadSlot>> = lock(&self.shared.threads).drain(..).collect();
        let mut threads = Vec::new();
        for slot in slots {
            let mut rec = lock(&slot.rec);
            rec.close_open_frames(now);
            if rec.is_empty() {
                continue;
            }
            threads.push((lock(&slot.label).clone(), rec.tree()));
        }
        threads.sort_by(|a, b| a.0.cmp(&b.0));
        Profile { threads }
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        // Runs both for abandoned sessions and at the end of `finish`
        // (which already deregistered CURRENT), so it must be idempotent.
        ENABLED.store(false, Ordering::Release);
        if lock(&CURRENT)
            .as_ref()
            .is_some_and(|s| s.epoch == self.shared.epoch)
        {
            EPOCH.fetch_add(1, Ordering::AcqRel);
            *lock(&CURRENT) = None;
        }
    }
}

/// The result of a session: `(thread label, call tree)` pairs sorted by
/// label. Worker threads label themselves via [`set_thread_label`].
#[derive(Debug, Clone, Default)]
pub struct Profile {
    pub threads: Vec<(String, CallTree)>,
}

impl Profile {
    pub fn is_empty(&self) -> bool {
        self.threads.is_empty()
    }

    /// All thread trees folded together. Merging is associative and
    /// commutative, so the result is independent of worker scheduling.
    pub fn merged(&self) -> CallTree {
        let mut out = CallTree::default();
        for (_, tree) in &self.threads {
            out.merge(tree);
        }
        out
    }
}

/// Labels the calling thread's profile section (e.g. `worker-3`). A
/// single relaxed load when no session is active.
pub fn set_thread_label(label: &str) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    with_binding(|bind| {
        *lock(&bind.slot.label) = label.to_string();
    });
}

/// RAII scope created by [`crate::prof_scope!`]. When profiling is
/// disabled the constructor is a single relaxed load + branch and the
/// drop is a branch on a local bool.
pub struct ScopeGuard {
    /// Epoch the scope entered under; 0 = disarmed (epochs start at 1).
    epoch: u64,
}

impl ScopeGuard {
    #[inline]
    pub fn enter(name: &'static str) -> ScopeGuard {
        if !ENABLED.load(Ordering::Relaxed) {
            return ScopeGuard { epoch: 0 };
        }
        Self::enter_slow(name)
    }

    #[cold]
    fn enter_slow(name: &'static str) -> ScopeGuard {
        let epoch = with_binding(|bind| {
            let now = bind.shared.clock.now_us();
            lock(&bind.slot.rec).enter(name, now);
            bind.epoch
        });
        ScopeGuard {
            epoch: epoch.unwrap_or(0),
        }
    }
}

impl Drop for ScopeGuard {
    #[inline]
    fn drop(&mut self) {
        if self.epoch == 0 {
            return;
        }
        TLS.with(|tls| {
            if let Some(bind) = tls.borrow().as_ref() {
                // Only report into the session we entered under.
                if bind.epoch == self.epoch {
                    let now = bind.shared.clock.now_us();
                    lock(&bind.slot.rec).exit(now);
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::FakeClock;
    use crate::prof_scope;
    use std::time::Instant;

    /// The collector is process-global and `cargo test` runs tests
    /// concurrently, so every test that enters scopes (even disabled
    /// ones) serializes here to keep thread counts and hit counts exact.
    static TEST_GATE: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_scopes_record_nothing() {
        let _t = lock(&TEST_GATE);
        {
            prof_scope!("ghost");
        }
        let session = begin(Arc::new(FakeClock::new(1)));
        let profile = session.finish();
        assert!(profile.is_empty());
    }

    #[test]
    fn session_collects_nested_scopes() {
        let _t = lock(&TEST_GATE);
        let session = begin(Arc::new(FakeClock::new(5)));
        set_thread_label("main");
        {
            prof_scope!("outer");
            {
                prof_scope!("inner");
            }
        }
        let profile = session.finish();
        assert_eq!(profile.threads.len(), 1);
        assert_eq!(profile.threads[0].0, "main");
        let tree = profile.merged();
        let outer = tree.node(&["outer"]).unwrap();
        let inner = tree.node(&["outer", "inner"]).unwrap();
        assert_eq!(outer.hits, 1);
        assert_eq!(inner.hits, 1);
        assert!(tree.conserves());
        assert!(outer.incl_us >= inner.incl_us);
    }

    #[test]
    fn worker_threads_get_their_own_sections() {
        let _t = lock(&TEST_GATE);
        let session = begin(Arc::new(FakeClock::new(1)));
        let handles: Vec<_> = (0..3)
            .map(|w| {
                std::thread::spawn(move || {
                    set_thread_label(&format!("worker-{w}"));
                    prof_scope!("work");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let profile = session.finish();
        let labels: Vec<&str> = profile.threads.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(labels, ["worker-0", "worker-1", "worker-2"]);
        assert_eq!(profile.merged().node(&["work"]).unwrap().hits, 3);
    }

    #[test]
    fn scopes_straddling_sessions_do_not_cross_report() {
        let _t = lock(&TEST_GATE);
        let session = begin(Arc::new(FakeClock::new(1)));
        let stale = ScopeGuard::enter("stale");
        let _ = session.finish();
        let session = begin(Arc::new(FakeClock::new(1)));
        {
            prof_scope!("fresh");
        }
        drop(stale); // epoch mismatch: must not pop `fresh`'s recorder
        let profile = session.finish();
        let tree = profile.merged();
        assert!(tree.node(&["stale"]).is_none());
        assert_eq!(tree.node(&["fresh"]).unwrap().hits, 1);
    }

    /// The `crates/metrics` overhead contract: a disabled scope is a
    /// single branch, so a disabled loop must not be meaningfully slower
    /// than the same loop with a session active (which does strictly
    /// more work: TLS access, clock reads, recorder locking).
    #[test]
    fn disabled_scopes_are_not_slower_than_enabled() {
        let _t = lock(&TEST_GATE);
        const N: u32 = 200_000;
        fn run() -> std::time::Duration {
            let start = Instant::now();
            for _ in 0..N {
                prof_scope!("bench/scope");
            }
            start.elapsed()
        }
        run(); // warm up
        let off = run();
        let session = begin(Arc::new(FakeClock::new(1)));
        let on = run();
        let profile = session.finish();
        assert_eq!(
            profile.merged().node(&["bench/scope"]).unwrap().hits,
            u64::from(N)
        );
        assert!(
            off <= on * 3 + std::time::Duration::from_millis(50),
            "disabled prof_scope too slow: off={off:?} on={on:?}"
        );
    }
}
