//! Golden byte-stability test: under the injected fake clock, a fixed
//! scope sequence must render the exact same folded-stack text and
//! flamegraph SVG, byte for byte, forever. Regenerate the goldens after
//! an intentional renderer change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p apt-selfprof --test flame_golden
//! ```

use apt_selfprof::{begin, flamegraph_svg, prof_scope, set_thread_label, FakeClock};
use std::path::PathBuf;
use std::sync::Arc;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {} ({e}); run with UPDATE_GOLDEN=1", name));
    assert_eq!(actual, expected, "golden mismatch for {name}");
}

/// A deterministic single-threaded campaign in miniature: every clock
/// read advances the fake clock by a fixed step, so the recorded
/// durations — and therefore the rendered bytes — are a pure function
/// of the scope sequence.
fn record_fixture() -> apt_selfprof::Profile {
    let session = begin(Arc::new(FakeClock::new(7)));
    set_thread_label("worker-0");
    {
        prof_scope!("bench/cell");
        {
            prof_scope!("cpu/exec");
            for _ in 0..3 {
                prof_scope!("cpu/step/mem");
            }
        }
        {
            prof_scope!("bench/cache/store");
        }
    }
    session.finish()
}

#[test]
fn folded_and_svg_are_byte_stable_under_fake_clock() {
    let first = record_fixture();
    let second = record_fixture();
    let tree = first.merged();

    // Two identical sessions produce identical bytes.
    assert_eq!(tree.folded(), second.merged().folded());
    assert_eq!(
        flamegraph_svg(&tree, "all workers"),
        flamegraph_svg(&second.merged(), "all workers")
    );

    // And those bytes match the committed goldens.
    check_golden("flame.folded", &tree.folded());
    check_golden("flame.svg", &flamegraph_svg(&tree, "all workers"));

    // Sanity on the fixture itself.
    assert_eq!(first.threads.len(), 1);
    assert_eq!(first.threads[0].0, "worker-0");
    assert_eq!(
        tree.node(&["bench/cell", "cpu/exec", "cpu/step/mem"])
            .unwrap()
            .hits,
        3
    );
    assert!(tree.conserves());
}
