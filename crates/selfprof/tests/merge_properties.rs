//! Property tests for the call-tree invariants the flamegraph relies on:
//! recorder-produced trees conserve time (children's inclusive sum never
//! exceeds the parent's inclusive), exclusive time is exactly the
//! inclusive remainder, and merging is associative/commutative so the
//! campaign's per-worker trees can be folded in any order.

use apt_selfprof::{CallNode, CallTree, Recorder};
use proptest::prelude::*;

const NAMES: [&str; 6] = [
    "cpu/exec",
    "cpu/step/mem",
    "mem/hier/demand_load",
    "lir/eval",
    "bench/cell",
    "report/render",
];

/// Replays a random enter/exit event tape through a [`Recorder`]. The
/// tape needs no balancing: exits at depth zero are ignored and frames
/// still open at the end are closed, exactly like a real session.
fn build_tree(events: &[(bool, usize, u64)]) -> CallTree {
    let mut r = Recorder::new();
    let mut now = 0u64;
    let mut depth = 0usize;
    for &(enter, name, dt) in events {
        now += dt;
        if enter || depth == 0 {
            r.enter(NAMES[name % NAMES.len()], now);
            depth += 1;
        } else {
            r.exit(now);
            depth -= 1;
        }
    }
    r.close_open_frames(now + 1);
    r.tree()
}

fn check_exclusive_identity(node: &CallNode) -> bool {
    node.excl_us() + node.children_incl_us() == node.incl_us
        && node.children.values().all(check_exclusive_identity)
}

fn merge_all<'a>(trees: impl Iterator<Item = &'a CallTree>) -> CallTree {
    let mut out = CallTree::default();
    for t in trees {
        out.merge(t);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn recorded_trees_conserve_time(
        events in prop::collection::vec((any::<bool>(), 0usize..6, 0u64..40), 0..60),
    ) {
        let tree = build_tree(&events);
        prop_assert!(tree.conserves());
        prop_assert!(tree.roots.values().all(check_exclusive_identity));
    }

    #[test]
    fn merge_is_order_independent_and_conserving(
        tapes in prop::collection::vec(
            prop::collection::vec((any::<bool>(), 0usize..6, 0u64..40), 0..40),
            1..5,
        ),
    ) {
        let trees: Vec<CallTree> = tapes.iter().map(|t| build_tree(t)).collect();
        let forward = merge_all(trees.iter());
        let backward = merge_all(trees.iter().rev());
        prop_assert_eq!(&forward, &backward);
        prop_assert!(forward.conserves());
        prop_assert!(forward.roots.values().all(check_exclusive_identity));
        let total: u64 = trees.iter().map(CallTree::total_incl_us).sum();
        prop_assert_eq!(forward.total_incl_us(), total);
        prop_assert_eq!(forward.folded(), backward.folded());
    }

    #[test]
    fn merge_is_associative(
        a in prop::collection::vec((any::<bool>(), 0usize..6, 0u64..40), 0..40),
        b in prop::collection::vec((any::<bool>(), 0usize..6, 0u64..40), 0..40),
        c in prop::collection::vec((any::<bool>(), 0usize..6, 0u64..40), 0..40),
    ) {
        let (ta, tb, tc) = (build_tree(&a), build_tree(&b), build_tree(&c));
        let mut left = ta.clone();
        left.merge(&tb);
        left.merge(&tc);
        let mut bc = tb.clone();
        bc.merge(&tc);
        let mut right = ta.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }
}
