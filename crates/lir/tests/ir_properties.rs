//! Property tests over the IR substrate: randomly built loop nests always
//! verify, lay out injectively, and evaluate consistently.

use apt_lir::eval::{eval_bin, eval_un};
use apt_lir::pcmap::Location;
use apt_lir::{
    BinOp, FuncId, FunctionBuilder, ICmpPred, InstId, InstRef, Module, Operand, UnOp, Width,
};
use proptest::prelude::*;

/// Builds a loop nest of the given depths with some arithmetic and memory
/// traffic inside.
fn build_nest(depths: &[u8]) -> Module {
    let mut m = Module::new("gen");
    let f = m.add_function("k", &["a", "n"]);
    {
        let mut b = FunctionBuilder::new(m.function_mut(f));
        let (a, n) = (b.param(0), b.param(1));
        fn rec(b: &mut FunctionBuilder<'_>, a: apt_lir::Reg, n: apt_lir::Reg, depths: &[u8]) {
            match depths.split_first() {
                None => {
                    let v = b.load_elem(a, 0u64, Width::W8, false);
                    let w = b.add(v, 1);
                    b.store_elem(a, 0u64, w, Width::W8);
                }
                Some((&step, rest)) => {
                    let rest = rest.to_vec();
                    b.loop_up(0, n, step.max(1) as u64, move |b, iv| {
                        let x = b.mul(iv, 3u64);
                        let y = b.xor(x, 0x55u64);
                        b.prefetch(y);
                        rec(b, a, n, &rest);
                    });
                }
            }
        }
        rec(&mut b, a, n, depths);
        b.ret(None::<Operand>);
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_loop_nests_verify(depths in prop::collection::vec(1u8..4, 0..4)) {
        let m = build_nest(&depths);
        apt_lir::verify::verify_module(&m).unwrap();
    }

    #[test]
    fn pc_layout_is_injective_and_resolvable(depths in prop::collection::vec(1u8..4, 0..4)) {
        let m = build_nest(&depths);
        let map = m.assign_pcs();
        let mut seen = std::collections::HashSet::new();
        for (fid, func) in m.iter_functions() {
            for (bid, block) in func.iter_blocks() {
                for i in 0..block.insts.len() {
                    let r = InstRef { func: fid, block: bid, inst: InstId(i as u32) };
                    let pc = map.pc_of(r);
                    prop_assert!(seen.insert(pc), "duplicate pc {pc}");
                    prop_assert_eq!(map.resolve(pc), Some(Location::Inst(r)));
                }
                let tpc = map.term_pc(fid, bid);
                prop_assert!(seen.insert(tpc));
                prop_assert_eq!(map.resolve(tpc), Some(Location::Term(fid, bid)));
            }
        }
    }

    #[test]
    fn printer_mentions_every_block(depths in prop::collection::vec(1u8..4, 1..4)) {
        let m = build_nest(&depths);
        let text = apt_lir::print::module_to_string(&m);
        for (_, f) in m.iter_functions() {
            for (bid, _) in f.iter_blocks() {
                prop_assert!(text.contains(&format!("{bid}:")), "missing {bid}");
            }
        }
    }

    #[test]
    fn eval_bin_icmp_is_boolean(a in any::<u64>(), b in any::<u64>()) {
        for pred in [ICmpPred::Eq, ICmpPred::Ne, ICmpPred::Ltu, ICmpPred::Lts,
                     ICmpPred::Leu, ICmpPred::Les, ICmpPred::Gtu, ICmpPred::Gts,
                     ICmpPred::Geu, ICmpPred::Ges] {
            let r = eval_bin(BinOp::ICmp(pred), a, b);
            prop_assert!(r == 0 || r == 1);
        }
        // Trichotomy for the unsigned orders.
        let lt = eval_bin(BinOp::ICmp(ICmpPred::Ltu), a, b);
        let eq = eval_bin(BinOp::ICmp(ICmpPred::Eq), a, b);
        let gt = eval_bin(BinOp::ICmp(ICmpPred::Gtu), a, b);
        prop_assert_eq!(lt + eq + gt, 1);
    }

    #[test]
    fn eval_minmax_agree_with_selects(a in any::<u64>(), b in any::<u64>()) {
        let min_u = eval_bin(BinOp::MinU, a, b);
        prop_assert_eq!(min_u, a.min(b));
        let min_s = eval_bin(BinOp::MinS, a, b) as i64;
        prop_assert_eq!(min_s, (a as i64).min(b as i64));
        let max_s = eval_bin(BinOp::MaxS, a, b) as i64;
        prop_assert_eq!(max_s, (a as i64).max(b as i64));
    }

    #[test]
    fn sext_zext_round_trip(v in any::<u32>()) {
        let s = eval_un(UnOp::Sext32, v as u64);
        let z = eval_un(UnOp::Zext32, v as u64);
        prop_assert_eq!(s as u32, v);
        prop_assert_eq!(z, v as u64);
        if v <= i32::MAX as u32 {
            prop_assert_eq!(s, z);
        }
    }

    #[test]
    fn add_sub_invert(a in any::<u64>(), b in any::<u64>()) {
        let sum = eval_bin(BinOp::Add, a, b);
        prop_assert_eq!(eval_bin(BinOp::Sub, sum, b), a);
    }
}

#[test]
fn nested_builder_emits_expected_block_count() {
    // depth d nest: each loop adds body+exit; plus entry.
    let m = build_nest(&[1, 1]);
    let f = m.function(FuncId(0));
    assert_eq!(f.blocks.len(), 1 + 2 * 2);
}
