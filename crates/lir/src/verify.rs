//! IR structural verifier: SSA single-definition, φ/predecessor agreement,
//! and dominance of definitions over uses.

use std::collections::HashMap;

use crate::cfg::Cfg;
use crate::inst::{Inst, Operand};
use crate::module::{BlockId, Function, Module, Reg};

/// A verification failure, with enough context to locate it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    pub func: String,
    pub block: Option<BlockId>,
    pub message: String,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.block {
            Some(b) => write!(f, "verify error in {}/{}: {}", self.func, b, self.message),
            None => write!(f, "verify error in {}: {}", self.func, self.message),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verifies every function in the module.
pub fn verify_module(module: &Module) -> Result<(), VerifyError> {
    for (_, f) in module.iter_functions() {
        verify_function(f)?;
    }
    Ok(())
}

/// Verifies one function; see the module docs for the checked properties.
pub fn verify_function(func: &Function) -> Result<(), VerifyError> {
    let err = |block: Option<BlockId>, message: String| VerifyError {
        func: func.name.clone(),
        block,
        message,
    };

    let nblocks = func.blocks.len() as u32;
    // Terminator targets must be in range (before building the CFG).
    for (b, block) in func.iter_blocks() {
        for s in block.term.successors() {
            if s.0 >= nblocks {
                return Err(err(Some(b), format!("branch target {s} out of range")));
            }
        }
    }

    let cfg = Cfg::build(func);

    // Single definition per register; record the definition site.
    #[derive(Clone, Copy)]
    enum DefSite {
        Param,
        Inst(BlockId, usize),
    }
    let mut defs: HashMap<Reg, DefSite> = HashMap::new();
    for i in 0..func.arity() {
        defs.insert(Reg(i as u32), DefSite::Param);
    }
    for (b, block) in func.iter_blocks() {
        for (i, inst) in block.insts.iter().enumerate() {
            if let Some(d) = inst.dst() {
                if d.0 >= func.next_reg {
                    return Err(err(Some(b), format!("{d} beyond next_reg")));
                }
                if defs.insert(d, DefSite::Inst(b, i)).is_some() {
                    return Err(err(Some(b), format!("{d} defined more than once")));
                }
            }
        }
    }

    for (b, block) in func.iter_blocks() {
        // φ-nodes must form a prefix of the block.
        let phi_count = block.phi_count();
        for (i, inst) in block.insts.iter().enumerate().skip(phi_count) {
            if inst.is_phi() {
                return Err(err(
                    Some(b),
                    format!("phi at position {i} after non-phi instructions"),
                ));
            }
        }

        if !cfg.is_reachable(b) {
            continue; // Dominance facts are undefined for dead blocks.
        }

        // φ incomings must exactly cover the predecessors.
        for inst in block.insts.iter().take(phi_count) {
            let Inst::Phi { dst, incomings } = inst else {
                unreachable!()
            };
            let mut preds: Vec<BlockId> = cfg.preds[b.0 as usize].clone();
            preds.sort();
            preds.dedup();
            let mut inc: Vec<BlockId> = incomings.iter().map(|(p, _)| *p).collect();
            inc.sort();
            if inc != preds {
                return Err(err(
                    Some(b),
                    format!("phi {dst}: incoming blocks {inc:?} != predecessors {preds:?}"),
                ));
            }
        }

        // Every use must be dominated by its definition.
        let check_use = |op: Operand, use_block: BlockId, use_idx: usize| -> Result<(), String> {
            let Operand::Reg(r) = op else { return Ok(()) };
            match defs.get(&r) {
                None => Err(format!("{r} used but never defined")),
                Some(DefSite::Param) => Ok(()),
                Some(DefSite::Inst(db, di)) => {
                    let ok = if *db == use_block {
                        *di < use_idx
                        // A back-edge φ may use a value defined later in
                        // the same block; φ operands are checked against
                        // the *incoming* block, so this arm never sees φs.
                    } else {
                        cfg.is_reachable(*db) && cfg.dominates(*db, use_block)
                    };
                    if ok {
                        Ok(())
                    } else {
                        Err(format!("{r} used before being dominated by its def"))
                    }
                }
            }
        };

        for (i, inst) in block.insts.iter().enumerate() {
            if let Inst::Phi { incomings, .. } = inst {
                // φ operands must be available at the end of their incoming
                // block (def dominates the predecessor).
                for (pred, op) in incomings {
                    let Operand::Reg(r) = op else { continue };
                    match defs.get(r) {
                        None => return Err(err(Some(b), format!("{r} used but never defined"))),
                        Some(DefSite::Param) => {}
                        Some(DefSite::Inst(db, _)) => {
                            if !(cfg.is_reachable(*db) && cfg.dominates(*db, *pred)) {
                                return Err(err(
                                    Some(b),
                                    format!(
                                        "phi operand {r} (from {pred}) not dominated by its def"
                                    ),
                                ));
                            }
                        }
                    }
                }
            } else {
                let mut bad = None;
                inst.for_each_operand(|op| {
                    if bad.is_none() {
                        if let Err(m) = check_use(op, b, i) {
                            bad = Some(m);
                        }
                    }
                });
                if let Some(m) = bad {
                    return Err(err(Some(b), m));
                }
            }
        }
        let mut bad = None;
        block.term.for_each_operand(|op| {
            if bad.is_none() {
                if let Err(m) = check_use(op, b, block.insts.len()) {
                    bad = Some(m);
                }
            }
        });
        if let Some(m) = bad {
            return Err(err(Some(b), m));
        }
    }

    // The entry block cannot have φ-nodes (it has no predecessors).
    if func.block(func.entry).phi_count() > 0 {
        return Err(err(Some(func.entry), "entry block has phi nodes".into()));
    }

    Ok(())
}

/// Convenience alias used by downstream crates.
pub fn verify(module: &Module) -> Result<(), VerifyError> {
    verify_module(module)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{BinOp, Terminator, Width};
    use crate::module::FuncId;

    fn simple_ok() -> Module {
        let mut m = Module::new("t");
        let f = m.add_function("f", &["a"]);
        {
            let mut b = FunctionBuilder::new(m.function_mut(f));
            let a = b.param(0);
            let v = b.load(a, Width::W8, false);
            let w = b.add(v, 1);
            b.ret(Some(w));
        }
        m
    }

    #[test]
    fn accepts_valid_module() {
        verify_module(&simple_ok()).unwrap();
    }

    #[test]
    fn rejects_double_definition() {
        let mut m = simple_ok();
        let f = m.function_mut(FuncId(0));
        // Redefine %1 (the load's destination).
        f.block_mut(BlockId(0)).insts.push(Inst::Bin {
            dst: Reg(1),
            op: BinOp::Add,
            a: Operand::Imm(0),
            b: Operand::Imm(0),
        });
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("defined more than once"), "{e}");
    }

    #[test]
    fn rejects_use_before_def() {
        let mut m = Module::new("t");
        let f = m.add_function("f", &[]);
        let func = m.function_mut(f);
        let r9 = Reg(9);
        func.next_reg = 10;
        func.block_mut(BlockId(0)).insts.push(Inst::Bin {
            dst: Reg(0),
            op: BinOp::Add,
            a: Operand::Reg(r9),
            b: Operand::Imm(0),
        });
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("never defined"), "{e}");
    }

    #[test]
    fn rejects_branch_out_of_range() {
        let mut m = simple_ok();
        m.function_mut(FuncId(0)).block_mut(BlockId(0)).term = Terminator::Br {
            target: BlockId(99),
        };
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("out of range"), "{e}");
    }

    #[test]
    fn rejects_phi_in_entry() {
        let mut m = Module::new("t");
        let f = m.add_function("f", &[]);
        let func = m.function_mut(f);
        func.next_reg = 1;
        func.block_mut(BlockId(0)).insts.push(Inst::Phi {
            dst: Reg(0),
            incomings: vec![],
        });
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("entry block"), "{e}");
    }

    #[test]
    fn rejects_phi_pred_mismatch() {
        let mut m = Module::new("t");
        let f = m.add_function("f", &[]);
        let func = m.function_mut(f);
        let body = func.add_block("body");
        func.block_mut(BlockId(0)).term = Terminator::Br { target: body };
        func.next_reg = 1;
        func.block_mut(body).insts.push(Inst::Phi {
            dst: Reg(0),
            incomings: vec![(BlockId(1), Operand::Imm(0))], // Wrong pred.
        });
        func.block_mut(body).term = Terminator::Ret { value: None };
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("incoming blocks"), "{e}");
    }

    #[test]
    fn rejects_non_dominating_use() {
        // bb0 -> {bb1, bb2}; bb1 defines %0; bb2 uses %0.
        let mut m = Module::new("t");
        let f = m.add_function("f", &[]);
        let func = m.function_mut(f);
        let b1 = func.add_block("b1");
        let b2 = func.add_block("b2");
        func.block_mut(BlockId(0)).term = Terminator::CondBr {
            cond: Operand::Imm(1),
            then_: b1,
            else_: b2,
        };
        func.next_reg = 2;
        func.block_mut(b1).insts.push(Inst::Bin {
            dst: Reg(0),
            op: BinOp::Add,
            a: Operand::Imm(1),
            b: Operand::Imm(2),
        });
        func.block_mut(b1).term = Terminator::Ret { value: None };
        func.block_mut(b2).insts.push(Inst::Bin {
            dst: Reg(1),
            op: BinOp::Add,
            a: Operand::Reg(Reg(0)),
            b: Operand::Imm(0),
        });
        func.block_mut(b2).term = Terminator::Ret { value: None };
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("dominated"), "{e}");
    }

    #[test]
    fn rejects_phi_after_non_phi() {
        let mut m = Module::new("t");
        let f = m.add_function("f", &[]);
        let func = m.function_mut(f);
        let body = func.add_block("body");
        func.block_mut(BlockId(0)).term = Terminator::Br { target: body };
        func.next_reg = 2;
        let blk = func.block_mut(body);
        blk.insts.push(Inst::Prefetch {
            addr: Operand::Imm(0),
        });
        blk.insts.push(Inst::Phi {
            dst: Reg(0),
            incomings: vec![(BlockId(0), Operand::Imm(0))],
        });
        blk.term = Terminator::Ret { value: None };
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("after non-phi"), "{e}");
    }
}
