//! A small, typed, SSA-form loop IR — the compiler substrate for APT-GET.
//!
//! The paper implements its prefetch-injection pass on LLVM IR. This crate
//! provides the minimal subset of LLVM IR semantics that the pass logic
//! actually depends on:
//!
//! * functions made of basic blocks with explicit terminators,
//! * SSA registers with PHI nodes (loop induction variables),
//! * integer/float arithmetic and GEP-like address computation,
//! * `load`/`store`/`prefetch` memory operations,
//! * a stable *program counter* per instruction (see [`pcmap`]), which plays
//!   the role of AutoFDO's PC → IR mapping: hardware-style profiles speak
//!   PCs, the pass resolves them back to IR instructions.
//!
//! The IR is deliberately execution-agnostic: the timing simulator lives in
//! `apt-cpu`, the transformation passes in `apt-passes`.
//!
//! # Examples
//!
//! Build the paper's Listing-1 inner loop `sum += T[B[i] + b0]`:
//!
//! ```
//! use apt_lir::{Module, FunctionBuilder, Operand, Width};
//!
//! let mut m = Module::new("listing1");
//! let f = m.add_function("kernel", &["t_base", "b_base", "n"]);
//! {
//!     let mut b = FunctionBuilder::new(m.function_mut(f));
//!     let t = b.param(0);
//!     let bb = b.param(1);
//!     let n = b.param(2);
//!     let sum = b.loop_up_reduce(0u64, n, 1, 0u64, |b, iv, acc| {
//!         let bi = b.load_elem(bb, iv, Width::W4, false); // B[i]
//!         let v = b.load_elem(t, bi, Width::W4, false);   // T[B[i]]
//!         b.add(acc, v).into()
//!     });
//!     b.ret(Some(sum));
//! }
//! m.assign_pcs();
//! apt_lir::verify::verify_module(&m).unwrap();
//! ```

pub mod builder;
pub mod cfg;
pub mod eval;
pub mod inst;
pub mod module;
pub mod pcmap;
pub mod print;
pub mod verify;

pub use builder::FunctionBuilder;
pub use eval::{Checkpoint, DecodedFunc, DecodedModule, Interp, RunState};
pub use inst::{BinOp, FCmpPred, ICmpPred, Inst, Operand, Terminator, UnOp, Width};
pub use module::{Block, BlockId, FuncId, Function, InstId, InstRef, Module, Reg};
pub use pcmap::{AddressMap, Pc};
