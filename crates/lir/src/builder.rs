//! Ergonomic construction of IR functions, with structured-loop helpers.
//!
//! Loops are emitted *bottom-tested* (rotated), the shape `clang -O3`
//! produces for the paper's kernels: the back-edge is a taken conditional
//! branch executed once per iteration, which is exactly what makes
//! loop-iteration latency measurable from LBR cycle deltas.

use crate::inst::{BinOp, FCmpPred, ICmpPred, Inst, Operand, Terminator, UnOp, Width};
use crate::module::{BlockId, Function, Reg};

/// A handle to a φ-node whose incoming list is patched later.
#[derive(Debug, Clone, Copy)]
pub struct PhiHandle {
    block: BlockId,
    index: usize,
}

/// Streaming builder positioned at a "current block".
pub struct FunctionBuilder<'f> {
    func: &'f mut Function,
    cur: BlockId,
}

impl<'f> FunctionBuilder<'f> {
    /// Starts building at the function's entry block.
    pub fn new(func: &'f mut Function) -> FunctionBuilder<'f> {
        let cur = func.entry;
        FunctionBuilder { func, cur }
    }

    /// The `i`-th parameter register.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn param(&self, i: usize) -> Reg {
        assert!(i < self.func.arity(), "parameter index out of range");
        Reg(i as u32)
    }

    /// The block instructions are currently appended to.
    pub fn current_block(&self) -> BlockId {
        self.cur
    }

    /// Creates a new empty block (does not switch to it).
    pub fn new_block(&mut self, name: &str) -> BlockId {
        self.func.add_block(name)
    }

    /// Makes `b` the current block.
    pub fn switch_to(&mut self, b: BlockId) {
        self.cur = b;
    }

    /// Access to the function being built.
    pub fn func(&mut self) -> &mut Function {
        self.func
    }

    fn push(&mut self, inst: Inst) {
        self.func.block_mut(self.cur).insts.push(inst);
    }

    fn def(&mut self, make: impl FnOnce(Reg) -> Inst) -> Reg {
        let dst = self.func.fresh_reg();
        let inst = make(dst);
        self.push(inst);
        dst
    }

    // ---- Plain instructions -------------------------------------------

    /// `dst = op(a, b)`.
    pub fn bin(&mut self, op: BinOp, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        let (a, b) = (a.into(), b.into());
        self.def(|dst| Inst::Bin { dst, op, a, b })
    }

    /// Wrapping addition.
    pub fn add(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.bin(BinOp::Add, a, b)
    }

    /// Wrapping subtraction.
    pub fn sub(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.bin(BinOp::Sub, a, b)
    }

    /// Wrapping multiplication.
    pub fn mul(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.bin(BinOp::Mul, a, b)
    }

    /// Bitwise and.
    pub fn and(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.bin(BinOp::And, a, b)
    }

    /// Bitwise xor.
    pub fn xor(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.bin(BinOp::Xor, a, b)
    }

    /// Logical shift left.
    pub fn shl(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.bin(BinOp::Shl, a, b)
    }

    /// Logical shift right.
    pub fn shr(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.bin(BinOp::ShrL, a, b)
    }

    /// Integer comparison producing 0/1.
    pub fn icmp(&mut self, pred: ICmpPred, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.bin(BinOp::ICmp(pred), a, b)
    }

    /// Float comparison producing 0/1.
    pub fn fcmp(&mut self, pred: FCmpPred, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.bin(BinOp::FCmp(pred), a, b)
    }

    /// `dst = op(a)`.
    pub fn un(&mut self, op: UnOp, a: impl Into<Operand>) -> Reg {
        let a = a.into();
        self.def(|dst| Inst::Un { dst, op, a })
    }

    /// `dst = cond != 0 ? t : e`.
    pub fn select(
        &mut self,
        cond: impl Into<Operand>,
        t: impl Into<Operand>,
        e: impl Into<Operand>,
    ) -> Reg {
        let (cond, if_true, if_false) = (cond.into(), t.into(), e.into());
        self.def(|dst| Inst::Select {
            dst,
            cond,
            if_true,
            if_false,
        })
    }

    /// Memory load.
    pub fn load(&mut self, addr: impl Into<Operand>, width: Width, sext: bool) -> Reg {
        let addr = addr.into();
        self.def(|dst| Inst::Load {
            dst,
            addr,
            width,
            sext,
            spec: false,
        })
    }

    /// Memory store.
    pub fn store(&mut self, addr: impl Into<Operand>, value: impl Into<Operand>, width: Width) {
        let (addr, value) = (addr.into(), value.into());
        self.push(Inst::Store { addr, value, width });
    }

    /// Software prefetch.
    pub fn prefetch(&mut self, addr: impl Into<Operand>) {
        let addr = addr.into();
        self.push(Inst::Prefetch { addr });
    }

    /// `base + index * width` — a one-dimensional GEP.
    pub fn elem_addr(
        &mut self,
        base: impl Into<Operand>,
        index: impl Into<Operand>,
        width: Width,
    ) -> Reg {
        let off = self.mul(index, width.bytes());
        self.add(base, off)
    }

    /// Loads `base[index]` of the given element width.
    pub fn load_elem(
        &mut self,
        base: impl Into<Operand>,
        index: impl Into<Operand>,
        width: Width,
        sext: bool,
    ) -> Reg {
        let addr = self.elem_addr(base, index, width);
        self.load(addr, width, sext)
    }

    /// Stores `value` to `base[index]`.
    pub fn store_elem(
        &mut self,
        base: impl Into<Operand>,
        index: impl Into<Operand>,
        value: impl Into<Operand>,
        width: Width,
    ) {
        let addr = self.elem_addr(base, index, width);
        self.store(addr, value, width);
    }

    /// A φ-node with known incomings.
    pub fn phi(&mut self, incomings: Vec<(BlockId, Operand)>) -> Reg {
        self.def(|dst| Inst::Phi { dst, incomings })
    }

    /// A φ-node whose incomings are patched later via
    /// [`FunctionBuilder::set_phi_incomings`].
    pub fn phi_placeholder(&mut self) -> (Reg, PhiHandle) {
        let index = self.func.block(self.cur).insts.len();
        let handle = PhiHandle {
            block: self.cur,
            index,
        };
        let r = self.phi(Vec::new());
        (r, handle)
    }

    /// Fills in the incoming list of a placeholder φ.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not point at a φ-node.
    pub fn set_phi_incomings(&mut self, h: PhiHandle, incomings: Vec<(BlockId, Operand)>) {
        match &mut self.func.block_mut(h.block).insts[h.index] {
            Inst::Phi {
                incomings: slot, ..
            } => *slot = incomings,
            other => panic!("PhiHandle points at non-phi {other:?}"),
        }
    }

    // ---- Terminators ---------------------------------------------------

    /// Terminates the current block with an unconditional branch and
    /// switches to the target.
    pub fn br(&mut self, target: BlockId) {
        self.func.block_mut(self.cur).term = Terminator::Br { target };
        self.cur = target;
    }

    /// Terminates the current block with a conditional branch.
    ///
    /// `then_` is the LBR-visible *taken* direction. Does not switch blocks.
    pub fn cond_br(&mut self, cond: impl Into<Operand>, then_: BlockId, else_: BlockId) {
        let cond = cond.into();
        self.func.block_mut(self.cur).term = Terminator::CondBr { cond, then_, else_ };
    }

    /// Terminates the current block with a return.
    pub fn ret(&mut self, value: Option<impl Into<Operand>>) {
        self.func.block_mut(self.cur).term = Terminator::Ret {
            value: value.map(Into::into),
        };
    }

    // ---- Structured loops ----------------------------------------------

    /// Canonical counted loop `for (iv = init; iv < limit; iv += step)`,
    /// signed comparison, bottom-tested with an entry guard so a zero-trip
    /// loop executes no iterations. Leaves the builder at the exit block.
    pub fn loop_up(
        &mut self,
        init: impl Into<Operand>,
        limit: impl Into<Operand>,
        step: u64,
        body: impl FnOnce(&mut Self, Reg),
    ) {
        self.loop_up_carried(init, limit, step, &[], |b, iv, _| {
            body(b, iv);
            Vec::new()
        });
    }

    /// Counted loop with one reduction accumulator; returns the reduced
    /// value at the exit block.
    pub fn loop_up_reduce(
        &mut self,
        init: impl Into<Operand>,
        limit: impl Into<Operand>,
        step: u64,
        acc_init: impl Into<Operand>,
        body: impl FnOnce(&mut Self, Reg, Reg) -> Operand,
    ) -> Reg {
        let out = self.loop_up_carried(init, limit, step, &[acc_init.into()], |b, iv, c| {
            vec![body(b, iv, c[0])]
        });
        out[0]
    }

    /// Counted loop carrying arbitrary loop-carried values.
    ///
    /// `body(builder, iv, carried)` returns the next value of each carried
    /// variable; the return value is each carried variable's value *after*
    /// the loop (φ-merged with the init value for the zero-trip path).
    pub fn loop_up_carried(
        &mut self,
        init: impl Into<Operand>,
        limit: impl Into<Operand>,
        step: u64,
        carried_inits: &[Operand],
        body: impl FnOnce(&mut Self, Reg, &[Reg]) -> Vec<Operand>,
    ) -> Vec<Reg> {
        let init = init.into();
        let limit = limit.into();
        self.rotated_loop(init, limit, carried_inits, |b, iv| b.add(iv, step), body)
    }

    /// Non-canonical geometric loop `for (iv = init; iv < limit; iv *= factor)`.
    ///
    /// The paper's pass explicitly supports such induction updates (§3.5).
    pub fn loop_geometric(
        &mut self,
        init: impl Into<Operand>,
        limit: impl Into<Operand>,
        factor: u64,
        body: impl FnOnce(&mut Self, Reg),
    ) {
        let init = init.into();
        let limit = limit.into();
        self.rotated_loop(
            init,
            limit,
            &[],
            |b, iv| b.mul(iv, factor),
            |b, iv, _| {
                body(b, iv);
                Vec::new()
            },
        );
    }

    /// Shared skeleton: guard → body(φs) → latch(update, compare, back-edge)
    /// → exit(φs). `advance` computes the next induction value.
    fn rotated_loop(
        &mut self,
        init: Operand,
        limit: Operand,
        carried_inits: &[Operand],
        advance: impl FnOnce(&mut Self, Reg) -> Reg,
        body: impl FnOnce(&mut Self, Reg, &[Reg]) -> Vec<Operand>,
    ) -> Vec<Reg> {
        let guard = self.cur;
        let body_bb = self.new_block("loop.body");
        let exit_bb = self.new_block("loop.exit");

        // Guard: skip the loop entirely when `init >= limit`.
        let enter = self.icmp(ICmpPred::Lts, init, limit);
        self.cond_br(enter, body_bb, exit_bb);

        // Body header: induction and carried φs (patched after the latch).
        self.switch_to(body_bb);
        let (iv, iv_phi) = self.phi_placeholder();
        let mut carried = Vec::with_capacity(carried_inits.len());
        let mut carried_phis = Vec::with_capacity(carried_inits.len());
        for _ in carried_inits {
            let (r, h) = self.phi_placeholder();
            carried.push(r);
            carried_phis.push(h);
        }

        let nexts = body(self, iv, &carried);
        assert_eq!(
            nexts.len(),
            carried_inits.len(),
            "loop body must produce one next value per carried variable"
        );

        // Latch: advance, compare, take the back edge.
        let latch = self.cur;
        let iv_next = advance(self, iv);
        let again = self.icmp(ICmpPred::Lts, iv_next, limit);
        self.cond_br(again, body_bb, exit_bb);

        self.set_phi_incomings(iv_phi, vec![(guard, init), (latch, Operand::Reg(iv_next))]);
        for (h, (&ci, &next)) in carried_phis
            .iter()
            .zip(carried_inits.iter().zip(nexts.iter()))
        {
            self.set_phi_incomings(*h, vec![(guard, ci), (latch, next)]);
        }

        // Exit φs merge the zero-trip (guard) and post-loop (latch) values.
        self.switch_to(exit_bb);
        carried_inits
            .iter()
            .zip(nexts.iter())
            .map(|(&ci, &next)| self.phi(vec![(guard, ci), (latch, next)]))
            .collect()
    }

    /// General bottom-tested `do { ... } while (cond)` loop with carried
    /// variables (used for work-list loops like DFS).
    ///
    /// `body` returns `(continue_cond, next_values)`. The body executes at
    /// least once. Returns the carried values at the exit block.
    pub fn do_while_carried(
        &mut self,
        carried_inits: &[Operand],
        body: impl FnOnce(&mut Self, &[Reg]) -> (Operand, Vec<Operand>),
    ) -> Vec<Reg> {
        let pre = self.cur;
        let body_bb = self.new_block("dowhile.body");
        let exit_bb = self.new_block("dowhile.exit");
        self.br(body_bb);

        let mut carried = Vec::with_capacity(carried_inits.len());
        let mut handles = Vec::with_capacity(carried_inits.len());
        for _ in carried_inits {
            let (r, h) = self.phi_placeholder();
            carried.push(r);
            handles.push(h);
        }
        let (cond, nexts) = body(self, &carried);
        assert_eq!(nexts.len(), carried_inits.len());
        let latch = self.cur;
        self.cond_br(cond, body_bb, exit_bb);
        for (h, (&ci, &next)) in handles.iter().zip(carried_inits.iter().zip(nexts.iter())) {
            self.set_phi_incomings(*h, vec![(pre, ci), (latch, next)]);
        }

        self.switch_to(exit_bb);
        nexts.iter().map(|&n| self.phi(vec![(latch, n)])).collect()
    }

    /// Structured if/else producing merged values.
    ///
    /// `then_f` and `else_f` each return one operand per merged value;
    /// the result registers are φs in the join block, where the builder is
    /// left positioned. The *taken* direction of the branch is the `else`
    /// side, matching compilers' preference for falling through into the
    /// likely (`then`) path.
    pub fn if_else(
        &mut self,
        cond: impl Into<Operand>,
        then_f: impl FnOnce(&mut Self) -> Vec<Operand>,
        else_f: impl FnOnce(&mut Self) -> Vec<Operand>,
    ) -> Vec<Reg> {
        let cond = cond.into();
        let then_bb = self.new_block("if.then");
        let else_bb = self.new_block("if.else");
        let join_bb = self.new_block("if.join");
        // Invert: branch taken ⇒ else; fall through ⇒ then.
        let ncond = self.icmp(ICmpPred::Eq, cond, 0u64);
        self.cond_br(ncond, else_bb, then_bb);

        self.switch_to(then_bb);
        let tvals = then_f(self);
        let tend = self.current_block();
        self.br(join_bb);

        self.switch_to(else_bb);
        let evals = else_f(self);
        let eend = self.current_block();
        self.br(join_bb);

        assert_eq!(
            tvals.len(),
            evals.len(),
            "both if arms must merge the same number of values"
        );
        self.switch_to(join_bb);
        tvals
            .iter()
            .zip(evals.iter())
            .map(|(&t, &e)| self.phi(vec![(tend, t), (eend, e)]))
            .collect()
    }

    /// Structured one-armed if producing merged values.
    ///
    /// When `cond` is true, `then_f` runs and its returned operands are
    /// merged; otherwise the corresponding `else_vals` pass through. The
    /// skip path is a single taken branch straight to the join block (the
    /// layout compilers emit for `if` without `else`).
    pub fn if_then(
        &mut self,
        cond: impl Into<Operand>,
        else_vals: &[Operand],
        then_f: impl FnOnce(&mut Self) -> Vec<Operand>,
    ) -> Vec<Reg> {
        let cond = cond.into();
        let then_bb = self.new_block("if.then");
        let join_bb = self.new_block("if.join");
        let ncond = self.icmp(ICmpPred::Eq, cond, 0u64);
        let branch_bb = self.current_block();
        self.cond_br(ncond, join_bb, then_bb);

        self.switch_to(then_bb);
        let tvals = then_f(self);
        assert_eq!(
            tvals.len(),
            else_vals.len(),
            "then arm must merge one value per else_val"
        );
        let tend = self.current_block();
        self.br(join_bb);

        self.switch_to(join_bb);
        tvals
            .iter()
            .zip(else_vals.iter())
            .map(|(&t, &e)| self.phi(vec![(branch_bb, e), (tend, t)]))
            .collect()
    }

    /// Emits `n` dependent integer adds — the paper's "work function" of
    /// configurable complexity (straight-line, no extra branches so it does
    /// not pollute the LBR). Returns the chain's final value.
    pub fn work_chain(&mut self, seed: impl Into<Operand>, n: usize) -> Reg {
        let mut v = self.add(seed, 0x9e37_79b9u64);
        for i in 0..n {
            v = self.add(v, (i as u64).wrapping_mul(0x85eb_ca77) | 1);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::Module;
    use crate::verify::verify_module;

    #[test]
    fn counted_loop_verifies() {
        let mut m = Module::new("t");
        let f = m.add_function("f", &["n"]);
        {
            let mut b = FunctionBuilder::new(m.function_mut(f));
            let n = b.param(0);
            let s = b.loop_up_reduce(0, n, 1, 0, |b, iv, acc| {
                let x = b.mul(iv, 3u64);
                b.add(acc, x).into()
            });
            b.ret(Some(s));
        }
        verify_module(&m).unwrap();
        // Guard + body + exit.
        assert_eq!(m.function(f).blocks.len(), 3);
    }

    #[test]
    fn nested_loops_verify() {
        let mut m = Module::new("t");
        let f = m.add_function("f", &["n", "m", "a"]);
        {
            let mut b = FunctionBuilder::new(m.function_mut(f));
            let (n, mm, a) = (b.param(0), b.param(1), b.param(2));
            b.loop_up(0, n, 1, |b, i| {
                b.loop_up(0, mm, 1, |b, j| {
                    let idx = b.add(i, j);
                    let v = b.load_elem(a, idx, Width::W8, false);
                    b.store_elem(a, j, v, Width::W8);
                });
            });
            b.ret(None::<Operand>);
        }
        verify_module(&m).unwrap();
    }

    #[test]
    fn geometric_loop_verifies() {
        let mut m = Module::new("t");
        let f = m.add_function("f", &["n"]);
        {
            let mut b = FunctionBuilder::new(m.function_mut(f));
            let n = b.param(0);
            b.loop_geometric(1, n, 2, |b, iv| {
                b.prefetch(iv);
            });
            b.ret(None::<Operand>);
        }
        verify_module(&m).unwrap();
    }

    #[test]
    fn do_while_verifies() {
        let mut m = Module::new("t");
        let f = m.add_function("f", &[]);
        {
            let mut b = FunctionBuilder::new(m.function_mut(f));
            let out = b.do_while_carried(&[Operand::Imm(10)], |b, c| {
                let next = b.sub(c[0], 1);
                let cond = b.icmp(ICmpPred::Gts, next, 0);
                (cond.into(), vec![next.into()])
            });
            b.ret(Some(out[0]));
        }
        verify_module(&m).unwrap();
    }

    #[test]
    fn work_chain_length() {
        let mut m = Module::new("t");
        let f = m.add_function("f", &[]);
        {
            let mut b = FunctionBuilder::new(m.function_mut(f));
            let v = b.work_chain(1, 8);
            b.ret(Some(v));
        }
        // Seed add + 8 chain adds.
        assert_eq!(m.function(f).inst_count(), 9);
        verify_module(&m).unwrap();
    }

    #[test]
    fn if_else_merges_values() {
        let mut m = Module::new("t");
        let f = m.add_function("f", &["c"]);
        {
            let mut b = FunctionBuilder::new(m.function_mut(f));
            let c = b.param(0);
            let merged = b.if_else(
                c,
                |b| vec![b.add(10, 1).into()],
                |b| vec![b.add(20, 2).into()],
            );
            b.ret(Some(merged[0]));
        }
        verify_module(&m).unwrap();
        // Entry + then + else + join.
        assert_eq!(m.function(f).blocks.len(), 4);
    }

    #[test]
    fn if_then_passes_through_else_values() {
        let mut m = Module::new("t");
        let f = m.add_function("f", &["c", "x"]);
        {
            let mut b = FunctionBuilder::new(m.function_mut(f));
            let (c, x) = (b.param(0), b.param(1));
            let merged = b.if_then(c, &[x.into()], |b| vec![b.add(x, 100).into()]);
            b.ret(Some(merged[0]));
        }
        verify_module(&m).unwrap();
        // Entry + then + join.
        assert_eq!(m.function(f).blocks.len(), 3);
    }

    #[test]
    fn nested_if_inside_loop_verifies() {
        let mut m = Module::new("t");
        let f = m.add_function("f", &["n"]);
        {
            let mut b = FunctionBuilder::new(m.function_mut(f));
            let n = b.param(0);
            let out = b.loop_up_carried(0, n, 1, &[Operand::Imm(0)], |b, iv, car| {
                let odd = b.and(iv, 1u64);
                let merged = b.if_then(odd, &[car[0].into()], |b| {
                    let inner = b.if_else(
                        odd,
                        |b| vec![b.add(car[0], 2).into()],
                        |b| vec![b.add(car[0], 3).into()],
                    );
                    vec![inner[0].into()]
                });
                vec![merged[0].into()]
            });
            b.ret(Some(out[0]));
        }
        verify_module(&m).unwrap();
    }

    #[test]
    #[should_panic(expected = "parameter index out of range")]
    fn param_out_of_range_panics() {
        let mut m = Module::new("t");
        let f = m.add_function("f", &["x"]);
        let b = FunctionBuilder::new(m.function_mut(f));
        let _ = b.param(1);
    }
}
