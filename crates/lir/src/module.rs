//! Modules, functions and basic blocks.

use std::fmt;

use crate::inst::{Inst, Terminator};

/// An SSA virtual register, unique within its function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u32);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// A basic-block index within its function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// A function index within its module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

/// An instruction index within its block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstId(pub u32);

/// A fully-qualified instruction reference `(function, block, index)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstRef {
    pub func: FuncId,
    pub block: BlockId,
    pub inst: InstId,
}

impl fmt::Display for InstRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}:bb{}:i{}", self.func.0, self.block.0, self.inst.0)
    }
}

/// A basic block: a φ-prefix, straight-line instructions, one terminator.
#[derive(Debug, Clone)]
pub struct Block {
    /// Optional label for diagnostics and printing.
    pub name: String,
    /// Instructions; φ-nodes must form a prefix.
    pub insts: Vec<Inst>,
    /// The terminator. Builders may leave this as `Ret {None}` until sealed.
    pub term: Terminator,
}

impl Block {
    /// Creates an empty block terminated by `ret void` (to be overwritten).
    pub fn new(name: impl Into<String>) -> Block {
        Block {
            name: name.into(),
            insts: Vec::new(),
            term: Terminator::Ret { value: None },
        }
    }

    /// Number of leading φ-nodes.
    pub fn phi_count(&self) -> usize {
        self.insts.iter().take_while(|i| i.is_phi()).count()
    }
}

/// A function: parameters are pre-assigned registers `%0..%arity-1`.
#[derive(Debug, Clone)]
pub struct Function {
    pub name: String,
    /// Parameter names (registers `%0..`), for printing only.
    pub params: Vec<String>,
    pub blocks: Vec<Block>,
    /// Entry block (always `bb0` by convention).
    pub entry: BlockId,
    /// Number of registers allocated so far (params included).
    pub next_reg: u32,
}

impl Function {
    /// Creates a function with one empty entry block.
    pub fn new(name: impl Into<String>, params: &[&str]) -> Function {
        Function {
            name: name.into(),
            params: params.iter().map(|s| s.to_string()).collect(),
            blocks: vec![Block::new("entry")],
            entry: BlockId(0),
            next_reg: params.len() as u32,
        }
    }

    /// Number of parameters.
    pub fn arity(&self) -> usize {
        self.params.len()
    }

    /// Allocates a fresh SSA register.
    pub fn fresh_reg(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// Appends an empty block and returns its id.
    pub fn add_block(&mut self, name: impl Into<String>) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block::new(name));
        id
    }

    /// Shared access to a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.0 as usize]
    }

    /// Mutable access to a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.0 as usize]
    }

    /// Iterates `(BlockId, &Block)` in index order.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId(i as u32), b))
    }

    /// Total instruction count (terminators excluded).
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }
}

/// A module: a named collection of functions.
#[derive(Debug, Clone)]
pub struct Module {
    pub name: String,
    pub functions: Vec<Function>,
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: impl Into<String>) -> Module {
        Module {
            name: name.into(),
            functions: Vec::new(),
        }
    }

    /// Adds a new function and returns its id.
    pub fn add_function(&mut self, name: impl Into<String>, params: &[&str]) -> FuncId {
        let id = FuncId(self.functions.len() as u32);
        self.functions.push(Function::new(name, params));
        id
    }

    /// Shared access to a function.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.0 as usize]
    }

    /// Mutable access to a function.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn function_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.functions[id.0 as usize]
    }

    /// Looks a function up by name.
    pub fn function_by_name(&self, name: &str) -> Option<(FuncId, &Function)> {
        self.functions
            .iter()
            .enumerate()
            .find(|(_, f)| f.name == name)
            .map(|(i, f)| (FuncId(i as u32), f))
    }

    /// Iterates `(FuncId, &Function)` in index order.
    pub fn iter_functions(&self) -> impl Iterator<Item = (FuncId, &Function)> {
        self.functions
            .iter()
            .enumerate()
            .map(|(i, f)| (FuncId(i as u32), f))
    }

    /// Assigns program counters to every instruction; see [`crate::pcmap`].
    ///
    /// Returns the resulting address map. Call again after transforming the
    /// module (PCs are derived from layout, as in a re-compiled binary).
    pub fn assign_pcs(&self) -> crate::pcmap::AddressMap {
        crate::pcmap::AddressMap::build(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Operand;

    #[test]
    fn function_scaffolding() {
        let mut m = Module::new("t");
        let f = m.add_function("f", &["a", "b"]);
        assert_eq!(m.function(f).arity(), 2);
        assert_eq!(m.function(f).next_reg, 2);
        let r = m.function_mut(f).fresh_reg();
        assert_eq!(r, Reg(2));
        let bb = m.function_mut(f).add_block("body");
        assert_eq!(bb, BlockId(1));
        assert_eq!(m.function(f).blocks.len(), 2);
    }

    #[test]
    fn function_lookup_by_name() {
        let mut m = Module::new("t");
        m.add_function("alpha", &[]);
        let beta = m.add_function("beta", &[]);
        assert_eq!(m.function_by_name("beta").unwrap().0, beta);
        assert!(m.function_by_name("gamma").is_none());
    }

    #[test]
    fn phi_prefix_counting() {
        let mut b = Block::new("x");
        b.insts.push(Inst::Phi {
            dst: Reg(0),
            incomings: vec![],
        });
        b.insts.push(Inst::Prefetch {
            addr: Operand::Imm(0),
        });
        assert_eq!(b.phi_count(), 1);
    }

    #[test]
    fn display_impls() {
        assert_eq!(Reg(4).to_string(), "%4");
        assert_eq!(BlockId(2).to_string(), "bb2");
        let r = InstRef {
            func: FuncId(1),
            block: BlockId(2),
            inst: InstId(3),
        };
        assert_eq!(r.to_string(), "f1:bb2:i3");
    }
}
