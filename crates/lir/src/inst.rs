//! Instruction set of the loop IR.
//!
//! Registers are untyped 64-bit machine words; each operation fixes the
//! interpretation of its operands (integer vs. IEEE-754 `f64` bit pattern),
//! exactly like a RISC register file.

use crate::module::{BlockId, Reg};

/// An operand: either an SSA register or a 64-bit immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// An SSA register defined elsewhere in the function.
    Reg(Reg),
    /// A literal 64-bit value (integers are stored as-is, floats as bits).
    Imm(u64),
}

impl Operand {
    /// Returns the register if this operand is one.
    pub fn reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Imm(_) => None,
        }
    }

    /// Returns the immediate value if this operand is one.
    pub fn imm(self) -> Option<u64> {
        match self {
            Operand::Reg(_) => None,
            Operand::Imm(v) => Some(v),
        }
    }

    /// Builds a float immediate from an `f64` value.
    pub fn fimm(v: f64) -> Operand {
        Operand::Imm(v.to_bits())
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Operand {
        Operand::Reg(r)
    }
}

impl From<u64> for Operand {
    fn from(v: u64) -> Operand {
        Operand::Imm(v)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Operand {
        Operand::Imm(v as u64)
    }
}

impl From<i32> for Operand {
    fn from(v: i32) -> Operand {
        Operand::Imm(v as i64 as u64)
    }
}

impl From<usize> for Operand {
    fn from(v: usize) -> Operand {
        Operand::Imm(v as u64)
    }
}

/// Integer comparison predicates (as in LLVM's `icmp`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ICmpPred {
    Eq,
    Ne,
    /// Unsigned less-than.
    Ltu,
    /// Signed less-than.
    Lts,
    /// Unsigned less-or-equal.
    Leu,
    /// Signed less-or-equal.
    Les,
    /// Unsigned greater-than.
    Gtu,
    /// Signed greater-than.
    Gts,
    /// Unsigned greater-or-equal.
    Geu,
    /// Signed greater-or-equal.
    Ges,
}

/// Float comparison predicates (ordered comparisons on `f64`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FCmpPred {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Two-operand ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping 64-bit addition.
    Add,
    /// Wrapping 64-bit subtraction.
    Sub,
    /// Wrapping 64-bit multiplication.
    Mul,
    /// Unsigned division (division by zero yields 0, like a trap value).
    DivU,
    /// Signed division (division by zero yields 0).
    DivS,
    /// Unsigned remainder (modulo zero yields the dividend).
    RemU,
    And,
    Or,
    Xor,
    /// Logical shift left (shift amount masked to 63).
    Shl,
    /// Logical shift right.
    ShrL,
    /// Arithmetic shift right.
    ShrA,
    /// Integer comparison producing 0/1.
    ICmp(ICmpPred),
    /// IEEE-754 `f64` addition on the operand bit patterns.
    FAdd,
    FSub,
    FMul,
    FDiv,
    /// Float comparison producing 0/1.
    FCmp(FCmpPred),
    /// Unsigned minimum (used by prefetch-index clamping).
    MinU,
    /// Signed minimum.
    MinS,
    /// Signed maximum.
    MaxS,
}

impl BinOp {
    /// True for operations interpreting operands as `f64` bit patterns.
    pub fn is_float(self) -> bool {
        matches!(
            self,
            BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv | BinOp::FCmp(_)
        )
    }
}

/// Memory access width in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Width {
    W1,
    W2,
    W4,
    W8,
}

impl Width {
    /// Width in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            Width::W1 => 1,
            Width::W2 => 2,
            Width::W4 => 4,
            Width::W8 => 8,
        }
    }
}

/// Unary value conversions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Sign-extend the low 32 bits to 64 bits (LLVM `sext i32 → i64`).
    Sext32,
    /// Zero-extend the low 32 bits.
    Zext32,
    /// Signed 64-bit integer → `f64`.
    IToF,
    /// `f64` → signed 64-bit integer (saturating, NaN → 0).
    FToI,
    /// Bitwise copy (register-to-register move).
    Copy,
}

/// A non-terminator instruction.
///
/// `Phi` nodes must appear as a contiguous prefix of their block and are
/// evaluated with parallel-copy semantics on block entry.
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// SSA φ-node: selects the operand matching the predecessor block.
    Phi {
        dst: Reg,
        incomings: Vec<(BlockId, Operand)>,
    },
    /// `dst = op(a, b)`.
    Bin {
        dst: Reg,
        op: BinOp,
        a: Operand,
        b: Operand,
    },
    /// `dst = op(a)`.
    Un { dst: Reg, op: UnOp, a: Operand },
    /// `dst = cond != 0 ? if_true : if_false`.
    Select {
        dst: Reg,
        cond: Operand,
        if_true: Operand,
        if_false: Operand,
    },
    /// Memory load of `width` bytes from `addr`; sign- or zero-extended.
    ///
    /// `spec` marks *speculative* loads cloned into prefetch slices: they
    /// must never fault — an out-of-range access yields 0 (modelling the
    /// guarded loads a production compiler emits for prefetch kernels).
    Load {
        dst: Reg,
        addr: Operand,
        width: Width,
        sext: bool,
        spec: bool,
    },
    /// Memory store of the low `width` bytes of `value` to `addr`.
    Store {
        addr: Operand,
        value: Operand,
        width: Width,
    },
    /// Software prefetch of the cache line containing `addr`.
    ///
    /// Semantically a no-op; the timing simulator turns it into a
    /// non-blocking fill request (the paper's `llvm.prefetch`).
    Prefetch { addr: Operand },
}

impl Inst {
    /// The register defined by this instruction, if any.
    pub fn dst(&self) -> Option<Reg> {
        match self {
            Inst::Phi { dst, .. }
            | Inst::Bin { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::Select { dst, .. }
            | Inst::Load { dst, .. } => Some(*dst),
            Inst::Store { .. } | Inst::Prefetch { .. } => None,
        }
    }

    /// True if this is a φ-node.
    pub fn is_phi(&self) -> bool {
        matches!(self, Inst::Phi { .. })
    }

    /// Visits every operand read by this instruction.
    pub fn for_each_operand(&self, mut f: impl FnMut(Operand)) {
        match self {
            Inst::Phi { incomings, .. } => {
                for (_, op) in incomings {
                    f(*op);
                }
            }
            Inst::Bin { a, b, .. } => {
                f(*a);
                f(*b);
            }
            Inst::Un { a, .. } => f(*a),
            Inst::Select {
                cond,
                if_true,
                if_false,
                ..
            } => {
                f(*cond);
                f(*if_true);
                f(*if_false);
            }
            Inst::Load { addr, .. } => f(*addr),
            Inst::Store { addr, value, .. } => {
                f(*addr);
                f(*value);
            }
            Inst::Prefetch { addr } => f(*addr),
        }
    }

    /// Rewrites every operand through `f` (used by slice cloning).
    pub fn map_operands(&mut self, mut f: impl FnMut(Operand) -> Operand) {
        match self {
            Inst::Phi { incomings, .. } => {
                for (_, op) in incomings.iter_mut() {
                    *op = f(*op);
                }
            }
            Inst::Bin { a, b, .. } => {
                *a = f(*a);
                *b = f(*b);
            }
            Inst::Un { a, .. } => *a = f(*a),
            Inst::Select {
                cond,
                if_true,
                if_false,
                ..
            } => {
                *cond = f(*cond);
                *if_true = f(*if_true);
                *if_false = f(*if_false);
            }
            Inst::Load { addr, .. } => *addr = f(*addr),
            Inst::Store { addr, value, .. } => {
                *addr = f(*addr);
                *value = f(*value);
            }
            Inst::Prefetch { addr } => *addr = f(*addr),
        }
    }
}

/// Block terminator.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Unconditional branch (always a *taken* branch for LBR purposes).
    Br { target: BlockId },
    /// Conditional branch; `then_` is the *taken* direction, `else_` the
    /// fall-through (this matters for LBR recording: only taken branches
    /// enter the Last Branch Record, mirroring Intel semantics).
    CondBr {
        cond: Operand,
        then_: BlockId,
        else_: BlockId,
    },
    /// Function return.
    Ret { value: Option<Operand> },
}

impl Terminator {
    /// Successor blocks in order.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Br { target } => vec![*target],
            Terminator::CondBr { then_, else_, .. } => vec![*then_, *else_],
            Terminator::Ret { .. } => vec![],
        }
    }

    /// Visits every operand read by the terminator.
    pub fn for_each_operand(&self, mut f: impl FnMut(Operand)) {
        match self {
            Terminator::CondBr { cond, .. } => f(*cond),
            Terminator::Ret { value: Some(v) } => f(*v),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_conversions() {
        assert_eq!(Operand::from(3u64), Operand::Imm(3));
        assert_eq!(Operand::from(-1i64), Operand::Imm(u64::MAX));
        assert_eq!(Operand::fimm(1.0), Operand::Imm(1.0f64.to_bits()));
        assert_eq!(Operand::Imm(7).imm(), Some(7));
        assert_eq!(Operand::Imm(7).reg(), None);
    }

    #[test]
    fn widths() {
        assert_eq!(Width::W1.bytes(), 1);
        assert_eq!(Width::W8.bytes(), 8);
    }

    #[test]
    fn float_op_classification() {
        assert!(BinOp::FAdd.is_float());
        assert!(BinOp::FCmp(FCmpPred::Lt).is_float());
        assert!(!BinOp::Add.is_float());
        assert!(!BinOp::ICmp(ICmpPred::Lts).is_float());
    }

    #[test]
    fn inst_dst_and_operands() {
        let i = Inst::Bin {
            dst: Reg(3),
            op: BinOp::Add,
            a: Operand::Reg(Reg(1)),
            b: Operand::Imm(4),
        };
        assert_eq!(i.dst(), Some(Reg(3)));
        let mut ops = vec![];
        i.for_each_operand(|o| ops.push(o));
        assert_eq!(ops, vec![Operand::Reg(Reg(1)), Operand::Imm(4)]);

        let s = Inst::Store {
            addr: Operand::Reg(Reg(0)),
            value: Operand::Imm(1),
            width: Width::W8,
        };
        assert_eq!(s.dst(), None);
    }

    #[test]
    fn map_operands_rewrites() {
        let mut i = Inst::Select {
            dst: Reg(9),
            cond: Operand::Reg(Reg(1)),
            if_true: Operand::Reg(Reg(2)),
            if_false: Operand::Imm(0),
        };
        i.map_operands(|o| match o {
            Operand::Reg(Reg(n)) => Operand::Reg(Reg(n + 10)),
            imm => imm,
        });
        match i {
            Inst::Select {
                cond,
                if_true,
                if_false,
                ..
            } => {
                assert_eq!(cond, Operand::Reg(Reg(11)));
                assert_eq!(if_true, Operand::Reg(Reg(12)));
                assert_eq!(if_false, Operand::Imm(0));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn terminator_successors() {
        let t = Terminator::CondBr {
            cond: Operand::Imm(1),
            then_: BlockId(1),
            else_: BlockId(2),
        };
        assert_eq!(t.successors(), vec![BlockId(1), BlockId(2)]);
        assert_eq!(Terminator::Ret { value: None }.successors(), vec![]);
    }
}
