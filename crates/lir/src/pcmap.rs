//! Program-counter assignment and PC → IR resolution.
//!
//! Hardware-style profiles (LBR, PEBS) identify code by PC. The paper uses
//! AutoFDO debug info to map profiled PCs back to LLVM IR instructions; we
//! model the same indirection by laying every function out in a synthetic
//! address space — 4 bytes per instruction, terminators included — and
//! keeping a two-way map.
//!
//! Layout properties the profile analysis relies on:
//!
//! * all instructions of a block occupy a contiguous PC range,
//! * the block's terminator has the *highest* PC of the block, so
//!   `block_start ≤ load_pc < term_pc` identifies "load is inside the BBL
//!   ended by this branch" exactly as in §3.2 of the paper.

use std::fmt;

use crate::module::{BlockId, FuncId, InstId, InstRef, Module};

/// A synthetic program counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pc(pub u64);

impl fmt::Display for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// Base address of the text section.
pub const TEXT_BASE: u64 = 0x40_0000;
/// Bytes per instruction slot.
pub const INST_BYTES: u64 = 4;

/// What a PC resolves to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Location {
    /// A regular instruction.
    Inst(InstRef),
    /// The terminator of `(func, block)`.
    Term(FuncId, BlockId),
}

/// Two-way PC ↔ IR map for one module layout.
#[derive(Debug, Clone)]
pub struct AddressMap {
    /// `block_start[f][b]` = PC of the first instruction of block `b`.
    block_start: Vec<Vec<u64>>,
    /// `block_len[f][b]` = number of instructions, terminator excluded.
    block_len: Vec<Vec<u32>>,
    /// Flat sorted list of `(block_start_pc, func, block)` for resolution.
    index: Vec<(u64, u32, u32)>,
    /// End of the laid-out text (exclusive).
    text_end: u64,
}

impl AddressMap {
    /// Lays out `module` and builds the map.
    pub fn build(module: &Module) -> AddressMap {
        let mut pc = TEXT_BASE;
        let mut block_start = Vec::with_capacity(module.functions.len());
        let mut block_len = Vec::with_capacity(module.functions.len());
        let mut index = Vec::new();
        for (fi, func) in module.functions.iter().enumerate() {
            let mut starts = Vec::with_capacity(func.blocks.len());
            let mut lens = Vec::with_capacity(func.blocks.len());
            for (bi, block) in func.blocks.iter().enumerate() {
                starts.push(pc);
                lens.push(block.insts.len() as u32);
                index.push((pc, fi as u32, bi as u32));
                // One slot per instruction plus one for the terminator.
                pc += INST_BYTES * (block.insts.len() as u64 + 1);
            }
            block_start.push(starts);
            block_len.push(lens);
        }
        AddressMap {
            block_start,
            block_len,
            index,
            text_end: pc,
        }
    }

    /// PC of a regular instruction.
    ///
    /// # Panics
    ///
    /// Panics if the reference is out of range for the mapped layout.
    pub fn pc_of(&self, r: InstRef) -> Pc {
        let start = self.block_start[r.func.0 as usize][r.block.0 as usize];
        debug_assert!(r.inst.0 < self.block_len[r.func.0 as usize][r.block.0 as usize]);
        Pc(start + INST_BYTES * r.inst.0 as u64)
    }

    /// PC of the terminator (branch) of a block.
    pub fn term_pc(&self, func: FuncId, block: BlockId) -> Pc {
        let start = self.block_start[func.0 as usize][block.0 as usize];
        let len = self.block_len[func.0 as usize][block.0 as usize];
        Pc(start + INST_BYTES * len as u64)
    }

    /// PC of the first instruction slot of a block (the branch target).
    pub fn block_start_pc(&self, func: FuncId, block: BlockId) -> Pc {
        Pc(self.block_start[func.0 as usize][block.0 as usize])
    }

    /// Resolves a PC back to its IR location.
    pub fn resolve(&self, pc: Pc) -> Option<Location> {
        if pc.0 < TEXT_BASE || pc.0 >= self.text_end || !pc.0.is_multiple_of(INST_BYTES) {
            return None;
        }
        let i = match self.index.binary_search_by_key(&pc.0, |e| e.0) {
            Ok(i) => i,
            Err(0) => return None,
            Err(i) => i - 1,
        };
        let (start, f, b) = self.index[i];
        let slot = ((pc.0 - start) / INST_BYTES) as u32;
        let len = self.block_len[f as usize][b as usize];
        if slot < len {
            Some(Location::Inst(InstRef {
                func: FuncId(f),
                block: BlockId(b),
                inst: InstId(slot),
            }))
        } else if slot == len {
            Some(Location::Term(FuncId(f), BlockId(b)))
        } else {
            None
        }
    }

    /// `(first_inst_pc, term_pc)` of a block — the BBL's PC span.
    pub fn block_range(&self, func: FuncId, block: BlockId) -> (Pc, Pc) {
        (self.block_start_pc(func, block), self.term_pc(func, block))
    }

    /// True if `pc` lies strictly inside the BBL ended by `term` — i.e.
    /// `block_start ≤ pc < term_pc`, the containment test from §3.2.
    pub fn pc_in_bbl(&self, pc: Pc, func: FuncId, block: BlockId) -> bool {
        let (lo, hi) = self.block_range(func, block);
        lo <= pc && pc < hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Inst, Operand, Terminator};
    use crate::module::Module;

    fn two_block_module() -> Module {
        let mut m = Module::new("t");
        let f = m.add_function("f", &[]);
        let func = m.function_mut(f);
        let r0 = func.fresh_reg();
        func.block_mut(BlockId(0)).insts.push(Inst::Bin {
            dst: r0,
            op: crate::inst::BinOp::Add,
            a: Operand::Imm(1),
            b: Operand::Imm(2),
        });
        let bb1 = func.add_block("next");
        func.block_mut(BlockId(0)).term = Terminator::Br { target: bb1 };
        func.block_mut(bb1).insts.push(Inst::Prefetch {
            addr: Operand::Imm(0),
        });
        func.block_mut(bb1).term = Terminator::Ret { value: None };
        m
    }

    #[test]
    fn layout_is_contiguous() {
        let m = two_block_module();
        let map = m.assign_pcs();
        let f = FuncId(0);
        let (lo0, hi0) = map.block_range(f, BlockId(0));
        let (lo1, _) = map.block_range(f, BlockId(1));
        assert_eq!(lo0.0, TEXT_BASE);
        // bb0 holds 1 inst + terminator = 2 slots.
        assert_eq!(hi0.0, TEXT_BASE + INST_BYTES);
        assert_eq!(lo1.0, TEXT_BASE + 2 * INST_BYTES);
    }

    #[test]
    fn resolve_round_trips() {
        let m = two_block_module();
        let map = m.assign_pcs();
        let r = InstRef {
            func: FuncId(0),
            block: BlockId(1),
            inst: InstId(0),
        };
        let pc = map.pc_of(r);
        assert_eq!(map.resolve(pc), Some(Location::Inst(r)));
        let tpc = map.term_pc(FuncId(0), BlockId(0));
        assert_eq!(
            map.resolve(tpc),
            Some(Location::Term(FuncId(0), BlockId(0)))
        );
    }

    #[test]
    fn resolve_rejects_out_of_range() {
        let m = two_block_module();
        let map = m.assign_pcs();
        assert_eq!(map.resolve(Pc(0)), None);
        assert_eq!(map.resolve(Pc(TEXT_BASE + 1)), None); // unaligned
        assert_eq!(map.resolve(Pc(1 << 60)), None);
    }

    #[test]
    fn bbl_containment() {
        let m = two_block_module();
        let map = m.assign_pcs();
        let f = FuncId(0);
        let pc = map.pc_of(InstRef {
            func: f,
            block: BlockId(0),
            inst: InstId(0),
        });
        assert!(map.pc_in_bbl(pc, f, BlockId(0)));
        assert!(!map.pc_in_bbl(map.term_pc(f, BlockId(0)), f, BlockId(0)));
        assert!(!map.pc_in_bbl(pc, f, BlockId(1)));
    }
}
