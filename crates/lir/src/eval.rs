//! Reference evaluation semantics of the IR.
//!
//! The pure-operation helpers ([`eval_bin`], [`eval_un`], [`sign_extend`])
//! are shared by the timing simulator (`apt-cpu`) and the constant-folding
//! pass (`apt-passes`), so both agree on every arithmetic corner case.
//!
//! [`run_function`] builds on them: a complete *architectural* interpreter
//! with no timing, caches or profiling. It is the differential-testing
//! oracle — `apt-cpu::Machine` must produce exactly the same return values
//! and memory contents, with or without injected prefetches.

use crate::inst::{BinOp, FCmpPred, ICmpPred, Inst, Terminator, UnOp};
use crate::module::{BlockId, Module, Reg};
use crate::Operand;

#[inline]
pub fn sign_extend(v: u64, bytes: u64) -> u64 {
    let bits = bytes * 8;
    if bits == 64 {
        v
    } else {
        let shift = 64 - bits;
        (((v << shift) as i64) >> shift) as u64
    }
}

#[inline]
pub fn bin_cost(op: BinOp) -> u64 {
    match op {
        // Throughput-calibrated: modern cores retire one IMUL per cycle.
        BinOp::Mul => 1,
        BinOp::DivU | BinOp::DivS | BinOp::RemU => 20,
        BinOp::FAdd | BinOp::FSub | BinOp::FMul => 4,
        BinOp::FDiv => 15,
        _ => 1,
    }
}

#[inline]
pub fn eval_bin(op: BinOp, a: u64, b: u64) -> u64 {
    match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::DivU => a.checked_div(b).unwrap_or(0),
        BinOp::DivS => {
            if b == 0 {
                0
            } else {
                (a as i64).wrapping_div(b as i64) as u64
            }
        }
        BinOp::RemU => a.checked_rem(b).unwrap_or(a),
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl(b as u32 & 63),
        BinOp::ShrL => a.wrapping_shr(b as u32 & 63),
        BinOp::ShrA => ((a as i64).wrapping_shr(b as u32 & 63)) as u64,
        BinOp::ICmp(p) => {
            let (sa, sb) = (a as i64, b as i64);
            let r = match p {
                ICmpPred::Eq => a == b,
                ICmpPred::Ne => a != b,
                ICmpPred::Ltu => a < b,
                ICmpPred::Lts => sa < sb,
                ICmpPred::Leu => a <= b,
                ICmpPred::Les => sa <= sb,
                ICmpPred::Gtu => a > b,
                ICmpPred::Gts => sa > sb,
                ICmpPred::Geu => a >= b,
                ICmpPred::Ges => sa >= sb,
            };
            r as u64
        }
        BinOp::FAdd => (f64::from_bits(a) + f64::from_bits(b)).to_bits(),
        BinOp::FSub => (f64::from_bits(a) - f64::from_bits(b)).to_bits(),
        BinOp::FMul => (f64::from_bits(a) * f64::from_bits(b)).to_bits(),
        BinOp::FDiv => (f64::from_bits(a) / f64::from_bits(b)).to_bits(),
        BinOp::FCmp(p) => {
            let (fa, fb) = (f64::from_bits(a), f64::from_bits(b));
            let r = match p {
                FCmpPred::Eq => fa == fb,
                FCmpPred::Ne => fa != fb,
                FCmpPred::Lt => fa < fb,
                FCmpPred::Le => fa <= fb,
                FCmpPred::Gt => fa > fb,
                FCmpPred::Ge => fa >= fb,
            };
            r as u64
        }
        BinOp::MinU => a.min(b),
        BinOp::MinS => (a as i64).min(b as i64) as u64,
        BinOp::MaxS => (a as i64).max(b as i64) as u64,
    }
}

#[inline]
pub fn eval_un(op: UnOp, a: u64) -> u64 {
    match op {
        UnOp::Sext32 => a as u32 as i32 as i64 as u64,
        UnOp::Zext32 => a & 0xffff_ffff,
        UnOp::IToF => ((a as i64) as f64).to_bits(),
        UnOp::FToI => (f64::from_bits(a) as i64) as u64,
        UnOp::Copy => a,
    }
}

/// Byte-addressed data memory as the reference interpreter sees it.
///
/// `apt-cpu::MemImage` implements this; tests may substitute their own
/// (e.g. a sparse map) as long as reads and writes are little-endian with
/// the same bounds behaviour.
pub trait Memory {
    /// Reads `width` (1/2/4/8) bytes little-endian, zero-extended, or
    /// `None` on an out-of-bounds access.
    fn read(&self, addr: u64, width: u64) -> Option<u64>;
    /// Writes the low `width` bytes of `value`; `None` if out of bounds.
    fn write(&mut self, addr: u64, value: u64, width: u64) -> Option<()>;
}

/// Architectural interpretation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// No function with the given name exists in the module.
    UnknownFunction(String),
    /// Wrong number of call arguments.
    ArityMismatch {
        func: String,
        expected: usize,
        got: usize,
    },
    /// An out-of-bounds access by a non-speculative load or a store.
    Fault { addr: u64, width: u64 },
    /// The step limit was exceeded (runaway-loop guard).
    StepLimit,
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            EvalError::ArityMismatch {
                func,
                expected,
                got,
            } => write!(f, "`{func}` expects {expected} args, got {got}"),
            EvalError::Fault { addr, width } => {
                write!(f, "memory fault at {addr:#x} (width {width})")
            }
            EvalError::StepLimit => write!(f, "step limit exceeded"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Runs `func` against `mem` with the module's architectural semantics:
/// φ-nodes resolve as parallel copies on block entry, speculative
/// (prefetch-slice) loads yield 0 instead of faulting, and `Prefetch` is a
/// no-op. Retires at most `step_limit` instructions (terminators included).
///
/// This is deliberately the same contract as `apt-cpu::Machine::call`
/// minus timing and profiling, so the two can be compared bit-for-bit.
pub fn run_function(
    module: &Module,
    func: &str,
    args: &[u64],
    mem: &mut impl Memory,
    step_limit: u64,
) -> Result<Option<u64>, EvalError> {
    let (_, f) = module
        .function_by_name(func)
        .ok_or_else(|| EvalError::UnknownFunction(func.to_string()))?;
    if f.arity() != args.len() {
        return Err(EvalError::ArityMismatch {
            func: func.to_string(),
            expected: f.arity(),
            got: args.len(),
        });
    }

    apt_selfprof::prof_scope!("lir/eval");
    let mut regs = vec![0u64; f.next_reg as usize];
    regs[..args.len()].copy_from_slice(args);
    let mut steps = 0u64;
    let mut cur: BlockId = f.entry;
    let mut prev: Option<BlockId> = None;
    let mut phi_tmp: Vec<(u32, u64)> = Vec::new();

    let val = |regs: &[u64], op: Operand| match op {
        Operand::Reg(Reg(r)) => regs[r as usize],
        Operand::Imm(v) => v,
    };

    loop {
        if steps > step_limit {
            return Err(EvalError::StepLimit);
        }
        apt_selfprof::prof_scope!("lir/eval/dispatch");
        let block = f.block(cur);

        // φ prefix: parallel copies selected by the edge we arrived on.
        let phi_count = block.phi_count();
        if phi_count > 0 {
            let from = prev.expect("phi in entry block rejected by verifier");
            phi_tmp.clear();
            for inst in &block.insts[..phi_count] {
                let Inst::Phi { dst, incomings } = inst else {
                    unreachable!("phi prefix")
                };
                let (_, op) = incomings
                    .iter()
                    .find(|(p, _)| *p == from)
                    .expect("verifier guarantees an incoming per predecessor");
                phi_tmp.push((dst.0, val(&regs, *op)));
            }
            for &(d, v) in &phi_tmp {
                regs[d as usize] = v;
            }
        }

        for inst in block.insts.iter().skip(phi_count) {
            steps += 1;
            match inst {
                Inst::Phi { .. } => unreachable!("phi prefix"),
                Inst::Bin { dst, op, a, b } => {
                    regs[dst.0 as usize] = eval_bin(*op, val(&regs, *a), val(&regs, *b));
                }
                Inst::Un { dst, op, a } => {
                    regs[dst.0 as usize] = eval_un(*op, val(&regs, *a));
                }
                Inst::Select {
                    dst,
                    cond,
                    if_true,
                    if_false,
                } => {
                    regs[dst.0 as usize] = if val(&regs, *cond) != 0 {
                        val(&regs, *if_true)
                    } else {
                        val(&regs, *if_false)
                    };
                }
                Inst::Load {
                    dst,
                    addr,
                    width,
                    sext,
                    spec,
                } => {
                    let a = val(&regs, *addr);
                    let w = width.bytes();
                    regs[dst.0 as usize] = match mem.read(a, w) {
                        Some(raw) => {
                            if *sext {
                                sign_extend(raw, w)
                            } else {
                                raw
                            }
                        }
                        // Speculative (prefetch-slice) loads never fault.
                        None if *spec => 0,
                        None => return Err(EvalError::Fault { addr: a, width: w }),
                    };
                }
                Inst::Store { addr, value, width } => {
                    let a = val(&regs, *addr);
                    let w = width.bytes();
                    mem.write(a, val(&regs, *value), w)
                        .ok_or(EvalError::Fault { addr: a, width: w })?;
                }
                Inst::Prefetch { .. } => {} // Architecturally a no-op.
            }
        }

        steps += 1;
        match &block.term {
            Terminator::Br { target } => {
                prev = Some(cur);
                cur = *target;
            }
            Terminator::CondBr { cond, then_, else_ } => {
                prev = Some(cur);
                cur = if val(&regs, *cond) != 0 {
                    *then_
                } else {
                    *else_
                };
            }
            Terminator::Ret { value } => {
                return Ok(value.map(|v| val(&regs, v)));
            }
        }
    }
}

#[cfg(test)]
mod interp_tests {
    use super::*;
    use crate::{FunctionBuilder, Width};
    use std::collections::HashMap;

    /// A sparse byte memory for interpreter unit tests.
    #[derive(Default)]
    struct MapMem {
        bytes: HashMap<u64, u8>,
        limit: u64,
    }

    impl Memory for MapMem {
        fn read(&self, addr: u64, width: u64) -> Option<u64> {
            if addr + width > self.limit {
                return None;
            }
            let mut v = 0u64;
            for i in 0..width {
                v |= (*self.bytes.get(&(addr + i)).unwrap_or(&0) as u64) << (8 * i);
            }
            Some(v)
        }

        fn write(&mut self, addr: u64, value: u64, width: u64) -> Option<()> {
            if addr + width > self.limit {
                return None;
            }
            for i in 0..width {
                self.bytes.insert(addr + i, (value >> (8 * i)) as u8);
            }
            Some(())
        }
    }

    fn sum_kernel() -> Module {
        let mut m = Module::new("t");
        let f = m.add_function("kernel", &["b", "n"]);
        {
            let mut bd = FunctionBuilder::new(m.function_mut(f));
            let (b, n) = (bd.param(0), bd.param(1));
            let s = bd.loop_up_reduce(0u64, n, 1, 0u64, |bd, iv, acc| {
                let v = bd.load_elem(b, iv, Width::W4, false);
                bd.add(acc, v).into()
            });
            bd.ret(Some(s));
        }
        m
    }

    #[test]
    fn interprets_a_reduction_loop() {
        let m = sum_kernel();
        let mut mem = MapMem {
            limit: 64,
            ..Default::default()
        };
        for i in 0..8u64 {
            mem.write(i * 4, i + 1, 4).unwrap();
        }
        let r = run_function(&m, "kernel", &[0, 8], &mut mem, 1 << 20).unwrap();
        assert_eq!(r, Some(36)); // 1 + 2 + … + 8.
    }

    #[test]
    fn rejects_unknown_function_and_bad_arity() {
        let m = sum_kernel();
        let mut mem = MapMem::default();
        assert!(matches!(
            run_function(&m, "nope", &[], &mut mem, 100),
            Err(EvalError::UnknownFunction(_))
        ));
        assert!(matches!(
            run_function(&m, "kernel", &[1], &mut mem, 100),
            Err(EvalError::ArityMismatch {
                expected: 2,
                got: 1,
                ..
            })
        ));
    }

    #[test]
    fn nonspec_load_faults_spec_load_yields_zero() {
        let mut m = Module::new("t");
        let f = m.add_function("k", &["a"]);
        {
            let mut bd = FunctionBuilder::new(m.function_mut(f));
            let a = bd.param(0);
            let v = bd.load(a, Width::W8, false);
            bd.ret(Some(v));
        }
        let mut mem = MapMem {
            limit: 8,
            ..Default::default()
        };
        mem.write(0, 7, 8).unwrap();
        assert_eq!(run_function(&m, "k", &[0], &mut mem, 100), Ok(Some(7)));
        assert_eq!(
            run_function(&m, "k", &[64], &mut mem, 100),
            Err(EvalError::Fault { addr: 64, width: 8 })
        );

        // The same load marked speculative returns 0 instead of faulting.
        let mut m2 = Module::new("t");
        let f2 = m2.add_function("k", &["a"]);
        {
            let mut bd = FunctionBuilder::new(m2.function_mut(f2));
            let a = bd.param(0);
            let v = bd.func().fresh_reg();
            let cur = bd.current_block();
            bd.func().block_mut(cur).insts.push(Inst::Load {
                dst: v,
                addr: Operand::Reg(a),
                width: Width::W8,
                sext: false,
                spec: true,
            });
            bd.ret(Some(v));
        }
        assert_eq!(run_function(&m2, "k", &[64], &mut mem, 100), Ok(Some(0)));
    }

    #[test]
    fn step_limit_stops_infinite_loops() {
        let mut m = Module::new("t");
        let f = m.add_function("spin", &[]);
        {
            let mut bd = FunctionBuilder::new(m.function_mut(f));
            let b = bd.current_block();
            bd.br(b);
        }
        let mut mem = MapMem::default();
        assert_eq!(
            run_function(&m, "spin", &[], &mut mem, 1000),
            Err(EvalError::StepLimit)
        );
    }
}
