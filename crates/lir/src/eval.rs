//! Reference evaluation semantics of the IR.
//!
//! The pure-operation helpers ([`eval_bin`], [`eval_un`], [`sign_extend`])
//! are shared by the timing simulator (`apt-cpu`) and the constant-folding
//! pass (`apt-passes`), so both agree on every arithmetic corner case.
//!
//! [`run_function`] builds on them: a complete *architectural* interpreter
//! with no timing, caches or profiling. It is the differential-testing
//! oracle — `apt-cpu::Machine` must produce exactly the same return values
//! and memory contents, with or without injected prefetches.
//!
//! Since the sampled-simulation work the interpreter is no longer a tree
//! walker: functions are predecoded once into a flat threaded op array
//! ([`DecodedFunc`]) whose φ-nodes are compiled into parallel-copy lists
//! attached to each CFG *edge*, and execution is a resumable [`Interp`]
//! that can pause at any block boundary ([`Interp::run`] with fuel) and be
//! checkpointed/restored ([`Interp::checkpoint`]). `apt-sample` uses this
//! to fast-forward functionally between detailed measurement windows;
//! [`run_function`] is now a thin wrapper with its original contract.

use crate::inst::{BinOp, FCmpPred, ICmpPred, Inst, Terminator, UnOp};
use crate::module::{BlockId, FuncId, Function, Module, Reg};
use crate::Operand;

#[inline]
pub fn sign_extend(v: u64, bytes: u64) -> u64 {
    let bits = bytes * 8;
    if bits == 64 {
        v
    } else {
        let shift = 64 - bits;
        (((v << shift) as i64) >> shift) as u64
    }
}

#[inline]
pub fn bin_cost(op: BinOp) -> u64 {
    match op {
        // Throughput-calibrated: modern cores retire one IMUL per cycle.
        BinOp::Mul => 1,
        BinOp::DivU | BinOp::DivS | BinOp::RemU => 20,
        BinOp::FAdd | BinOp::FSub | BinOp::FMul => 4,
        BinOp::FDiv => 15,
        _ => 1,
    }
}

#[inline]
pub fn eval_bin(op: BinOp, a: u64, b: u64) -> u64 {
    match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::DivU => a.checked_div(b).unwrap_or(0),
        BinOp::DivS => {
            if b == 0 {
                0
            } else {
                (a as i64).wrapping_div(b as i64) as u64
            }
        }
        BinOp::RemU => a.checked_rem(b).unwrap_or(a),
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl(b as u32 & 63),
        BinOp::ShrL => a.wrapping_shr(b as u32 & 63),
        BinOp::ShrA => ((a as i64).wrapping_shr(b as u32 & 63)) as u64,
        BinOp::ICmp(p) => {
            let (sa, sb) = (a as i64, b as i64);
            let r = match p {
                ICmpPred::Eq => a == b,
                ICmpPred::Ne => a != b,
                ICmpPred::Ltu => a < b,
                ICmpPred::Lts => sa < sb,
                ICmpPred::Leu => a <= b,
                ICmpPred::Les => sa <= sb,
                ICmpPred::Gtu => a > b,
                ICmpPred::Gts => sa > sb,
                ICmpPred::Geu => a >= b,
                ICmpPred::Ges => sa >= sb,
            };
            r as u64
        }
        BinOp::FAdd => (f64::from_bits(a) + f64::from_bits(b)).to_bits(),
        BinOp::FSub => (f64::from_bits(a) - f64::from_bits(b)).to_bits(),
        BinOp::FMul => (f64::from_bits(a) * f64::from_bits(b)).to_bits(),
        BinOp::FDiv => (f64::from_bits(a) / f64::from_bits(b)).to_bits(),
        BinOp::FCmp(p) => {
            let (fa, fb) = (f64::from_bits(a), f64::from_bits(b));
            let r = match p {
                FCmpPred::Eq => fa == fb,
                FCmpPred::Ne => fa != fb,
                FCmpPred::Lt => fa < fb,
                FCmpPred::Le => fa <= fb,
                FCmpPred::Gt => fa > fb,
                FCmpPred::Ge => fa >= fb,
            };
            r as u64
        }
        BinOp::MinU => a.min(b),
        BinOp::MinS => (a as i64).min(b as i64) as u64,
        BinOp::MaxS => (a as i64).max(b as i64) as u64,
    }
}

#[inline]
pub fn eval_un(op: UnOp, a: u64) -> u64 {
    match op {
        UnOp::Sext32 => a as u32 as i32 as i64 as u64,
        UnOp::Zext32 => a & 0xffff_ffff,
        UnOp::IToF => ((a as i64) as f64).to_bits(),
        UnOp::FToI => (f64::from_bits(a) as i64) as u64,
        UnOp::Copy => a,
    }
}

/// Byte-addressed data memory as the reference interpreter sees it.
///
/// `apt-cpu::MemImage` implements this; tests may substitute their own
/// (e.g. a sparse map) as long as reads and writes are little-endian with
/// the same bounds behaviour.
pub trait Memory {
    /// Reads `width` (1/2/4/8) bytes little-endian, zero-extended, or
    /// `None` on an out-of-bounds access. Takes `&mut self` so warming
    /// memories can promote cache lines as a side effect of reads;
    /// architectural implementations simply don't mutate.
    fn read(&mut self, addr: u64, width: u64) -> Option<u64>;
    /// Writes the low `width` bytes of `value`; `None` if out of bounds.
    fn write(&mut self, addr: u64, value: u64, width: u64) -> Option<()>;
    /// Observes a `Prefetch` instruction. Architecturally a no-op (the
    /// default), but warming memories (`apt-sample`'s fast-forward path)
    /// override it to keep cache state hot between measurement windows.
    fn prefetch(&mut self, _addr: u64) {}
}

/// Architectural interpretation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// No function with the given name exists in the module.
    UnknownFunction(String),
    /// Wrong number of call arguments.
    ArityMismatch {
        func: String,
        expected: usize,
        got: usize,
    },
    /// An out-of-bounds access by a non-speculative load or a store.
    Fault { addr: u64, width: u64 },
    /// The step limit was exceeded (runaway-loop guard).
    StepLimit,
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            EvalError::ArityMismatch {
                func,
                expected,
                got,
            } => write!(f, "`{func}` expects {expected} args, got {got}"),
            EvalError::Fault { addr, width } => {
                write!(f, "memory fault at {addr:#x} (width {width})")
            }
            EvalError::StepLimit => write!(f, "step limit exceeded"),
        }
    }
}

impl std::error::Error for EvalError {}

/// A CFG edge in decoded form: where it lands plus the parallel copies
/// that implement the target block's φ-nodes for this predecessor.
#[derive(Debug, Clone)]
struct Edge {
    /// Target block (for checkpointing — the interpreter itself jumps by
    /// op index).
    block: u32,
    /// First op index of the target block.
    ip: u32,
    /// φ parallel copies `(dst reg, source reg)`, sources all read before
    /// any destination is written.
    copies: Box<[(u32, u32)]>,
}

/// One predecoded op. Mirrors [`Inst`]/[`Terminator`] minus φ-nodes
/// (compiled into [`Edge`] copies) with `Width` pre-lowered to bytes,
/// branch targets pre-resolved to op indices, and *every operand
/// pre-resolved to a register index* — immediates live in a per-function
/// constant pool appended to the register file, so the hot loop reads
/// any operand with a single unconditioned indexed load.
///
/// The decoder additionally *fuses* adjacent ops into superinstructions
/// (`CmpBr`, `AddLoad`, `ShlAdd*`) to cut dispatch count — the dominant
/// interpreter cost. Fusion is purely mechanical: a fused op executes its
/// constituents verbatim, in order, including every intermediate register
/// write, and retires the same number of instructions, so architectural
/// state and step counts are bit-identical to the unfused sequence.
#[derive(Debug, Clone)]
enum Op {
    Bin {
        dst: u32,
        op: BinOp,
        a: u32,
        b: u32,
    },
    /// Specialized `Bin { op: Add }` — the most common op (induction
    /// variables, accumulators, address math) skips the inner `BinOp`
    /// dispatch.
    Add {
        dst: u32,
        a: u32,
        b: u32,
    },
    Un {
        dst: u32,
        op: UnOp,
        a: u32,
    },
    Select {
        dst: u32,
        cond: u32,
        if_true: u32,
        if_false: u32,
    },
    Load {
        dst: u32,
        addr: u32,
        width: u8,
        sext: bool,
        spec: bool,
    },
    Store {
        addr: u32,
        value: u32,
        width: u8,
    },
    Prefetch {
        addr: u32,
    },
    Jump {
        edge: u32,
    },
    Branch {
        cond: u32,
        then_edge: u32,
        else_edge: u32,
    },
    Ret {
        value: Option<u32>,
    },
    /// Fused `ICmp` + `CondBr` on its result (retires 2). The compare
    /// result is still written to `dst` for any later (φ or cross-block)
    /// use.
    CmpBr {
        dst: u32,
        pred: ICmpPred,
        a: u32,
        b: u32,
        then_edge: u32,
        else_edge: u32,
    },
    /// Fused `Add` + `ICmp` + `CondBr` (retires 3): the loop latch every
    /// counted loop ends with — bump the induction variable, compare,
    /// branch back.
    AddCmpBr {
        adst: u32,
        aa: u32,
        ab: u32,
        dst: u32,
        pred: ICmpPred,
        a: u32,
        b: u32,
        then_edge: u32,
        else_edge: u32,
    },
    /// Fused `Add` + `Load` (retires 2): the `load_elem` tail for byte
    /// arrays and pointer-offset loads.
    AddLoad {
        adst: u32,
        aa: u32,
        ab: u32,
        dst: u32,
        addr: u32,
        width: u8,
        sext: bool,
        spec: bool,
    },
    /// Fused `Shl` + `Add` + `Load` (retires 3): the scaled-index
    /// addressing sequence `FunctionBuilder::load_elem` emits for every
    /// array access.
    ShlAddLoad {
        sdst: u32,
        sa: u32,
        sb: u32,
        adst: u32,
        aa: u32,
        ab: u32,
        dst: u32,
        addr: u32,
        width: u8,
        sext: bool,
        spec: bool,
    },
    /// Fused `Shl` + `Add` + `Store` (retires 3).
    ShlAddStore {
        sdst: u32,
        sa: u32,
        sb: u32,
        adst: u32,
        aa: u32,
        ab: u32,
        addr: u32,
        value: u32,
        width: u8,
    },
    /// Fused `Shl` + `Add` + `Prefetch` (retires 3): the address slice of
    /// an injected software prefetch.
    ShlAddPrefetch {
        sdst: u32,
        sa: u32,
        sb: u32,
        adst: u32,
        aa: u32,
        ab: u32,
        addr: u32,
    },
}

/// Appends `op` to a block body, fusing it with the preceding one or two
/// ops when they form a known addressing pattern. Fusion never inspects
/// operand relationships — it only requires the ops to be consecutive in
/// one block, because the fused execution replays them verbatim.
fn push_fused(body: &mut Vec<Op>, op: Op) {
    let n = body.len();
    match op {
        Op::Load {
            dst,
            addr,
            width,
            sext,
            spec,
        } => {
            if n >= 2 {
                if let (
                    &Op::Bin {
                        dst: sdst,
                        op: BinOp::Shl,
                        a: sa,
                        b: sb,
                    },
                    &Op::Add {
                        dst: adst,
                        a: aa,
                        b: ab,
                    },
                ) = (&body[n - 2], &body[n - 1])
                {
                    body.truncate(n - 2);
                    body.push(Op::ShlAddLoad {
                        sdst,
                        sa,
                        sb,
                        adst,
                        aa,
                        ab,
                        dst,
                        addr,
                        width,
                        sext,
                        spec,
                    });
                    return;
                }
            }
            if let Some(&Op::Add {
                dst: adst,
                a: aa,
                b: ab,
            }) = body.last()
            {
                body.truncate(n - 1);
                body.push(Op::AddLoad {
                    adst,
                    aa,
                    ab,
                    dst,
                    addr,
                    width,
                    sext,
                    spec,
                });
                return;
            }
            body.push(op);
        }
        Op::Store { addr, value, width } => {
            if n >= 2 {
                if let (
                    &Op::Bin {
                        dst: sdst,
                        op: BinOp::Shl,
                        a: sa,
                        b: sb,
                    },
                    &Op::Add {
                        dst: adst,
                        a: aa,
                        b: ab,
                    },
                ) = (&body[n - 2], &body[n - 1])
                {
                    body.truncate(n - 2);
                    body.push(Op::ShlAddStore {
                        sdst,
                        sa,
                        sb,
                        adst,
                        aa,
                        ab,
                        addr,
                        value,
                        width,
                    });
                    return;
                }
            }
            body.push(op);
        }
        Op::Prefetch { addr } => {
            if n >= 2 {
                if let (
                    &Op::Bin {
                        dst: sdst,
                        op: BinOp::Shl,
                        a: sa,
                        b: sb,
                    },
                    &Op::Add {
                        dst: adst,
                        a: aa,
                        b: ab,
                    },
                ) = (&body[n - 2], &body[n - 1])
                {
                    body.truncate(n - 2);
                    body.push(Op::ShlAddPrefetch {
                        sdst,
                        sa,
                        sb,
                        adst,
                        aa,
                        ab,
                        addr,
                    });
                    return;
                }
            }
            body.push(op);
        }
        op => body.push(op),
    }
}

/// A function predecoded for threaded dispatch: a flat op array in block
/// order, a side table of φ-resolved edges, the block→op-index map used
/// to pause/resume at block boundaries, and the deduplicated constant
/// pool operand indices ≥ `next_reg` refer into.
#[derive(Debug, Clone)]
pub struct DecodedFunc {
    name: String,
    arity: usize,
    /// Architectural register count — the checkpoint/hand-off boundary.
    /// The live register file is `next_reg + consts.len()` wide.
    next_reg: u32,
    consts: Vec<u64>,
    ops: Vec<Op>,
    edges: Vec<Edge>,
    block_ip: Vec<u32>,
    entry: u32,
}

/// Strength reduction for decode: `x · 2ᵏ ≡ x << k` under wrapping
/// arithmetic, so a multiply by a power-of-two immediate decodes as a
/// shift. This is what lets the `ShlAdd*` fusions fire on builder output:
/// `FunctionBuilder::elem_addr` emits `index * width` for every array
/// access, and widths are always powers of two.
fn shl_of_mul(a: Operand, b: Operand) -> Option<(Operand, u64)> {
    let (x, imm) = match (a, b) {
        (x, Operand::Imm(v)) => (x, v),
        (Operand::Imm(v), x) => (x, v),
        _ => return None,
    };
    imm.is_power_of_two()
        .then(|| (x, imm.trailing_zeros() as u64))
}

impl DecodedFunc {
    /// Decodes one function. Assumes the module verifies (φ prefixes only,
    /// an incoming value per predecessor — the same invariants the tree
    /// walker relied on).
    pub fn decode(f: &Function) -> DecodedFunc {
        // Immediates intern into a constant pool living above the
        // architectural registers; `reg_of` turns any operand into a
        // plain register index.
        let mut consts: Vec<u64> = Vec::new();
        let arch = f.next_reg;
        let mut reg_of = |op: Operand| -> u32 {
            match op {
                Operand::Reg(Reg(r)) => r,
                Operand::Imm(v) => {
                    let slot = consts.iter().position(|&c| c == v).unwrap_or_else(|| {
                        consts.push(v);
                        consts.len() - 1
                    });
                    arch + slot as u32
                }
            }
        };

        // Pass 1: decode and fuse every block body (φs emit no ops), and
        // decide whether its compare fuses into the terminator. Fusion
        // changes op counts, so block start indices can only be laid out
        // after all bodies are known.
        let mut bodies: Vec<Vec<Op>> = Vec::with_capacity(f.blocks.len());
        let mut fuse_term: Vec<u8> = Vec::with_capacity(f.blocks.len());
        for b in &f.blocks {
            let mut body: Vec<Op> = Vec::with_capacity(b.insts.len() - b.phi_count() + 1);
            for inst in b.insts.iter().skip(b.phi_count()) {
                let op = match inst {
                    Inst::Phi { .. } => unreachable!("phi prefix"),
                    Inst::Bin {
                        dst,
                        op: BinOp::Add,
                        a,
                        b,
                    } => Op::Add {
                        dst: dst.0,
                        a: reg_of(*a),
                        b: reg_of(*b),
                    },
                    Inst::Bin {
                        dst,
                        op: BinOp::Mul,
                        a,
                        b,
                    } if shl_of_mul(*a, *b).is_some() => {
                        let (x, k) = shl_of_mul(*a, *b).expect("guard checked");
                        Op::Bin {
                            dst: dst.0,
                            op: BinOp::Shl,
                            a: reg_of(x),
                            b: reg_of(Operand::Imm(k)),
                        }
                    }
                    Inst::Bin { dst, op, a, b } => Op::Bin {
                        dst: dst.0,
                        op: *op,
                        a: reg_of(*a),
                        b: reg_of(*b),
                    },
                    Inst::Un { dst, op, a } => Op::Un {
                        dst: dst.0,
                        op: *op,
                        a: reg_of(*a),
                    },
                    Inst::Select {
                        dst,
                        cond,
                        if_true,
                        if_false,
                    } => Op::Select {
                        dst: dst.0,
                        cond: reg_of(*cond),
                        if_true: reg_of(*if_true),
                        if_false: reg_of(*if_false),
                    },
                    Inst::Load {
                        dst,
                        addr,
                        width,
                        sext,
                        spec,
                    } => Op::Load {
                        dst: dst.0,
                        addr: reg_of(*addr),
                        width: width.bytes() as u8,
                        sext: *sext,
                        spec: *spec,
                    },
                    Inst::Store { addr, value, width } => Op::Store {
                        addr: reg_of(*addr),
                        value: reg_of(*value),
                        width: width.bytes() as u8,
                    },
                    Inst::Prefetch { addr } => Op::Prefetch {
                        addr: reg_of(*addr),
                    },
                };
                push_fused(&mut body, op);
            }
            // How many trailing body ops the terminator absorbs: the
            // compare feeding a conditional branch, and — the loop-latch
            // pattern — the induction-variable bump before it.
            let cmp_feeds_term = matches!(
                (body.last(), &b.term),
                (
                    Some(Op::Bin {
                        op: BinOp::ICmp(_),
                        dst,
                        ..
                    }),
                    Terminator::CondBr { cond, .. },
                ) if *cond == Operand::Reg(Reg(*dst))
            );
            let ft = if !cmp_feeds_term {
                0u8
            } else if body.len() >= 2 && matches!(body[body.len() - 2], Op::Add { .. }) {
                2
            } else {
                1
            };
            bodies.push(body);
            fuse_term.push(ft);
        }

        // Block start indices from the fused lengths (+1 terminator op,
        // which absorbs the body's trailing ops when fused).
        let mut block_ip = Vec::with_capacity(f.blocks.len());
        let mut at = 0u32;
        for (body, &ft) in bodies.iter().zip(&fuse_term) {
            block_ip.push(at);
            at += body.len() as u32 + 1 - ft as u32;
        }

        // Pass 2: emit ops and φ-resolved edges.
        let mut ops = Vec::with_capacity(at as usize);
        let mut edges = Vec::new();
        let mk_edge = |edges: &mut Vec<Edge>,
                       reg_of: &mut dyn FnMut(Operand) -> u32,
                       from: BlockId,
                       target: BlockId|
         -> u32 {
            let tb = f.block(target);
            let copies: Vec<(u32, u32)> = tb.insts[..tb.phi_count()]
                .iter()
                .map(|inst| {
                    let Inst::Phi { dst, incomings } = inst else {
                        unreachable!("phi prefix")
                    };
                    let (_, op) = incomings
                        .iter()
                        .find(|(p, _)| *p == from)
                        .expect("verifier guarantees an incoming per predecessor");
                    (dst.0, reg_of(*op))
                })
                .collect();
            edges.push(Edge {
                block: target.0,
                ip: block_ip[target.0 as usize],
                copies: copies.into_boxed_slice(),
            });
            (edges.len() - 1) as u32
        };

        for (bi, b) in f.blocks.iter().enumerate() {
            let from = BlockId(bi as u32);
            let mut body = std::mem::take(&mut bodies[bi]);
            let fused_cmp = if fuse_term[bi] > 0 { body.pop() } else { None };
            let fused_add = if fuse_term[bi] > 1 { body.pop() } else { None };
            ops.extend(body);
            ops.push(match &b.term {
                Terminator::Br { target } => Op::Jump {
                    edge: mk_edge(&mut edges, &mut reg_of, from, *target),
                },
                Terminator::CondBr { cond, then_, else_ } => {
                    let then_edge = mk_edge(&mut edges, &mut reg_of, from, *then_);
                    let else_edge = mk_edge(&mut edges, &mut reg_of, from, *else_);
                    match (fused_add, fused_cmp) {
                        (
                            Some(Op::Add {
                                dst: adst,
                                a: aa,
                                b: ab,
                            }),
                            Some(Op::Bin {
                                dst,
                                op: BinOp::ICmp(pred),
                                a,
                                b,
                            }),
                        ) => Op::AddCmpBr {
                            adst,
                            aa,
                            ab,
                            dst,
                            pred,
                            a,
                            b,
                            then_edge,
                            else_edge,
                        },
                        (
                            None,
                            Some(Op::Bin {
                                dst,
                                op: BinOp::ICmp(pred),
                                a,
                                b,
                            }),
                        ) => Op::CmpBr {
                            dst,
                            pred,
                            a,
                            b,
                            then_edge,
                            else_edge,
                        },
                        _ => Op::Branch {
                            cond: reg_of(*cond),
                            then_edge,
                            else_edge,
                        },
                    }
                }
                Terminator::Ret { value } => Op::Ret {
                    value: value.map(&mut reg_of),
                },
            });
        }

        DecodedFunc {
            name: f.name.clone(),
            arity: f.arity(),
            next_reg: f.next_reg,
            consts,
            ops,
            edges,
            block_ip,
            entry: f.entry.0,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn arity(&self) -> usize {
        self.arity
    }
}

/// Every function of a module predecoded — decode once, interpret many
/// times (the sampled driver re-enters the interpreter at every
/// fast-forward phase).
#[derive(Debug, Clone)]
pub struct DecodedModule {
    funcs: Vec<DecodedFunc>,
}

impl DecodedModule {
    pub fn decode(module: &Module) -> DecodedModule {
        DecodedModule {
            funcs: module
                .iter_functions()
                .map(|(_, f)| DecodedFunc::decode(f))
                .collect(),
        }
    }

    pub fn func(&self, fid: FuncId) -> &DecodedFunc {
        &self.funcs[fid.0 as usize]
    }

    pub fn func_by_name(&self, name: &str) -> Option<(FuncId, &DecodedFunc)> {
        self.funcs
            .iter()
            .enumerate()
            .find(|(_, f)| f.name == name)
            .map(|(i, f)| (FuncId(i as u32), f))
    }
}

/// Outcome of a fueled [`Interp::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunState {
    /// The function returned.
    Done(Option<u64>),
    /// The fuel budget was reached; the interpreter paused at a block
    /// boundary and can be resumed (or checkpointed).
    Paused,
}

/// A serializable-in-spirit snapshot of a paused interpreter: registers
/// plus the block about to execute (whose φ-copies were already applied —
/// block boundaries are the only pause points precisely so that this pair
/// captures the complete architectural state).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    pub regs: Vec<u64>,
    pub block: BlockId,
    pub steps: u64,
}

/// A resumable threaded-dispatch interpreter over one [`DecodedFunc`].
pub struct Interp<'c> {
    code: &'c DecodedFunc,
    regs: Vec<u64>,
    /// Block about to execute; its φ-copies have already been applied.
    block: u32,
    steps: u64,
    copy_tmp: Vec<u64>,
}

impl<'c> Interp<'c> {
    /// Starts a fresh activation of `code` with `args`.
    pub fn new(code: &'c DecodedFunc, args: &[u64]) -> Result<Interp<'c>, EvalError> {
        if code.arity != args.len() {
            return Err(EvalError::ArityMismatch {
                func: code.name.clone(),
                expected: code.arity,
                got: args.len(),
            });
        }
        let mut regs = vec![0u64; code.next_reg as usize];
        regs[..args.len()].copy_from_slice(args);
        regs.extend_from_slice(&code.consts);
        Ok(Interp {
            code,
            regs,
            block: code.entry,
            steps: 0,
            copy_tmp: Vec::new(),
        })
    }

    /// Rebuilds a paused interpreter from raw *architectural* state (the
    /// inverse of [`Interp::into_state`]; also what [`Interp::restore`]
    /// uses). The registers must come from a pause at the start of
    /// `block`; the constant pool is re-seeded from the decoded function.
    pub fn resume(
        code: &'c DecodedFunc,
        mut regs: Vec<u64>,
        block: BlockId,
        steps: u64,
    ) -> Interp<'c> {
        assert_eq!(regs.len(), code.next_reg as usize, "register file size");
        assert!((block.0 as usize) < code.block_ip.len(), "block id");
        regs.extend_from_slice(&code.consts);
        Interp {
            code,
            regs,
            block: block.0,
            steps,
            copy_tmp: Vec::new(),
        }
    }

    /// Instructions retired so far (terminators included, φs excluded —
    /// the same counting rule as `apt-cpu::Machine`).
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The block the interpreter is paused at.
    pub fn block(&self) -> BlockId {
        BlockId(self.block)
    }

    /// Read-only view of the architectural register file (the constant
    /// pool tail is an implementation detail and not exposed).
    pub fn regs(&self) -> &[u64] {
        &self.regs[..self.code.next_reg as usize]
    }

    /// Snapshots the paused state (architectural registers are cloned;
    /// the constant pool is immutable and lives in the decoded function).
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            regs: self.regs[..self.code.next_reg as usize].to_vec(),
            block: BlockId(self.block),
            steps: self.steps,
        }
    }

    /// Restores a snapshot taken from the same decoded function.
    pub fn restore(&mut self, cp: &Checkpoint) {
        assert_eq!(cp.regs.len(), self.code.next_reg as usize);
        self.regs[..cp.regs.len()].copy_from_slice(&cp.regs);
        self.block = cp.block.0;
        self.steps = cp.steps;
    }

    /// Consumes the interpreter, returning `(regs, block, steps)` without
    /// cloning — the hand-off the sampled driver uses to enter detailed
    /// simulation from a fast-forwarded state. The returned registers are
    /// the architectural file (`next_reg` wide), constant pool stripped.
    pub fn into_state(mut self) -> (Vec<u64>, BlockId, u64) {
        self.regs.truncate(self.code.next_reg as usize);
        (self.regs, BlockId(self.block), self.steps)
    }

    /// Runs until the function returns or at least `fuel` more
    /// instructions have retired, pausing at the next block boundary (so
    /// the overshoot is at most one block). `fuel == 0` still executes one
    /// block.
    pub fn run(&mut self, mem: &mut impl Memory, fuel: u64) -> Result<RunState, EvalError> {
        apt_selfprof::prof_scope!("lir/eval/dispatch");
        let target = self.steps.saturating_add(fuel);
        let ops = &self.code.ops[..];
        let edges = &self.code.edges[..];
        let regs = &mut self.regs[..];
        let mut steps = self.steps;
        let mut ip = self.code.block_ip[self.block as usize] as usize;

        // Every operand is a register index (immediates were interned
        // into the constant-pool tail at decode time), so an operand read
        // is one unconditioned indexed load.
        macro_rules! val {
            ($op:expr) => {
                regs[$op as usize]
            };
        }
        // Applies an edge's φ parallel copies (sources all read before any
        // destination is written) and either jumps or pauses on fuel-out.
        macro_rules! take_edge {
            ($e:expr) => {{
                let e = &edges[$e as usize];
                if !e.copies.is_empty() {
                    self.copy_tmp.clear();
                    for &(_, src) in e.copies.iter() {
                        self.copy_tmp.push(val!(src));
                    }
                    for (&(d, _), &v) in e.copies.iter().zip(&self.copy_tmp) {
                        regs[d as usize] = v;
                    }
                }
                if steps >= target {
                    self.block = e.block;
                    self.steps = steps;
                    return Ok(RunState::Paused);
                }
                ip = e.ip as usize;
            }};
        }

        // The architectural load: read, zero/sign-extend, or fault
        // (speculative loads yield 0 instead). Shared by the plain and
        // fused load ops.
        macro_rules! do_load {
            ($dst:expr, $addr:expr, $width:expr, $sext:expr, $spec:expr) => {{
                let a = val!($addr);
                let w = $width as u64;
                regs[$dst as usize] = match mem.read(a, w) {
                    Some(raw) => {
                        if $sext {
                            sign_extend(raw, w)
                        } else {
                            raw
                        }
                    }
                    None if $spec => 0,
                    None => {
                        self.steps = steps;
                        return Err(EvalError::Fault { addr: a, width: w });
                    }
                };
            }};
        }
        // The two arithmetic halves of the fused addressing sequences,
        // executed verbatim (intermediate registers included).
        macro_rules! do_shl {
            ($dst:expr, $a:expr, $b:expr) => {
                regs[$dst as usize] = val!($a).wrapping_shl(val!($b) as u32 & 63)
            };
        }
        macro_rules! do_add {
            ($dst:expr, $a:expr, $b:expr) => {
                regs[$dst as usize] = val!($a).wrapping_add(val!($b))
            };
        }

        loop {
            steps += 1;
            match ops[ip] {
                Op::Bin { dst, op, a, b } => {
                    regs[dst as usize] = eval_bin(op, val!(a), val!(b));
                    ip += 1;
                }
                Op::Add { dst, a, b } => {
                    do_add!(dst, a, b);
                    ip += 1;
                }
                Op::Un { dst, op, a } => {
                    regs[dst as usize] = eval_un(op, val!(a));
                    ip += 1;
                }
                Op::Select {
                    dst,
                    cond,
                    if_true,
                    if_false,
                } => {
                    regs[dst as usize] = if val!(cond) != 0 {
                        val!(if_true)
                    } else {
                        val!(if_false)
                    };
                    ip += 1;
                }
                Op::Load {
                    dst,
                    addr,
                    width,
                    sext,
                    spec,
                } => {
                    do_load!(dst, addr, width, sext, spec);
                    ip += 1;
                }
                Op::Store { addr, value, width } => {
                    let a = val!(addr);
                    let w = width as u64;
                    if mem.write(a, val!(value), w).is_none() {
                        self.steps = steps;
                        return Err(EvalError::Fault { addr: a, width: w });
                    }
                    ip += 1;
                }
                Op::Prefetch { addr } => {
                    // Architecturally a no-op; warming memories listen in.
                    mem.prefetch(val!(addr));
                    ip += 1;
                }
                Op::Jump { edge } => take_edge!(edge),
                Op::Branch {
                    cond,
                    then_edge,
                    else_edge,
                } => {
                    if val!(cond) != 0 {
                        take_edge!(then_edge)
                    } else {
                        take_edge!(else_edge)
                    }
                }
                Op::Ret { value } => {
                    self.steps = steps;
                    return Ok(RunState::Done(value.map(|v| val!(v))));
                }
                Op::CmpBr {
                    dst,
                    pred,
                    a,
                    b,
                    then_edge,
                    else_edge,
                } => {
                    steps += 1;
                    let c = eval_bin(BinOp::ICmp(pred), val!(a), val!(b));
                    regs[dst as usize] = c;
                    if c != 0 {
                        take_edge!(then_edge)
                    } else {
                        take_edge!(else_edge)
                    }
                }
                Op::AddCmpBr {
                    adst,
                    aa,
                    ab,
                    dst,
                    pred,
                    a,
                    b,
                    then_edge,
                    else_edge,
                } => {
                    steps += 2;
                    do_add!(adst, aa, ab);
                    let c = eval_bin(BinOp::ICmp(pred), val!(a), val!(b));
                    regs[dst as usize] = c;
                    if c != 0 {
                        take_edge!(then_edge)
                    } else {
                        take_edge!(else_edge)
                    }
                }
                Op::AddLoad {
                    adst,
                    aa,
                    ab,
                    dst,
                    addr,
                    width,
                    sext,
                    spec,
                } => {
                    steps += 1;
                    do_add!(adst, aa, ab);
                    do_load!(dst, addr, width, sext, spec);
                    ip += 1;
                }
                Op::ShlAddLoad {
                    sdst,
                    sa,
                    sb,
                    adst,
                    aa,
                    ab,
                    dst,
                    addr,
                    width,
                    sext,
                    spec,
                } => {
                    steps += 2;
                    do_shl!(sdst, sa, sb);
                    do_add!(adst, aa, ab);
                    do_load!(dst, addr, width, sext, spec);
                    ip += 1;
                }
                Op::ShlAddStore {
                    sdst,
                    sa,
                    sb,
                    adst,
                    aa,
                    ab,
                    addr,
                    value,
                    width,
                } => {
                    steps += 2;
                    do_shl!(sdst, sa, sb);
                    do_add!(adst, aa, ab);
                    let a = val!(addr);
                    let w = width as u64;
                    if mem.write(a, val!(value), w).is_none() {
                        self.steps = steps;
                        return Err(EvalError::Fault { addr: a, width: w });
                    }
                    ip += 1;
                }
                Op::ShlAddPrefetch {
                    sdst,
                    sa,
                    sb,
                    adst,
                    aa,
                    ab,
                    addr,
                } => {
                    steps += 2;
                    do_shl!(sdst, sa, sb);
                    do_add!(adst, aa, ab);
                    mem.prefetch(val!(addr));
                    ip += 1;
                }
            }
        }
    }
}

/// Runs `func` against `mem` with the module's architectural semantics:
/// φ-nodes resolve as parallel copies on block entry, speculative
/// (prefetch-slice) loads yield 0 instead of faulting, and `Prefetch` is a
/// no-op. Retires at most `step_limit` instructions (terminators included).
///
/// This is deliberately the same contract as `apt-cpu::Machine::call`
/// minus timing and profiling, so the two can be compared bit-for-bit.
pub fn run_function(
    module: &Module,
    func: &str,
    args: &[u64],
    mem: &mut impl Memory,
    step_limit: u64,
) -> Result<Option<u64>, EvalError> {
    let (_, f) = module
        .function_by_name(func)
        .ok_or_else(|| EvalError::UnknownFunction(func.to_string()))?;
    if f.arity() != args.len() {
        return Err(EvalError::ArityMismatch {
            func: func.to_string(),
            expected: f.arity(),
            got: args.len(),
        });
    }

    apt_selfprof::prof_scope!("lir/eval");
    let code = DecodedFunc::decode(f);
    let mut interp = Interp::new(&code, args)?;
    // The tree walker checked the limit at every block top and errored on
    // `steps > step_limit`; a single fueled run pausing once `steps`
    // reaches `step_limit + 1` reproduces that boundary exactly.
    match interp.run(mem, step_limit.saturating_add(1))? {
        RunState::Done(v) => Ok(v),
        RunState::Paused => Err(EvalError::StepLimit),
    }
}

#[cfg(test)]
mod interp_tests {
    use super::*;
    use crate::{FunctionBuilder, Width};
    use std::collections::HashMap;

    /// A sparse byte memory for interpreter unit tests.
    #[derive(Default)]
    struct MapMem {
        bytes: HashMap<u64, u8>,
        limit: u64,
    }

    impl Memory for MapMem {
        fn read(&mut self, addr: u64, width: u64) -> Option<u64> {
            if addr + width > self.limit {
                return None;
            }
            let mut v = 0u64;
            for i in 0..width {
                v |= (*self.bytes.get(&(addr + i)).unwrap_or(&0) as u64) << (8 * i);
            }
            Some(v)
        }

        fn write(&mut self, addr: u64, value: u64, width: u64) -> Option<()> {
            if addr + width > self.limit {
                return None;
            }
            for i in 0..width {
                self.bytes.insert(addr + i, (value >> (8 * i)) as u8);
            }
            Some(())
        }
    }

    fn sum_kernel() -> Module {
        let mut m = Module::new("t");
        let f = m.add_function("kernel", &["b", "n"]);
        {
            let mut bd = FunctionBuilder::new(m.function_mut(f));
            let (b, n) = (bd.param(0), bd.param(1));
            let s = bd.loop_up_reduce(0u64, n, 1, 0u64, |bd, iv, acc| {
                let v = bd.load_elem(b, iv, Width::W4, false);
                bd.add(acc, v).into()
            });
            bd.ret(Some(s));
        }
        m
    }

    fn sum_mem() -> MapMem {
        let mut mem = MapMem {
            limit: 64,
            ..Default::default()
        };
        for i in 0..8u64 {
            mem.write(i * 4, i + 1, 4).unwrap();
        }
        mem
    }

    #[test]
    fn interprets_a_reduction_loop() {
        let m = sum_kernel();
        let mut mem = sum_mem();
        let r = run_function(&m, "kernel", &[0, 8], &mut mem, 1 << 20).unwrap();
        assert_eq!(r, Some(36)); // 1 + 2 + … + 8.
    }

    #[test]
    fn rejects_unknown_function_and_bad_arity() {
        let m = sum_kernel();
        let mut mem = MapMem::default();
        assert!(matches!(
            run_function(&m, "nope", &[], &mut mem, 100),
            Err(EvalError::UnknownFunction(_))
        ));
        assert!(matches!(
            run_function(&m, "kernel", &[1], &mut mem, 100),
            Err(EvalError::ArityMismatch {
                expected: 2,
                got: 1,
                ..
            })
        ));
    }

    #[test]
    fn nonspec_load_faults_spec_load_yields_zero() {
        let mut m = Module::new("t");
        let f = m.add_function("k", &["a"]);
        {
            let mut bd = FunctionBuilder::new(m.function_mut(f));
            let a = bd.param(0);
            let v = bd.load(a, Width::W8, false);
            bd.ret(Some(v));
        }
        let mut mem = MapMem {
            limit: 8,
            ..Default::default()
        };
        mem.write(0, 7, 8).unwrap();
        assert_eq!(run_function(&m, "k", &[0], &mut mem, 100), Ok(Some(7)));
        assert_eq!(
            run_function(&m, "k", &[64], &mut mem, 100),
            Err(EvalError::Fault { addr: 64, width: 8 })
        );

        // The same load marked speculative returns 0 instead of faulting.
        let mut m2 = Module::new("t");
        let f2 = m2.add_function("k", &["a"]);
        {
            let mut bd = FunctionBuilder::new(m2.function_mut(f2));
            let a = bd.param(0);
            let v = bd.func().fresh_reg();
            let cur = bd.current_block();
            bd.func().block_mut(cur).insts.push(Inst::Load {
                dst: v,
                addr: Operand::Reg(a),
                width: Width::W8,
                sext: false,
                spec: true,
            });
            bd.ret(Some(v));
        }
        assert_eq!(run_function(&m2, "k", &[64], &mut mem, 100), Ok(Some(0)));
    }

    #[test]
    fn step_limit_stops_infinite_loops() {
        let mut m = Module::new("t");
        let f = m.add_function("spin", &[]);
        {
            let mut bd = FunctionBuilder::new(m.function_mut(f));
            let b = bd.current_block();
            bd.br(b);
        }
        let mut mem = MapMem::default();
        assert_eq!(
            run_function(&m, "spin", &[], &mut mem, 1000),
            Err(EvalError::StepLimit)
        );
    }

    #[test]
    fn fueled_runs_pause_at_block_boundaries_and_agree_with_one_shot() {
        let m = sum_kernel();
        let (_, f) = m.function_by_name("kernel").unwrap();
        let code = DecodedFunc::decode(f);

        let mut mem = sum_mem();
        let oneshot = run_function(&m, "kernel", &[0, 8], &mut mem, 1 << 20).unwrap();

        let mut mem = sum_mem();
        let mut interp = Interp::new(&code, &[0, 8]).unwrap();
        let mut pauses = 0;
        let result = loop {
            match interp.run(&mut mem, 3).unwrap() {
                RunState::Done(v) => break v,
                RunState::Paused => pauses += 1,
            }
        };
        assert_eq!(result, oneshot);
        assert!(pauses > 3, "a 3-step fuel must pause many times");
    }

    #[test]
    fn checkpoint_restore_replays_identically() {
        let m = sum_kernel();
        let (_, f) = m.function_by_name("kernel").unwrap();
        let code = DecodedFunc::decode(f);

        // Run halfway, checkpoint, finish.
        let mut mem = sum_mem();
        let mut interp = Interp::new(&code, &[0, 8]).unwrap();
        assert_eq!(interp.run(&mut mem, 20).unwrap(), RunState::Paused);
        let cp = interp.checkpoint();
        let steps_at_cp = interp.steps();
        let RunState::Done(first) = interp.run(&mut mem, u64::MAX).unwrap() else {
            panic!("must finish")
        };
        let total_steps = interp.steps();

        // Restore into a fresh interpreter and replay the tail.
        let mut replay = Interp::resume(&code, cp.regs.clone(), cp.block, cp.steps);
        assert_eq!(replay.steps(), steps_at_cp);
        let RunState::Done(second) = replay.run(&mut mem, u64::MAX).unwrap() else {
            panic!("must finish")
        };
        assert_eq!(second, first);
        assert_eq!(replay.steps(), total_steps);

        // `restore` on the finished interpreter rewinds it too.
        interp.restore(&cp);
        let RunState::Done(third) = interp.run(&mut mem, u64::MAX).unwrap() else {
            panic!("must finish")
        };
        assert_eq!(third, first);
    }

    #[test]
    fn step_counts_match_the_one_shot_contract() {
        // The step-limit guard only fires at block boundaries (both in the
        // old tree walker and in the fueled interpreter), so the exact
        // acceptance boundary is the step count at the *last edge taken*:
        // a limit one below it errors, the boundary value itself succeeds.
        let m = sum_kernel();
        let (_, f) = m.function_by_name("kernel").unwrap();
        let code = DecodedFunc::decode(f);
        let mut mem = sum_mem();
        let mut interp = Interp::new(&code, &[0, 8]).unwrap();
        let mut last_edge_steps = 0;
        loop {
            // Fuel 0: exactly one block per run, pausing at every edge.
            match interp.run(&mut mem, 0).unwrap() {
                RunState::Done(_) => break,
                RunState::Paused => last_edge_steps = interp.steps(),
            }
        }
        assert!(last_edge_steps > 0);
        let mut mem = sum_mem();
        assert!(run_function(&m, "kernel", &[0, 8], &mut mem, last_edge_steps).is_ok());
        let mut mem = sum_mem();
        assert_eq!(
            run_function(&m, "kernel", &[0, 8], &mut mem, last_edge_steps - 1),
            Err(EvalError::StepLimit)
        );
    }

    #[test]
    fn decoded_module_resolves_functions_by_name() {
        let m = sum_kernel();
        let dm = DecodedModule::decode(&m);
        let (fid, code) = dm.func_by_name("kernel").unwrap();
        assert_eq!(code.name(), "kernel");
        assert_eq!(code.arity(), 2);
        assert_eq!(dm.func(fid).name(), "kernel");
        assert!(dm.func_by_name("nope").is_none());
    }
}
