//! Reference evaluation semantics of the IR's pure operations.
//!
//! Shared by the timing simulator (`apt-cpu`) and the constant-folding
//! pass (`apt-passes`), so both agree on every arithmetic corner case.

use crate::inst::{BinOp, FCmpPred, ICmpPred, UnOp};

#[inline]
pub fn sign_extend(v: u64, bytes: u64) -> u64 {
    let bits = bytes * 8;
    if bits == 64 {
        v
    } else {
        let shift = 64 - bits;
        (((v << shift) as i64) >> shift) as u64
    }
}

#[inline]
pub fn bin_cost(op: BinOp) -> u64 {
    match op {
        // Throughput-calibrated: modern cores retire one IMUL per cycle.
        BinOp::Mul => 1,
        BinOp::DivU | BinOp::DivS | BinOp::RemU => 20,
        BinOp::FAdd | BinOp::FSub | BinOp::FMul => 4,
        BinOp::FDiv => 15,
        _ => 1,
    }
}

#[inline]
pub fn eval_bin(op: BinOp, a: u64, b: u64) -> u64 {
    match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::DivU => a.checked_div(b).unwrap_or(0),
        BinOp::DivS => {
            if b == 0 {
                0
            } else {
                (a as i64).wrapping_div(b as i64) as u64
            }
        }
        BinOp::RemU => a.checked_rem(b).unwrap_or(a),
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl(b as u32 & 63),
        BinOp::ShrL => a.wrapping_shr(b as u32 & 63),
        BinOp::ShrA => ((a as i64).wrapping_shr(b as u32 & 63)) as u64,
        BinOp::ICmp(p) => {
            let (sa, sb) = (a as i64, b as i64);
            let r = match p {
                ICmpPred::Eq => a == b,
                ICmpPred::Ne => a != b,
                ICmpPred::Ltu => a < b,
                ICmpPred::Lts => sa < sb,
                ICmpPred::Leu => a <= b,
                ICmpPred::Les => sa <= sb,
                ICmpPred::Gtu => a > b,
                ICmpPred::Gts => sa > sb,
                ICmpPred::Geu => a >= b,
                ICmpPred::Ges => sa >= sb,
            };
            r as u64
        }
        BinOp::FAdd => (f64::from_bits(a) + f64::from_bits(b)).to_bits(),
        BinOp::FSub => (f64::from_bits(a) - f64::from_bits(b)).to_bits(),
        BinOp::FMul => (f64::from_bits(a) * f64::from_bits(b)).to_bits(),
        BinOp::FDiv => (f64::from_bits(a) / f64::from_bits(b)).to_bits(),
        BinOp::FCmp(p) => {
            let (fa, fb) = (f64::from_bits(a), f64::from_bits(b));
            let r = match p {
                FCmpPred::Eq => fa == fb,
                FCmpPred::Ne => fa != fb,
                FCmpPred::Lt => fa < fb,
                FCmpPred::Le => fa <= fb,
                FCmpPred::Gt => fa > fb,
                FCmpPred::Ge => fa >= fb,
            };
            r as u64
        }
        BinOp::MinU => a.min(b),
        BinOp::MinS => (a as i64).min(b as i64) as u64,
        BinOp::MaxS => (a as i64).max(b as i64) as u64,
    }
}

#[inline]
pub fn eval_un(op: UnOp, a: u64) -> u64 {
    match op {
        UnOp::Sext32 => a as u32 as i32 as i64 as u64,
        UnOp::Zext32 => a & 0xffff_ffff,
        UnOp::IToF => ((a as i64) as f64).to_bits(),
        UnOp::FToI => (f64::from_bits(a) as i64) as u64,
        UnOp::Copy => a,
    }
}
