//! Control-flow-graph utilities: predecessors, reverse post-order,
//! dominators (Cooper–Harvey–Kennedy iterative algorithm).

use crate::module::{BlockId, Function};

/// Precomputed CFG facts for one function.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// `preds[b]` = predecessor blocks of `b`.
    pub preds: Vec<Vec<BlockId>>,
    /// `succs[b]` = successor blocks of `b`.
    pub succs: Vec<Vec<BlockId>>,
    /// Reverse post-order over blocks reachable from entry.
    pub rpo: Vec<BlockId>,
    /// `rpo_index[b]` = position of `b` in `rpo`, or `usize::MAX` if
    /// unreachable.
    pub rpo_index: Vec<usize>,
    /// Immediate dominator of each block (`idom[entry] == entry`);
    /// `None` for unreachable blocks.
    pub idom: Vec<Option<BlockId>>,
}

impl Cfg {
    /// Computes CFG facts for `func`.
    pub fn build(func: &Function) -> Cfg {
        let n = func.blocks.len();
        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        for (b, block) in func.iter_blocks() {
            for s in block.term.successors() {
                succs[b.0 as usize].push(s);
                preds[s.0 as usize].push(b);
            }
        }

        // Post-order DFS from the entry block (iterative).
        let mut post = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        let mut stack: Vec<(BlockId, usize)> = vec![(func.entry, 0)];
        visited[func.entry.0 as usize] = true;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            let ss = &succs[b.0 as usize];
            if *i < ss.len() {
                let next = ss[*i];
                *i += 1;
                if !visited[next.0 as usize] {
                    visited[next.0 as usize] = true;
                    stack.push((next, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        let rpo: Vec<BlockId> = post.into_iter().rev().collect();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.0 as usize] = i;
        }

        let idom = compute_idoms(func.entry, &rpo, &rpo_index, &preds, n);

        Cfg {
            preds,
            succs,
            rpo,
            rpo_index,
            idom,
        }
    }

    /// True if `a` dominates `b` (both must be reachable).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.0 as usize] {
                Some(d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }

    /// True if the block is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_index[b.0 as usize] != usize::MAX
    }

    /// Back edges `(tail, head)` where `head` dominates `tail` — each one
    /// identifies a natural loop with header `head`.
    pub fn back_edges(&self) -> Vec<(BlockId, BlockId)> {
        let mut out = Vec::new();
        for &b in &self.rpo {
            for &s in &self.succs[b.0 as usize] {
                if self.is_reachable(s) && self.dominates(s, b) {
                    out.push((b, s));
                }
            }
        }
        out
    }
}

/// Cooper–Harvey–Kennedy "engineered" dominator computation.
fn compute_idoms(
    entry: BlockId,
    rpo: &[BlockId],
    rpo_index: &[usize],
    preds: &[Vec<BlockId>],
    n: usize,
) -> Vec<Option<BlockId>> {
    let mut idom: Vec<Option<BlockId>> = vec![None; n];
    idom[entry.0 as usize] = Some(entry);
    let mut changed = true;
    while changed {
        changed = false;
        for &b in rpo.iter().skip(1) {
            let mut new_idom: Option<BlockId> = None;
            for &p in &preds[b.0 as usize] {
                if idom[p.0 as usize].is_none() {
                    continue; // Not yet processed / unreachable.
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(cur, p, &idom, rpo_index),
                });
            }
            if let Some(ni) = new_idom {
                if idom[b.0 as usize] != Some(ni) {
                    idom[b.0 as usize] = Some(ni);
                    changed = true;
                }
            }
        }
    }
    idom
}

fn intersect(
    mut a: BlockId,
    mut b: BlockId,
    idom: &[Option<BlockId>],
    rpo_index: &[usize],
) -> BlockId {
    while a != b {
        while rpo_index[a.0 as usize] > rpo_index[b.0 as usize] {
            a = idom[a.0 as usize].expect("processed block has idom");
        }
        while rpo_index[b.0 as usize] > rpo_index[a.0 as usize] {
            b = idom[b.0 as usize].expect("processed block has idom");
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Operand, Terminator};
    use crate::module::Module;

    /// Builds a diamond: bb0 → {bb1, bb2} → bb3.
    fn diamond() -> Function {
        let mut m = Module::new("t");
        let f = m.add_function("f", &[]);
        let func = m.function_mut(f);
        let b1 = func.add_block("t");
        let b2 = func.add_block("e");
        let b3 = func.add_block("join");
        func.block_mut(BlockId(0)).term = Terminator::CondBr {
            cond: Operand::Imm(1),
            then_: b1,
            else_: b2,
        };
        func.block_mut(b1).term = Terminator::Br { target: b3 };
        func.block_mut(b2).term = Terminator::Br { target: b3 };
        m.functions.remove(0)
    }

    #[test]
    fn diamond_dominators() {
        let f = diamond();
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.idom[1], Some(BlockId(0)));
        assert_eq!(cfg.idom[2], Some(BlockId(0)));
        assert_eq!(cfg.idom[3], Some(BlockId(0)));
        assert!(cfg.dominates(BlockId(0), BlockId(3)));
        assert!(!cfg.dominates(BlockId(1), BlockId(3)));
        assert!(cfg.back_edges().is_empty());
    }

    #[test]
    fn diamond_preds_succs() {
        let f = diamond();
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.succs[0], vec![BlockId(1), BlockId(2)]);
        assert_eq!(cfg.preds[3], vec![BlockId(1), BlockId(2)]);
        assert_eq!(cfg.rpo.len(), 4);
        assert_eq!(cfg.rpo[0], BlockId(0));
    }

    /// bb0 → bb1; bb1 → {bb1 (back edge), bb2}.
    fn single_block_loop() -> Function {
        let mut m = Module::new("t");
        let f = m.add_function("f", &[]);
        let func = m.function_mut(f);
        let body = func.add_block("body");
        let exit = func.add_block("exit");
        func.block_mut(BlockId(0)).term = Terminator::Br { target: body };
        func.block_mut(body).term = Terminator::CondBr {
            cond: Operand::Imm(1),
            then_: body,
            else_: exit,
        };
        m.functions.remove(0)
    }

    #[test]
    fn loop_back_edge_detected() {
        let f = single_block_loop();
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.back_edges(), vec![(BlockId(1), BlockId(1))]);
        assert!(cfg.dominates(BlockId(1), BlockId(2)));
    }

    #[test]
    fn unreachable_block_handled() {
        let mut f = single_block_loop();
        let dead = f.add_block("dead");
        f.block_mut(dead).term = Terminator::Ret { value: None };
        let cfg = Cfg::build(&f);
        assert!(!cfg.is_reachable(dead));
        assert_eq!(cfg.idom[dead.0 as usize], None);
    }
}
