//! Human-readable printing of modules, in an LLVM-flavoured syntax.

use std::fmt::Write as _;

use crate::inst::{BinOp, FCmpPred, ICmpPred, Inst, Operand, Terminator, UnOp};
use crate::module::{Block, BlockId, Function, Module};

fn op_str(op: Operand) -> String {
    match op {
        Operand::Reg(r) => r.to_string(),
        Operand::Imm(v) => {
            if (v as i64) < 0 && (v as i64) > -4096 {
                format!("{}", v as i64)
            } else {
                format!("{v}")
            }
        }
    }
}

fn binop_name(op: BinOp) -> String {
    match op {
        BinOp::Add => "add".into(),
        BinOp::Sub => "sub".into(),
        BinOp::Mul => "mul".into(),
        BinOp::DivU => "udiv".into(),
        BinOp::DivS => "sdiv".into(),
        BinOp::RemU => "urem".into(),
        BinOp::And => "and".into(),
        BinOp::Or => "or".into(),
        BinOp::Xor => "xor".into(),
        BinOp::Shl => "shl".into(),
        BinOp::ShrL => "lshr".into(),
        BinOp::ShrA => "ashr".into(),
        BinOp::ICmp(p) => format!("icmp {}", icmp_name(p)),
        BinOp::FAdd => "fadd".into(),
        BinOp::FSub => "fsub".into(),
        BinOp::FMul => "fmul".into(),
        BinOp::FDiv => "fdiv".into(),
        BinOp::FCmp(p) => format!("fcmp {}", fcmp_name(p)),
        BinOp::MinU => "umin".into(),
        BinOp::MinS => "smin".into(),
        BinOp::MaxS => "smax".into(),
    }
}

fn icmp_name(p: ICmpPred) -> &'static str {
    match p {
        ICmpPred::Eq => "eq",
        ICmpPred::Ne => "ne",
        ICmpPred::Ltu => "ult",
        ICmpPred::Lts => "slt",
        ICmpPred::Leu => "ule",
        ICmpPred::Les => "sle",
        ICmpPred::Gtu => "ugt",
        ICmpPred::Gts => "sgt",
        ICmpPred::Geu => "uge",
        ICmpPred::Ges => "sge",
    }
}

fn fcmp_name(p: FCmpPred) -> &'static str {
    match p {
        FCmpPred::Eq => "oeq",
        FCmpPred::Ne => "one",
        FCmpPred::Lt => "olt",
        FCmpPred::Le => "ole",
        FCmpPred::Gt => "ogt",
        FCmpPred::Ge => "oge",
    }
}

fn unop_name(op: UnOp) -> &'static str {
    match op {
        UnOp::Sext32 => "sext32",
        UnOp::Zext32 => "zext32",
        UnOp::IToF => "sitofp",
        UnOp::FToI => "fptosi",
        UnOp::Copy => "copy",
    }
}

/// Renders one instruction.
pub fn inst_to_string(inst: &Inst) -> String {
    match inst {
        Inst::Phi { dst, incomings } => {
            let parts: Vec<String> = incomings
                .iter()
                .map(|(b, op)| format!("[{}, {}]", op_str(*op), b))
                .collect();
            format!("{dst} = phi {}", parts.join(", "))
        }
        Inst::Bin { dst, op, a, b } => {
            format!("{dst} = {} {}, {}", binop_name(*op), op_str(*a), op_str(*b))
        }
        Inst::Un { dst, op, a } => format!("{dst} = {} {}", unop_name(*op), op_str(*a)),
        Inst::Select {
            dst,
            cond,
            if_true,
            if_false,
        } => format!(
            "{dst} = select {}, {}, {}",
            op_str(*cond),
            op_str(*if_true),
            op_str(*if_false)
        ),
        Inst::Load {
            dst,
            addr,
            width,
            sext,
            spec,
        } => format!(
            "{dst} = load{}.{}{} {}",
            if *spec { ".spec" } else { "" },
            if *sext { "s" } else { "u" },
            width.bytes() * 8,
            op_str(*addr)
        ),
        Inst::Store { addr, value, width } => format!(
            "store.{} {}, {}",
            width.bytes() * 8,
            op_str(*value),
            op_str(*addr)
        ),
        Inst::Prefetch { addr } => format!("prefetch {}", op_str(*addr)),
    }
}

/// Renders one terminator.
pub fn term_to_string(term: &Terminator) -> String {
    match term {
        Terminator::Br { target } => format!("br {target}"),
        Terminator::CondBr { cond, then_, else_ } => {
            format!("br {}, {then_}, {else_}", op_str(*cond))
        }
        Terminator::Ret { value: Some(v) } => format!("ret {}", op_str(*v)),
        Terminator::Ret { value: None } => "ret void".into(),
    }
}

fn print_block(out: &mut String, id: BlockId, block: &Block) {
    let _ = writeln!(out, "{id}:  ; {}", block.name);
    for inst in &block.insts {
        let _ = writeln!(out, "  {}", inst_to_string(inst));
    }
    let _ = writeln!(out, "  {}", term_to_string(&block.term));
}

/// Renders one function.
pub fn function_to_string(func: &Function) -> String {
    let mut out = String::new();
    let params: Vec<String> = func
        .params
        .iter()
        .enumerate()
        .map(|(i, n)| format!("%{i} /*{n}*/"))
        .collect();
    let _ = writeln!(out, "func @{}({}) {{", func.name, params.join(", "));
    for (id, block) in func.iter_blocks() {
        print_block(&mut out, id, block);
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders a whole module.
pub fn module_to_string(module: &Module) -> String {
    let mut out = format!("; module {}\n", module.name);
    for (_, f) in module.iter_functions() {
        out.push('\n');
        out.push_str(&function_to_string(f));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::Width;
    use crate::module::Module;

    #[test]
    fn prints_listing_like_output() {
        let mut m = Module::new("micro");
        let f = m.add_function("kernel", &["t", "b", "n"]);
        {
            let mut bd = FunctionBuilder::new(m.function_mut(f));
            let (t, bb, n) = (bd.param(0), bd.param(1), bd.param(2));
            let s = bd.loop_up_reduce(0, n, 1, 0, |bd, iv, acc| {
                let bi = bd.load_elem(bb, iv, Width::W4, false);
                let v = bd.load_elem(t, bi, Width::W4, false);
                bd.add(acc, v).into()
            });
            bd.ret(Some(s));
        }
        let text = module_to_string(&m);
        assert!(text.contains("func @kernel"), "{text}");
        assert!(text.contains("phi"), "{text}");
        assert!(text.contains("load.u32"), "{text}");
        assert!(text.contains("icmp slt"), "{text}");
        // Exactly one terminator per block.
        let blocks = m.function(crate::module::FuncId(0)).blocks.len();
        let rets = text.matches("ret").count();
        let brs = text.matches("\n  br").count();
        assert_eq!(rets + brs, blocks);
    }

    #[test]
    fn prints_negative_immediates_signed() {
        assert_eq!(op_str(Operand::Imm((-5i64) as u64)), "-5");
        assert_eq!(op_str(Operand::Imm(5)), "5");
    }

    #[test]
    fn prints_memory_ops() {
        let i = Inst::Store {
            addr: Operand::Imm(64),
            value: Operand::Imm(1),
            width: Width::W8,
        };
        assert_eq!(inst_to_string(&i), "store.64 1, 64");
        let p = Inst::Prefetch {
            addr: Operand::Imm(128),
        };
        assert_eq!(inst_to_string(&p), "prefetch 128");
    }
}
