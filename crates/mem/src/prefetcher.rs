//! Hardware prefetchers: per-PC stride detection and L2 next-line.
//!
//! These model the "simple prefetchers implemented in today's hardware"
//! (§1): they cover regular streaming accesses such as the index array
//! `B[i]`, leaving only the *indirect* accesses `T[B[i]]` delinquent — the
//! gap software prefetching targets.

use crate::Addr;

/// One stride-table entry, tagged by load PC.
#[derive(Debug, Clone, Copy)]
struct StrideEntry {
    pc: u64,
    last_addr: Addr,
    stride: i64,
    confidence: u8,
}

/// A per-PC stride prefetcher (reference: the classic Chen/Baer scheme,
/// which is what Intel's "IP prefetcher" implements).
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    table: Vec<Option<StrideEntry>>,
    /// Prefetch `lookahead` strides ahead of the demand stream.
    lookahead: u64,
}

/// Confidence needed before the prefetcher starts issuing.
const CONF_THRESHOLD: u8 = 2;
/// Saturation value for confidence.
const CONF_MAX: u8 = 4;
/// Entries in the (direct-mapped) stride table.
const TABLE_SIZE: usize = 256;

impl StridePrefetcher {
    /// Creates an empty prefetcher issuing `lookahead` strides ahead.
    pub fn new(lookahead: u64) -> StridePrefetcher {
        StridePrefetcher {
            table: vec![None; TABLE_SIZE],
            lookahead,
        }
    }

    /// Trains on a demand load and returns the addresses to prefetch
    /// (empty unless a confident stride exists).
    pub fn train(&mut self, pc: u64, addr: Addr) -> Vec<Addr> {
        let slot = (pc as usize / 4) % TABLE_SIZE;
        let entry = &mut self.table[slot];
        match entry {
            Some(e) if e.pc == pc => {
                let delta = addr.wrapping_sub(e.last_addr) as i64;
                if delta == e.stride && delta != 0 {
                    e.confidence = (e.confidence + 1).min(CONF_MAX);
                } else {
                    e.stride = delta;
                    e.confidence = 0;
                }
                e.last_addr = addr;
                if e.confidence >= CONF_THRESHOLD {
                    let target = addr.wrapping_add((e.stride as u64).wrapping_mul(self.lookahead));
                    return vec![target];
                }
                Vec::new()
            }
            _ => {
                *entry = Some(StrideEntry {
                    pc,
                    last_addr: addr,
                    stride: 0,
                    confidence: 0,
                });
                Vec::new()
            }
        }
    }
}

/// L2 next-line prefetcher: on an L2 miss, fetch the following line.
#[derive(Debug, Clone, Copy, Default)]
pub struct NextLinePrefetcher;

impl NextLinePrefetcher {
    /// Returns the line to prefetch after a miss on `line`.
    pub fn on_miss(&self, line: u64) -> u64 {
        line + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_needs_confidence() {
        let mut p = StridePrefetcher::new(4);
        assert!(p.train(0x100, 0).is_empty()); // Allocate.
        assert!(p.train(0x100, 8).is_empty()); // Learn stride 8, conf 0.
        assert!(p.train(0x100, 16).is_empty()); // conf 1.
        let t = p.train(0x100, 24); // conf 2 → issue.
        assert_eq!(t, vec![24 + 8 * 4]);
    }

    #[test]
    fn stride_resets_on_irregular_stream() {
        let mut p = StridePrefetcher::new(4);
        p.train(0x100, 0);
        p.train(0x100, 8);
        p.train(0x100, 16);
        p.train(0x100, 24);
        // Break the pattern: confidence must reset, no prefetch.
        assert!(p.train(0x100, 1000).is_empty());
        assert!(p.train(0x100, 3).is_empty());
    }

    #[test]
    fn irregular_pcs_never_trigger() {
        let mut p = StridePrefetcher::new(4);
        // A pointer-chase-like stream.
        let addrs = [100u64, 7, 93482, 12, 55555, 3];
        for &a in &addrs {
            assert!(p.train(0x200, a).is_empty());
        }
    }

    #[test]
    fn distinct_pcs_use_distinct_entries() {
        let mut p = StridePrefetcher::new(1);
        p.train(0x100, 0);
        p.train(0x104, 1000);
        p.train(0x100, 64);
        p.train(0x104, 1064);
        p.train(0x100, 128);
        p.train(0x104, 1128);
        assert_eq!(p.train(0x100, 192), vec![192 + 64]);
        assert_eq!(p.train(0x104, 1192), vec![1192 + 64]);
    }

    #[test]
    fn next_line() {
        assert_eq!(NextLinePrefetcher.on_miss(10), 11);
    }

    #[test]
    fn zero_stride_never_issues() {
        let mut p = StridePrefetcher::new(4);
        for _ in 0..8 {
            assert!(p.train(0x100, 4096).is_empty());
        }
    }
}
