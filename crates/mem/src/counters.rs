//! PMU-style event counters, named after the hardware events the paper
//! reads with `perf stat` (§2.3, §4.4).

/// Aggregate memory-system counters for one simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemCounters {
    /// Demand loads issued by the core.
    pub loads: u64,
    /// Stores issued by the core.
    pub stores: u64,
    /// Demand loads served by each level.
    pub l1_hits: u64,
    pub l2_hits: u64,
    pub llc_hits: u64,
    /// Demand loads that allocated a new offcore (DRAM) fill.
    pub demand_fills: u64,
    /// Demand loads that coalesced onto an in-flight *software prefetch* —
    /// the `LOAD_HIT_PRE.SW_PF` late-prefetch event.
    pub fb_hits_swpf: u64,
    /// Demand loads that coalesced onto any other in-flight fill.
    pub fb_hits_other: u64,
    /// Software prefetches executed.
    pub sw_pf_issued: u64,
    /// Software prefetches dropped: line already resident or in flight.
    pub sw_pf_redundant: u64,
    /// Software prefetches dropped because no fill buffer was free.
    pub sw_pf_dropped_full: u64,
    /// Software prefetches that went offcore (allocated a DRAM fill).
    pub sw_pf_offcore: u64,
    /// Software prefetches served by an on-chip level (L2/LLC fill to L1).
    pub sw_pf_oncore: u64,
    /// Hardware prefetches that went offcore.
    pub hw_pf_offcore: u64,
    /// Prefetched lines evicted from the LLC before any demand use.
    pub pf_evicted_unused: u64,
    /// Demand accesses that were the first use of a prefetched line (LLC).
    pub pf_used: u64,
    /// Core stall cycles attributed to the serving level of demand loads.
    pub stall_l2: u64,
    pub stall_llc: u64,
    pub stall_dram: u64,
}

impl MemCounters {
    /// `offcore_requests.all_data_rd`: every offcore read — demand fills
    /// plus hardware and software prefetch fills.
    pub fn all_data_rd(&self) -> u64 {
        self.demand_fills + self.sw_pf_offcore + self.hw_pf_offcore
    }

    /// `offcore_requests.demand_data_rd` as the paper uses it for MPKI:
    /// demand loads that missed the on-chip hierarchy, *including* loads
    /// that hit an in-flight prefetch in the fill buffer (§4.4 note).
    pub fn demand_data_rd(&self) -> u64 {
        self.demand_fills + self.fb_hits_swpf + self.fb_hits_other
    }

    /// The paper's Table-1 "Prefetch Accuracy": the fraction of offcore
    /// reads that were prefetches, `(all_data_rd − demand_data_rd_requests)
    /// / all_data_rd`. (Fill-buffer hits do not create a second request.)
    pub fn prefetch_accuracy(&self) -> f64 {
        let all = self.all_data_rd();
        if all == 0 {
            return 0.0;
        }
        (all - self.demand_fills) as f64 / all as f64
    }

    /// The paper's Table-1 "Late Prefetch": demand loads that hit a software
    /// prefetch still in the fill buffer, relative to all issued software
    /// prefetches.
    pub fn late_prefetch_ratio(&self) -> f64 {
        if self.sw_pf_issued == 0 {
            return 0.0;
        }
        self.fb_hits_swpf as f64 / self.sw_pf_issued as f64
    }

    /// Total stall cycles attributable to L3 + DRAM (for Fig. 5).
    pub fn memory_bound_stalls(&self) -> u64 {
        self.stall_llc + self.stall_dram
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_counters() {
        let c = MemCounters {
            demand_fills: 30,
            sw_pf_offcore: 60,
            hw_pf_offcore: 10,
            fb_hits_swpf: 5,
            fb_hits_other: 5,
            sw_pf_issued: 80,
            ..Default::default()
        };
        assert_eq!(c.all_data_rd(), 100);
        assert_eq!(c.demand_data_rd(), 40);
        assert!((c.prefetch_accuracy() - 0.7).abs() < 1e-12);
        assert!((c.late_prefetch_ratio() - 5.0 / 80.0).abs() < 1e-12);
    }

    #[test]
    fn ratios_handle_zero_denominators() {
        let c = MemCounters::default();
        assert_eq!(c.prefetch_accuracy(), 0.0);
        assert_eq!(c.late_prefetch_ratio(), 0.0);
    }
}
