//! PMU-style event counters, named after the hardware events the paper
//! reads with `perf stat` (§2.3, §4.4).

use apt_metrics::Registry;

/// Aggregate memory-system counters for one simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemCounters {
    /// Demand loads issued by the core.
    pub loads: u64,
    /// Stores issued by the core.
    pub stores: u64,
    /// Demand loads served by each level.
    pub l1_hits: u64,
    pub l2_hits: u64,
    pub llc_hits: u64,
    /// Demand loads that allocated a new offcore (DRAM) fill.
    pub demand_fills: u64,
    /// Demand loads that coalesced onto an in-flight *software prefetch* —
    /// the `LOAD_HIT_PRE.SW_PF` late-prefetch event.
    pub fb_hits_swpf: u64,
    /// Demand loads that coalesced onto any other in-flight fill.
    pub fb_hits_other: u64,
    /// Software prefetches executed.
    pub sw_pf_issued: u64,
    /// Software prefetches dropped: line already resident or in flight.
    pub sw_pf_redundant: u64,
    /// Software prefetches dropped because no fill buffer was free.
    pub sw_pf_dropped_full: u64,
    /// Software prefetches that went offcore (allocated a DRAM fill).
    pub sw_pf_offcore: u64,
    /// Software prefetches served by an on-chip level (L2/LLC fill to L1).
    pub sw_pf_oncore: u64,
    /// Hardware prefetches that went offcore.
    pub hw_pf_offcore: u64,
    /// Prefetched lines evicted from the LLC before any demand use.
    pub pf_evicted_unused: u64,
    /// Demand accesses that were the first use of a prefetched line (LLC).
    pub pf_used: u64,
    /// Core stall cycles attributed to the serving level of demand loads.
    pub stall_l2: u64,
    pub stall_llc: u64,
    pub stall_dram: u64,
}

impl MemCounters {
    /// `offcore_requests.all_data_rd`: every offcore read — demand fills
    /// plus hardware and software prefetch fills.
    pub fn all_data_rd(&self) -> u64 {
        self.demand_fills + self.sw_pf_offcore + self.hw_pf_offcore
    }

    /// `offcore_requests.demand_data_rd` as the paper uses it for MPKI:
    /// demand loads that missed the on-chip hierarchy, *including* loads
    /// that hit an in-flight prefetch in the fill buffer (§4.4 note).
    pub fn demand_data_rd(&self) -> u64 {
        self.demand_fills + self.fb_hits_swpf + self.fb_hits_other
    }

    /// The paper's Table-1 "Prefetch Accuracy": the fraction of offcore
    /// reads that were prefetches, `(all_data_rd − demand_data_rd_requests)
    /// / all_data_rd`. (Fill-buffer hits do not create a second request.)
    pub fn prefetch_accuracy(&self) -> f64 {
        let all = self.all_data_rd();
        if all == 0 {
            return 0.0;
        }
        (all - self.demand_fills) as f64 / all as f64
    }

    /// The paper's Table-1 "Late Prefetch": demand loads that hit a software
    /// prefetch still in the fill buffer, relative to all issued software
    /// prefetches.
    pub fn late_prefetch_ratio(&self) -> f64 {
        if self.sw_pf_issued == 0 {
            return 0.0;
        }
        self.fb_hits_swpf as f64 / self.sw_pf_issued as f64
    }

    /// Total stall cycles attributable to L3 + DRAM (for Fig. 5).
    pub fn memory_bound_stalls(&self) -> u64 {
        self.stall_llc + self.stall_dram
    }

    /// Adds this simulation's counters into `registry` under the given
    /// base labels (typically `workload` / `config`). Export happens once
    /// per finished simulation — nothing here touches the simulator's hot
    /// loop, which keeps updating the plain `u64` fields.
    pub fn export_metrics(&self, registry: &Registry, labels: &[(&str, &str)]) {
        if !registry.is_enabled() {
            return;
        }
        fn join<'a>(
            base: &[(&'a str, &'a str)],
            extra: (&'a str, &'a str),
        ) -> Vec<(&'a str, &'a str)> {
            base.iter().copied().chain([extra]).collect()
        }
        let with = |extra| join(labels, extra);
        registry
            .counter(
                "apt_mem_demand_loads_total",
                "Demand loads issued by the core",
                labels,
            )
            .add(self.loads);
        registry
            .counter("apt_mem_stores_total", "Stores issued by the core", labels)
            .add(self.stores);
        for (level, hits) in [
            ("l1", self.l1_hits),
            ("l2", self.l2_hits),
            ("llc", self.llc_hits),
        ] {
            registry
                .counter(
                    "apt_mem_level_hits_total",
                    "Demand loads served by each cache level",
                    &with(("level", level)),
                )
                .add(hits);
        }
        registry
            .counter(
                "apt_mem_demand_fills_total",
                "Demand loads that allocated a new offcore fill",
                labels,
            )
            .add(self.demand_fills);
        for (source, hits) in [("sw_pf", self.fb_hits_swpf), ("other", self.fb_hits_other)] {
            registry
                .counter(
                    "apt_mem_fb_hits_total",
                    "Demand loads that coalesced onto an in-flight fill, by fill source",
                    &with(("source", source)),
                )
                .add(hits);
        }
        for (disposition, n) in [
            ("issued", self.sw_pf_issued),
            ("redundant", self.sw_pf_redundant),
            ("dropped_full", self.sw_pf_dropped_full),
            ("offcore", self.sw_pf_offcore),
            ("oncore", self.sw_pf_oncore),
        ] {
            registry
                .counter(
                    "apt_mem_sw_pf_total",
                    "Software prefetches by disposition",
                    &with(("disposition", disposition)),
                )
                .add(n);
        }
        registry
            .counter(
                "apt_mem_hw_pf_offcore_total",
                "Hardware prefetches that went offcore",
                labels,
            )
            .add(self.hw_pf_offcore);
        for (fate, n) in [
            ("used", self.pf_used),
            ("evicted_unused", self.pf_evicted_unused),
        ] {
            registry
                .counter(
                    "apt_mem_pf_lines_total",
                    "Prefetched LLC lines by fate (first demand use vs unused eviction)",
                    &with(("fate", fate)),
                )
                .add(n);
        }
        for (level, cycles) in [
            ("l2", self.stall_l2),
            ("llc", self.stall_llc),
            ("dram", self.stall_dram),
        ] {
            registry
                .counter(
                    "apt_mem_stall_cycles_total",
                    "Core stall cycles attributed to the serving level of demand loads",
                    &with(("level", level)),
                )
                .add(cycles);
        }
        registry
            .gauge(
                "apt_mem_prefetch_accuracy_ratio",
                "Table-1 prefetch accuracy of the last exported simulation",
                labels,
            )
            .set(self.prefetch_accuracy());
        registry
            .gauge(
                "apt_mem_late_prefetch_ratio",
                "Table-1 late-prefetch ratio of the last exported simulation",
                labels,
            )
            .set(self.late_prefetch_ratio());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_counters() {
        let c = MemCounters {
            demand_fills: 30,
            sw_pf_offcore: 60,
            hw_pf_offcore: 10,
            fb_hits_swpf: 5,
            fb_hits_other: 5,
            sw_pf_issued: 80,
            ..Default::default()
        };
        assert_eq!(c.all_data_rd(), 100);
        assert_eq!(c.demand_data_rd(), 40);
        assert!((c.prefetch_accuracy() - 0.7).abs() < 1e-12);
        assert!((c.late_prefetch_ratio() - 5.0 / 80.0).abs() < 1e-12);
    }

    #[test]
    fn ratios_handle_zero_denominators() {
        let c = MemCounters::default();
        assert_eq!(c.prefetch_accuracy(), 0.0);
        assert_eq!(c.late_prefetch_ratio(), 0.0);
    }

    #[test]
    fn export_metrics_labels_every_series() {
        let c = MemCounters {
            loads: 100,
            l1_hits: 70,
            l2_hits: 20,
            llc_hits: 5,
            demand_fills: 5,
            sw_pf_issued: 40,
            fb_hits_swpf: 4,
            sw_pf_offcore: 30,
            stall_dram: 900,
            ..Default::default()
        };
        let r = Registry::new();
        let labels = [("workload", "BFS"), ("config", "aptget")];
        c.export_metrics(&r, &labels);
        // A second export accumulates (counters are cumulative across sims).
        c.export_metrics(&r, &labels);
        assert_eq!(
            r.counter_value("apt_mem_demand_loads_total", &labels),
            Some(200)
        );
        assert_eq!(
            r.counter_value(
                "apt_mem_level_hits_total",
                &[("workload", "BFS"), ("config", "aptget"), ("level", "l1")]
            ),
            Some(140)
        );
        assert_eq!(
            r.counter_value(
                "apt_mem_sw_pf_total",
                &[
                    ("workload", "BFS"),
                    ("config", "aptget"),
                    ("disposition", "issued")
                ]
            ),
            Some(80)
        );
        assert_eq!(
            r.counter_value(
                "apt_mem_stall_cycles_total",
                &[("workload", "BFS"), ("config", "aptget"), ("level", "dram")]
            ),
            Some(1800)
        );
        // Gauges report the last simulation, not a sum.
        let acc = r
            .gauge_value("apt_mem_prefetch_accuracy_ratio", &labels)
            .unwrap();
        assert!((acc - c.prefetch_accuracy()).abs() < 1e-12);
    }

    #[test]
    fn export_to_disabled_registry_is_a_noop() {
        let r = Registry::disabled();
        MemCounters::default().export_metrics(&r, &[]);
        assert_eq!(r.counter_value("apt_mem_demand_loads_total", &[]), None);
    }
}
