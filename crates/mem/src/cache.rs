//! A set-associative LRU cache of line tags.
//!
//! Only tags are modelled — data lives in the functional memory image of
//! `apt-cpu`. Each resident line carries two bookkeeping bits used by the
//! prefetch-quality counters: whether it was installed by a prefetch, and
//! whether a demand access has touched it since the fill.

use crate::config::CacheConfig;

/// One resident line.
#[derive(Debug, Clone, Copy)]
struct Entry {
    tag: u64,
    /// Installed by a (hardware or software) prefetch.
    from_prefetch: bool,
    /// Touched by a demand access since the fill.
    used: bool,
}

/// Outcome of an eviction, for prefetch-quality accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Evicted {
    /// Nothing was evicted (free way available).
    None,
    /// A demand-installed or already-used line was evicted; carries the
    /// victim line number.
    Normal(u64),
    /// A prefetched line was evicted before any demand access used it —
    /// the paper's "too early" prefetch failure. Carries the victim line.
    UnusedPrefetch(u64),
}

/// Result of a lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HitInfo {
    /// The line was present.
    pub hit: bool,
    /// The line was present, had been installed by a prefetch, and this is
    /// the first demand access touching it.
    pub first_use_of_prefetch: bool,
}

/// A set-associative, true-LRU cache of line numbers.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: Vec<Vec<Entry>>,
    assoc: usize,
    set_mask: u64,
}

impl Cache {
    /// Builds an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the set count is not a power of two (required for masking).
    pub fn new(config: &CacheConfig) -> Cache {
        let sets = config.sets();
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            sets: vec![Vec::new(); sets as usize],
            assoc: config.assoc as usize,
            set_mask: sets - 1,
        }
    }

    #[inline]
    fn set_of(&self, line: u64) -> usize {
        (line & self.set_mask) as usize
    }

    /// Looks up `line`; on a demand hit, promotes it to MRU and updates the
    /// usage bits. `demand` distinguishes demand accesses from prefetch
    /// probes (which must not perturb the usage bits).
    pub fn access(&mut self, line: u64, demand: bool) -> HitInfo {
        let set = self.set_of(line);
        let ways = &mut self.sets[set];
        // MRU fast path: a hit on the most-recent way needs no reordering.
        // This is the common case on any access stream with locality and
        // keeps the remove/insert shuffle off the hot path.
        if let Some(e) = ways.first_mut() {
            if e.tag == line {
                let first_use = demand && e.from_prefetch && !e.used;
                if demand {
                    e.used = true;
                }
                return HitInfo {
                    hit: true,
                    first_use_of_prefetch: first_use,
                };
            }
        }
        if let Some(pos) = ways.iter().position(|e| e.tag == line) {
            let mut e = ways.remove(pos);
            let first_use = demand && e.from_prefetch && !e.used;
            if demand {
                e.used = true;
            }
            ways.insert(0, e); // Promote to MRU.
            HitInfo {
                hit: true,
                first_use_of_prefetch: first_use,
            }
        } else {
            HitInfo {
                hit: false,
                first_use_of_prefetch: false,
            }
        }
    }

    /// True if `line` is resident (no LRU update).
    pub fn contains(&self, line: u64) -> bool {
        let set = self.set_of(line);
        self.sets[set].iter().any(|e| e.tag == line)
    }

    /// Installs `line` as MRU, evicting the LRU way if the set is full.
    pub fn fill(&mut self, line: u64, from_prefetch: bool) -> Evicted {
        let assoc = self.assoc;
        let set = self.set_of(line);
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|e| e.tag == line) {
            // Refill of a resident line (e.g. racing fills): keep the
            // existing usage bits, just refresh recency.
            let e = ways.remove(pos);
            ways.insert(0, e);
            return Evicted::None;
        }
        ways.insert(
            0,
            Entry {
                tag: line,
                from_prefetch,
                used: false,
            },
        );
        if ways.len() > assoc {
            let victim = ways.pop().expect("set cannot be empty here");
            if victim.from_prefetch && !victim.used {
                Evicted::UnusedPrefetch(victim.tag)
            } else {
                Evicted::Normal(victim.tag)
            }
        } else {
            Evicted::None
        }
    }

    /// Number of resident lines (for tests/diagnostics).
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets × 2 ways.
        Cache::new(&CacheConfig {
            size_bytes: 4 * crate::LINE_BYTES,
            assoc: 2,
            latency: 1,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(10, true).hit);
        c.fill(10, false);
        assert!(c.access(10, true).hit);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Lines 0, 2, 4 share set 0 (mask = 1).
        c.fill(0, false);
        c.fill(2, false);
        // Touch 0 → 2 becomes LRU.
        c.access(0, true);
        assert_eq!(c.fill(4, false), Evicted::Normal(2));
        assert!(c.contains(0));
        assert!(!c.contains(2));
        assert!(c.contains(4));
    }

    #[test]
    fn unused_prefetch_eviction_detected() {
        let mut c = tiny();
        c.fill(0, true); // Prefetch, never used.
        c.fill(2, false);
        c.access(2, true);
        assert_eq!(c.fill(4, false), Evicted::UnusedPrefetch(0));
    }

    #[test]
    fn used_prefetch_eviction_is_normal() {
        let mut c = tiny();
        c.fill(0, true);
        let h = c.access(0, true);
        assert!(h.hit && h.first_use_of_prefetch);
        // Second access is no longer a first use.
        assert!(!c.access(0, true).first_use_of_prefetch);
        c.fill(2, false);
        c.access(2, true);
        assert_eq!(c.fill(4, false), Evicted::Normal(0));
    }

    #[test]
    fn prefetch_probe_does_not_mark_used() {
        let mut c = tiny();
        c.fill(0, true);
        // A prefetch probe (demand = false) must not consume the first-use.
        assert!(!c.access(0, false).first_use_of_prefetch);
        assert!(c.access(0, true).first_use_of_prefetch);
    }

    #[test]
    fn refill_keeps_residency() {
        let mut c = tiny();
        c.fill(0, false);
        assert_eq!(c.fill(0, true), Evicted::None);
        assert_eq!(c.resident_lines(), 1);
    }
}
