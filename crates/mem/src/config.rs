//! Memory-system configuration.

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Set associativity (ways).
    pub assoc: u32,
    /// Load-to-use latency in cycles when served from this level.
    pub latency: u64,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide into whole sets.
    pub fn sets(&self) -> u64 {
        let lines = self.size_bytes / crate::LINE_BYTES;
        assert!(
            lines.is_multiple_of(self.assoc as u64) && lines > 0,
            "cache geometry must divide into whole sets"
        );
        lines / self.assoc as u64
    }
}

/// Full memory-system configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemConfig {
    pub l1: CacheConfig,
    pub l2: CacheConfig,
    pub llc: CacheConfig,
    /// Load-to-use latency when served from DRAM.
    pub dram_latency: u64,
    /// Minimum spacing between DRAM line transfers (bandwidth model): one
    /// offcore fill can start every `dram_service_interval` cycles.
    pub dram_service_interval: u64,
    /// Fill-buffer / MSHR entries shared by demand misses and prefetches.
    pub mshr_entries: usize,
    /// Enables the per-PC stride hardware prefetcher.
    pub stride_prefetcher: bool,
    /// Lookahead of the stride prefetcher, in strides.
    pub stride_lookahead: u64,
    /// Enables the L2 next-line hardware prefetcher.
    pub next_line_prefetcher: bool,
}

impl MemConfig {
    /// The paper's evaluation machine (Table 2): Xeon Gold 5218-class
    /// hierarchy. Use for full-scale runs.
    pub fn paper_machine() -> MemConfig {
        MemConfig {
            l1: CacheConfig {
                size_bytes: 32 << 10,
                assoc: 8,
                latency: 4,
            },
            l2: CacheConfig {
                size_bytes: 1 << 20,
                assoc: 16,
                latency: 14,
            },
            llc: CacheConfig {
                size_bytes: 22 << 20,
                assoc: 11,
                latency: 44,
            },
            dram_latency: 220,
            dram_service_interval: 4,
            mshr_entries: 16,
            stride_prefetcher: true,
            stride_lookahead: 8,
            next_line_prefetcher: true,
        }
    }

    /// A scaled-down hierarchy for fast experiments. Capacities shrink so
    /// that scaled workload footprints keep the paper's hit/miss behaviour;
    /// latencies shrink because this core is scalar and in-order (≈1 IPC)
    /// while the paper's Xeon is 4-wide out-of-order — dividing the memory
    /// latencies by roughly the width ratio restores the paper's
    /// compute-to-memory balance, keeping speedup *magnitudes* comparable.
    pub fn scaled_machine() -> MemConfig {
        MemConfig {
            l1: CacheConfig {
                size_bytes: 8 << 10,
                assoc: 8,
                latency: 2,
            },
            l2: CacheConfig {
                size_bytes: 64 << 10,
                assoc: 8,
                latency: 8,
            },
            llc: CacheConfig {
                size_bytes: 512 << 10,
                assoc: 16,
                latency: 20,
            },
            dram_latency: 120,
            dram_service_interval: 8,
            mshr_entries: 16,
            stride_prefetcher: true,
            stride_lookahead: 8,
            // Off by default: on random-access workloads a naive next-line
            // prefetcher only burns DRAM bandwidth (real parts throttle it;
            // our model has no such feedback).
            next_line_prefetcher: false,
        }
    }
}

impl Default for MemConfig {
    fn default() -> MemConfig {
        MemConfig::scaled_machine()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_counts() {
        let c = CacheConfig {
            size_bytes: 32 << 10,
            assoc: 8,
            latency: 4,
        };
        assert_eq!(c.sets(), 64);
    }

    #[test]
    fn paper_machine_matches_table2() {
        let m = MemConfig::paper_machine();
        assert_eq!(m.l2.size_bytes, 1 << 20);
        assert_eq!(m.llc.size_bytes, 22 << 20);
        assert!(m.dram_latency > m.llc.latency);
    }

    #[test]
    #[should_panic(expected = "whole sets")]
    fn bad_geometry_panics() {
        CacheConfig {
            size_bytes: 100,
            assoc: 3,
            latency: 1,
        }
        .sets();
    }
}
