//! Cache-hierarchy timing model for the APT-GET reproduction.
//!
//! This crate is the stand-in for the paper's Xeon memory system (Table 2).
//! It models exactly the mechanisms that prefetch *timeliness* depends on:
//!
//! * a three-level set-associative LRU cache hierarchy plus DRAM,
//! * miss-status-holding registers / *fill buffers* that coalesce requests
//!   to the same line — a demand load arriving while a software prefetch to
//!   its line is still in flight waits for the remaining latency and is
//!   counted as `LOAD_HIT_PRE.SW_PF` (the paper's *late prefetch* event),
//! * capacity/conflict eviction of prefetched-but-not-yet-used lines (the
//!   paper's *early prefetch* failure mode),
//! * simple hardware prefetchers (per-PC stride + L2 next-line), so that
//!   regular streaming accesses are covered in hardware and only *indirect*
//!   accesses remain delinquent, as on real Intel CPUs,
//! * PMU-style event counters mirroring the ones used in §2.3
//!   (`offcore_requests.all_data_rd`, `offcore_requests.demand_data_rd`,
//!   `LOAD_HIT_PRE.SW_PF`) plus stall-cycle attribution per serving level
//!   (for Fig. 5).

pub mod cache;
pub mod config;
pub mod counters;
pub mod hierarchy;
pub mod mshr;
pub mod prefetcher;

pub use config::{CacheConfig, MemConfig};
pub use counters::MemCounters;
pub use hierarchy::{AccessResult, Hierarchy, Level, ReqSource};

/// A physical byte address in the simulated machine.
pub type Addr = u64;
/// A simulated CPU cycle count.
pub type Cycle = u64;

/// Cache line size in bytes (fixed, as on all modern x86 parts).
pub const LINE_BYTES: u64 = 64;

/// The cache line index containing `addr`.
#[inline]
pub fn line_of(addr: Addr) -> u64 {
    addr / LINE_BYTES
}
