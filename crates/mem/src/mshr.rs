//! Miss-status-holding registers (a.k.a. fill buffers).
//!
//! Every outstanding fill — demand miss, software prefetch, or hardware
//! prefetch — occupies one entry until its data arrives. Requests to a line
//! already in flight coalesce onto the existing entry; this is precisely the
//! structure behind the `LOAD_HIT_PRE.SW_PF` *late prefetch* event the paper
//! uses in §2.3.

use crate::hierarchy::{Level, ReqSource};
use crate::Cycle;

/// One outstanding fill request.
#[derive(Debug, Clone, Copy)]
pub struct MshrEntry {
    /// Cache-line number being filled.
    pub line: u64,
    /// Cycle at which the data arrives.
    pub ready: Cycle,
    /// Who allocated the entry.
    pub source: ReqSource,
    /// The level that is serving the fill (DRAM for LLC misses).
    pub from_level: Level,
}

/// A fixed-capacity file of outstanding fills.
#[derive(Debug, Clone)]
pub struct MshrFile {
    entries: Vec<MshrEntry>,
    capacity: usize,
    peak: usize,
    window_peak: usize,
    /// ∫ occupancy d(cycle) since creation, advanced by [`MshrFile::advance`].
    occ_cycles: u64,
    last_advance: Cycle,
}

impl MshrFile {
    /// Creates an empty file with `capacity` entries.
    pub fn new(capacity: usize) -> MshrFile {
        MshrFile {
            entries: Vec::with_capacity(capacity),
            capacity,
            peak: 0,
            window_peak: 0,
            occ_cycles: 0,
            last_advance: 0,
        }
    }

    /// Looks up an in-flight request for `line`.
    pub fn find(&self, line: u64) -> Option<&MshrEntry> {
        self.entries.iter().find(|e| e.line == line)
    }

    /// Number of occupied entries.
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// High-water mark of [`MshrFile::occupancy`] over the file's lifetime.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Accumulates the occupancy-time integral up to `now`. Occupancy only
    /// changes inside `Hierarchy` calls, which all advance first, so the
    /// occupancy seen here held for the whole `[last_advance, now)` span.
    pub fn advance(&mut self, now: Cycle) {
        if now > self.last_advance {
            self.occ_cycles += self.entries.len() as u64 * (now - self.last_advance);
            self.last_advance = now;
        }
    }

    /// Cumulative ∫ occupancy d(cycle) as of the last [`MshrFile::advance`].
    pub fn occ_cycles(&self) -> u64 {
        self.occ_cycles
    }

    /// High-water mark since the last [`MshrFile::take_window_peak`] call.
    /// Resets to the *current* occupancy (still-outstanding fills keep
    /// counting toward the next window's peak).
    pub fn take_window_peak(&mut self) -> usize {
        let peak = self.window_peak;
        self.window_peak = self.entries.len();
        peak
    }

    /// Configured entry count.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// True if a new entry can be allocated.
    pub fn has_free(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Allocates an entry; returns `false` (dropping the request) when full.
    ///
    /// Callers must have checked [`MshrFile::find`] first — allocating a
    /// duplicate line is a logic error.
    pub fn allocate(&mut self, entry: MshrEntry) -> bool {
        debug_assert!(self.find(entry.line).is_none(), "duplicate MSHR entry");
        if self.entries.len() >= self.capacity {
            return false;
        }
        self.entries.push(entry);
        self.peak = self.peak.max(self.entries.len());
        self.window_peak = self.window_peak.max(self.entries.len());
        true
    }

    /// Removes and returns every entry whose data has arrived by `now`.
    pub fn drain_ready(&mut self, now: Cycle) -> Vec<MshrEntry> {
        let mut done = Vec::new();
        self.entries.retain(|e| {
            if e.ready <= now {
                done.push(*e);
                false
            } else {
                true
            }
        });
        done
    }

    /// Earliest completion time among outstanding entries, if any.
    ///
    /// A demand miss arriving with a full file stalls the core until this
    /// cycle, drains, and retries — see `Hierarchy::demand_access`.
    pub fn min_ready(&self) -> Option<Cycle> {
        self.entries.iter().map(|e| e.ready).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(line: u64, ready: Cycle) -> MshrEntry {
        MshrEntry {
            line,
            ready,
            source: ReqSource::Demand,
            from_level: Level::Dram,
        }
    }

    #[test]
    fn allocate_and_find() {
        let mut m = MshrFile::new(2);
        assert!(m.allocate(entry(1, 10)));
        assert!(m.find(1).is_some());
        assert!(m.find(2).is_none());
        assert_eq!(m.occupancy(), 1);
    }

    #[test]
    fn drops_when_full() {
        let mut m = MshrFile::new(1);
        assert!(m.allocate(entry(1, 10)));
        assert!(!m.allocate(entry(2, 10)));
        assert_eq!(m.occupancy(), 1);
    }

    #[test]
    fn drain_ready_splits_by_time() {
        let mut m = MshrFile::new(4);
        m.allocate(entry(1, 10));
        m.allocate(entry(2, 20));
        m.allocate(entry(3, 30));
        let done = m.drain_ready(20);
        let lines: Vec<u64> = done.iter().map(|e| e.line).collect();
        assert_eq!(lines, vec![1, 2]);
        assert_eq!(m.occupancy(), 1);
    }

    #[test]
    fn peak_is_a_high_water_mark() {
        let mut m = MshrFile::new(4);
        assert_eq!(m.peak(), 0);
        assert_eq!(m.capacity(), 4);
        m.allocate(entry(1, 10));
        m.allocate(entry(2, 20));
        assert_eq!(m.peak(), 2);
        // Draining lowers occupancy but never the peak.
        m.drain_ready(15);
        assert_eq!(m.occupancy(), 1);
        assert_eq!(m.peak(), 2);
        m.allocate(entry(3, 30));
        assert_eq!(m.peak(), 2);
        m.allocate(entry(4, 40));
        assert_eq!(m.peak(), 3);
    }

    #[test]
    fn advance_integrates_occupancy_over_time() {
        let mut m = MshrFile::new(4);
        m.advance(10);
        assert_eq!(m.occ_cycles(), 0, "empty file integrates to zero");
        m.allocate(entry(1, 100));
        m.allocate(entry(2, 100));
        m.advance(20); // 2 entries × 10 cycles
        assert_eq!(m.occ_cycles(), 20);
        m.drain_ready(100);
        m.advance(30); // still 20: drain happened at t=20's occupancy already integrated
        assert_eq!(m.occ_cycles(), 20);
        // Time never runs backwards; a stale advance is a no-op.
        m.advance(25);
        assert_eq!(m.occ_cycles(), 20);
    }

    #[test]
    fn window_peak_resets_to_current_occupancy() {
        let mut m = MshrFile::new(4);
        m.allocate(entry(1, 50));
        m.allocate(entry(2, 10));
        m.drain_ready(20);
        assert_eq!(m.take_window_peak(), 2);
        // Entry 1 is still outstanding, so the new window starts at 1.
        assert_eq!(m.occupancy(), 1);
        assert_eq!(m.take_window_peak(), 1);
        m.allocate(entry(3, 60));
        assert_eq!(m.take_window_peak(), 2);
        // Lifetime peak is untouched by window resets.
        assert_eq!(m.peak(), 2);
    }

    #[test]
    fn min_ready_tracks_earliest_completion() {
        let mut m = MshrFile::new(2);
        assert_eq!(m.min_ready(), None);
        m.allocate(entry(1, 100));
        m.allocate(entry(2, 40));
        assert_eq!(m.min_ready(), Some(40));
    }
}
