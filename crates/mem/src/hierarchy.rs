//! The assembled memory system: L1/L2/LLC + DRAM + MSHRs + HW prefetchers.
//!
//! # Timing model
//!
//! * Demand loads are *blocking*: the core is charged the full load-to-use
//!   latency of the serving level. Demand misses therefore never occupy an
//!   MSHR — by the time the core resumes, the fill has completed and been
//!   installed at every level.
//! * Prefetches (software and hardware) are *non-blocking*: they allocate an
//!   MSHR entry and complete in the background; the fill installs when
//!   simulated time passes the entry's ready cycle. A full MSHR file drops
//!   prefetches — the throttle that makes over-aggressive prefetching
//!   harmful, as in §2.3's distance-1024 experiment.
//! * A demand load to a line with an in-flight prefetch waits for the
//!   *remaining* latency (`LOAD_HIT_PRE.SW_PF` when the prefetch was
//!   software) — the paper's late-prefetch case.
//! * DRAM has finite bandwidth: one offcore fill may start every
//!   `dram_service_interval` cycles. Useless prefetches consume bandwidth
//!   and delay demand fills, reproducing the Table-1 slowdown at huge
//!   distances.
//! * Stores are write-allocate but never stall the core (store-buffer
//!   semantics); they perturb cache state and train the stride prefetcher.

use apt_trace::{PfDisposition, PfSource, TraceConfig, TraceReport, Tracer};

use crate::cache::{Cache, Evicted};
use crate::config::MemConfig;
use crate::counters::MemCounters;
use crate::line_of;
use crate::mshr::{MshrEntry, MshrFile};
use crate::prefetcher::{NextLinePrefetcher, StridePrefetcher};
use crate::{Addr, Cycle};

/// The memory-hierarchy level that served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    L1,
    L2,
    Llc,
    Dram,
}

impl Level {
    /// Short display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Level::L1 => "L1",
            Level::L2 => "L2",
            Level::Llc => "L3",
            Level::Dram => "DRAM",
        }
    }
}

/// Who created a fill request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqSource {
    Demand,
    SwPrefetch,
    HwPrefetch,
}

impl ReqSource {
    fn trace_source(self) -> PfSource {
        match self {
            ReqSource::Demand => PfSource::Demand,
            ReqSource::SwPrefetch => PfSource::Sw,
            ReqSource::HwPrefetch => PfSource::Hw,
        }
    }
}

/// Timing outcome of one demand access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Cycles until the value is usable by the core.
    pub latency: Cycle,
    /// The level that served the data (DRAM for fill-buffer waits).
    pub served: Level,
    /// The access coalesced onto an in-flight software prefetch.
    pub fb_hit_swpf: bool,
}

/// The full simulated memory system.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    cfg: MemConfig,
    l1: Cache,
    l2: Cache,
    llc: Cache,
    mshr: MshrFile,
    stride: StridePrefetcher,
    next_line: NextLinePrefetcher,
    /// Earliest cycle the DRAM channel can start a new line transfer.
    dram_free_at: Cycle,
    /// Event counters.
    pub counters: MemCounters,
    /// Structured-event tracer; inactive (single-branch hooks) by default.
    pub tracer: Tracer,
}

impl Hierarchy {
    /// Builds an empty hierarchy from `cfg`.
    pub fn new(cfg: &MemConfig) -> Hierarchy {
        Hierarchy {
            cfg: *cfg,
            l1: Cache::new(&cfg.l1),
            l2: Cache::new(&cfg.l2),
            llc: Cache::new(&cfg.llc),
            mshr: MshrFile::new(cfg.mshr_entries),
            stride: StridePrefetcher::new(cfg.stride_lookahead),
            next_line: NextLinePrefetcher,
            dram_free_at: 0,
            counters: MemCounters::default(),
            tracer: Tracer::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Replaces the tracer, enabling collection per `cfg`.
    pub fn set_trace(&mut self, cfg: TraceConfig) {
        self.tracer = Tracer::new(cfg);
    }

    /// Ends collection and returns everything the tracer gathered.
    pub fn take_trace(&mut self) -> TraceReport {
        self.tracer.take_report()
    }

    /// Installs fills whose data has arrived by `now`.
    pub fn drain(&mut self, now: Cycle) {
        apt_selfprof::prof_scope!("mem/hier/mshr_drain");
        // Integrate MSHR occupancy before it changes: every occupancy
        // mutation goes through a `Hierarchy` entry point that drains
        // first, so advancing here keeps the occupancy-time integral exact.
        self.mshr.advance(now);
        for e in self.mshr.drain_ready(now) {
            // The data became usable at `e.ready`, which may predate `now`;
            // stamp the fill with the ready cycle so timeliness slack is
            // measured from when the line could first have been used.
            self.tracer.fill(e.ready, e.line, e.source.trace_source());
            self.install_all_levels(e.line, true, now);
        }
    }

    fn install_all_levels(&mut self, line: u64, from_prefetch: bool, now: Cycle) {
        self.l1.fill(line, from_prefetch);
        self.l2.fill(line, from_prefetch);
        match self.llc.fill(line, from_prefetch) {
            Evicted::UnusedPrefetch(victim) => {
                self.counters.pf_evicted_unused += 1;
                self.tracer.eviction(now, victim, true);
            }
            Evicted::Normal(victim) => self.tracer.eviction(now, victim, false),
            Evicted::None => {}
        }
    }

    /// Reserves a DRAM transfer slot; returns the data-ready cycle.
    fn dram_fill_ready(&mut self, now: Cycle) -> Cycle {
        let start = self.dram_free_at.max(now);
        self.dram_free_at = start + self.cfg.dram_service_interval;
        start + self.cfg.dram_latency
    }

    /// A demand load from the core. `pc` is the load's program counter
    /// (used by the stride prefetcher).
    pub fn demand_load(&mut self, pc: u64, addr: Addr, now: Cycle) -> AccessResult {
        apt_selfprof::prof_scope!("mem/hier/demand_load");
        self.drain(now);
        self.counters.loads += 1;
        let line = line_of(addr);

        // Train the stride prefetcher on the demand stream.
        if self.cfg.stride_prefetcher {
            for target in self.stride.train(pc, addr) {
                self.hw_prefetch(target, now);
            }
        }

        // L1.
        let h = self.l1.access(line, true);
        if h.hit {
            if h.first_use_of_prefetch {
                self.counters.pf_used += 1;
                self.tracer.pf_first_use(now, pc, line, true);
            }
            self.counters.l1_hits += 1;
            return AccessResult {
                latency: self.cfg.l1.latency,
                served: Level::L1,
                fb_hit_swpf: false,
            };
        }

        // L2.
        let h = self.l2.access(line, true);
        if h.hit {
            if h.first_use_of_prefetch {
                self.counters.pf_used += 1;
                self.tracer.pf_first_use(now, pc, line, true);
            }
            self.counters.l2_hits += 1;
            self.l1.fill(line, false);
            let lat = self.cfg.l2.latency;
            self.counters.stall_l2 += lat - self.cfg.l1.latency;
            return AccessResult {
                latency: lat,
                served: Level::L2,
                fb_hit_swpf: false,
            };
        }

        // The L2 missed: the next-line prefetcher reacts to the miss stream.
        if self.cfg.next_line_prefetcher {
            let next = self.next_line.on_miss(line);
            self.hw_prefetch_line(next, now);
        }

        // LLC.
        let h = self.llc.access(line, true);
        if h.hit {
            if h.first_use_of_prefetch {
                self.counters.pf_used += 1;
                self.tracer.pf_first_use(now, pc, line, true);
            }
            self.counters.llc_hits += 1;
            self.l1.fill(line, false);
            self.l2.fill(line, false);
            let lat = self.cfg.llc.latency;
            self.counters.stall_llc += lat - self.cfg.l1.latency;
            return AccessResult {
                latency: lat,
                served: Level::Llc,
                fb_hit_swpf: false,
            };
        }

        // In-flight fill (fill-buffer hit)?
        if let Some(e) = self.mshr.find(line) {
            let wait = e.ready.saturating_sub(now);
            let swpf = e.source == ReqSource::SwPrefetch;
            if swpf {
                self.counters.fb_hits_swpf += 1;
            } else {
                self.counters.fb_hits_other += 1;
            }
            self.tracer.fb_hit(now, pc, line, swpf);
            let lat = wait + self.cfg.l1.latency;
            self.counters.stall_dram += lat - self.cfg.l1.latency;
            return AccessResult {
                latency: lat,
                served: Level::Dram,
                fb_hit_swpf: swpf,
            };
        }

        // Full miss: blocking DRAM fill.
        self.counters.demand_fills += 1;
        self.tracer.demand_fill(now, pc, line);
        let ready = self.dram_fill_ready(now);
        let lat = (ready - now) + self.cfg.l1.latency;
        self.install_all_levels(line, false, now);
        self.counters.stall_dram += lat - self.cfg.l1.latency;
        AccessResult {
            latency: lat,
            served: Level::Dram,
            fb_hit_swpf: false,
        }
    }

    /// A store from the core. Write-allocate, never stalls.
    pub fn store(&mut self, pc: u64, addr: Addr, now: Cycle) {
        apt_selfprof::prof_scope!("mem/hier/store");
        self.drain(now);
        self.counters.stores += 1;
        let line = line_of(addr);
        if self.cfg.stride_prefetcher {
            for target in self.stride.train(pc, addr) {
                self.hw_prefetch(target, now);
            }
        }
        if self.l1.access(line, true).hit {
            return;
        }
        if self.l2.access(line, true).hit {
            self.l1.fill(line, false);
            return;
        }
        if self.llc.access(line, true).hit {
            self.l1.fill(line, false);
            self.l2.fill(line, false);
            return;
        }
        if self.mshr.find(line).is_some() {
            return; // Merges with the in-flight fill.
        }
        // Write-allocate fill; the store buffer hides the latency, but the
        // transfer still consumes DRAM bandwidth.
        let _ = self.dram_fill_ready(now);
        self.install_all_levels(line, false, now);
    }

    /// A software `prefetch` instruction (fills towards L1, like
    /// `prefetcht0`). `pc` is the prefetch instruction's program counter,
    /// used for per-PC outcome attribution.
    pub fn sw_prefetch(&mut self, pc: u64, addr: Addr, now: Cycle) {
        apt_selfprof::prof_scope!("mem/hier/sw_prefetch");
        self.drain(now);
        self.counters.sw_pf_issued += 1;
        let line = line_of(addr);
        if self.l1.contains(line) || self.mshr.find(line).is_some() {
            self.counters.sw_pf_redundant += 1;
            self.tracer
                .sw_pf_issue(now, pc, line, PfDisposition::Redundant);
            return;
        }
        // Served on-chip: model the L2→L1 / LLC→L1 move as an immediate
        // install (its latency is far below one loop iteration).
        if self.l2.access(line, false).hit || self.llc.access(line, false).hit {
            self.counters.sw_pf_oncore += 1;
            self.tracer
                .sw_pf_issue(now, pc, line, PfDisposition::Oncore);
            self.l1.fill(line, true);
            self.l2.fill(line, true);
            return;
        }
        if !self.mshr.has_free() {
            self.counters.sw_pf_dropped_full += 1;
            self.tracer
                .sw_pf_issue(now, pc, line, PfDisposition::DroppedFull);
            self.tracer.mshr_drop(now, pc, line, PfSource::Sw);
            return;
        }
        let ready = self.dram_fill_ready(now);
        self.counters.sw_pf_offcore += 1;
        self.tracer
            .sw_pf_issue(now, pc, line, PfDisposition::Offcore);
        self.tracer.mshr_alloc(now, pc, line, PfSource::Sw, ready);
        let ok = self.mshr.allocate(MshrEntry {
            line,
            ready,
            source: ReqSource::SwPrefetch,
            from_level: Level::Dram,
        });
        debug_assert!(ok, "free entry was checked above");
    }

    /// Functionally warms the hierarchy with a demand access (SMARTS-style
    /// fast-forward): tag/LRU/usage-bit state moves exactly as a demand
    /// load/store would move it, but **nothing is counted** — no counters,
    /// no tracer events, no stalls, no MSHR allocation, no DRAM timing.
    /// The stride prefetcher is deliberately not trained either (warm
    /// accesses carry no PC); the detailed warmup interval preceding each
    /// measurement window re-trains it before anything is measured into
    /// the sample.
    pub fn warm_access(&mut self, addr: Addr) {
        let line = line_of(addr);
        if self.l1.access(line, true).hit {
            return;
        }
        if self.l2.access(line, true).hit {
            self.l1.fill(line, false);
            return;
        }
        if self.llc.access(line, true).hit {
            self.l1.fill(line, false);
            self.l2.fill(line, false);
            return;
        }
        if self.mshr.find(line).is_some() {
            return; // An in-flight fill (from a detailed window) covers it.
        }
        self.l1.fill(line, false);
        self.l2.fill(line, false);
        let _ = self.llc.fill(line, false);
    }

    /// Functionally warms the hierarchy with a software prefetch: the line
    /// is installed (towards L1) with its prefetched bit set, so a later
    /// detailed window observes the same resident-line state an exact run
    /// would have. State-only, like [`Hierarchy::warm_access`].
    pub fn warm_prefetch(&mut self, addr: Addr) {
        let line = line_of(addr);
        if self.l1.contains(line) || self.mshr.find(line).is_some() {
            return;
        }
        if self.l2.access(line, false).hit || self.llc.access(line, false).hit {
            self.l1.fill(line, true);
            self.l2.fill(line, true);
            return;
        }
        self.l1.fill(line, true);
        self.l2.fill(line, true);
        let _ = self.llc.fill(line, true);
    }

    /// Issues a hardware prefetch for the line containing `addr`.
    fn hw_prefetch(&mut self, addr: Addr, now: Cycle) {
        self.hw_prefetch_line(line_of(addr), now);
    }

    fn hw_prefetch_line(&mut self, line: u64, now: Cycle) {
        if self.l1.contains(line) || self.mshr.find(line).is_some() {
            return;
        }
        if self.l2.access(line, false).hit || self.llc.access(line, false).hit {
            self.l1.fill(line, true);
            self.l2.fill(line, true);
            return;
        }
        if !self.mshr.has_free() {
            self.tracer.mshr_drop(now, 0, line, PfSource::Hw);
            return;
        }
        let ready = self.dram_fill_ready(now);
        self.counters.hw_pf_offcore += 1;
        self.tracer.mshr_alloc(now, 0, line, PfSource::Hw, ready);
        let ok = self.mshr.allocate(MshrEntry {
            line,
            ready,
            source: ReqSource::HwPrefetch,
            from_level: Level::Dram,
        });
        debug_assert!(ok, "free entry was checked above");
    }

    /// Current MSHR occupancy (diagnostics).
    pub fn mshr_occupancy(&self) -> usize {
        self.mshr.occupancy()
    }

    /// Peak MSHR occupancy over the simulation so far.
    pub fn mshr_peak(&self) -> usize {
        self.mshr.peak()
    }

    /// Configured MSHR entry count.
    pub fn mshr_capacity(&self) -> usize {
        self.mshr.capacity()
    }

    /// Closes a telemetry window at `now`: advances the occupancy-time
    /// integral and returns `(cumulative ∫occupancy d cycle, window peak)`,
    /// resetting the window peak for the next window.
    pub fn mshr_window_stats(&mut self, now: Cycle) -> (u64, usize) {
        self.mshr.advance(now);
        (self.mshr.occ_cycles(), self.mshr.take_window_peak())
    }

    /// Exports this hierarchy's [`MemCounters`] plus MSHR pressure gauges
    /// into `registry` (once, at end of simulation).
    pub fn export_metrics(&self, registry: &apt_metrics::Registry, labels: &[(&str, &str)]) {
        if !registry.is_enabled() {
            return;
        }
        self.counters.export_metrics(registry, labels);
        registry
            .gauge(
                "apt_mem_mshr_peak_occupancy",
                "Peak fill-buffer occupancy of the last exported simulation",
                labels,
            )
            .set(self.mshr.peak() as f64);
        registry
            .gauge(
                "apt_mem_mshr_capacity",
                "Configured fill-buffer entries",
                labels,
            )
            .set(self.mshr.capacity() as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_hw_cfg() -> MemConfig {
        MemConfig {
            stride_prefetcher: false,
            next_line_prefetcher: false,
            ..MemConfig::scaled_machine()
        }
    }

    #[test]
    fn cold_miss_then_hits() {
        let cfg = no_hw_cfg();
        let mut h = Hierarchy::new(&cfg);
        let r = h.demand_load(0x400000, 0x10000, 0);
        assert_eq!(r.served, Level::Dram);
        assert_eq!(r.latency, cfg.dram_latency + cfg.l1.latency);
        let r2 = h.demand_load(0x400000, 0x10008, 100);
        assert_eq!(r2.served, Level::L1);
        assert_eq!(r2.latency, cfg.l1.latency);
        assert_eq!(h.counters.demand_fills, 1);
        assert_eq!(h.counters.l1_hits, 1);
    }

    #[test]
    fn timely_prefetch_turns_miss_into_l1_hit() {
        let cfg = no_hw_cfg();
        let mut h = Hierarchy::new(&cfg);
        h.sw_prefetch(0x400020, 0x20000, 0);
        // Long after the fill latency: the line is resident.
        let r = h.demand_load(0x400000, 0x20000, cfg.dram_latency + 10);
        assert_eq!(r.served, Level::L1);
        assert_eq!(h.counters.sw_pf_offcore, 1);
        assert_eq!(h.counters.pf_used, 1);
        assert_eq!(h.counters.fb_hits_swpf, 0);
    }

    #[test]
    fn late_prefetch_hits_fill_buffer() {
        let cfg = no_hw_cfg();
        let mut h = Hierarchy::new(&cfg);
        h.sw_prefetch(0x400020, 0x20000, 0);
        // Demand arrives 10 cycles later — most of the latency remains.
        let r = h.demand_load(0x400000, 0x20000, 10);
        assert!(r.fb_hit_swpf);
        assert_eq!(r.latency, cfg.dram_latency - 10 + cfg.l1.latency);
        assert_eq!(h.counters.fb_hits_swpf, 1);
        // The line still installs once ready.
        let r2 = h.demand_load(0x400000, 0x20000, cfg.dram_latency + 20);
        assert_eq!(r2.served, Level::L1);
    }

    #[test]
    fn redundant_prefetch_counted() {
        let cfg = no_hw_cfg();
        let mut h = Hierarchy::new(&cfg);
        h.sw_prefetch(0x400020, 0x20000, 0);
        h.sw_prefetch(0x400020, 0x20000, 1); // In flight → redundant.
        assert_eq!(h.counters.sw_pf_redundant, 1);
        h.drain(cfg.dram_latency + 5);
        h.sw_prefetch(0x400020, 0x20000, cfg.dram_latency + 6); // Resident → redundant.
        assert_eq!(h.counters.sw_pf_redundant, 2);
        assert_eq!(h.counters.sw_pf_offcore, 1);
    }

    #[test]
    fn mshr_full_drops_prefetches() {
        let mut cfg = no_hw_cfg();
        cfg.mshr_entries = 2;
        let mut h = Hierarchy::new(&cfg);
        h.sw_prefetch(0x400020, 0x10000, 0);
        h.sw_prefetch(0x400020, 0x20000, 0);
        h.sw_prefetch(0x400020, 0x30000, 0);
        assert_eq!(h.counters.sw_pf_dropped_full, 1);
        assert_eq!(h.counters.sw_pf_offcore, 2);
    }

    #[test]
    fn dram_bandwidth_serialises_fills() {
        let cfg = no_hw_cfg();
        let mut h = Hierarchy::new(&cfg);
        // Two back-to-back cold misses at the same cycle: the second fill
        // starts one service interval later.
        let r1 = h.demand_load(0x400000, 0x10000, 0);
        let r2 = h.demand_load(0x400004, 0x20000, 0);
        assert_eq!(r1.latency, cfg.dram_latency + cfg.l1.latency);
        assert_eq!(
            r2.latency,
            cfg.dram_latency + cfg.dram_service_interval + cfg.l1.latency
        );
    }

    #[test]
    fn stride_prefetcher_covers_streaming_loads() {
        let cfg = MemConfig {
            next_line_prefetcher: false,
            ..MemConfig::scaled_machine()
        };
        let mut h = Hierarchy::new(&cfg);
        let pc = 0x400100;
        let mut now = 0;
        let mut dram_served = 0;
        // Stream over 64 lines with a 64-byte stride.
        for i in 0..64u64 {
            let r = h.demand_load(pc, 0x100000 + i * 64, now);
            if r.served == Level::Dram {
                dram_served += 1;
            }
            now += r.latency + 50; // Plenty of time between accesses.
        }
        // After training, the stride prefetcher hides almost all misses.
        assert!(
            dram_served <= 16,
            "stride prefetcher should cover the stream, got {dram_served} DRAM hits"
        );
        assert!(h.counters.hw_pf_offcore > 20);
    }

    #[test]
    fn store_allocates_without_stalling_counters() {
        let cfg = no_hw_cfg();
        let mut h = Hierarchy::new(&cfg);
        h.store(0x400000, 0x30000, 0);
        assert_eq!(h.counters.stores, 1);
        assert_eq!(h.counters.loads, 0);
        let r = h.demand_load(0x400004, 0x30000, 10);
        assert_eq!(r.served, Level::L1);
    }

    #[test]
    fn window_stats_integrate_between_closes() {
        let cfg = no_hw_cfg();
        let mut h = Hierarchy::new(&cfg);
        // One offcore prefetch outstanding from cycle 0.
        h.sw_prefetch(0x400020, 0x20000, 0);
        let (occ, peak) = h.mshr_window_stats(100);
        assert_eq!(occ, 100, "1 entry × 100 cycles");
        assert_eq!(peak, 1);
        // Next window: the fill lands at dram_latency, so the entry only
        // occupies part of the window.
        let (occ2, peak2) = h.mshr_window_stats(cfg.dram_latency + 500);
        assert!(occ2 >= occ, "integral is cumulative");
        assert!(occ2 <= cfg.dram_latency + 500);
        assert_eq!(peak2, 1, "entry was outstanding at window start");
        // The drain advances first (entry still resident for 100 cycles),
        // then removes it; the rest of the window integrates nothing, but
        // the window peak still records the entry that started the window.
        h.drain(cfg.dram_latency + 600);
        let (occ3, peak3) = h.mshr_window_stats(cfg.dram_latency + 1000);
        assert_eq!(occ3, occ2 + 100);
        assert_eq!(peak3, 1);
        // A fully quiet window reports a zero peak.
        let (occ4, peak4) = h.mshr_window_stats(cfg.dram_latency + 2000);
        assert_eq!(occ4, occ3);
        assert_eq!(peak4, 0);
    }

    #[test]
    fn level_names() {
        assert_eq!(Level::Llc.name(), "L3");
        assert_eq!(Level::Dram.name(), "DRAM");
    }
}
