//! Property tests of the memory hierarchy against simple reference models.

use apt_mem::cache::Cache;
use apt_mem::{CacheConfig, Hierarchy, Level, MemConfig};
use apt_trace::TraceConfig;
use proptest::prelude::*;

/// Reference model: fully-explicit LRU per set.
#[derive(Default)]
struct RefCache {
    sets: std::collections::HashMap<u64, Vec<u64>>,
    set_mask: u64,
    assoc: usize,
}

impl RefCache {
    fn new(sets: u64, assoc: usize) -> RefCache {
        RefCache {
            sets: Default::default(),
            set_mask: sets - 1,
            assoc,
        }
    }
    fn access(&mut self, line: u64) -> bool {
        let set = self.sets.entry(line & self.set_mask).or_default();
        if let Some(p) = set.iter().position(|&l| l == line) {
            set.remove(p);
            set.insert(0, line);
            true
        } else {
            false
        }
    }
    fn fill(&mut self, line: u64) {
        let assoc = self.assoc;
        let set = self.sets.entry(line & self.set_mask).or_default();
        if let Some(p) = set.iter().position(|&l| l == line) {
            set.remove(p);
        }
        set.insert(0, line);
        set.truncate(assoc);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tag cache matches an independently written LRU model on random
    /// access/fill traces.
    #[test]
    fn cache_matches_reference_lru(ops in prop::collection::vec((any::<bool>(), 0u64..64), 1..400)) {
        let cfg = CacheConfig { size_bytes: 16 * 64, assoc: 4, latency: 1 };
        let mut c = Cache::new(&cfg);
        let mut r = RefCache::new(cfg.sets(), 4);
        for (is_fill, line) in ops {
            if is_fill {
                c.fill(line, false);
                r.fill(line);
            } else {
                let hit = c.access(line, true).hit;
                prop_assert_eq!(hit, r.access(line), "line {}", line);
            }
        }
    }

    /// Demand loads: hit levels are consistent — after an access, the line
    /// is in L1, so an immediate re-access hits L1.
    #[test]
    fn reaccess_always_hits_l1(addrs in prop::collection::vec(0u64..(1 << 22), 1..200)) {
        let cfg = MemConfig {
            stride_prefetcher: false,
            next_line_prefetcher: false,
            ..MemConfig::scaled_machine()
        };
        let mut h = Hierarchy::new(&cfg);
        let mut now = 0;
        for a in addrs {
            let addr = 0x1000_0000 + a * 8;
            let r1 = h.demand_load(0x400000, addr, now);
            now += r1.latency;
            let r2 = h.demand_load(0x400000, addr, now);
            prop_assert_eq!(r2.served, Level::L1);
            now += r2.latency;
        }
    }

    /// Counter conservation: loads = hits at each level + fills + FB hits.
    #[test]
    fn load_counters_conserve(addrs in prop::collection::vec(0u64..(1 << 16), 1..300)) {
        let cfg = MemConfig::scaled_machine();
        let mut h = Hierarchy::new(&cfg);
        let mut now = 0;
        for a in addrs {
            let r = h.demand_load(0x400000, 0x1000_0000 + a * 64, now);
            now += r.latency + 1;
        }
        let c = h.counters;
        prop_assert_eq!(
            c.loads,
            c.l1_hits + c.l2_hits + c.llc_hits + c.demand_fills
                + c.fb_hits_swpf + c.fb_hits_other
        );
    }

    /// Prefetch → wait → demand is always an L1/L2 hit (never a fill).
    #[test]
    fn waited_prefetch_always_hits(lines in prop::collection::vec(0u64..(1 << 14), 1..100)) {
        let cfg = MemConfig {
            stride_prefetcher: false,
            next_line_prefetcher: false,
            ..MemConfig::scaled_machine()
        };
        let mut h = Hierarchy::new(&cfg);
        let mut now = 0;
        for l in lines {
            let addr = 0x1000_0000 + l * 64;
            h.sw_prefetch(0x400020, addr, now);
            now += cfg.dram_latency + cfg.dram_service_interval + 1;
            let r = h.demand_load(0x400000, addr, now);
            prop_assert!(r.served == Level::L1 || r.served == Level::L2,
                "served {:?}", r.served);
            now += r.latency;
        }
    }

    /// Prefetch-outcome conservation: on random interleavings of software
    /// prefetches and demand loads, every issued prefetch is classified
    /// into exactly one of timely / late / early / useless / redundant /
    /// dropped, and the classes reconcile with the PMU counters
    /// (`sw_pf_issued`, `fb_hits_swpf`, `sw_pf_dropped_full`).
    #[test]
    fn prefetch_outcomes_conserve_pmu_counters(
        ops in prop::collection::vec(
            (any::<bool>(), 0u64..(1 << 10), 0u64..500), 1..400),
        mshr_entries in 2usize..8,
    ) {
        let cfg = MemConfig {
            stride_prefetcher: false,
            next_line_prefetcher: false,
            mshr_entries,
            ..MemConfig::scaled_machine()
        };
        let mut h = Hierarchy::new(&cfg);
        h.set_trace(TraceConfig::outcomes());
        let mut now = 0;
        for (is_pf, l, gap) in ops {
            let addr = 0x1000_0000 + l * 64;
            if is_pf {
                h.sw_prefetch(0x400020, addr, now);
                now += 1 + gap;
            } else {
                let r = h.demand_load(0x400000, addr, now);
                now += r.latency + gap;
            }
        }
        h.drain(now + cfg.dram_latency + 1);
        let c = h.counters;
        let table = h.take_trace().outcomes;
        prop_assert!(table.is_conserved());
        let t = table.total;
        prop_assert_eq!(t.issued, c.sw_pf_issued);
        prop_assert_eq!(
            t.issued,
            t.timely + t.late + t.early + t.useless + t.redundant + t.dropped
        );
        prop_assert_eq!(t.late, c.fb_hits_swpf);
        prop_assert_eq!(t.dropped, c.sw_pf_dropped_full);
        prop_assert_eq!(t.redundant, c.sw_pf_redundant);
        // Early ⊆ PMU unused-prefetch evictions (the PMU counter also
        // includes hardware prefetches; here HW prefetchers are off, but
        // L1/L2 evictions of still-LLC-resident lines are not counted).
        prop_assert!(t.early <= c.pf_evicted_unused);
    }

    /// The DRAM bandwidth model never reorders: issuing the same trace
    /// twice gives identical latencies (determinism).
    #[test]
    fn hierarchy_is_deterministic(addrs in prop::collection::vec(0u64..(1 << 18), 1..200)) {
        let cfg = MemConfig::scaled_machine();
        let run = || {
            let mut h = Hierarchy::new(&cfg);
            let mut now = 0;
            let mut out = Vec::new();
            for &a in &addrs {
                let r = h.demand_load(0x400004, 0x1000_0000 + a * 8, now);
                out.push(r.latency);
                now += r.latency;
            }
            out
        };
        prop_assert_eq!(run(), run());
    }
}
