//! Quick calibration: microbenchmark distance sweep + one workload.
use apt_workloads::micro::{self, Complexity, MicroParams};
use aptget::{ainsworth_jones_optimize, execute, AptGet, PipelineConfig};
use std::time::Instant;

fn main() {
    let cfg = PipelineConfig::default();
    for cx in [Complexity::Low, Complexity::Medium, Complexity::High] {
        let p = MicroParams {
            outer: 400,
            inner: 256,
            complexity: cx,
            ..Default::default()
        };
        let w = micro::build(p);
        let t0 = Instant::now();
        let base = execute(&w.module, w.image.clone(), &w.calls, &cfg.measure_sim).unwrap();
        let wall = t0.elapsed();
        print!(
            "{:8} base: cyc={:>12} ipc={:.3} mb={:.2} wall={:?} | ",
            cx.label(),
            base.stats.cycles,
            base.stats.ipc(),
            base.stats.memory_bound_fraction(),
            wall
        );
        for d in [1u64, 4, 16, 32, 64, 1024] {
            let (m, _r) = ainsworth_jones_optimize(&w.module, d);
            let opt = execute(&m, w.image.clone(), &w.calls, &cfg.measure_sim).unwrap();
            assert_eq!(opt.rets, base.rets);
            print!(
                "d{}={:.2} ",
                d,
                base.stats.cycles as f64 / opt.stats.cycles as f64
            );
        }
        // APT-GET
        let apt = AptGet::new(cfg);
        let o = apt.optimize(&w.module, w.image.clone(), &w.calls).unwrap();
        let opt = execute(&o.module, w.image.clone(), &w.calls, &cfg.measure_sim).unwrap();
        let h = o.analysis.hints.first();
        println!(
            "| APT={:.2} (dist={:?} site={:?})",
            base.stats.cycles as f64 / opt.stats.cycles as f64,
            h.map(|h| h.distance),
            h.map(|h| h.site)
        );
    }
}
