//! `apteval` — the parallel evaluation-campaign runner.
//!
//! Runs the paper's (workload × variant) comparison matrix across worker
//! threads with on-disk profile caching:
//!
//! ```text
//! apteval                                # full registry, all cores, cached
//! apteval --jobs 4 --scale 0.05          # bounded parallelism, small inputs
//! apteval --workloads BFS,IS --stats     # subset + wall-time/cache stats
//! apteval --no-cache                     # force re-profiling
//! apteval --csv-out campaign.csv         # CSV copy of the table
//! apteval --trace-out campaign.json      # merged per-worker Chrome trace
//! apteval --progress                     # live progress line on stderr
//! apteval --metrics-out m.prom           # Prometheus exposition dump
//! apteval --metrics-addr 127.0.0.1:9184  # live /metrics scrape endpoint
//! apteval --bench-out BENCH_4.json       # snapshot for `bench-gate`
//! ```
//!
//! The comparison table is byte-identical at any `--jobs` value and any
//! cache state; only the `--stats` section reflects scheduling and cache
//! traffic. `$APT_JOBS` sets the default worker count, `$APT_PROFILE_CACHE`
//! the default cache directory.

use std::process::ExitCode;

use apt_bench::eval::{campaign_cli, CampaignArgs};

fn main() -> ExitCode {
    let parsed = CampaignArgs::parse(std::env::args().skip(1));
    let args = match parsed {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("usage: apteval {}", CampaignArgs::USAGE);
            return ExitCode::FAILURE;
        }
    };
    match campaign_cli(&args) {
        Ok(_) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
