//! `aptgetsim` — command-line driver for the APT-GET reproduction.
//!
//! ```text
//! aptgetsim list                         # registered workloads
//! aptgetsim run BFS [--scale S] [--seed N]
//!                                        # baseline vs A&J vs APT-GET
//! aptgetsim run BFS --explain            # + pipeline phases, per-hint
//!                                        #   decisions, prefetch outcomes
//! aptgetsim run BFS --trace-out t.json   # + Chrome trace-event JSON
//! aptgetsim hints BFS [--scale S]        # print the hint file (§3.4 output)
//! aptgetsim ir BFS [--optimized]         # dump the workload's IR
//! aptgetsim export BFS [--out FILE] [--dram-scale N]
//!                      [--hint-gen G] [--prefetch-distance D]
//!                                        # profiling run → `perf script`
//!                                        #   text; --dram-scale emulates
//!                                        #   slower memory (drift source);
//!                                        #   --hint-gen traces per-PC
//!                                        #   prefetch outcomes and tags the
//!                                        #   dump with generation G (ledger
//!                                        #   feedback); --prefetch-distance
//!                                        #   injects A&J prefetches first,
//!                                        #   emulating the deployed regime
//! aptgetsim ingest FILE [--db PATH] [--label STR] [--pc-offset HEX]
//!                                        # parse a dump into the profile DB
//! aptgetsim drift [--db PATH] [--fail-threshold TV]
//!                                        # newest epoch vs merged history;
//!                                        #   nonzero exit above threshold
//! aptgetsim bench-gate SNAP.json --baseline BASE.json [--tolerance T] [--phases]
//!                                        # fail on benchmark regression;
//!                                        #   --phases gates each detected
//!                                        #   execution phase by name
//! aptgetsim perf-history DIR [--out FILE] [--tolerance T]
//!                                        # BENCH_*.json snapshots in DIR →
//!                                        #   self-contained HTML trend
//!                                        #   report with gate-tolerance
//!                                        #   corridors (default
//!                                        #   perf-history.html)
//! aptgetsim report BFS [--out FILE]      # one workload's matrix as a
//!                                        #   self-contained HTML timeline
//!                                        #   report (default report.html)
//! aptgetsim serve-metrics BFS [--addr HOST:PORT]
//!                                        # run one workload's matrix and
//!                                        #   serve /metrics until killed
//! aptgetsim serve [--addr HOST:PORT] [--db-dir DIR] [--hints-dir DIR]
//!                 [--reopt-threshold TV] [--epoch-cap N] [--metrics-addr HOST:PORT]
//!                 [--oplog-dir DIR] [--efficacy-window N] [--efficacy-threshold D]
//!                                        # adaptive reoptimization daemon:
//!                                        #   ingest uploaded profiles,
//!                                        #   detect drift, hot-swap hints;
//!                                        #   every request span + decision
//!                                        #   lands on a JSONL op-log
//!                                        #   (default serve-oplog); uploads
//!                                        #   carrying tagged prefetch
//!                                        #   outcomes feed the per-tenant
//!                                        #   efficacy ledger, and a hint
//!                                        #   generation whose timely share
//!                                        #   regresses by more than D over
//!                                        #   N epochs is auto-rolled-back
//! aptgetsim upload FILE --tenant NAME [--label STR] [--addr HOST:PORT] [--retry N]
//!                                        # stream a perf-script dump to a
//!                                        #   running daemon as one epoch;
//!                                        #   --retry backs off and redials
//!                                        #   on refused/reset connections,
//!                                        #   reusing one trace ID
//! aptgetsim serve-status --tenant NAME [--addr HOST:PORT] [--json]
//!                                        # a tenant's shard + hint +
//!                                        #   per-generation efficacy state
//!                                        #   (+ a warning line when the
//!                                        #   committer queue is backlogged);
//!                                        #   --json emits the same facts as
//!                                        #   a machine-readable document
//! aptgetsim serve-dash [--oplog-dir DIR] [--db-dir DIR] [--out FILE]
//!                      [--trace-out FILE]
//!                      [--metrics-addr HOST:PORT | --metrics-file FILE]
//!                                        # validate the daemon's op-log and
//!                                        #   render the operator dashboard
//!                                        #   (self-contained HTML, default
//!                                        #   serve-dash.html); --db-dir also
//!                                        #   joins the per-tenant efficacy
//!                                        #   ledgers as a generation-diff
//!                                        #   section; --trace-out also
//!                                        #   exports daemon spans as
//!                                        #   Chrome trace-event JSON
//! aptgetsim rollback --tenant NAME [--hints-dir DIR] [--oplog-dir DIR]
//!                                        # repoint current.hints to the
//!                                        #   previous hot-swap generation
//!                                        #   (audited on the op-log)
//! aptgetsim campaign [--jobs N] ...      # full comparison matrix in
//!                                        #   parallel (alias of `apteval`)
//! ```
//!
//! `hints` also accepts `--db PATH` to derive the hint file from a
//! profile database instead of an in-process profiling run — the same
//! path the daemon's reoptimizer takes, so the two outputs are
//! byte-comparable.

use std::process::ExitCode;
use std::sync::Arc;

use apt_bench::eval::{campaign_cli, run_campaign, CampaignArgs, CampaignConfig};
use apt_bench::report::render_campaign_report;
use apt_bench::{compare_variants_traced, fx, pct, AJ_STATIC_DISTANCE};
use apt_metrics::{gate, BenchSnapshot, GateConfig, MetricsServer, Registry};
use apt_profile::hintfile;
use apt_serve::{
    chrome_trace, read_oplog_dir, render_dashboard, trace_hex, upload_backlog_warning, Client,
    Daemon, EfficacyLedger, FnReoptimizer, HintSwapper, Obs, OpKind, OpLogConfig, ServeConfig,
    QUEUE_WARN_DEFAULT,
};
use apt_workloads::registry::{all_workloads, by_name};
use aptget::{
    ainsworth_jones_optimize, chrome_trace_json, detect_drift, execute, execute_traced,
    format_explain, parse_file, AggregateProfile, AptGet, DriftConfig, IdentityRemap, OffsetRemap,
    PipelineConfig, ProfileDb, TraceConfig,
};

/// Ring capacity for `--trace-out`: enough to keep the tail of a scaled
/// run without unbounded memory.
const TRACE_RING_CAPACITY: usize = 1 << 16;

struct Args {
    command: String,
    /// First positional: a workload name, or the dump file for `ingest`.
    workload: Option<String>,
    scale: f64,
    seed: u64,
    optimized: bool,
    explain: bool,
    trace_out: Option<String>,
    out: Option<String>,
    db: Option<String>,
    label: Option<String>,
    pc_offset: Option<u64>,
    /// `drift`: exit nonzero when any branch drifts past this distance.
    fail_threshold: Option<f64>,
    /// `bench-gate`: the committed baseline snapshot.
    baseline: Option<String>,
    /// `bench-gate`: relative regression tolerance.
    tolerance: Option<f64>,
    /// `bench-gate`: also gate each detected execution phase.
    phases: bool,
    /// `serve-metrics`/`serve`/`upload`/`serve-status`: bind or dial address.
    addr: Option<String>,
    /// `serve`: per-tenant shard directory.
    db_dir: Option<String>,
    /// `serve`/`rollback`: hint hot-swap directory.
    hints_dir: Option<String>,
    /// `upload`/`serve-status`/`rollback`: tenant (= workload) name.
    tenant: Option<String>,
    /// `serve`: drift threshold that triggers reoptimization.
    reopt_threshold: Option<f64>,
    /// `serve`: epochs kept per shard (0 = unlimited).
    epoch_cap: Option<usize>,
    /// `serve`: optional /metrics scrape address.
    metrics_addr: Option<String>,
    /// `export`: DRAM-latency multiplier (emulates a machine move).
    dram_scale: Option<u64>,
    /// `serve`/`serve-dash`/`rollback`: op-log directory.
    oplog_dir: Option<String>,
    /// `upload`: redial attempts after a refused/reset connection.
    retry: u32,
    /// `serve-dash`: a saved /metrics scrape to join into the page.
    metrics_file: Option<String>,
    /// `serve`: epochs of evidence a generation needs before the
    /// regression policy judges it.
    efficacy_window: Option<u64>,
    /// `serve`: timely-share regression beyond this triggers rollback.
    efficacy_threshold: Option<f64>,
    /// `serve-status`: emit the machine-readable JSON report.
    json: bool,
    /// `export`: tag the dump with this hint generation and attach the
    /// traced per-PC prefetch-outcome records (ledger feedback).
    hint_gen: Option<u64>,
    /// `export`: inject Ainsworth-Jones prefetches at this distance
    /// before the run (emulates the deployed hint regime).
    prefetch_distance: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or("missing command")?;
    let mut out = Args {
        command,
        workload: None,
        scale: 0.25,
        seed: 42,
        optimized: false,
        explain: false,
        trace_out: None,
        out: None,
        db: None,
        label: None,
        pc_offset: None,
        fail_threshold: None,
        baseline: None,
        tolerance: None,
        phases: false,
        addr: None,
        db_dir: None,
        hints_dir: None,
        tenant: None,
        reopt_threshold: None,
        epoch_cap: None,
        metrics_addr: None,
        dram_scale: None,
        oplog_dir: None,
        retry: 0,
        metrics_file: None,
        efficacy_window: None,
        efficacy_threshold: None,
        json: false,
        hint_gen: None,
        prefetch_distance: None,
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                out.scale = args
                    .next()
                    .ok_or("--scale needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --scale: {e}"))?;
            }
            "--seed" => {
                out.seed = args
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--optimized" => out.optimized = true,
            "--explain" => out.explain = true,
            "--trace-out" => {
                out.trace_out = Some(args.next().ok_or("--trace-out needs a path")?);
            }
            "--out" => {
                out.out = Some(args.next().ok_or("--out needs a path")?);
            }
            "--db" => {
                out.db = Some(args.next().ok_or("--db needs a path")?);
            }
            "--label" => {
                out.label = Some(args.next().ok_or("--label needs a value")?);
            }
            "--pc-offset" => {
                let v = args.next().ok_or("--pc-offset needs a hex value")?;
                let digits = v.strip_prefix("0x").unwrap_or(&v);
                out.pc_offset = Some(
                    u64::from_str_radix(digits, 16).map_err(|e| format!("bad --pc-offset: {e}"))?,
                );
            }
            "--fail-threshold" => {
                out.fail_threshold = Some(
                    args.next()
                        .ok_or("--fail-threshold needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --fail-threshold: {e}"))?,
                );
            }
            "--baseline" => {
                out.baseline = Some(args.next().ok_or("--baseline needs a path")?);
            }
            "--tolerance" => {
                out.tolerance = Some(
                    args.next()
                        .ok_or("--tolerance needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --tolerance: {e}"))?,
                );
            }
            "--phases" => out.phases = true,
            "--addr" => {
                out.addr = Some(args.next().ok_or("--addr needs HOST:PORT")?);
            }
            "--db-dir" => {
                out.db_dir = Some(args.next().ok_or("--db-dir needs a directory")?);
            }
            "--hints-dir" => {
                out.hints_dir = Some(args.next().ok_or("--hints-dir needs a directory")?);
            }
            "--tenant" => {
                out.tenant = Some(args.next().ok_or("--tenant needs a name")?);
            }
            "--reopt-threshold" => {
                out.reopt_threshold = Some(
                    args.next()
                        .ok_or("--reopt-threshold needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --reopt-threshold: {e}"))?,
                );
            }
            "--epoch-cap" => {
                out.epoch_cap = Some(
                    args.next()
                        .ok_or("--epoch-cap needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --epoch-cap: {e}"))?,
                );
            }
            "--metrics-addr" => {
                out.metrics_addr = Some(args.next().ok_or("--metrics-addr needs HOST:PORT")?);
            }
            "--dram-scale" => {
                out.dram_scale = Some(
                    args.next()
                        .ok_or("--dram-scale needs a multiplier")?
                        .parse()
                        .map_err(|e| format!("bad --dram-scale: {e}"))?,
                );
            }
            "--oplog-dir" => {
                out.oplog_dir = Some(args.next().ok_or("--oplog-dir needs a directory")?);
            }
            "--retry" => {
                out.retry = args
                    .next()
                    .ok_or("--retry needs a count")?
                    .parse()
                    .map_err(|e| format!("bad --retry: {e}"))?;
            }
            "--metrics-file" => {
                out.metrics_file = Some(args.next().ok_or("--metrics-file needs a path")?);
            }
            "--efficacy-window" => {
                out.efficacy_window = Some(
                    args.next()
                        .ok_or("--efficacy-window needs an epoch count")?
                        .parse()
                        .map_err(|e| format!("bad --efficacy-window: {e}"))?,
                );
            }
            "--efficacy-threshold" => {
                out.efficacy_threshold = Some(
                    args.next()
                        .ok_or("--efficacy-threshold needs a share delta")?
                        .parse()
                        .map_err(|e| format!("bad --efficacy-threshold: {e}"))?,
                );
            }
            "--json" => out.json = true,
            "--hint-gen" => {
                out.hint_gen = Some(
                    args.next()
                        .ok_or("--hint-gen needs a generation number")?
                        .parse()
                        .map_err(|e| format!("bad --hint-gen: {e}"))?,
                );
            }
            "--prefetch-distance" => {
                out.prefetch_distance = Some(
                    args.next()
                        .ok_or("--prefetch-distance needs an iteration count")?
                        .parse()
                        .map_err(|e| format!("bad --prefetch-distance: {e}"))?,
                );
            }
            w if out.workload.is_none() && !w.starts_with('-') => {
                out.workload = Some(w.to_string());
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(out)
}

/// A fresh nonzero trace ID for one `upload` invocation: pid and the
/// wall clock through a splitmix64 finalizer. Not cryptographic — it
/// only has to be distinct across concurrent uploaders.
fn fresh_trace_id() -> u64 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let mut z = nanos ^ (u64::from(std::process::id()) << 32);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    z.max(1)
}

/// True for the transport failures worth redialing: the daemon was
/// down or dropped the connection before answering. Server rejections
/// and protocol violations would fail identically on a retry.
fn connection_dropped(e: &apt_serve::ClientError) -> bool {
    use std::io::ErrorKind;
    match e {
        apt_serve::ClientError::Io(io) => matches!(
            io.kind(),
            ErrorKind::ConnectionRefused
                | ErrorKind::ConnectionReset
                | ErrorKind::ConnectionAborted
        ),
        _ => false,
    }
}

/// Scrapes `http://{addr}/metrics` over a raw TCP GET (no HTTP client
/// in the tree) and strips the response headers.
fn scrape_metrics(addr: &str) -> Result<String, String> {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr)
        .map_err(|e| format!("could not connect to {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(format!("GET /metrics HTTP/1.0\r\nHost: {addr}\r\n\r\n").as_bytes())
        .map_err(|e| format!("could not send scrape to {addr}: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("could not read scrape from {addr}: {e}"))?;
    match response.split_once("\r\n\r\n") {
        Some((_, body)) => Ok(body.to_string()),
        None => Err(format!("{addr} sent no HTTP header/body separator")),
    }
}

fn main() -> ExitCode {
    // The campaign command has its own flag set (shared with `apteval`);
    // hand it the raw arguments before the single-workload parser runs.
    let mut raw = std::env::args().skip(1);
    if raw.next().as_deref() == Some("campaign") {
        let args = match CampaignArgs::parse(raw) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("error: {e}\n");
                eprintln!("usage: aptgetsim campaign {}", CampaignArgs::USAGE);
                return ExitCode::FAILURE;
            }
        };
        return match campaign_cli(&args) {
            Ok(_) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("usage: aptgetsim <list|run|hints|ir|export|ingest|drift|bench-gate|perf-history|report|serve-metrics|serve|upload|serve-status|serve-dash|rollback|campaign> [WORKLOAD|FILE|DIR] [--scale S] [--seed N] [--optimized] [--explain] [--trace-out PATH] [--out PATH] [--db PATH] [--label STR] [--pc-offset HEX] [--fail-threshold TV] [--baseline PATH] [--tolerance T] [--phases] [--addr HOST:PORT] [--db-dir DIR] [--hints-dir DIR] [--tenant NAME] [--reopt-threshold TV] [--epoch-cap N] [--metrics-addr HOST:PORT] [--dram-scale N] [--oplog-dir DIR] [--retry N] [--metrics-file PATH] [--efficacy-window N] [--efficacy-threshold D] [--json] [--hint-gen G] [--prefetch-distance D]");
            return ExitCode::FAILURE;
        }
    };

    match args.command.as_str() {
        "list" => {
            println!("{:<12} nested-loop delinquent loads", "name");
            for w in all_workloads() {
                println!("{:<12} {}", w.name, if w.nested { "yes" } else { "no" });
            }
            ExitCode::SUCCESS
        }
        "export" => {
            let Some(name) = args.workload.as_deref() else {
                eprintln!("error: `export` needs a workload name");
                return ExitCode::FAILURE;
            };
            let Some(spec) = by_name(name) else {
                eprintln!("error: unknown workload `{name}` (try `aptgetsim list`)");
                return ExitCode::FAILURE;
            };
            let w = spec.build(args.scale, args.seed);
            let mut cfg = PipelineConfig::default();
            if let Some(s) = args.dram_scale {
                cfg.profile_sim.mem.dram_latency *= s;
            }
            // --prefetch-distance emulates the deployed hint regime: the
            // run executes with AJ prefetches injected at that distance,
            // so its outcome records reflect those hints' efficacy.
            let module = match args.prefetch_distance {
                Some(d) => ainsworth_jones_optimize(&w.module, d).0,
                None => w.module.clone(),
            };
            // --hint-gen makes this a feedback dump: trace per-PC
            // prefetch outcomes and tag the export with the generation
            // the run executed under, so the daemon's efficacy ledger
            // can attribute the shares.
            let (dump, lbr, pebs) = match args.hint_gen {
                Some(generation) => {
                    let (exec, report) = match execute_traced(
                        &module,
                        w.image,
                        &w.calls,
                        &cfg.profile_sim,
                        TraceConfig::outcomes(),
                    ) {
                        Ok(r) => r,
                        Err(e) => {
                            eprintln!("error: {e}");
                            return ExitCode::FAILURE;
                        }
                    };
                    let text = apt_cpu::perfscript::export_perf_script_tagged(
                        &exec.profile,
                        &exec.stats,
                        generation,
                        &report.outcomes,
                    );
                    (
                        text,
                        exec.profile.lbr_samples.len(),
                        exec.profile.pebs.len(),
                    )
                }
                None => {
                    let exec = match execute(&module, w.image, &w.calls, &cfg.profile_sim) {
                        Ok(e) => e,
                        Err(e) => {
                            eprintln!("error: {e}");
                            return ExitCode::FAILURE;
                        }
                    };
                    let text = apt_cpu::perfscript::export_perf_script(&exec.profile, &exec.stats);
                    (
                        text,
                        exec.profile.lbr_samples.len(),
                        exec.profile.pebs.len(),
                    )
                }
            };
            match &args.out {
                Some(path) => {
                    if let Err(e) = std::fs::write(path, &dump) {
                        eprintln!("error: could not write {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                    eprintln!("[{lbr} LBR snapshots, {pebs} PEBS records → {path}]");
                }
                None => print!("{dump}"),
            }
            ExitCode::SUCCESS
        }
        "ingest" => {
            let Some(file) = args.workload.as_deref() else {
                eprintln!("error: `ingest` needs a perf-script file");
                return ExitCode::FAILURE;
            };
            let ing = match args.pc_offset {
                Some(base) => parse_file(file, &OffsetRemap { base }),
                None => parse_file(file, &IdentityRemap),
            };
            let ing = match ing {
                Ok(i) => i,
                Err(e) => {
                    eprintln!("error: {file}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let agg = AggregateProfile::from_profile(&ing.profile, &ing.stats_or_default());
            let db_path = args
                .db
                .clone()
                .unwrap_or_else(|| ProfileDb::default_path().display().to_string());
            let mut db = ProfileDb::load_or_empty(&db_path);
            let label = args.label.clone().unwrap_or_else(|| {
                std::path::Path::new(file)
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_else(|| file.to_string())
            });
            db.push_epoch(label.clone(), agg);
            if let Err(e) = db.save(&db_path) {
                eprintln!("error: could not write {db_path}: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "ingested `{label}`: {} events ({} LBR snapshots, {} PEBS records), \
                 {} unknown skipped, {} unmapped",
                ing.events,
                ing.profile.lbr_samples.len(),
                ing.profile.pebs.len(),
                ing.skipped_unknown,
                ing.skipped_unmapped
            );
            println!("database {db_path}: {} epoch(s)", db.epochs.len());
            ExitCode::SUCCESS
        }
        "drift" => {
            let db_path = args
                .db
                .clone()
                .unwrap_or_else(|| ProfileDb::default_path().display().to_string());
            let db = ProfileDb::load_or_empty(&db_path);
            if db.epochs.len() < 2 {
                eprintln!(
                    "error: drift needs at least 2 epochs in {db_path} (found {})",
                    db.epochs.len()
                );
                return ExitCode::FAILURE;
            }
            let newest = db.epochs.last().expect("non-empty");
            let report = detect_drift(
                &db.baseline(),
                &newest.agg,
                &newest.label,
                db.epochs.len() - 1,
                &DriftConfig::default(),
            );
            print!("{}", report.render());
            if let Some(threshold) = args.fail_threshold {
                if report.exceeds(threshold) {
                    eprintln!(
                        "error: drift exceeds threshold {threshold}: \
                         max TV distance {:.4}, max distance delta {:.4}",
                        report.max_tv_distance(),
                        report.max_distance_delta()
                    );
                    return ExitCode::FAILURE;
                }
                println!(
                    "drift within threshold {threshold} (max TV {:.4}, max Δdistance {:.4})",
                    report.max_tv_distance(),
                    report.max_distance_delta()
                );
            }
            ExitCode::SUCCESS
        }
        "bench-gate" => {
            let Some(snap_path) = args.workload.as_deref() else {
                eprintln!("error: `bench-gate` needs a snapshot path (from `--bench-out`)");
                return ExitCode::FAILURE;
            };
            let base_path = args.baseline.as_deref().unwrap_or("bench/baseline.json");
            let read = |path: &str| -> Result<BenchSnapshot, String> {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("could not read {path}: {e}"))?;
                BenchSnapshot::from_json(&text).map_err(|e| format!("{path}: {e}"))
            };
            let (baseline, current) = match (read(base_path), read(snap_path)) {
                (Ok(b), Ok(c)) => (b, c),
                (Err(e), _) | (_, Err(e)) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let cfg = GateConfig {
                tolerance: args.tolerance.unwrap_or(GateConfig::default().tolerance),
                per_phase: args.phases,
                ..GateConfig::default()
            };
            let report = gate(&baseline, &current, &cfg);
            print!("{}", report.render());
            if report.passed() {
                println!("bench-gate: PASS ({} vs {base_path})", snap_path);
                ExitCode::SUCCESS
            } else {
                eprintln!("bench-gate: FAIL ({} vs {base_path})", snap_path);
                ExitCode::FAILURE
            }
        }
        "perf-history" => {
            let Some(dir) = args.workload.as_deref() else {
                eprintln!("error: `perf-history` needs a snapshot directory");
                return ExitCode::FAILURE;
            };
            let points = match apt_bench::history::load_dir(std::path::Path::new(dir)) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if points.len() < 2 {
                eprintln!(
                    "error: perf-history needs at least 2 BENCH_*.json snapshots in {dir} \
                     (found {})",
                    points.len()
                );
                return ExitCode::FAILURE;
            }
            let tolerance = args.tolerance.unwrap_or(GateConfig::default().tolerance);
            let annotations = apt_bench::history::trend_annotations(&points, tolerance);
            for a in &annotations {
                println!(
                    "regression: {} {} since {}: {:.4} -> {:.4} ({:+.1}%)",
                    a.workload,
                    a.metric,
                    a.at,
                    a.first,
                    a.current,
                    a.regression * 100.0
                );
            }
            let path = args.out.as_deref().unwrap_or("perf-history.html");
            let html = apt_bench::history::render_perf_history(&points, tolerance);
            if let Err(e) = std::fs::write(path, html) {
                eprintln!("error: could not write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "[perf-history: {} snapshot(s), {} regression annotation(s), written to {path}]",
                points.len(),
                annotations.len()
            );
            ExitCode::SUCCESS
        }
        "report" => {
            let Some(name) = args.workload.as_deref() else {
                eprintln!("error: `report` needs a workload name");
                return ExitCode::FAILURE;
            };
            // One workload's [baseline, A&J, APT-GET] triple, serial and
            // uncached: the report depends only on simulated results.
            let cfg = CampaignConfig {
                workloads: vec![name.to_string()],
                cache: None,
                collect_outcomes: true,
                ..CampaignConfig::new(args.scale, args.seed, 1)
            };
            let report = match run_campaign(&cfg) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!("{}", report.table_text());
            let path = args.out.as_deref().unwrap_or("report.html");
            if let Err(e) = std::fs::write(path, render_campaign_report(&report)) {
                eprintln!("error: could not write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("[timeline report written to {path}]");
            ExitCode::SUCCESS
        }
        "serve-metrics" => {
            let Some(name) = args.workload.as_deref() else {
                eprintln!("error: `serve-metrics` needs a workload name");
                return ExitCode::FAILURE;
            };
            let registry = Registry::new();
            let addr = args.addr.as_deref().unwrap_or("127.0.0.1:9184");
            let server = match MetricsServer::bind(addr, registry.clone()) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: could not bind {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!("serving http://{}/metrics (Ctrl-C to stop)", server.addr());
            let cfg = CampaignConfig {
                workloads: vec![name.to_string()],
                cache: None,
                metrics: registry,
                collect_outcomes: true,
                ..CampaignConfig::new(args.scale, args.seed, 1)
            };
            match run_campaign(&cfg) {
                Ok(report) => println!("{}", report.table_text()),
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
            // Keep the scrape endpoint alive; the process is the server.
            loop {
                std::thread::sleep(std::time::Duration::from_secs(3600));
            }
        }
        "serve" => {
            let addr = args.addr.as_deref().unwrap_or("127.0.0.1:9185");
            let db_dir = args.db_dir.clone().unwrap_or_else(|| "serve-db".into());
            let hints_dir = args
                .hints_dir
                .clone()
                .unwrap_or_else(|| "serve-hints".into());
            let oplog_dir = args
                .oplog_dir
                .clone()
                .unwrap_or_else(|| "serve-oplog".into());
            let registry = Registry::new();
            let mut cfg = ServeConfig::new(addr, &db_dir, &hints_dir);
            cfg.registry = registry.clone();
            cfg.oplog = Some(OpLogConfig::new(&oplog_dir));
            if let Some(t) = args.reopt_threshold {
                cfg.reopt_threshold = t;
            }
            if let Some(c) = args.epoch_cap {
                cfg.epoch_cap = c;
            }
            if let Some(w) = args.efficacy_window {
                cfg.efficacy_window = w;
            }
            if let Some(t) = args.efficacy_threshold {
                cfg.efficacy_threshold = t;
            }
            // Tenants are workload names: reoptimization rebuilds the
            // tenant's module (same scale/seed as `hints --db`) and runs
            // the shard's merged history through `optimize_from_db` —
            // the daemon and the offline verb can never disagree.
            let (scale, seed) = (args.scale, args.seed);
            let reopt = Arc::new(FnReoptimizer(move |tenant: &str, db: &ProfileDb| {
                let spec = by_name(tenant)
                    .ok_or_else(|| format!("tenant `{tenant}` is not a registered workload"))?;
                let w = spec.build(scale, seed);
                let opt = AptGet::new(PipelineConfig::default()).optimize_from_db(&w.module, db);
                Ok(hintfile::serialize_hints(&opt.analysis.hints).into_bytes())
            }));
            let _metrics_server = match &args.metrics_addr {
                Some(maddr) => match MetricsServer::bind(maddr.as_str(), registry) {
                    Ok(s) => {
                        println!("metrics on http://{}/metrics", s.addr());
                        Some(s)
                    }
                    Err(e) => {
                        eprintln!("error: could not bind metrics on {maddr}: {e}");
                        return ExitCode::FAILURE;
                    }
                },
                None => None,
            };
            let daemon = match Daemon::start(cfg, reopt) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("error: could not bind {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!(
                "apt-serve listening on {} (shards in {db_dir}, hints in {hints_dir}, \
                 op-log in {oplog_dir}; Ctrl-C to stop)",
                daemon.addr()
            );
            // The process is the daemon; uploads arrive on its threads.
            loop {
                std::thread::sleep(std::time::Duration::from_secs(3600));
            }
        }
        "upload" => {
            let Some(file) = args.workload.as_deref() else {
                eprintln!("error: `upload` needs a perf-script file");
                return ExitCode::FAILURE;
            };
            let Some(tenant) = args.tenant.as_deref() else {
                eprintln!("error: `upload` needs --tenant NAME");
                return ExitCode::FAILURE;
            };
            let addr = args.addr.as_deref().unwrap_or("127.0.0.1:9185");
            let label = args.label.clone().unwrap_or_else(|| {
                std::path::Path::new(file)
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_else(|| file.to_string())
            });
            // One trace ID for the whole upload, retries included, so the
            // daemon's op-log shows every redial under the same request.
            let trace = fresh_trace_id();
            let mut backoff = std::time::Duration::from_millis(200);
            let mut attempt = 0u32;
            let reply = loop {
                attempt += 1;
                let reply = Client::connect(addr)
                    .and_then(|mut c| c.upload_file_traced(tenant, &label, trace, file));
                match reply {
                    Err(e) if attempt <= args.retry && connection_dropped(&e) => {
                        eprintln!(
                            "upload attempt {attempt}/{} failed (trace {}): {e}; \
                             retrying in {:?}",
                            args.retry + 1,
                            trace_hex(trace),
                            backoff
                        );
                        std::thread::sleep(backoff);
                        backoff = (backoff * 2).min(std::time::Duration::from_secs(5));
                    }
                    other => break other,
                }
            };
            match reply {
                Ok(r) => {
                    println!("{} (trace {})", r.message, trace_hex(r.trace));
                    if let Some(warn) = upload_backlog_warning(&r, QUEUE_WARN_DEFAULT) {
                        eprintln!("{warn}");
                    }
                    match r.generation {
                        Some(g) => println!(
                            "reoptimized: hint generation {g} hot-swapped \
                             (max TV {:.4})",
                            r.max_tv
                        ),
                        None => println!("no reoptimization (max TV {:.4})", r.max_tv),
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e} (trace {})", trace_hex(trace));
                    ExitCode::FAILURE
                }
            }
        }
        "serve-status" => {
            let Some(tenant) = args.tenant.as_deref() else {
                eprintln!("error: `serve-status` needs --tenant NAME");
                return ExitCode::FAILURE;
            };
            let addr = args.addr.as_deref().unwrap_or("127.0.0.1:9185");
            let as_json = args.json;
            match Client::connect(addr).and_then(|mut c| {
                if as_json {
                    c.status_json(tenant)
                } else {
                    c.status(tenant)
                }
            }) {
                Ok(report) => {
                    print!("{report}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "serve-dash" => {
            let oplog_dir = args
                .oplog_dir
                .clone()
                .unwrap_or_else(|| "serve-oplog".into());
            let records = match read_oplog_dir(std::path::Path::new(&oplog_dir)) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: op-log {oplog_dir} failed validation: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if records.is_empty() {
                eprintln!("error: {oplog_dir} holds no op-log records");
                return ExitCode::FAILURE;
            }
            let metrics_text = if let Some(path) = &args.metrics_file {
                match std::fs::read_to_string(path) {
                    Ok(t) => Some(t),
                    Err(e) => {
                        eprintln!("error: could not read {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            } else if let Some(maddr) = &args.metrics_addr {
                match scrape_metrics(maddr) {
                    Ok(t) => Some(t),
                    Err(e) => {
                        eprintln!("error: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            } else {
                None
            };
            // With --db-dir, every `<tenant>.aptel` ledger beside the
            // shards joins the page as the generation-diff section.
            let mut ledgers: Vec<(String, EfficacyLedger)> = Vec::new();
            if let Some(db_dir) = &args.db_dir {
                if let Ok(entries) = std::fs::read_dir(db_dir) {
                    for entry in entries.flatten() {
                        let path = entry.path();
                        if path.extension().and_then(|e| e.to_str()) != Some("aptel") {
                            continue;
                        }
                        let Some(tenant) = path.file_stem().and_then(|s| s.to_str()) else {
                            continue;
                        };
                        ledgers.push((tenant.to_string(), EfficacyLedger::load_or_empty(&path)));
                    }
                }
                ledgers.sort_by(|a, b| a.0.cmp(&b.0));
            }
            let out_path = args.out.as_deref().unwrap_or("serve-dash.html");
            let page = render_dashboard(&records, metrics_text.as_deref(), &ledgers);
            if let Err(e) = std::fs::write(out_path, page) {
                eprintln!("error: could not write {out_path}: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "[dashboard: {} op-log record(s) from {oplog_dir}, {} efficacy ledger(s) \
                 → {out_path}]",
                records.len(),
                ledgers.len()
            );
            if let Some(trace_path) = &args.trace_out {
                if let Err(e) = std::fs::write(trace_path, chrome_trace(&records)) {
                    eprintln!("error: could not write {trace_path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("[daemon spans written to {trace_path}]");
            }
            ExitCode::SUCCESS
        }
        "rollback" => {
            let Some(tenant) = args.tenant.as_deref() else {
                eprintln!("error: `rollback` needs --tenant NAME");
                return ExitCode::FAILURE;
            };
            let hints_dir = args
                .hints_dir
                .clone()
                .unwrap_or_else(|| "serve-hints".into());
            let dir = std::path::Path::new(&hints_dir).join(tenant);
            let swapper = match HintSwapper::open(&dir) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: could not open {}: {e}", dir.display());
                    return ExitCode::FAILURE;
                }
            };
            let note = "operator rollback via aptgetsim";
            let from_gen = swapper.current_generation().unwrap_or(0);
            match swapper.rollback(note) {
                Ok(Some(gen)) => {
                    println!("rolled back {tenant} to hint generation {gen}");
                    // Audit on the daemon's op-log when one is present —
                    // rollbacks are exactly the events an operator later
                    // wants on the dashboard's decision table.
                    let oplog_dir =
                        std::path::Path::new(args.oplog_dir.as_deref().unwrap_or("serve-oplog"))
                            .to_path_buf();
                    if oplog_dir.is_dir() {
                        match Obs::new(
                            Arc::new(apt_selfprof::MonotonicClock::new()),
                            Some(OpLogConfig::new(&oplog_dir)),
                        ) {
                            Ok(obs) => obs.record(OpKind::Rollback {
                                tenant: tenant.to_string(),
                                from_gen,
                                to_gen: gen,
                                note: note.to_string(),
                            }),
                            Err(e) => eprintln!(
                                "warning: could not append to op-log {}: {e}",
                                oplog_dir.display()
                            ),
                        }
                    }
                    ExitCode::SUCCESS
                }
                Ok(None) => {
                    eprintln!("error: {tenant} has no previous generation to roll back to");
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "run" | "hints" | "ir" => {
            let Some(name) = args.workload.as_deref() else {
                eprintln!("error: `{}` needs a workload name", args.command);
                return ExitCode::FAILURE;
            };
            let Some(spec) = by_name(name) else {
                eprintln!("error: unknown workload `{name}` (try `aptgetsim list`)");
                return ExitCode::FAILURE;
            };
            let w = spec.build(args.scale, args.seed);
            let cfg = PipelineConfig::default();
            match args.command.as_str() {
                "run" => {
                    // Outcome attribution is cheap; the event ring is only
                    // worth paying for when the events end up in a file.
                    let trace_cfg = if args.trace_out.is_some() {
                        TraceConfig::full(TRACE_RING_CAPACITY)
                    } else if args.explain {
                        TraceConfig::outcomes()
                    } else {
                        TraceConfig::off()
                    };
                    let (cmp, opt, spans, stats, trace) =
                        compare_variants_traced(&w, &cfg, trace_cfg);
                    println!("workload {name} (scale {}, seed {})", args.scale, args.seed);
                    println!(
                        "  baseline: {:>12} cycles, IPC {:.2}, {} memory-bound, MPKI {:.2}",
                        cmp.baseline.cycles,
                        cmp.baseline.ipc(),
                        pct(cmp.baseline.memory_bound_fraction()),
                        cmp.baseline.mpki()
                    );
                    for (vname, s) in &cmp.variants {
                        println!(
                            "  {:<9} {:>12} cycles  → {}  (instr ×{:.2}, MPKI {:.2})",
                            format!("{vname}:"),
                            s.cycles,
                            fx(cmp.baseline.cycles as f64 / s.cycles as f64),
                            s.instructions as f64 / cmp.baseline.instructions as f64,
                            s.mpki()
                        );
                    }
                    println!("  A&J static distance: {AJ_STATIC_DISTANCE}");
                    for h in &opt.analysis.hints {
                        println!(
                            "  hint: {} → distance {}, site {:?}, fanout {}",
                            h.pc, h.distance, h.site, h.fanout
                        );
                    }
                    for n in &opt.analysis.notes {
                        println!("  note: {n}");
                    }
                    if args.explain {
                        println!();
                        print!("{}", format_explain(&opt, &spans, Some((&stats, &trace))));
                    }
                    if let Some(path) = &args.trace_out {
                        let json = chrome_trace_json(&spans, Some(&trace));
                        if let Err(e) = std::fs::write(path, json) {
                            eprintln!("error: could not write {path}: {e}");
                            return ExitCode::FAILURE;
                        }
                        println!("[trace written to {path}]");
                    }
                    ExitCode::SUCCESS
                }
                "hints" => {
                    let apt = AptGet::new(cfg);
                    // With --db, derive from recorded profile history —
                    // the exact computation the serve daemon runs, so
                    // the output is byte-comparable to a hot-swapped
                    // `current.hints`.
                    if let Some(db_path) = &args.db {
                        let db = ProfileDb::load_or_empty(db_path);
                        if db.epochs.is_empty() {
                            eprintln!("error: {db_path} has no epochs");
                            return ExitCode::FAILURE;
                        }
                        let opt = apt.optimize_from_db(&w.module, &db);
                        print!("{}", hintfile::serialize_hints(&opt.analysis.hints));
                        return ExitCode::SUCCESS;
                    }
                    match apt.optimize(&w.module, w.image.clone(), &w.calls) {
                        Ok(opt) => {
                            print!("{}", hintfile::serialize_hints(&opt.analysis.hints));
                            ExitCode::SUCCESS
                        }
                        Err(e) => {
                            eprintln!("error: {e}");
                            ExitCode::FAILURE
                        }
                    }
                }
                "ir" => {
                    let module = if args.optimized {
                        let apt = AptGet::new(cfg);
                        match apt.optimize(&w.module, w.image.clone(), &w.calls) {
                            Ok(o) => o.module,
                            Err(e) => {
                                eprintln!("error: {e}");
                                return ExitCode::FAILURE;
                            }
                        }
                    } else {
                        w.module
                    };
                    print!("{}", apt_lir::print::module_to_string(&module));
                    ExitCode::SUCCESS
                }
                _ => unreachable!(),
            }
        }
        other => {
            eprintln!("error: unknown command `{other}`");
            ExitCode::FAILURE
        }
    }
}
