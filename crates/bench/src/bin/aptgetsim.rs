//! `aptgetsim` — command-line driver for the APT-GET reproduction.
//!
//! ```text
//! aptgetsim list                         # registered workloads
//! aptgetsim run BFS [--scale S] [--seed N]
//!                                        # baseline vs A&J vs APT-GET
//! aptgetsim run BFS --explain            # + pipeline phases, per-hint
//!                                        #   decisions, prefetch outcomes
//! aptgetsim run BFS --trace-out t.json   # + Chrome trace-event JSON
//! aptgetsim hints BFS [--scale S]        # print the hint file (§3.4 output)
//! aptgetsim ir BFS [--optimized]         # dump the workload's IR
//! aptgetsim campaign [--jobs N] ...      # full comparison matrix in
//!                                        #   parallel (alias of `apteval`)
//! ```

use std::process::ExitCode;

use apt_bench::eval::{campaign_cli, CampaignArgs};
use apt_bench::{compare_variants_traced, fx, pct, AJ_STATIC_DISTANCE};
use apt_profile::hintfile;
use apt_workloads::registry::{all_workloads, by_name};
use aptget::{chrome_trace_json, format_explain, AptGet, PipelineConfig, TraceConfig};

/// Ring capacity for `--trace-out`: enough to keep the tail of a scaled
/// run without unbounded memory.
const TRACE_RING_CAPACITY: usize = 1 << 16;

struct Args {
    command: String,
    workload: Option<String>,
    scale: f64,
    seed: u64,
    optimized: bool,
    explain: bool,
    trace_out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or("missing command")?;
    let mut out = Args {
        command,
        workload: None,
        scale: 0.25,
        seed: 42,
        optimized: false,
        explain: false,
        trace_out: None,
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                out.scale = args
                    .next()
                    .ok_or("--scale needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --scale: {e}"))?;
            }
            "--seed" => {
                out.seed = args
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--optimized" => out.optimized = true,
            "--explain" => out.explain = true,
            "--trace-out" => {
                out.trace_out = Some(args.next().ok_or("--trace-out needs a path")?);
            }
            w if out.workload.is_none() && !w.starts_with('-') => {
                out.workload = Some(w.to_string());
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(out)
}

fn main() -> ExitCode {
    // The campaign command has its own flag set (shared with `apteval`);
    // hand it the raw arguments before the single-workload parser runs.
    let mut raw = std::env::args().skip(1);
    if raw.next().as_deref() == Some("campaign") {
        let args = match CampaignArgs::parse(raw) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("error: {e}\n");
                eprintln!("usage: aptgetsim campaign {}", CampaignArgs::USAGE);
                return ExitCode::FAILURE;
            }
        };
        return match campaign_cli(&args) {
            Ok(_) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("usage: aptgetsim <list|run|hints|ir|campaign> [WORKLOAD] [--scale S] [--seed N] [--optimized] [--explain] [--trace-out PATH]");
            return ExitCode::FAILURE;
        }
    };

    match args.command.as_str() {
        "list" => {
            println!("{:<12} nested-loop delinquent loads", "name");
            for w in all_workloads() {
                println!("{:<12} {}", w.name, if w.nested { "yes" } else { "no" });
            }
            ExitCode::SUCCESS
        }
        "run" | "hints" | "ir" => {
            let Some(name) = args.workload.as_deref() else {
                eprintln!("error: `{}` needs a workload name", args.command);
                return ExitCode::FAILURE;
            };
            let Some(spec) = by_name(name) else {
                eprintln!("error: unknown workload `{name}` (try `aptgetsim list`)");
                return ExitCode::FAILURE;
            };
            let w = spec.build(args.scale, args.seed);
            let cfg = PipelineConfig::default();
            match args.command.as_str() {
                "run" => {
                    // Outcome attribution is cheap; the event ring is only
                    // worth paying for when the events end up in a file.
                    let trace_cfg = if args.trace_out.is_some() {
                        TraceConfig::full(TRACE_RING_CAPACITY)
                    } else if args.explain {
                        TraceConfig::outcomes()
                    } else {
                        TraceConfig::off()
                    };
                    let (cmp, opt, spans, stats, trace) =
                        compare_variants_traced(&w, &cfg, trace_cfg);
                    println!("workload {name} (scale {}, seed {})", args.scale, args.seed);
                    println!(
                        "  baseline: {:>12} cycles, IPC {:.2}, {} memory-bound, MPKI {:.2}",
                        cmp.baseline.cycles,
                        cmp.baseline.ipc(),
                        pct(cmp.baseline.memory_bound_fraction()),
                        cmp.baseline.mpki()
                    );
                    for (vname, s) in &cmp.variants {
                        println!(
                            "  {:<9} {:>12} cycles  → {}  (instr ×{:.2}, MPKI {:.2})",
                            format!("{vname}:"),
                            s.cycles,
                            fx(cmp.baseline.cycles as f64 / s.cycles as f64),
                            s.instructions as f64 / cmp.baseline.instructions as f64,
                            s.mpki()
                        );
                    }
                    println!("  A&J static distance: {AJ_STATIC_DISTANCE}");
                    for h in &opt.analysis.hints {
                        println!(
                            "  hint: {} → distance {}, site {:?}, fanout {}",
                            h.pc, h.distance, h.site, h.fanout
                        );
                    }
                    for n in &opt.analysis.notes {
                        println!("  note: {n}");
                    }
                    if args.explain {
                        println!();
                        print!("{}", format_explain(&opt, &spans, Some((&stats, &trace))));
                    }
                    if let Some(path) = &args.trace_out {
                        let json = chrome_trace_json(&spans, Some(&trace));
                        if let Err(e) = std::fs::write(path, json) {
                            eprintln!("error: could not write {path}: {e}");
                            return ExitCode::FAILURE;
                        }
                        println!("[trace written to {path}]");
                    }
                    ExitCode::SUCCESS
                }
                "hints" => {
                    let apt = AptGet::new(cfg);
                    match apt.optimize(&w.module, w.image.clone(), &w.calls) {
                        Ok(opt) => {
                            print!("{}", hintfile::serialize_hints(&opt.analysis.hints));
                            ExitCode::SUCCESS
                        }
                        Err(e) => {
                            eprintln!("error: {e}");
                            ExitCode::FAILURE
                        }
                    }
                }
                "ir" => {
                    let module = if args.optimized {
                        let apt = AptGet::new(cfg);
                        match apt.optimize(&w.module, w.image.clone(), &w.calls) {
                            Ok(o) => o.module,
                            Err(e) => {
                                eprintln!("error: {e}");
                                return ExitCode::FAILURE;
                            }
                        }
                    } else {
                        w.module
                    };
                    print!("{}", apt_lir::print::module_to_string(&module));
                    ExitCode::SUCCESS
                }
                _ => unreachable!(),
            }
        }
        other => {
            eprintln!("error: unknown command `{other}`");
            ExitCode::FAILURE
        }
    }
}
