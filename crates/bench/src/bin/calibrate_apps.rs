//! App-level calibration: baseline vs A&J vs APT-GET per workload.
use apt_bench::compare_variants;
use apt_workloads::all_workloads;
use aptget::{geomean, PipelineConfig};
use std::time::Instant;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1);
    let cfg = PipelineConfig::default();
    let (mut aj_all, mut apt_all) = (vec![], vec![]);
    for spec in all_workloads() {
        let t0 = Instant::now();
        let w = spec.build(scale, 42);
        let (cmp, opt) = compare_variants(&w, &cfg);
        let aj = cmp.speedup_of("A&J").unwrap();
        let ap = cmp.speedup_of("APT-GET").unwrap();
        aj_all.push(aj);
        apt_all.push(ap);
        let hints: Vec<String> = opt
            .analysis
            .hints
            .iter()
            .map(|h| {
                format!(
                    "d{}{}{}",
                    h.distance,
                    match h.site {
                        aptget::Site::Inner => "i",
                        _ => "o",
                    },
                    if h.fanout > 1 {
                        format!("f{}", h.fanout)
                    } else {
                        String::new()
                    }
                )
            })
            .collect();
        println!(
            "{:<12} base_cyc={:>11} mb={:.2} | A&J={:.2} APT={:.2} | hints={:?} skipped={} | {:?}",
            spec.name,
            cmp.baseline.cycles,
            cmp.baseline.memory_bound_fraction(),
            aj,
            ap,
            hints,
            opt.injection.skipped.len(),
            t0.elapsed()
        );
    }
    println!(
        "GEOMEAN  A&J={:.2}  APT={:.2}",
        geomean(&aj_all),
        geomean(&apt_all)
    );
}
