use apt_passes::inject_prefetches;
use apt_workloads::registry::by_name;
use aptget::{execute, AptGet, InjectionSpec, PipelineConfig, Site};

fn main() {
    let cfg = PipelineConfig::default();
    let w = by_name("Graph500").unwrap().build(1.0, 42);
    let base = execute(&w.module, w.image.clone(), &w.calls, &cfg.measure_sim).unwrap();
    println!("base {} cyc", base.stats.cycles);
    let apt = AptGet::new(cfg);
    let opt = apt.optimize(&w.module, w.image.clone(), &w.calls).unwrap();
    for h in &opt.analysis.hints {
        println!(
            "hint pc={} d={} site={:?} f={} ic={:.1} mc={:.1} trip={:?}",
            h.pc, h.distance, h.site, h.fanout, h.ic_latency, h.mc_latency, h.trip_count
        );
    }
    // Try forced variants on the top hint's load.
    for (site, d, f) in [
        (Site::Inner, 12, 1),
        (Site::Inner, 4, 1),
        (Site::Inner, 2, 1),
        (Site::Outer, 2, 5),
        (Site::Outer, 4, 8),
        (Site::Outer, 12, 8),
        (Site::Outer, 2, 16),
        (Site::Outer, 4, 16),
    ] {
        let specs: Vec<InjectionSpec> = opt
            .analysis
            .hints
            .iter()
            .map(|h| InjectionSpec {
                func: h.func,
                load: h.load,
                distance: d,
                site,
                fanout: f,
                fallback_inner_distance: Some(2),
            })
            .collect();
        let mut m = w.module.clone();
        let rep = inject_prefetches(&mut m, &specs);
        let e = execute(&m, w.image.clone(), &w.calls, &cfg.measure_sim).unwrap();
        assert_eq!(e.rets, base.rets);
        println!(
            "{:?} d{} f{}: {:.3}x (inj {} skip {})",
            site,
            d,
            f,
            base.stats.cycles as f64 / e.stats.cycles as f64,
            rep.injected.len(),
            rep.skipped.len()
        );
    }
}
