//! The campaign timeline report: one self-contained HTML file.
//!
//! Renders every workload's cycle-windowed telemetry — per-variant IPC
//! over normalized instruction progress, the baseline/APT-GET cycle
//! diff, the per-window prefetch-outcome mix, and the detected-phase
//! table — using the `apt-timeline` inline-SVG helpers. The output is a
//! pure function of simulated results: no wall times, no timestamps, no
//! external resources, byte-identical across runs and `--jobs` values.

use apt_timeline::{
    escape, html_page, line_chart, resample_cycles, stack_chart, timeline_to_json, Band, Series,
    Timeline,
};
use std::fmt::Write as _;

use crate::eval::{workload_phases, CampaignReport, Variant};

/// Progress bins per chart. Small enough to keep the SVG compact, large
/// enough to resolve the phase structure of every Table-3 workload.
const BINS: usize = 96;

/// Per-variant series colors, indexed like [`Variant::ALL`].
const VARIANT_COLORS: [&str; 3] = ["#1f77b4", "#ff7f0e", "#d62728"];

/// Mean IPC per progress bin: the variant retires `total/BINS`
/// instructions in every bin by construction of the alignment axis, so
/// per-bin IPC is that constant over the bin's apportioned cycles.
fn ipc_series(t: &Timeline, bins: usize) -> Vec<f64> {
    let instr_per_bin = t.total_instructions() as f64 / bins as f64;
    resample_cycles(t, bins)
        .iter()
        .map(|&c| if c > 0.0 { instr_per_bin / c } else { 0.0 })
        .collect()
}

fn phase_bands(base: &Timeline, apt: &Timeline) -> Vec<Band> {
    workload_phases(base, apt)
        .iter()
        .map(|p| Band {
            label: p.label.clone(),
            start: p.start_frac,
            end: p.end_frac,
        })
        .collect()
}

fn phase_table(base: &Timeline, apt: &Timeline) -> String {
    let phases = workload_phases(base, apt);
    if phases.is_empty() {
        return String::new();
    }
    let mut out = String::from(
        "<table><tr><th>phase</th><th>progress</th><th>implied distance</th>\
         <th>baseline cycles</th><th>APT-GET cycles</th><th>&Delta; cycles</th></tr>",
    );
    for p in &phases {
        let delta = p.aptget_cycles as i64 - p.baseline_cycles as i64;
        let class = if delta < 0 { "good" } else { "bad" };
        let _ = write!(
            out,
            "<tr><td>{}</td><td>{:.1}%&ndash;{:.1}%</td><td>{}</td>\
             <td>{}</td><td>{}</td><td class='{class}'>{delta:+}</td></tr>",
            escape(&p.label),
            p.start_frac * 100.0,
            p.end_frac * 100.0,
            p.implied_distance,
            p.baseline_cycles,
            p.aptget_cycles,
        );
    }
    out.push_str("</table>");
    out
}

/// Per-window prefetch-outcome stack of the APT-GET run. Empty when the
/// campaign ran without outcome tracing (all-zero mixes).
fn outcome_stack(apt: &Timeline) -> String {
    let issued: u64 = apt.samples.iter().map(|s| s.outcomes.issued).sum();
    if issued == 0 {
        return String::new();
    }
    let pick = |f: fn(&apt_timeline::WindowOutcomes) -> u64| -> Vec<f64> {
        apt.samples.iter().map(|s| f(&s.outcomes) as f64).collect()
    };
    let series = [
        Series::new("timely", "#2ca02c", pick(|o| o.timely)),
        Series::new("late", "#ff7f0e", pick(|o| o.late)),
        Series::new("early", "#9467bd", pick(|o| o.early)),
        Series::new("useless", "#d62728", pick(|o| o.useless)),
        Series::new("redundant", "#8c564b", pick(|o| o.redundant)),
    ];
    format!(
        "<p>Prefetch outcomes per window of the APT-GET run \
         ({issued} issued).</p>{}",
        stack_chart(&series, &[], "prefetches")
    )
}

/// Renders the whole campaign as one self-contained HTML document.
pub fn render_campaign_report(report: &CampaignReport) -> String {
    apt_selfprof::prof_scope!("bench/report/render");
    let mut sections: Vec<(String, String)> = Vec::new();
    for chunk in report.cells.chunks_exact(Variant::ALL.len()) {
        let base = &chunk[0].timeline;
        let apt = &chunk[2].timeline;
        let mut body = String::new();
        if base.samples.is_empty() {
            body.push_str(
                "<p>Timelines were disabled for this campaign \
                 (<code>timeline_window = 0</code>).</p>",
            );
            sections.push((chunk[0].workload.clone(), body));
            continue;
        }
        let bands = phase_bands(base, apt);

        // IPC over normalized instruction progress, all three variants on
        // one axis: where the curves separate is where prefetching pays.
        let ipc: Vec<Series> = chunk
            .iter()
            .zip(VARIANT_COLORS)
            .map(|(cell, color)| {
                Series::new(cell.variant.name(), color, ipc_series(&cell.timeline, BINS))
            })
            .collect();
        body.push_str(
            "<p>IPC over normalized instruction progress (bands are the \
             baseline's detected phases).</p>",
        );
        body.push_str(&line_chart(&ipc, &bands, "IPC"));

        // Cycle cost per progress bin, baseline vs APT-GET: the area
        // between the curves is the cycles saved.
        let cost = [
            Series::new("baseline", VARIANT_COLORS[0], resample_cycles(base, BINS)),
            Series::new("APT-GET", VARIANT_COLORS[2], resample_cycles(apt, BINS)),
        ];
        body.push_str("<p>Cycles spent per progress bin.</p>");
        body.push_str(&line_chart(&cost, &bands, "cycles"));

        body.push_str(&outcome_stack(apt));
        body.push_str(&phase_table(base, apt));
        sections.push((chunk[0].workload.clone(), body));
    }

    let intro = format!(
        "Cycle-windowed telemetry of an evaluation campaign at scale {} \
         with seed {}, covering {} workload(s). All charts share one \
         x-axis: the fraction of the run's retired instructions, which \
         aligns variants that execute the same work in different cycle \
         counts.",
        report.scale,
        report.seed,
        sections.len()
    );
    html_page("APT-GET timeline report", &intro, &sections)
}

/// Every cell's timeline as one JSON artifact (`--timeline-out`),
/// embedding the columnar `apt-timeline` serialization per cell.
pub fn timelines_json(report: &CampaignReport) -> String {
    let mut out = String::from("{\n  \"schema\": 1,\n  \"scale\": ");
    apt_metrics::json::write_f64(&mut out, report.scale);
    let _ = write!(out, ",\n  \"seed\": {},\n  \"cells\": [", report.seed);
    for (i, cell) in report.cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\n      \"workload\": ");
        apt_metrics::json::write_str(&mut out, &cell.workload);
        out.push_str(",\n      \"variant\": ");
        apt_metrics::json::write_str(&mut out, cell.variant.name());
        out.push_str(",\n      \"timeline\": ");
        out.push_str(&timeline_to_json(&cell.timeline));
        out.push_str("\n    }");
    }
    if !report.cells.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{run_campaign, CampaignConfig};
    use apt_metrics::json;

    fn tiny_report() -> CampaignReport {
        let cfg = CampaignConfig {
            workloads: vec!["RandAcc".into()],
            cache: None,
            collect_outcomes: true,
            ..CampaignConfig::new(0.004, 42, 1)
        };
        run_campaign(&cfg).unwrap()
    }

    #[test]
    fn report_is_self_contained_html() {
        let html = render_campaign_report(&tiny_report());
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.ends_with("</body></html>\n"));
        assert!(html.contains("RandAcc"));
        assert!(html.contains("<svg"));
        // No external resources, no scripts, no nondeterministic times.
        assert!(!html.contains("http"), "external reference in report");
        assert!(!html.contains("<script"), "script in report");
    }

    #[test]
    fn timelines_artifact_parses_and_covers_every_cell() {
        let report = tiny_report();
        let doc = json::parse(&timelines_json(&report)).unwrap();
        let cells = doc.get("cells").and_then(json::Json::as_arr).unwrap();
        assert_eq!(cells.len(), report.cells.len());
        for (cell, orig) in cells.iter().zip(&report.cells) {
            assert_eq!(cell.str_field("workload").unwrap(), orig.workload);
            let tl = apt_timeline::timeline_from_value(cell.get("timeline").unwrap()).unwrap();
            assert_eq!(tl.samples, orig.timeline.samples);
        }
    }
}
