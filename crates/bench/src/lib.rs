//! Shared machinery for the paper-reproduction bench targets.
//!
//! Each bench target under `benches/` regenerates one table or figure of
//! the paper: it prints the same rows/series the paper reports and writes
//! a CSV copy under `target/paper/`. Run all of them with
//! `cargo bench -p apt-bench`, or one with
//! `cargo bench -p apt-bench --bench fig6_speedup`.

use std::fs;
use std::path::PathBuf;

use apt_trace::{Span, SpanRecorder, TraceConfig, TraceReport};
use apt_workloads::BuiltWorkload;
use aptget::pipeline::Optimized;
use aptget::{
    ainsworth_jones_optimize, chrome_trace_json, execute, execute_traced, format_explain, AptGet,
    Comparison, Execution, PerfStats, PipelineConfig,
};

pub mod cache;
pub mod eval;
pub mod history;
pub mod pool;
pub mod report;
pub mod selfprof_report;

/// Workload scale for the experiment benches.
///
/// 1.0 runs the full scaled-machine footprints (minutes); the default
/// 0.25 keeps every figure reproducible in a few minutes total while
/// staying well beyond the scaled LLC. Override with `APT_SCALE`.
pub fn scale() -> f64 {
    std::env::var("APT_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25)
}

/// The common training seed.
pub const TRAIN_SEED: u64 = 42;
/// A distinct input for the Fig. 12 test runs.
pub const TEST_SEED: u64 = 1337;

/// The A&J baseline's static distance (the `-DFETCHDIST` flag of §2.1).
pub const AJ_STATIC_DISTANCE: u64 = 32;

/// Renders an aligned, right-justified text table — the deterministic
/// rendering behind both [`emit_table`] and the campaign report (whose
/// byte-identity across `--jobs` values is asserted in tests).
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let mut out = fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// Renders rows as CSV (headers first).
pub fn format_csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut csv = headers.join(",") + "\n";
    for row in rows {
        csv.push_str(&row.join(","));
        csv.push('\n');
    }
    csv
}

/// Prints an aligned table and mirrors it to `target/paper/<name>.csv`.
pub fn emit_table(name: &str, title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    print!("{}", format_table(headers, rows));

    // Benches run with the crate as CWD; anchor the output at the
    // workspace root so every figure lands in `target/paper/`.
    let root = std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| PathBuf::from(d).join("../.."))
        .unwrap_or_else(|_| PathBuf::from("."));
    let dir = root.join("target/paper");
    let _ = fs::create_dir_all(&dir);
    let path = dir.join(format!("{name}.csv"));
    if let Err(e) = fs::write(&path, format_csv(headers, rows)) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("[written to {}]", path.display());
    }
}

/// Executes a workload's call schedule against `module`, checks the
/// result, and returns the execution.
///
/// # Panics
///
/// Panics if the simulation fails or produces a wrong result — a broken
/// experiment must never silently produce a figure.
pub fn run_checked(w: &BuiltWorkload, module: &aptget::Module, cfg: &PipelineConfig) -> Execution {
    let exec = execute(module, w.image.clone(), &w.calls, &cfg.measure_sim)
        .unwrap_or_else(|e| panic!("{}: simulation failed: {e}", w.name));
    (w.check)(&exec.image, &exec.rets).unwrap_or_else(|e| panic!("{}: wrong result: {e}", w.name));
    exec
}

/// Runs baseline, Ainsworth & Jones, and APT-GET on one workload (checking
/// every variant's output) and returns the comparison plus APT-GET's
/// optimisation artefacts.
///
/// When `APT_TRACE_DIR` is set, the APT-GET measurement run is traced
/// with outcome attribution and `<dir>/<workload>.explain.txt` plus
/// `<dir>/<workload>.trace.json` are written — the same artifacts
/// `aptgetsim run --explain --trace-out` produces.
pub fn compare_variants(w: &BuiltWorkload, cfg: &PipelineConfig) -> (Comparison, Optimized) {
    let dir = std::env::var_os("APT_TRACE_DIR").map(PathBuf::from);
    let trace_cfg = if dir.is_some() {
        TraceConfig::outcomes()
    } else {
        TraceConfig::off()
    };
    let (cmp, opt, spans, stats, trace) = compare_variants_traced(w, cfg, trace_cfg);
    if let Some(dir) = dir {
        write_trace_artifacts(&dir, &w.name, &opt, &spans, &stats, &trace);
    }
    (cmp, opt)
}

/// [`compare_variants`] with explicit trace control: records pipeline
/// spans and traces the APT-GET measurement run under `trace_cfg`.
/// Returns, beyond the comparison and optimisation artefacts, the spans,
/// the APT-GET variant's stats and its trace report.
pub fn compare_variants_traced(
    w: &BuiltWorkload,
    cfg: &PipelineConfig,
    trace_cfg: TraceConfig,
) -> (Comparison, Optimized, Vec<Span>, PerfStats, TraceReport) {
    let base = run_checked(w, &w.module, cfg);

    let (aj_module, _) = ainsworth_jones_optimize(&w.module, AJ_STATIC_DISTANCE);
    let aj = run_checked(w, &aj_module, cfg);

    let apt = AptGet::new(*cfg);
    let mut spans = SpanRecorder::new();
    let opt = apt
        .optimize_traced(&w.module, w.image.clone(), &w.calls, &mut spans)
        .unwrap_or_else(|e| panic!("{}: profiling failed: {e}", w.name));
    let measure = spans.begin("measurement-run");
    let (tuned, trace) = execute_traced(
        &opt.module,
        w.image.clone(),
        &w.calls,
        &cfg.measure_sim,
        trace_cfg,
    )
    .unwrap_or_else(|e| panic!("{}: simulation failed: {e}", w.name));
    (w.check)(&tuned.image, &tuned.rets)
        .unwrap_or_else(|e| panic!("{}: wrong result: {e}", w.name));
    spans.add_sim_cycles(&measure, tuned.stats.cycles);
    spans.note(&measure, "sw_pf_issued", tuned.stats.mem.sw_pf_issued);
    spans.end(measure);

    (
        Comparison {
            workload: w.name.clone(),
            baseline: base.stats,
            variants: vec![
                ("A&J".to_string(), aj.stats),
                ("APT-GET".to_string(), tuned.stats),
            ],
        },
        opt,
        spans.into_spans(),
        tuned.stats,
        trace,
    )
}

/// Writes the `--explain` report and Chrome trace JSON for one workload
/// into `dir` (created if needed).
pub fn write_trace_artifacts(
    dir: &std::path::Path,
    name: &str,
    opt: &Optimized,
    spans: &[Span],
    stats: &PerfStats,
    trace: &TraceReport,
) {
    let _ = fs::create_dir_all(dir);
    let explain = format_explain(opt, spans, Some((stats, trace)));
    let json = chrome_trace_json(spans, Some(trace));
    for (suffix, content) in [("explain.txt", explain), ("trace.json", json)] {
        let path = dir.join(format!("{name}.{suffix}"));
        if let Err(e) = fs::write(&path, content) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("[written to {}]", path.display());
        }
    }
}

/// Formats a ratio like the paper ("1.30x").
pub fn fx(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats a fraction as a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(fx(1.298), "1.30x");
        assert_eq!(pct(0.654), "65.4%");
    }

    #[test]
    fn scale_defaults() {
        // Unless APT_SCALE is set in the environment, the default applies.
        if std::env::var("APT_SCALE").is_err() {
            assert_eq!(scale(), 0.25);
        }
    }
}
