//! On-disk profile cache: collect a workload's hardware profile once,
//! reuse it across variants, repeated campaigns and processes.
//!
//! Profile collection is the expensive half of the §3.4 pipeline (the
//! profiling run simulates the whole workload with LBR + PEBS on), and
//! hardware-counted PGO work identifies exactly that cost as the adoption
//! barrier. The cache keys on a content hash of everything that
//! determines the profile — workload identity (name, scale, seed) and the
//! profiling simulator configuration — so a hit is guaranteed to replay
//! the same `ProfileData` the profiling run would have produced, and
//! `AptGet::optimize_cached` then yields a bit-identical optimisation.
//!
//! Storage: one file per key under `target/apt-profile-cache/` (override
//! with `APT_PROFILE_CACHE`), in a versioned little-endian binary format.
//! Every `u64` round-trips exactly (cycle counts, PCs, f64 bit patterns
//! elsewhere in the pipeline), which the campaign determinism test relies
//! on. Corrupt or truncated files deserialize to `None` and are treated
//! as misses, never errors.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use apt_cpu::{LbrEntry, PebsRecord, PerfStats, ProfileData, SimConfig};
use apt_lir::Pc;
use apt_mem::{Level, MemCounters};

/// Magic + format version; bump when the layout changes.
const MAGIC: &[u8; 8] = b"APTPROF2";

/// Hit/miss/store counters, shared across campaign workers.
#[derive(Debug, Default)]
pub struct CacheStats {
    pub hits: AtomicU64,
    pub misses: AtomicU64,
    pub stores: AtomicU64,
}

impl CacheStats {
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    pub fn stores(&self) -> u64 {
        self.stores.load(Ordering::Relaxed)
    }
}

/// The cache handle. Cheap to share by reference across workers; all
/// methods take `&self`.
#[derive(Debug)]
pub struct ProfileCache {
    dir: PathBuf,
    pub stats: CacheStats,
}

/// FNV-1a over a byte stream.
fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl ProfileCache {
    /// A cache rooted at `dir` (created lazily on the first store).
    pub fn new(dir: impl Into<PathBuf>) -> ProfileCache {
        ProfileCache {
            dir: dir.into(),
            stats: CacheStats::default(),
        }
    }

    /// The default on-disk location: `$APT_PROFILE_CACHE` if set, else
    /// `target/apt-profile-cache/` at the workspace root.
    pub fn default_dir() -> PathBuf {
        if let Some(dir) = std::env::var_os("APT_PROFILE_CACHE") {
            return PathBuf::from(dir);
        }
        let root = std::env::var("CARGO_MANIFEST_DIR")
            .map(|d| PathBuf::from(d).join("../.."))
            .unwrap_or_else(|_| PathBuf::from("."));
        root.join("target/apt-profile-cache")
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Content hash of everything the profile depends on: the workload
    /// identity (name, build scale, input seed) and the profiling
    /// simulator configuration (memory hierarchy, sampling periods). The
    /// `Debug` rendering of `SimConfig` covers every field, so adding a
    /// knob to the simulator automatically invalidates old entries.
    pub fn key(name: &str, scale: f64, seed: u64, profile_sim: &SimConfig) -> u64 {
        let canon = format!(
            "{}|{name}|{:016x}|{seed}|{profile_sim:?}",
            std::str::from_utf8(MAGIC).unwrap(),
            scale.to_bits(),
        );
        fnv1a(canon.bytes())
    }

    fn path_of(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.profile"))
    }

    /// Looks a profile up; counts a hit or a miss.
    pub fn load(&self, key: u64) -> Option<(ProfileData, PerfStats)> {
        apt_selfprof::prof_scope!("bench/cache/load");
        let loaded = fs::read(self.path_of(key)).ok().and_then(|b| decode(&b));
        match &loaded {
            Some(_) => self.stats.hits.fetch_add(1, Ordering::Relaxed),
            None => self.stats.misses.fetch_add(1, Ordering::Relaxed),
        };
        loaded
    }

    /// Persists a freshly collected profile. Write failures are logged and
    /// swallowed: the cache is an accelerator, never a correctness
    /// dependency. The write goes through a per-process temp file + rename
    /// so concurrent campaigns never observe a torn entry.
    pub fn store(&self, key: u64, profile: &ProfileData, stats: &PerfStats) {
        apt_selfprof::prof_scope!("bench/cache/store");
        let path = self.path_of(key);
        let bytes = encode(profile, stats);
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        let write = fs::create_dir_all(&self.dir)
            .and_then(|()| fs::write(&tmp, &bytes))
            .and_then(|()| fs::rename(&tmp, &path));
        match write {
            Ok(()) => {
                self.stats.stores.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => eprintln!(
                "warning: profile cache write {} failed: {e}",
                path.display()
            ),
        }
    }
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn level_code(l: Level) -> u64 {
    match l {
        Level::L1 => 0,
        Level::L2 => 1,
        Level::Llc => 2,
        Level::Dram => 3,
    }
}

fn level_of(code: u64) -> Option<Level> {
    Some(match code {
        0 => Level::L1,
        1 => Level::L2,
        2 => Level::Llc,
        3 => Level::Dram,
        _ => return None,
    })
}

fn counters_fields(c: &MemCounters) -> [u64; 18] {
    [
        c.loads,
        c.stores,
        c.l1_hits,
        c.l2_hits,
        c.llc_hits,
        c.demand_fills,
        c.fb_hits_swpf,
        c.fb_hits_other,
        c.sw_pf_issued,
        c.sw_pf_redundant,
        c.sw_pf_dropped_full,
        c.sw_pf_offcore,
        c.sw_pf_oncore,
        c.hw_pf_offcore,
        c.pf_evicted_unused,
        c.pf_used,
        c.stall_l2,
        c.stall_llc,
    ]
}

fn encode(profile: &ProfileData, stats: &PerfStats) -> Vec<u8> {
    let mut out = Vec::with_capacity(
        64 + profile
            .lbr_samples
            .iter()
            .map(|s| 8 + s.len() * 24)
            .sum::<usize>()
            + profile.pebs.len() * 24,
    );
    out.extend_from_slice(MAGIC);

    // PerfStats.
    for v in [
        stats.instructions,
        stats.cycles,
        stats.branches,
        stats.taken_branches,
    ] {
        put_u64(&mut out, v);
    }
    for v in counters_fields(&stats.mem) {
        put_u64(&mut out, v);
    }
    put_u64(&mut out, stats.mem.stall_dram);

    // LBR samples.
    put_u64(&mut out, profile.lbr_samples.len() as u64);
    for sample in &profile.lbr_samples {
        put_u64(&mut out, sample.len() as u64);
        for e in sample {
            put_u64(&mut out, e.from.0);
            put_u64(&mut out, e.to.0);
            put_u64(&mut out, e.cycle);
        }
    }

    // PEBS records.
    put_u64(&mut out, profile.pebs.len() as u64);
    for r in &profile.pebs {
        put_u64(&mut out, r.pc.0);
        put_u64(&mut out, level_code(r.served));
        put_u64(&mut out, r.cycle);
    }
    out
}

fn decode(bytes: &[u8]) -> Option<(ProfileData, PerfStats)> {
    let mut pos = 0usize;
    let take = |pos: &mut usize| -> Option<u64> {
        let end = pos.checked_add(8)?;
        let v = u64::from_le_bytes(bytes.get(*pos..end)?.try_into().ok()?);
        *pos = end;
        Some(v)
    };

    if bytes.get(..8)? != MAGIC {
        return None;
    }
    pos += 8;

    let mut stats = PerfStats {
        instructions: take(&mut pos)?,
        cycles: take(&mut pos)?,
        branches: take(&mut pos)?,
        taken_branches: take(&mut pos)?,
        ..Default::default()
    };
    let mut fields = [0u64; 18];
    for f in &mut fields {
        *f = take(&mut pos)?;
    }
    stats.mem = MemCounters {
        loads: fields[0],
        stores: fields[1],
        l1_hits: fields[2],
        l2_hits: fields[3],
        llc_hits: fields[4],
        demand_fills: fields[5],
        fb_hits_swpf: fields[6],
        fb_hits_other: fields[7],
        sw_pf_issued: fields[8],
        sw_pf_redundant: fields[9],
        sw_pf_dropped_full: fields[10],
        sw_pf_offcore: fields[11],
        sw_pf_oncore: fields[12],
        hw_pf_offcore: fields[13],
        pf_evicted_unused: fields[14],
        pf_used: fields[15],
        stall_l2: fields[16],
        stall_llc: fields[17],
        stall_dram: take(&mut pos)?,
    };

    let n_samples = take(&mut pos)?;
    // Sanity bound: a corrupt length must not trigger a giant allocation.
    if n_samples > bytes.len() as u64 {
        return None;
    }
    let mut lbr_samples = Vec::with_capacity(n_samples as usize);
    for _ in 0..n_samples {
        let n = take(&mut pos)?;
        if n > bytes.len() as u64 {
            return None;
        }
        let mut sample = Vec::with_capacity(n as usize);
        for _ in 0..n {
            sample.push(LbrEntry {
                from: Pc(take(&mut pos)?),
                to: Pc(take(&mut pos)?),
                cycle: take(&mut pos)?,
            });
        }
        lbr_samples.push(sample);
    }

    let n_pebs = take(&mut pos)?;
    if n_pebs > bytes.len() as u64 {
        return None;
    }
    let mut pebs = Vec::with_capacity(n_pebs as usize);
    for _ in 0..n_pebs {
        pebs.push(PebsRecord {
            pc: Pc(take(&mut pos)?),
            served: level_of(take(&mut pos)?)?,
            cycle: take(&mut pos)?,
        });
    }

    if pos != bytes.len() {
        return None; // Trailing garbage: treat as corrupt.
    }
    Some((ProfileData { lbr_samples, pebs }, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_profile() -> (ProfileData, PerfStats) {
        let profile = ProfileData {
            lbr_samples: vec![
                vec![
                    LbrEntry {
                        from: Pc(0x4010),
                        to: Pc(0x4000),
                        cycle: 123,
                    },
                    LbrEntry {
                        from: Pc(0x4044),
                        to: Pc(0x4020),
                        cycle: 456,
                    },
                ],
                vec![],
            ],
            pebs: vec![PebsRecord {
                pc: Pc(0x4028),
                served: Level::Dram,
                cycle: 789,
            }],
        };
        let stats = PerfStats {
            instructions: 1_000_000,
            cycles: 2_345_678,
            branches: 1000,
            taken_branches: 900,
            mem: MemCounters {
                loads: 5000,
                demand_fills: 321,
                stall_dram: u64::MAX, // Extremes must survive the trip.
                ..Default::default()
            },
        };
        (profile, stats)
    }

    #[test]
    fn encode_decode_round_trips_exactly() {
        let (profile, stats) = sample_profile();
        let bytes = encode(&profile, &stats);
        let (p2, s2) = decode(&bytes).expect("decodes");
        assert_eq!(p2.lbr_samples, profile.lbr_samples);
        assert_eq!(p2.pebs, profile.pebs);
        assert_eq!(s2.instructions, stats.instructions);
        assert_eq!(s2.cycles, stats.cycles);
        assert_eq!(s2.mem, stats.mem);
    }

    #[test]
    fn corrupt_and_truncated_inputs_are_misses() {
        let (profile, stats) = sample_profile();
        let bytes = encode(&profile, &stats);
        assert!(decode(&bytes[..bytes.len() - 1]).is_none());
        assert!(decode(&bytes[1..]).is_none());
        assert!(decode(b"not a profile").is_none());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(decode(&trailing).is_none());
    }

    #[test]
    fn store_then_load_hits() {
        let dir = std::env::temp_dir().join(format!("apt-cache-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cache = ProfileCache::new(&dir);
        let (profile, stats) = sample_profile();
        let key = ProfileCache::key("BFS", 0.25, 42, &SimConfig::default());

        assert!(cache.load(key).is_none());
        assert_eq!(cache.stats.misses(), 1);

        cache.store(key, &profile, &stats);
        assert_eq!(cache.stats.stores(), 1);

        let (p2, s2) = cache.load(key).expect("hit after store");
        assert_eq!(cache.stats.hits(), 1);
        assert_eq!(p2.pebs, profile.pebs);
        assert_eq!(s2.cycles, stats.cycles);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn keys_separate_workload_and_config() {
        let sim = SimConfig::default();
        let base = ProfileCache::key("BFS", 0.25, 42, &sim);
        assert_eq!(ProfileCache::key("BFS", 0.25, 42, &sim), base);
        assert_ne!(ProfileCache::key("DFS", 0.25, 42, &sim), base);
        assert_ne!(ProfileCache::key("BFS", 0.5, 42, &sim), base);
        assert_ne!(ProfileCache::key("BFS", 0.25, 43, &sim), base);
        let other_sim = SimConfig {
            pebs_period: sim.pebs_period + 1,
            ..sim
        };
        assert_ne!(ProfileCache::key("BFS", 0.25, 42, &other_sim), base);
    }
}
