//! The `--selfprof-out` artifact: wraps `apt-selfprof` flamegraphs in
//! the workspace's self-contained HTML page style (`apt-timeline`
//! provides the shell, so `apt-selfprof` itself stays dependency-free).
//!
//! The page carries the merged icicle flamegraph, a hot-scopes table
//! (exclusive time descending), and one flamegraph per worker thread.
//! Everything is a pure function of the collected profile: under the
//! fake clock the whole page is byte-stable.

use apt_selfprof::{flamegraph_svg, CallTree, Profile};
use apt_timeline::{escape, html_page};

fn fmt_ms(us: u64) -> String {
    format!("{:.1}", us as f64 / 1000.0)
}

/// The hot-scopes table: top `limit` scopes by exclusive time.
fn hot_table(tree: &CallTree, limit: usize) -> String {
    let rows = tree.hot_scopes();
    let total = tree.total_incl_us().max(1);
    let mut out = String::from(
        "<table><tr><th>scope</th><th>excl ms</th><th>incl ms</th>\
         <th>incl %</th><th>hits</th></tr>",
    );
    for (path, excl, incl, hits) in rows.iter().take(limit) {
        out.push_str(&format!(
            "<tr><td>{}</td><td>{}</td><td>{}</td><td>{:.1}</td><td>{}</td></tr>",
            escape(path),
            fmt_ms(*excl),
            fmt_ms(*incl),
            100.0 * *incl as f64 / total as f64,
            hits
        ));
    }
    if rows.len() > limit {
        out.push_str(&format!(
            "<tr><td>… {} more scopes</td><td></td><td></td><td></td><td></td></tr>",
            rows.len() - limit
        ));
    }
    out.push_str("</table>");
    out
}

/// Renders the complete self-profile page.
pub fn render_selfprof_html(profile: &Profile) -> String {
    let merged = profile.merged();
    let mut sections: Vec<(String, String)> = Vec::new();
    sections.push((
        "Merged flamegraph (all workers)".to_string(),
        format!(
            "<p>{} attributed across {} thread{}. Width is inclusive \
             wall time; hover a frame for details.</p>{}",
            escape(&format!("{} ms", fmt_ms(merged.total_incl_us()))),
            profile.threads.len(),
            if profile.threads.len() == 1 { "" } else { "s" },
            flamegraph_svg(&merged, "all workers")
        ),
    ));
    sections.push(("Hot scopes".to_string(), hot_table(&merged, 20)));
    for (label, tree) in &profile.threads {
        sections.push((format!("Thread: {label}"), flamegraph_svg(tree, label)));
    }
    html_page(
        "Simulator self-profile",
        "Scoped wall-time profile of the campaign run itself (apt-selfprof). \
         Observation only: the campaign result table is byte-identical with \
         profiling on or off.",
        &sections,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_selfprof::Recorder;

    fn demo_profile() -> Profile {
        let mut r = Recorder::new();
        r.enter("bench/cell", 0);
        r.enter("cpu/exec", 100);
        r.exit(4100);
        r.exit(5000);
        Profile {
            threads: vec![("worker-0".to_string(), r.tree())],
        }
    }

    #[test]
    fn page_is_self_contained_and_deterministic() {
        let p = demo_profile();
        let page = render_selfprof_html(&p);
        assert!(page.starts_with("<!DOCTYPE html>"));
        assert!(!page.contains("http"));
        assert!(!page.contains("<script"));
        assert!(page.contains("Merged flamegraph"));
        assert!(page.contains("Thread: worker-0"));
        assert!(page.contains("cpu/exec"));
        assert_eq!(page, render_selfprof_html(&p));
    }

    #[test]
    fn hot_table_ranks_by_exclusive_time() {
        let p = demo_profile();
        let table = hot_table(&p.merged(), 20);
        // cpu/exec has 4.0 ms exclusive vs bench/cell's 1.0 ms: it must
        // come first even though it is the deeper frame.
        let exec_pos = table.find("bench/cell;cpu/exec").unwrap();
        let cell_pos = table.find("<td>bench/cell</td>").unwrap();
        assert!(exec_pos < cell_pos);
    }

    #[test]
    fn empty_profile_still_renders() {
        let page = render_selfprof_html(&Profile::default());
        assert!(page.contains("no samples"));
    }
}
