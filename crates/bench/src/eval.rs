//! `apt-eval`: the parallel evaluation-campaign runner.
//!
//! The paper's evaluation is a (workload × variant) matrix: every Table-3
//! application under baseline, Ainsworth & Jones static injection, and
//! APT-GET. Run serially with per-cell re-profiling, the full table
//! dominates iteration time. This module attacks both axes:
//!
//! * **Sharding** — each matrix cell is one independent task on the
//!   hand-rolled work-stealing pool ([`crate::pool`]). Cells build their
//!   workload locally from a [`WorkloadDesc`] (a `Copy` descriptor, not a
//!   prebuilt multi-MB image) and seed deterministically, so the campaign
//!   report is **byte-identical at any `--jobs` value**.
//! * **Profile caching** — APT-GET cells resolve their profiling run
//!   through the on-disk [`ProfileCache`]; a warm cache skips profiling
//!   entirely and `AptGet::optimize_cached` reproduces the cold
//!   optimisation bit-for-bit.
//!
//! The deterministic comparison table ([`CampaignReport::table`]) is kept
//! strictly separate from the timing-dependent diagnostics
//! ([`CampaignReport::stats_text`]: per-cell wall time, worker
//! attribution, steals, cache hits) and from the merged per-worker Chrome
//! trace ([`CampaignReport::chrome_trace`]).

use std::fs;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use apt_metrics::{
    render_prometheus, BenchSnapshot, MetricsServer, OutcomeMix, PhaseBench, Progress,
    ProgressReporter, Registry, SampledBench, WorkloadBench, WALL_US_BUCKETS,
};
use apt_sample::{run_sampled, SampleConfig};
use apt_trace::{ChromeTrace, OutcomeTable, Span, SpanRecorder, TraceConfig};
use apt_workloads::registry::by_name;
use apt_workloads::WorkloadDesc;
use aptget::{
    ainsworth_jones_optimize, detect_phases, execute_traced, geomean, phase_diff, AptGet,
    Comparison, PerfStats, PhaseConfig, PipelineConfig, Timeline,
};

use crate::cache::ProfileCache;
use crate::pool::{run_indexed, PoolStats};
use crate::{format_table, fx, AJ_STATIC_DISTANCE};

/// The three columns of the paper's comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    Baseline,
    AinsworthJones,
    AptGet,
}

impl Variant {
    /// Campaign execution order per workload.
    pub const ALL: [Variant; 3] = [Variant::Baseline, Variant::AinsworthJones, Variant::AptGet];

    /// Display name as used in report rows.
    pub fn name(self) -> &'static str {
        match self {
            Variant::Baseline => "baseline",
            Variant::AinsworthJones => "A&J",
            Variant::AptGet => "APT-GET",
        }
    }
}

/// Campaign parameters.
pub struct CampaignConfig {
    /// Workload scale (see `APT_SCALE` / `apt_bench::scale`).
    pub scale: f64,
    /// Input-generation seed, shared by every cell.
    pub seed: u64,
    /// Worker threads (1 = serial in-thread execution).
    pub jobs: usize,
    /// Workload names to run; empty = the full registry.
    pub workloads: Vec<String>,
    /// Pipeline configuration applied to every cell.
    pub pipeline: PipelineConfig,
    /// Profile cache; `None` disables caching (every APT-GET cell
    /// re-profiles).
    pub cache: Option<ProfileCache>,
    /// Metrics registry the campaign reports into. The default is
    /// [`Registry::disabled`]: every handle is a no-op and the per-cell
    /// export never runs, so metrics-off campaigns cost one branch.
    pub metrics: Registry,
    /// Live progress handle, fed from inside the pool as cells start and
    /// finish. Disabled by default; rendering (stderr) is the caller's
    /// business via [`ProgressReporter`].
    pub progress: Progress,
    /// Collect the per-PC prefetch-outcome table on APT-GET measurement
    /// runs (feeds [`CampaignReport::bench_snapshot`]). Outcome tracing is
    /// passive: it never changes simulated results, only records them.
    pub collect_outcomes: bool,
    /// SMARTS-style sampled measurement runs (`--sampled`). Profiling
    /// runs (and their cache keys) stay fully detailed — sampling only
    /// replaces the *measurement* execution, trading exact counters for
    /// ratio estimates at a fraction of the wall time.
    pub sampling: Option<SamplingSpec>,
}

/// Sampled-measurement configuration for a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SamplingSpec {
    /// The sampling schedule (period / window / warm-up / seed).
    pub sample: SampleConfig,
    /// Additionally run the exact detailed measurement per cell and
    /// record the estimated-vs-exact error (`--sampled-check`). Costs the
    /// full detailed run again — for accuracy audits, not for speed.
    pub check_exact: bool,
}

impl CampaignConfig {
    /// A campaign over the full registry with caching enabled at the
    /// default location.
    pub fn new(scale: f64, seed: u64, jobs: usize) -> CampaignConfig {
        CampaignConfig {
            scale,
            seed,
            jobs,
            workloads: Vec::new(),
            pipeline: PipelineConfig::default(),
            cache: Some(ProfileCache::new(ProfileCache::default_dir())),
            metrics: Registry::disabled(),
            progress: Progress::disabled(),
            collect_outcomes: false,
            sampling: None,
        }
    }
}

/// How an APT-GET cell obtained its profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the on-disk cache.
    Hit,
    /// Profiled from scratch; the result was stored for next time.
    MissStored,
    /// Profiled from scratch; caching disabled.
    Uncached,
}

/// One completed matrix cell.
pub struct CellResult {
    /// Workload figure label.
    pub workload: String,
    /// Which variant this cell measured.
    pub variant: Variant,
    /// Measurement-run counters (profiling runs are *not* included here).
    pub stats: PerfStats,
    /// Prefetch hints injected (APT-GET cells; 0 otherwise).
    pub hints: usize,
    /// Profile provenance (APT-GET cells only).
    pub cache: Option<CacheOutcome>,
    /// Wall-clock cost of the whole cell, µs.
    pub wall_us: u64,
    /// Cell start relative to the campaign epoch, µs (for trace merging).
    pub start_us: u64,
    /// Worker that executed the cell.
    pub worker: usize,
    /// Pipeline spans recorded inside the cell.
    pub spans: Vec<Span>,
    /// Per-PC prefetch-outcome table of the measurement run (APT-GET
    /// cells with [`CampaignConfig::collect_outcomes`] only).
    pub outcomes: Option<OutcomeTable>,
    /// Cycle-windowed telemetry of the measurement run. Empty when the
    /// pipeline's `measure_sim.timeline_window` is 0; otherwise its
    /// field-wise sum reproduces `stats` exactly (asserted per cell).
    /// Sampled cells carry the *reconstructed* timeline, which conserves
    /// the estimated `stats` by construction.
    pub timeline: Timeline,
    /// Sampled-measurement record (cells of `--sampled` campaigns only).
    pub sampled: Option<SampledCell>,
}

/// What a sampled measurement run estimated, and — with
/// [`SamplingSpec::check_exact`] — how far it was from the exact run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampledCell {
    /// |estimated − exact| / exact on cycles (`None` without check).
    pub cycle_err: Option<f64>,
    /// |estimated − exact| / exact on IPC (`None` without check).
    pub ipc_err: Option<f64>,
    /// The exact run's cycle count (`None` without check).
    pub exact_cycles: Option<u64>,
    /// Fraction of instructions simulated in detail.
    pub detail_fraction: f64,
    /// Measurement windows recorded.
    pub windows: u64,
    /// Relative CPI confidence-interval half-width (`z·s/(√n·mean)`).
    pub rel_half_width: f64,
}

/// A finished campaign.
pub struct CampaignReport {
    pub scale: f64,
    pub seed: u64,
    /// All cells in matrix order (workload-major, [`Variant::ALL`] minor).
    pub cells: Vec<CellResult>,
    /// Per-workload comparisons, in registry order.
    pub comparisons: Vec<Comparison>,
    /// What the pool did.
    pub pool: PoolStats,
    /// Total campaign wall time, µs.
    pub wall_us: u64,
    /// Cache counters for this campaign: (hits, misses, stores).
    pub cache_counts: (u64, u64, u64),
}

/// Resolves the campaign's workload axis. Unknown names are an error —
/// a silently skipped workload would produce a misleading table.
fn resolve_workloads(cfg: &CampaignConfig) -> Result<Vec<WorkloadDesc>, String> {
    if cfg.workloads.is_empty() {
        return Ok(apt_workloads::descriptors(cfg.scale, cfg.seed));
    }
    cfg.workloads
        .iter()
        .map(|name| {
            by_name(name)
                .map(|spec| spec.descriptor(cfg.scale, cfg.seed))
                .ok_or_else(|| format!("unknown workload `{name}` (try `aptgetsim list`)"))
        })
        .collect()
}

/// Window samples are *defined* as deltas of the run's cumulative
/// counters, so their sum must reproduce the end-of-run totals exactly.
/// Checked on every cell of every campaign — a drifting timeline would
/// silently corrupt phase detection and the HTML report.
fn assert_timeline_conserved(name: &str, variant: Variant, timeline: &Timeline, stats: &PerfStats) {
    if timeline.window == 0 {
        return;
    }
    let t = timeline.total();
    let pairs = [
        ("instructions", t.instructions, stats.instructions),
        ("cycles", t.cycles, stats.cycles),
        ("branches", t.branches, stats.branches),
        ("loads", t.loads, stats.mem.loads),
        ("stores", t.stores, stats.mem.stores),
        ("l1_hits", t.l1_hits, stats.mem.l1_hits),
        ("l2_hits", t.l2_hits, stats.mem.l2_hits),
        ("llc_hits", t.llc_hits, stats.mem.llc_hits),
        ("demand_fills", t.demand_fills, stats.mem.demand_fills),
        ("sw_pf_issued", t.sw_pf_issued, stats.mem.sw_pf_issued),
        ("stall_dram", t.stall_dram, stats.mem.stall_dram),
    ];
    for (field, windowed, total) in pairs {
        assert_eq!(
            windowed,
            total,
            "{name} [{}]: timeline windows sum to {windowed} {field}, run total is {total}",
            variant.name()
        );
    }
}

/// Observability handles shared by every cell of one campaign. Both are
/// cheap-to-clone `Arc` wrappers; a disabled handle reduces every call
/// below to a single branch.
struct CellHooks {
    metrics: Registry,
    progress: Progress,
    collect_outcomes: bool,
    sampling: Option<SamplingSpec>,
}

/// Runs one cell: build the workload locally, run its variant, check the
/// result. Panics on simulation or correctness failure — a broken cell
/// must never silently contribute a row.
fn run_cell(
    desc: WorkloadDesc,
    variant: Variant,
    pipeline: &PipelineConfig,
    cache: Option<&ProfileCache>,
    hooks: &CellHooks,
    worker: usize,
    epoch: Instant,
) -> CellResult {
    // Worker threads label their self-profile section once; redundant
    // calls are cheap (and free when no session is active).
    apt_selfprof::set_thread_label(&format!("worker-{worker}"));
    apt_selfprof::prof_scope!("bench/cell");
    let started = Instant::now();
    let start_us = started.duration_since(epoch).as_micros() as u64;
    hooks.progress.job_started();
    let name = desc.name();
    let mut spans = SpanRecorder::new();
    let w = desc.build();

    let (module, hints, cache_outcome) = match variant {
        Variant::Baseline => (w.module.clone(), 0, None),
        Variant::AinsworthJones => {
            let (m, _) = ainsworth_jones_optimize(&w.module, AJ_STATIC_DISTANCE);
            (m, 0, None)
        }
        Variant::AptGet => {
            let apt = AptGet::new(*pipeline);
            let key = ProfileCache::key(name, desc.scale, desc.seed, &pipeline.profile_sim);
            let cached = cache.and_then(|c| c.load(key));
            let outcome = match (&cached, cache) {
                (Some(_), _) => CacheOutcome::Hit,
                (None, Some(_)) => CacheOutcome::MissStored,
                (None, None) => CacheOutcome::Uncached,
            };
            let (opt, collected) = apt
                .optimize_cached(&w.module, w.image.clone(), &w.calls, cached, &mut spans)
                .unwrap_or_else(|e| panic!("{name}: profiling failed: {e}"));
            if let (Some(c), Some((profile, stats))) = (cache, collected.as_ref()) {
                c.store(key, profile, stats);
            }
            (opt.module, opt.injection.injected.len(), Some(outcome))
        }
    };

    match cache_outcome {
        Some(CacheOutcome::Hit) => hooks.progress.cache_hit(),
        Some(_) => hooks.progress.cache_miss(),
        None => {}
    }

    let measure = spans.begin("measurement-run");
    // Outcome tracing is passive observation; the plain `execute` path is
    // literally `execute_traced` with tracing off, so the simulated result
    // cannot depend on `collect_outcomes`.
    let trace = if hooks.collect_outcomes && variant == Variant::AptGet {
        TraceConfig::outcomes()
    } else {
        TraceConfig::off()
    };
    let (stats, image, rets, timeline, outcome_table, mut sampled) = match hooks.sampling {
        // Sampled measurement: the SMARTS driver fast-forwards between
        // detailed windows and reconstructs the counters statistically.
        // Architectural results stay exact, so the correctness check
        // below is as strong as in a detailed run.
        Some(spec) => {
            let s = run_sampled(
                &module,
                w.image.clone(),
                &w.calls,
                &pipeline.measure_sim,
                &spec.sample,
                trace,
            )
            .unwrap_or_else(|e| panic!("{name}: sampled simulation failed: {e}"));
            let cell = SampledCell {
                cycle_err: None,
                ipc_err: None,
                exact_cycles: None,
                detail_fraction: s.detail_fraction(),
                windows: s.windows.len() as u64,
                rel_half_width: s.ci.rel_half_width,
            };
            (
                s.stats,
                s.image,
                s.rets,
                s.timeline,
                s.trace.outcomes,
                Some(cell),
            )
        }
        None => {
            let (exec, trace_report) = execute_traced(
                &module,
                w.image.clone(),
                &w.calls,
                &pipeline.measure_sim,
                trace,
            )
            .unwrap_or_else(|e| panic!("{name}: simulation failed: {e}"));
            (
                exec.stats,
                exec.image,
                exec.rets,
                exec.timeline,
                trace_report.outcomes,
                None,
            )
        }
    };
    (w.check)(&image, &rets)
        .unwrap_or_else(|e| panic!("{name} [{}]: wrong result: {e}", variant.name()));
    spans.add_sim_cycles(&measure, stats.cycles);
    spans.end(measure);

    // `--sampled-check`: run the exact detailed measurement too and record
    // the estimation error. Deliberately in its own span so the
    // measurement-run span still reflects the sampled run's cost.
    if let (Some(spec), Some(cell)) = (hooks.sampling, sampled.as_mut()) {
        if spec.check_exact {
            let check = spans.begin("exact-check-run");
            let (exact, _) = execute_traced(
                &module,
                w.image.clone(),
                &w.calls,
                &pipeline.measure_sim,
                TraceConfig::off(),
            )
            .unwrap_or_else(|e| panic!("{name}: exact check run failed: {e}"));
            let rel = |est: f64, ex: f64| {
                if ex == 0.0 {
                    0.0
                } else {
                    (est - ex).abs() / ex
                }
            };
            let est_ipc = stats.instructions as f64 / stats.cycles.max(1) as f64;
            let ex_ipc = exact.stats.instructions as f64 / exact.stats.cycles.max(1) as f64;
            cell.cycle_err = Some(rel(stats.cycles as f64, exact.stats.cycles as f64));
            cell.ipc_err = Some(rel(est_ipc, ex_ipc));
            cell.exact_cycles = Some(exact.stats.cycles);
            spans.add_sim_cycles(&check, exact.stats.cycles);
            spans.end(check);
        }
    }
    let outcomes = (hooks.collect_outcomes && variant == Variant::AptGet).then_some(outcome_table);
    assert_timeline_conserved(name, variant, &timeline, &stats);

    let wall_us = started.elapsed().as_micros() as u64;
    hooks.progress.job_finished(stats.cycles, wall_us);
    if hooks.metrics.is_enabled() {
        let labels = [("workload", name), ("variant", variant.name())];
        hooks
            .metrics
            .counter("apt_bench_cells_total", "Matrix cells completed.", &labels)
            .inc();
        hooks
            .metrics
            .histogram(
                "apt_bench_cell_wall_us",
                "Wall-clock cost of one matrix cell, microseconds.",
                &labels,
                &WALL_US_BUCKETS,
            )
            .observe(wall_us);
        if hints > 0 {
            hooks
                .metrics
                .counter(
                    "apt_bench_hints_total",
                    "Prefetch hints injected by APT-GET cells.",
                    &[("workload", name)],
                )
                .add(hints as u64);
        }
        stats.export_metrics(&hooks.metrics, &labels);
    }

    CellResult {
        workload: name.to_string(),
        variant,
        stats,
        hints,
        cache: cache_outcome,
        wall_us,
        start_us,
        worker,
        spans: spans.into_spans(),
        outcomes,
        timeline,
        sampled,
    }
}

/// Runs the full campaign. Cell results (and therefore the table) depend
/// only on `(scale, seed, pipeline)` — never on `jobs` or cache state.
pub fn run_campaign(cfg: &CampaignConfig) -> Result<CampaignReport, String> {
    let descs = resolve_workloads(cfg)?;
    let epoch = Instant::now();

    let pipeline = &cfg.pipeline;
    let cache = cfg.cache.as_ref();
    let hooks = CellHooks {
        metrics: cfg.metrics.clone(),
        progress: cfg.progress.clone(),
        collect_outcomes: cfg.collect_outcomes,
        sampling: cfg.sampling,
    };
    let cell_count = descs.len() * Variant::ALL.len();
    cfg.progress.set_total(cell_count as u64);
    cfg.progress
        .set_workers(cfg.jobs.clamp(1, cell_count.max(1)) as u64);
    let hooks = &hooks;
    let tasks: Vec<_> = descs
        .iter()
        .flat_map(|&desc| Variant::ALL.map(|variant| (desc, variant)))
        .map(|(desc, variant)| {
            move |worker: usize| run_cell(desc, variant, pipeline, cache, hooks, worker, epoch)
        })
        .collect();

    let (cells, pool) = run_indexed(cfg.jobs, tasks);
    let wall_us = epoch.elapsed().as_micros() as u64;

    // Reassemble the per-workload comparisons from the flat cell list.
    // Cells come back in submission order, so each workload owns a
    // contiguous [baseline, A&J, APT-GET] triple.
    let comparisons = cells
        .chunks_exact(Variant::ALL.len())
        .map(|chunk| Comparison {
            workload: chunk[0].workload.clone(),
            baseline: chunk[0].stats,
            variants: chunk[1..]
                .iter()
                .map(|c| (c.variant.name().to_string(), c.stats))
                .collect(),
        })
        .collect();

    let cache_counts = cfg
        .cache
        .as_ref()
        .map(|c| (c.stats.hits(), c.stats.misses(), c.stats.stores()))
        .unwrap_or_default();

    if cfg.metrics.is_enabled() {
        let m = &cfg.metrics;
        pool.export_metrics(m);
        m.gauge(
            "apt_bench_campaign_wall_us",
            "Wall time of the last campaign, microseconds.",
            &[],
        )
        .set(wall_us as f64);
        let (hits, misses, stores) = cache_counts;
        for (event, n) in [("hit", hits), ("miss", misses), ("store", stores)] {
            m.counter(
                "apt_bench_profile_cache_total",
                "Profile-cache traffic by event.",
                &[("event", event)],
            )
            .add(n);
        }
    }

    Ok(CampaignReport {
        scale: cfg.scale,
        seed: cfg.seed,
        cells,
        comparisons,
        pool,
        wall_us,
        cache_counts,
    })
}

impl CampaignReport {
    /// The paper-style comparison table: one row per workload plus the
    /// geomean row. Purely a function of simulated results — byte-identical
    /// across `--jobs` values and cache states.
    pub fn table(&self) -> (Vec<&'static str>, Vec<Vec<String>>) {
        let mut headers = vec![
            "workload",
            "base_cycles",
            "aj_speedup",
            "apt_speedup",
            "apt_instr",
            "apt_mpki",
            "hints",
        ];
        // Sampled campaigns grow extra columns; detailed campaigns keep
        // the exact historical layout (byte-identical output).
        let sampled = self.cells.iter().any(|c| c.sampled.is_some());
        let checked = self
            .cells
            .iter()
            .any(|c| c.sampled.is_some_and(|s| s.cycle_err.is_some()));
        if sampled {
            headers.push("detail");
            if checked {
                headers.push("cyc_err");
            }
        }
        let mut aj_all = Vec::new();
        let mut apt_all = Vec::new();
        let mut rows = Vec::with_capacity(self.comparisons.len() + 1);
        for (cmp, chunk) in self
            .comparisons
            .iter()
            .zip(self.cells.chunks_exact(Variant::ALL.len()))
        {
            let aj = cmp.speedup_of("A&J").unwrap_or(1.0);
            let apt = cmp.speedup_of("APT-GET").unwrap_or(1.0);
            aj_all.push(aj);
            apt_all.push(apt);
            let mut row = vec![
                cmp.workload.clone(),
                cmp.baseline.cycles.to_string(),
                fx(aj),
                fx(apt),
                format!("x{:.2}", cmp.instruction_overhead("APT-GET").unwrap_or(1.0)),
                format!("{:.2}", chunk[2].stats.mpki()),
                chunk[2].hints.to_string(),
            ];
            if sampled {
                let cells: Vec<SampledCell> = chunk.iter().filter_map(|c| c.sampled).collect();
                let detail = cells.iter().map(|s| s.detail_fraction).sum::<f64>()
                    / cells.len().max(1) as f64;
                row.push(format!("{:.1}%", detail * 100.0));
                if checked {
                    let err = cells.iter().filter_map(|s| s.cycle_err).fold(0.0, f64::max);
                    row.push(format!("{:.2}%", err * 100.0));
                }
            }
            rows.push(row);
        }
        let mut geo = vec![
            "geomean".to_string(),
            "-".to_string(),
            fx(geomean(&aj_all)),
            fx(geomean(&apt_all)),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
        ];
        geo.resize(headers.len(), "-".to_string());
        rows.push(geo);
        (headers, rows)
    }

    /// The deterministic report text (header line + aligned table).
    pub fn table_text(&self) -> String {
        let (headers, rows) = self.table();
        format!(
            "campaign scale={} seed={} workloads={}\n{}",
            self.scale,
            self.seed,
            self.comparisons.len(),
            format_table(&headers, &rows)
        )
    }

    /// Timing-dependent diagnostics: per-cell wall time, worker
    /// attribution, pool behaviour and profile-cache traffic. Deliberately
    /// *not* part of the deterministic table.
    pub fn stats_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "campaign wall time: {:.1} ms across {} workers ({} steals, {:.0}% utilization)\n",
            self.wall_us as f64 / 1000.0,
            self.pool.jobs,
            self.pool.total_steals(),
            self.pool.utilization() * 100.0
        ));
        let serial_us: u64 = self.cells.iter().map(|c| c.wall_us).sum();
        if self.wall_us > 0 {
            out.push_str(&format!(
                "cell wall time: {:.1} ms total → parallel speedup {}\n",
                serial_us as f64 / 1000.0,
                fx(serial_us as f64 / self.wall_us as f64)
            ));
        }
        let (hits, misses, stores) = self.cache_counts;
        out.push_str(&format!(
            "profile cache: {hits} hits, {misses} misses, {stores} stores\n"
        ));
        for (w, n) in self.pool.executed.iter().enumerate() {
            out.push_str(&format!(
                "  worker {w}: {n} cells, {} steals, {:.1} ms busy\n",
                self.pool.steals.get(w).copied().unwrap_or(0),
                self.pool.busy_us.get(w).copied().unwrap_or(0) as f64 / 1000.0
            ));
        }
        for cell in &self.cells {
            let cache = match cell.cache {
                Some(CacheOutcome::Hit) => " [cache hit]",
                Some(CacheOutcome::MissStored) => " [cache miss, stored]",
                Some(CacheOutcome::Uncached) => " [uncached]",
                None => "",
            };
            out.push_str(&format!(
                "  {:<12} {:<9} {:>9.1} ms on worker {}{}\n",
                cell.workload,
                cell.variant.name(),
                cell.wall_us as f64 / 1000.0,
                cell.worker,
                cache
            ));
        }
        out
    }

    /// Merges every cell's pipeline spans into one Chrome trace document:
    /// one thread row per worker (named via `name_thread`), each span
    /// re-based from its cell's epoch onto the campaign clock.
    pub fn chrome_trace(&self) -> String {
        let mut doc = ChromeTrace::new();
        for worker in 0..self.pool.jobs {
            let tid = worker as u32 + 1;
            let mut row = ChromeTrace::new();
            row.name_thread(tid, &format!("worker-{worker}"));
            for cell in self.cells.iter().filter(|c| c.worker == worker) {
                // One synthetic span wrapping the whole cell, then the
                // pipeline phases inside it.
                row.push_span_at(
                    &Span {
                        name: format!("{} [{}]", cell.workload, cell.variant.name()),
                        depth: 0,
                        start_us: cell.start_us,
                        wall_us: cell.wall_us,
                        sim_cycles: cell.stats.cycles,
                        detail: vec![],
                    },
                    tid,
                    cell.start_us,
                );
                for span in &cell.spans {
                    row.push_span_at(span, tid, cell.start_us + span.start_us);
                }
            }
            doc.append(row);
        }
        doc.to_json()
    }

    /// The benchmark snapshot of this campaign, ready for `--bench-out`
    /// and the `bench-gate` regression check. Cycles and speedups come
    /// straight from the deterministic cells; the outcome mix is present
    /// when the campaign ran with
    /// [`CampaignConfig::collect_outcomes`]; wall times are informational.
    pub fn bench_snapshot(&self, config: &str) -> BenchSnapshot {
        let mut snap = BenchSnapshot::new(config.to_string());
        for chunk in self.cells.chunks_exact(Variant::ALL.len()) {
            let mut wb = WorkloadBench::new(
                &chunk[0].workload,
                chunk[0].stats.cycles,
                chunk[1].stats.cycles,
                chunk[2].stats.cycles,
            );
            wb.wall_us = chunk.iter().map(|c| c.wall_us).sum();
            // Simulator throughput: simulated cycles across the triple
            // per host wall second. Host-dependent by design — this is
            // the series `perf-history` turns into a trajectory.
            let cycles: u64 = chunk.iter().map(|c| c.stats.cycles).sum();
            if wb.wall_us > 0 {
                wb.cycles_per_sec = cycles as f64 / (wb.wall_us as f64 / 1e6);
            }
            wb.outcomes = chunk[2].outcomes.as_ref().map(|t| OutcomeMix {
                issued: t.total.issued,
                timely: t.total.timely,
                late: t.total.late,
                early: t.total.early,
                useless: t.total.useless,
                redundant: t.total.redundant,
                dropped: t.total.dropped,
            });
            wb.phases = workload_phases(&chunk[0].timeline, &chunk[2].timeline);
            let cells: Vec<SampledCell> = chunk.iter().filter_map(|c| c.sampled).collect();
            if !cells.is_empty() {
                wb.sampled = Some(SampledBench {
                    cycle_err: cells.iter().filter_map(|s| s.cycle_err).fold(0.0, f64::max),
                    ipc_err: cells.iter().filter_map(|s| s.ipc_err).fold(0.0, f64::max),
                    detail_fraction: cells.iter().map(|s| s.detail_fraction).sum::<f64>()
                        / cells.len() as f64,
                    windows: cells.iter().map(|s| s.windows).sum(),
                    checked: cells.iter().any(|s| s.cycle_err.is_some()),
                });
            }
            snap.workloads.push(wb);
        }
        snap.host = apt_metrics::snapshot::host_fingerprint();
        snap.wall_us = self.wall_us;
        snap.cache_hits = self.cache_counts.0;
        snap.cache_misses = self.cache_counts.1;
        snap
    }

    /// Total cache hits across APT-GET cells of *this* campaign (the
    /// cache's own counters also include lookups by earlier campaigns in
    /// the same process).
    pub fn cells_with_cache_hit(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| c.cache == Some(CacheOutcome::Hit))
            .count()
    }
}

/// Detects the baseline run's execution phases and projects each onto
/// the APT-GET run's cycle axis, yielding the snapshot's per-phase rows
/// (`p0`, `p1`, … in execution order). Empty when timelines were off.
pub fn workload_phases(baseline: &Timeline, aptget: &Timeline) -> Vec<PhaseBench> {
    let total = baseline.total_instructions();
    if total == 0 {
        return Vec::new();
    }
    let phases = detect_phases(baseline, &PhaseConfig::default());
    phase_diff(baseline, &phases, aptget)
        .iter()
        .map(|d| PhaseBench {
            label: format!("p{}", d.phase.index),
            start_frac: d.phase.start_instr as f64 / total as f64,
            end_frac: d.phase.end_instr as f64 / total as f64,
            baseline_cycles: d.base_cycles,
            aptget_cycles: d.other_cycles,
            implied_distance: d.phase.implied_distance,
        })
        .collect()
}

/// Parsed command-line options shared by `apteval` and
/// `aptgetsim campaign`.
pub struct CampaignArgs {
    pub scale: f64,
    pub seed: u64,
    pub jobs: usize,
    /// Comma-separated `--workloads` selections, flattened.
    pub workloads: Vec<String>,
    pub no_cache: bool,
    pub cache_dir: Option<String>,
    pub stats: bool,
    pub trace_out: Option<String>,
    pub csv_out: Option<String>,
    /// Serve a Prometheus scrape endpoint at this address for the
    /// campaign's duration (also enables the registry).
    pub metrics_addr: Option<String>,
    /// Write the final Prometheus exposition here (also enables the
    /// registry).
    pub metrics_out: Option<String>,
    /// Write a `BenchSnapshot` JSON here (also enables outcome tracing on
    /// APT-GET cells so the snapshot carries the prefetch-outcome mix).
    pub bench_out: Option<String>,
    /// Render the self-contained HTML timeline report here (also enables
    /// outcome tracing so the report carries the per-window outcome mix).
    pub report_out: Option<String>,
    /// Write every cell's windowed timeline as a JSON artifact here.
    pub timeline_out: Option<String>,
    /// Profile the simulator itself for the campaign's duration and
    /// write a flamegraph HTML page here (plus folded stacks next to it
    /// with a `.folded` extension). Observation only: the result table
    /// stays byte-identical.
    pub selfprof_out: Option<String>,
    /// Render a live progress line on stderr.
    pub progress: bool,
    /// Run every cell under SMARTS sampled simulation instead of
    /// detailed end-to-end execution.
    pub sampled: bool,
    /// After each sampled cell, re-run it exactly and record the
    /// estimated-vs-exact error (implies `--sampled`).
    pub sampled_check: bool,
    /// Sampling period in instructions (`--sample-period`).
    pub sample_period: Option<u64>,
    /// Measured window length in instructions (`--sample-window`).
    pub sample_window: Option<u64>,
    /// Detailed warmup before each window (`--sample-warmup`).
    pub sample_warmup: Option<u64>,
    /// Seed for window-placement jitter (`--sample-seed`).
    pub sample_seed: Option<u64>,
    /// Functional-warming horizon in instructions (`--sample-horizon`).
    pub sample_horizon: Option<u64>,
}

impl CampaignArgs {
    /// The flag summary for usage messages.
    pub const USAGE: &'static str = "[--jobs N] [--scale S] [--seed N] \
        [--workloads A,B,..] [--no-cache] [--cache-dir DIR] [--stats] \
        [--trace-out PATH] [--csv-out PATH] [--metrics-addr HOST:PORT] \
        [--metrics-out PATH] [--bench-out PATH] [--report-out PATH] \
        [--timeline-out PATH] [--selfprof-out PATH] [--progress] \
        [--sampled] [--sampled-check] [--sample-period N] \
        [--sample-window N] [--sample-warmup N] [--sample-seed N] \
        [--sample-horizon N]";

    /// Parses campaign flags. `--jobs` defaults to `$APT_JOBS`, then the
    /// machine's available parallelism.
    pub fn parse(mut args: impl Iterator<Item = String>) -> Result<CampaignArgs, String> {
        let default_jobs = std::env::var("APT_JOBS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        let mut out = CampaignArgs {
            scale: crate::scale(),
            seed: crate::TRAIN_SEED,
            jobs: default_jobs,
            workloads: Vec::new(),
            no_cache: false,
            cache_dir: None,
            stats: false,
            trace_out: None,
            csv_out: None,
            metrics_addr: None,
            metrics_out: None,
            bench_out: None,
            report_out: None,
            timeline_out: None,
            selfprof_out: None,
            progress: false,
            sampled: false,
            sampled_check: false,
            sample_period: None,
            sample_window: None,
            sample_warmup: None,
            sample_seed: None,
            sample_horizon: None,
        };
        while let Some(a) = args.next() {
            let mut value = |flag: &str| args.next().ok_or(format!("{flag} needs a value"));
            match a.as_str() {
                "--jobs" => {
                    out.jobs = value("--jobs")?
                        .parse()
                        .map_err(|e| format!("bad --jobs: {e}"))?;
                }
                "--scale" => {
                    out.scale = value("--scale")?
                        .parse()
                        .map_err(|e| format!("bad --scale: {e}"))?;
                }
                "--seed" => {
                    out.seed = value("--seed")?
                        .parse()
                        .map_err(|e| format!("bad --seed: {e}"))?;
                }
                "--workloads" => {
                    out.workloads.extend(
                        value("--workloads")?
                            .split(',')
                            .filter(|s| !s.is_empty())
                            .map(str::to_string),
                    );
                }
                "--no-cache" => out.no_cache = true,
                "--cache-dir" => out.cache_dir = Some(value("--cache-dir")?),
                "--stats" => out.stats = true,
                "--trace-out" => out.trace_out = Some(value("--trace-out")?),
                "--csv-out" => out.csv_out = Some(value("--csv-out")?),
                "--metrics-addr" => out.metrics_addr = Some(value("--metrics-addr")?),
                "--metrics-out" => out.metrics_out = Some(value("--metrics-out")?),
                "--bench-out" => out.bench_out = Some(value("--bench-out")?),
                "--report-out" => out.report_out = Some(value("--report-out")?),
                "--timeline-out" => out.timeline_out = Some(value("--timeline-out")?),
                "--selfprof-out" => out.selfprof_out = Some(value("--selfprof-out")?),
                "--progress" => out.progress = true,
                "--sampled" => out.sampled = true,
                "--sampled-check" => out.sampled_check = true,
                "--sample-period" => {
                    out.sample_period = Some(
                        value("--sample-period")?
                            .parse()
                            .map_err(|e| format!("bad --sample-period: {e}"))?,
                    );
                }
                "--sample-window" => {
                    out.sample_window = Some(
                        value("--sample-window")?
                            .parse()
                            .map_err(|e| format!("bad --sample-window: {e}"))?,
                    );
                }
                "--sample-warmup" => {
                    out.sample_warmup = Some(
                        value("--sample-warmup")?
                            .parse()
                            .map_err(|e| format!("bad --sample-warmup: {e}"))?,
                    );
                }
                "--sample-seed" => {
                    out.sample_seed = Some(
                        value("--sample-seed")?
                            .parse()
                            .map_err(|e| format!("bad --sample-seed: {e}"))?,
                    );
                }
                "--sample-horizon" => {
                    out.sample_horizon = Some(
                        value("--sample-horizon")?
                            .parse()
                            .map_err(|e| format!("bad --sample-horizon: {e}"))?,
                    );
                }
                other => return Err(format!("unknown argument `{other}`")),
            }
        }
        Ok(out)
    }

    /// The campaign configuration these arguments describe.
    pub fn config(&self) -> CampaignConfig {
        let cache = if self.no_cache {
            None
        } else {
            let dir = self
                .cache_dir
                .clone()
                .map(PathBuf::from)
                .unwrap_or_else(ProfileCache::default_dir);
            Some(ProfileCache::new(dir))
        };
        let metrics = if self.metrics_addr.is_some() || self.metrics_out.is_some() {
            Registry::new()
        } else {
            Registry::disabled()
        };
        let progress = if self.progress {
            Progress::new()
        } else {
            Progress::disabled()
        };
        CampaignConfig {
            scale: self.scale,
            seed: self.seed,
            jobs: self.jobs,
            workloads: self.workloads.clone(),
            pipeline: PipelineConfig::default(),
            cache,
            metrics,
            progress,
            collect_outcomes: self.bench_out.is_some() || self.report_out.is_some(),
            sampling: self.sampling_spec(),
        }
    }

    /// The sampling specification these arguments describe, or `None`
    /// for a detailed campaign. `--sampled-check` implies `--sampled`.
    fn sampling_spec(&self) -> Option<SamplingSpec> {
        if !self.sampled && !self.sampled_check {
            return None;
        }
        let mut sample = SampleConfig::default();
        if let Some(p) = self.sample_period {
            sample.period = p;
        }
        if let Some(w) = self.sample_window {
            sample.window = w;
        }
        if let Some(w) = self.sample_warmup {
            sample.warmup = w;
        }
        if let Some(s) = self.sample_seed {
            sample.seed = s;
        }
        if let Some(h) = self.sample_horizon {
            sample.warm_horizon = h;
        }
        Some(SamplingSpec {
            sample,
            check_exact: self.sampled_check,
        })
    }
}

/// Runs a campaign from parsed CLI arguments, prints the report and
/// writes the requested artifacts. The shared entry point behind both
/// `apteval` and `aptgetsim campaign`.
pub fn campaign_cli(args: &CampaignArgs) -> Result<CampaignReport, String> {
    let cfg = args.config();
    // Start self-profiling before the first cell so worker threads bind
    // to the session; it stays open across artifact rendering so report
    // generation shows up in the flamegraph too.
    let selfprof = args
        .selfprof_out
        .as_ref()
        .map(|_| apt_selfprof::begin_monotonic());
    let server = match &args.metrics_addr {
        Some(addr) => {
            let s = MetricsServer::bind(addr, cfg.metrics.clone())
                .map_err(|e| format!("could not bind metrics endpoint {addr}: {e}"))?;
            eprintln!("[metrics served at http://{}/metrics]", s.addr());
            Some(s)
        }
        None => None,
    };
    let reporter = cfg
        .progress
        .is_enabled()
        .then(|| ProgressReporter::spawn(cfg.progress.clone(), Duration::from_millis(200)));

    let report = run_campaign(&cfg);
    if let Some(r) = reporter {
        r.finish();
    }
    let report = report?;

    println!("{}", report.table_text());
    if args.stats {
        println!();
        print!("{}", report.stats_text());
    }
    if let Some(path) = &args.csv_out {
        let (headers, rows) = report.table();
        fs::write(path, crate::format_csv(&headers, &rows))
            .map_err(|e| format!("could not write {path}: {e}"))?;
        println!("[csv written to {path}]");
    }
    if let Some(path) = &args.trace_out {
        fs::write(path, report.chrome_trace())
            .map_err(|e| format!("could not write {path}: {e}"))?;
        println!("[trace written to {path}]");
    }
    if let Some(path) = &args.bench_out {
        let config = format!("scale={} seed={}", cfg.scale, cfg.seed);
        fs::write(path, report.bench_snapshot(&config).to_json())
            .map_err(|e| format!("could not write {path}: {e}"))?;
        println!("[bench snapshot written to {path}]");
    }
    if let Some(path) = &args.report_out {
        fs::write(path, crate::report::render_campaign_report(&report))
            .map_err(|e| format!("could not write {path}: {e}"))?;
        println!("[timeline report written to {path}]");
    }
    if let Some(path) = &args.timeline_out {
        fs::write(path, crate::report::timelines_json(&report))
            .map_err(|e| format!("could not write {path}: {e}"))?;
        println!("[timelines written to {path}]");
    }
    if let Some(path) = &args.metrics_out {
        fs::write(path, render_prometheus(&cfg.metrics))
            .map_err(|e| format!("could not write {path}: {e}"))?;
        println!("[metrics written to {path}]");
    }
    if let (Some(path), Some(session)) = (&args.selfprof_out, selfprof) {
        let profile = session.finish();
        let folded_path = std::path::Path::new(path).with_extension("folded");
        fs::write(&folded_path, profile.merged().folded())
            .map_err(|e| format!("could not write {}: {e}", folded_path.display()))?;
        fs::write(path, crate::selfprof_report::render_selfprof_html(&profile))
            .map_err(|e| format!("could not write {path}: {e}"))?;
        println!(
            "[self-profile written to {path}, folded stacks to {}]",
            folded_path.display()
        );
    }
    drop(server);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config(jobs: usize) -> CampaignConfig {
        CampaignConfig {
            workloads: vec!["RandAcc".into(), "IS".into()],
            cache: None,
            ..CampaignConfig::new(0.004, 42, jobs)
        }
    }

    #[test]
    fn campaign_rows_cover_the_matrix() {
        let report = run_campaign(&tiny_config(2)).unwrap();
        assert_eq!(report.cells.len(), 2 * Variant::ALL.len());
        assert_eq!(report.comparisons.len(), 2);
        assert_eq!(report.comparisons[0].workload, "RandAcc");
        assert_eq!(report.comparisons[1].workload, "IS");
        let (headers, rows) = report.table();
        assert_eq!(headers.len(), rows[0].len());
        assert_eq!(rows.len(), 3); // 2 workloads + geomean.
        assert_eq!(rows[2][0], "geomean");
    }

    #[test]
    fn unknown_workload_is_an_error() {
        let mut cfg = tiny_config(1);
        cfg.workloads = vec!["Nope".into()];
        assert!(run_campaign(&cfg).is_err());
    }

    #[test]
    fn table_text_is_identical_across_jobs() {
        let a = run_campaign(&tiny_config(1)).unwrap().table_text();
        let b = run_campaign(&tiny_config(4)).unwrap().table_text();
        assert_eq!(a, b);
    }

    #[test]
    fn metrics_and_outcomes_do_not_change_the_table() {
        let plain = run_campaign(&tiny_config(2)).unwrap();
        let mut cfg = tiny_config(2);
        cfg.metrics = Registry::new();
        cfg.progress = Progress::new();
        cfg.collect_outcomes = true;
        let observed = run_campaign(&cfg).unwrap();

        assert_eq!(
            plain.table_text(),
            observed.table_text(),
            "observability must be passive"
        );

        // The registry saw every cell, labelled by workload and variant.
        let m = &cfg.metrics;
        for wl in ["RandAcc", "IS"] {
            for variant in ["baseline", "A&J", "APT-GET"] {
                let labels = [("workload", wl), ("variant", variant)];
                assert_eq!(
                    m.counter_value("apt_bench_cells_total", &labels),
                    Some(1),
                    "{wl}/{variant}"
                );
                let cell = observed
                    .cells
                    .iter()
                    .find(|c| c.workload == wl && c.variant.name() == variant)
                    .unwrap();
                assert_eq!(
                    m.counter_value("apt_cpu_cycles_total", &labels),
                    Some(cell.stats.cycles),
                    "{wl}/{variant}"
                );
            }
        }
        assert!(m
            .gauge_value("apt_bench_pool_utilization_ratio", &[])
            .is_some());

        // Outcome tables ride on APT-GET cells only, and they balance.
        for cell in &observed.cells {
            match (cell.variant, &cell.outcomes) {
                (Variant::AptGet, Some(t)) => assert!(t.is_conserved()),
                (Variant::AptGet, None) => panic!("APT-GET cell lost its outcome table"),
                (_, Some(_)) => panic!("non-APT-GET cell grew an outcome table"),
                (_, None) => {}
            }
        }

        // Progress accounting drained: all jobs finished, none in flight.
        let snap = cfg.progress.snapshot().unwrap();
        assert_eq!(snap.completed, 6);
        assert_eq!(snap.in_flight, 0);
        assert!(snap.sim_cycles > 0);
    }

    #[test]
    fn bench_snapshot_round_trips_and_gates_clean() {
        let mut cfg = tiny_config(2);
        cfg.collect_outcomes = true;
        let report = run_campaign(&cfg).unwrap();
        let snap = report.bench_snapshot("scale=0.004 seed=42");

        assert_eq!(snap.workloads.len(), 2);
        let rand = &snap.workloads[0];
        assert_eq!(rand.workload, "RandAcc");
        assert_eq!(rand.baseline_cycles, report.cells[0].stats.cycles);
        assert_eq!(rand.aptget_cycles, report.cells[2].stats.cycles);
        let mix = rand.outcomes.expect("outcome mix present");
        assert_eq!(
            mix.issued,
            mix.timely + mix.late + mix.early + mix.useless + mix.redundant + mix.dropped
        );

        // Timelines are on by default, so the snapshot carries per-phase
        // rows whose baseline cycles tile the whole run.
        for wb in &snap.workloads {
            assert!(!wb.phases.is_empty(), "{}: no phases", wb.workload);
            let phase_cycles: u64 = wb.phases.iter().map(|p| p.baseline_cycles).sum();
            assert_eq!(phase_cycles, wb.baseline_cycles, "{}", wb.workload);
            assert_eq!(wb.phases[0].label, "p0");
            assert_eq!(wb.phases[0].start_frac, 0.0);
            assert_eq!(wb.phases.last().unwrap().end_frac, 1.0);
        }

        let parsed = apt_metrics::BenchSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(parsed, snap);
        let gate = apt_metrics::gate(&parsed, &snap, &apt_metrics::GateConfig::default());
        assert!(
            gate.passed(),
            "self-comparison must pass:\n{}",
            gate.render()
        );
        // Per-phase mode also self-gates clean now that phases are present.
        let per_phase = apt_metrics::GateConfig {
            per_phase: true,
            ..apt_metrics::GateConfig::default()
        };
        let gate = apt_metrics::gate(&parsed, &snap, &per_phase);
        assert!(
            gate.passed(),
            "per-phase self-comparison must pass:\n{}",
            gate.render()
        );
        assert!(gate
            .checks
            .iter()
            .any(|c| c.metric == "phase_aptget_cycles"));
    }

    #[test]
    fn cli_args_parse_and_reject() {
        fn argv(s: &str) -> impl Iterator<Item = String> + '_ {
            s.split_whitespace().map(str::to_string)
        }
        let a = CampaignArgs::parse(argv(
            "--jobs 4 --scale 0.01 --seed 7 --workloads BFS,IS --no-cache --stats",
        ))
        .unwrap();
        assert_eq!(a.jobs, 4);
        assert_eq!(a.scale, 0.01);
        assert_eq!(a.seed, 7);
        assert_eq!(a.workloads, vec!["BFS", "IS"]);
        assert!(a.no_cache && a.stats);
        assert!(a.config().cache.is_none());
        assert!(!a.config().metrics.is_enabled());
        assert!(!a.config().progress.is_enabled());
        assert!(!a.config().collect_outcomes);
        let b = CampaignArgs::parse(argv(
            "--metrics-out m.prom --bench-out BENCH_4.json --progress",
        ))
        .unwrap();
        assert_eq!(b.metrics_out.as_deref(), Some("m.prom"));
        assert_eq!(b.bench_out.as_deref(), Some("BENCH_4.json"));
        assert!(b.config().metrics.is_enabled());
        assert!(b.config().progress.is_enabled());
        assert!(b.config().collect_outcomes);
        let c = CampaignArgs::parse(argv("--report-out r.html --timeline-out t.json")).unwrap();
        assert_eq!(c.report_out.as_deref(), Some("r.html"));
        assert_eq!(c.timeline_out.as_deref(), Some("t.json"));
        // The report embeds the outcome mix, so it implies outcome tracing.
        assert!(c.config().collect_outcomes);
        assert!(CampaignArgs::parse(argv("--report-out")).is_err());
        assert!(CampaignArgs::parse(argv("--bogus")).is_err());
        assert!(CampaignArgs::parse(argv("--jobs")).is_err());
        assert!(CampaignArgs::parse(argv("--metrics-addr")).is_err());
    }

    #[test]
    fn chrome_trace_names_worker_rows() {
        let report = run_campaign(&tiny_config(2)).unwrap();
        let json = report.chrome_trace();
        assert!(json.contains("\"worker-0\""));
        assert!(json.contains("RandAcc [baseline]"));
        assert!(json.contains("IS [APT-GET]"));
    }

    fn sampled_config(jobs: usize, spec: SamplingSpec) -> CampaignConfig {
        CampaignConfig {
            sampling: Some(spec),
            ..tiny_config(jobs)
        }
    }

    #[test]
    fn full_coverage_sampling_reproduces_the_exact_campaign() {
        let spec = SamplingSpec {
            sample: SampleConfig {
                window: SampleConfig::default().period,
                warmup: 0,
                ..SampleConfig::default()
            },
            check_exact: true,
        };
        let exact = run_campaign(&tiny_config(2)).unwrap();
        let sampled = run_campaign(&sampled_config(2, spec)).unwrap();
        for (e, s) in exact.cells.iter().zip(&sampled.cells) {
            let tag = format!("{} [{}]", e.workload, e.variant.name());
            assert_eq!(e.stats, s.stats, "{tag}");
            let sc = s.sampled.expect("sampled cell metadata");
            assert_eq!(sc.cycle_err, Some(0.0), "{tag}");
            assert_eq!(sc.ipc_err, Some(0.0), "{tag}");
            assert_eq!(sc.detail_fraction, 1.0, "{tag}");
            assert_eq!(sc.exact_cycles, Some(e.stats.cycles), "{tag}");
        }
        // The speedup columns agree with the detailed campaign; the table
        // only *grows* the sampling diagnostics on the right.
        let (eh, er) = exact.table();
        let (sh, sr) = sampled.table();
        assert_eq!(&sh[..eh.len()], &eh[..]);
        assert_eq!(&sh[eh.len()..], &["detail", "cyc_err"]);
        for (erow, srow) in er.iter().zip(&sr) {
            assert_eq!(&srow[..erow.len()], &erow[..]);
            assert_eq!(srow.len(), sh.len());
        }
        assert_eq!(sr.last().unwrap().last().unwrap(), "-");
    }

    #[test]
    fn sampled_campaign_bounds_error_and_gates_on_it() {
        let spec = SamplingSpec {
            sample: SampleConfig {
                period: 4_096,
                window: 2_048,
                warmup: 1_024,
                ..SampleConfig::default()
            },
            check_exact: true,
        };
        let mut cfg = sampled_config(2, spec);
        cfg.collect_outcomes = true;
        let report = run_campaign(&cfg).unwrap();
        for cell in &report.cells {
            let tag = format!("{} [{}]", cell.workload, cell.variant.name());
            let sc = cell.sampled.expect("sampled cell metadata");
            assert!(sc.windows >= 1, "{tag}");
            assert!(
                sc.detail_fraction > 0.0 && sc.detail_fraction <= 1.0,
                "{tag}: detail {}",
                sc.detail_fraction
            );
            let err = sc.cycle_err.expect("checked cell records error");
            assert!(err <= 0.05, "{tag}: cycle error {err}");
        }

        let snap = report.bench_snapshot("sampled scale=0.004 seed=42");
        for wb in &snap.workloads {
            let s = wb.sampled.expect("snapshot sampled record");
            assert!(s.checked, "{}", wb.workload);
            assert!(s.cycle_err <= 0.05, "{}: {}", wb.workload, s.cycle_err);
            assert!(s.windows >= 3, "{}", wb.workload);
        }
        let parsed = apt_metrics::BenchSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(parsed, snap);
        let gate = apt_metrics::gate(&parsed, &snap, &apt_metrics::GateConfig::default());
        assert!(gate.passed(), "self-comparison:\n{}", gate.render());
        assert!(gate.checks.iter().any(|c| c.metric == "sampled_cycle_err"));

        // bench-gate rejects a sampled snapshot whose recorded error
        // exceeds the tolerance, regardless of the baseline's contents.
        let mut bad = snap.clone();
        for wb in &mut bad.workloads {
            if let Some(s) = wb.sampled.as_mut() {
                s.cycle_err = 0.5;
            }
        }
        let gate = apt_metrics::gate(&parsed, &bad, &apt_metrics::GateConfig::default());
        assert!(
            !gate.passed(),
            "inflated error must fail:\n{}",
            gate.render()
        );
        assert!(gate
            .checks
            .iter()
            .any(|c| c.metric == "sampled_cycle_err" && c.failed));
    }

    #[test]
    fn sampling_cli_flags_parse_into_a_spec() {
        fn argv(s: &str) -> impl Iterator<Item = String> + '_ {
            s.split_whitespace().map(str::to_string)
        }
        let a = CampaignArgs::parse(argv(
            "--sampled-check --sample-period 8192 --sample-window 1024 \
             --sample-warmup 256 --sample-seed 3",
        ))
        .unwrap();
        let spec = a.config().sampling.expect("sampling spec");
        assert!(spec.check_exact);
        assert_eq!(spec.sample.period, 8192);
        assert_eq!(spec.sample.window, 1024);
        assert_eq!(spec.sample.warmup, 256);
        assert_eq!(spec.sample.seed, 3);
        let b = CampaignArgs::parse(argv("--sampled")).unwrap();
        let spec = b.config().sampling.expect("sampling spec");
        assert!(!spec.check_exact);
        assert_eq!(spec.sample, SampleConfig::default());
        assert!(CampaignArgs::parse(argv("--jobs 2"))
            .unwrap()
            .config()
            .sampling
            .is_none());
        assert!(CampaignArgs::parse(argv("--sample-period")).is_err());
        assert!(CampaignArgs::parse(argv("--sample-seed x")).is_err());
    }
}
