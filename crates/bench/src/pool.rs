//! A hand-rolled work-stealing thread pool (std only, no rayon).
//!
//! The campaign runner shards independent (workload × variant) cells
//! across workers. Cells vary wildly in cost — Graph500 profiling runs
//! take orders of magnitude longer than a RandAcc baseline measurement —
//! so static round-robin assignment leaves workers idle; stealing keeps
//! them busy.
//!
//! Design:
//!
//! * Every worker owns a deque of task indices, seeded round-robin so the
//!   initial distribution is balanced by count.
//! * A worker pops from the *back* of its own deque (LIFO: warm caches),
//!   and steals from the *front* of a victim's (FIFO: takes the work the
//!   owner would reach last, minimising contention on the same end).
//! * Results land in per-task slots indexed by submission order, so the
//!   output is **byte-identical at any worker count** — parallelism only
//!   changes *when* a cell runs, never which cell produces which slot.
//! * `jobs == 1` short-circuits to a plain in-thread loop: zero threads,
//!   zero locks — the determinism baseline.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// What the pool did, for the campaign's explain output.
#[derive(Debug, Clone, Default)]
pub struct PoolStats {
    /// Worker count actually used.
    pub jobs: usize,
    /// Tasks executed by each worker (sums to the task count).
    pub executed: Vec<u64>,
    /// Successful steals by each worker.
    pub steals: Vec<u64>,
    /// Wall time each worker spent inside tasks, microseconds. A worker's
    /// idle time is `wall_us - busy_us[w]`.
    pub busy_us: Vec<u64>,
    /// Wall time of the whole pool run, microseconds.
    pub wall_us: u64,
}

impl PoolStats {
    /// Total successful steals across workers.
    pub fn total_steals(&self) -> u64 {
        self.steals.iter().sum()
    }

    /// Mean worker utilization in [0, 1]: task time summed over workers
    /// divided by `jobs × wall`. Sequential runs are 1.0 by construction
    /// (modulo the pool's own bookkeeping).
    pub fn utilization(&self) -> f64 {
        let capacity = self.wall_us.saturating_mul(self.jobs as u64);
        if capacity == 0 {
            return 0.0;
        }
        (self.busy_us.iter().sum::<u64>() as f64 / capacity as f64).min(1.0)
    }

    /// Exports pool health into `registry` so `/metrics` scrapes see the
    /// campaign: pool-level gauges (worker count, utilization, wall
    /// time), plus per-worker task / steal / busy-time counters labelled
    /// `worker="<id>"`. A disabled registry makes this a no-op.
    pub fn export_metrics(&self, registry: &apt_metrics::Registry) {
        if !registry.is_enabled() {
            return;
        }
        registry
            .gauge(
                "apt_bench_pool_jobs",
                "Workers used by the last pool run.",
                &[],
            )
            .set(self.jobs as f64);
        registry
            .gauge(
                "apt_bench_pool_utilization_ratio",
                "Mean worker utilization of the last campaign, 0 to 1.",
                &[],
            )
            .set(self.utilization());
        registry
            .gauge(
                "apt_bench_pool_wall_us",
                "Wall time of the last pool run, microseconds.",
                &[],
            )
            .set(self.wall_us as f64);
        registry
            .counter(
                "apt_bench_pool_steals_total",
                "Successful work steals across pool workers.",
                &[],
            )
            .add(self.total_steals());
        for w in 0..self.jobs {
            let id = w.to_string();
            let labels = [("worker", id.as_str())];
            registry
                .counter(
                    "apt_bench_worker_tasks_total",
                    "Tasks completed by each pool worker.",
                    &labels,
                )
                .add(self.executed.get(w).copied().unwrap_or(0));
            registry
                .counter(
                    "apt_bench_worker_steals_total",
                    "Successful steals by each pool worker.",
                    &labels,
                )
                .add(self.steals.get(w).copied().unwrap_or(0));
            registry
                .counter(
                    "apt_bench_worker_busy_us_total",
                    "Time each pool worker spent inside cells, microseconds.",
                    &labels,
                )
                .add(self.busy_us.get(w).copied().unwrap_or(0));
        }
    }
}

/// Runs `tasks` on `jobs` workers and returns `(results, stats)`, with
/// `results[i]` holding task `i`'s output regardless of which worker ran
/// it or in what order. Each task receives the id (0-based) of the worker
/// executing it.
///
/// # Panics
///
/// Propagates the first worker panic (tasks must not poison shared state).
pub fn run_indexed<T, F>(jobs: usize, tasks: Vec<F>) -> (Vec<T>, PoolStats)
where
    T: Send,
    F: FnOnce(usize) -> T + Send,
{
    let n = tasks.len();
    let jobs = jobs.max(1).min(n.max(1));
    let start = Instant::now();

    if jobs == 1 {
        let mut busy = 0u64;
        let results = tasks
            .into_iter()
            .map(|t| {
                let t0 = Instant::now();
                let out = t(0);
                busy += t0.elapsed().as_micros() as u64;
                out
            })
            .collect();
        return (
            results,
            PoolStats {
                jobs: 1,
                executed: vec![n as u64],
                steals: vec![0],
                busy_us: vec![busy],
                wall_us: start.elapsed().as_micros() as u64,
            },
        );
    }

    // Task palette: workers take FnOnce closures out of their slots.
    let task_slots: Vec<Mutex<Option<F>>> =
        tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    // Result slots, indexed by task id.
    let result_slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();

    // Round-robin seeding: task i starts on worker i % jobs.
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..jobs)
        .map(|w| Mutex::new((w..n).step_by(jobs).collect()))
        .collect();

    let executed: Vec<AtomicU64> = (0..jobs).map(|_| AtomicU64::new(0)).collect();
    let steals: Vec<AtomicU64> = (0..jobs).map(|_| AtomicU64::new(0)).collect();
    let busy_us: Vec<AtomicU64> = (0..jobs).map(|_| AtomicU64::new(0)).collect();

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(jobs);
        for worker in 0..jobs {
            let task_slots = &task_slots;
            let result_slots = &result_slots;
            let deques = &deques;
            let executed = &executed;
            let steals = &steals;
            let busy_us = &busy_us;
            handles.push(scope.spawn(move || {
                loop {
                    // Own deque first, newest work first.
                    let mut picked = deques[worker].lock().unwrap().pop_back();
                    let mut stolen = false;
                    if picked.is_none() {
                        // Steal scan: oldest work of the next victims over.
                        for delta in 1..deques.len() {
                            let victim = (worker + delta) % deques.len();
                            if let Some(idx) = deques[victim].lock().unwrap().pop_front() {
                                picked = Some(idx);
                                stolen = true;
                                break;
                            }
                        }
                    }
                    let Some(idx) = picked else {
                        // All deques empty. Tasks already claimed cannot
                        // re-enqueue, so there is nothing left to wait for.
                        break;
                    };
                    // A task index appears in exactly one deque, so the
                    // slot is always occupied when we get here.
                    let task = task_slots[idx]
                        .lock()
                        .unwrap()
                        .take()
                        .expect("task claimed twice");
                    let t0 = Instant::now();
                    let out = task(worker);
                    busy_us[worker].fetch_add(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
                    *result_slots[idx].lock().unwrap() = Some(out);
                    executed[worker].fetch_add(1, Ordering::Relaxed);
                    if stolen {
                        steals[worker].fetch_add(1, Ordering::Relaxed);
                    }
                }
            }));
        }
        for h in handles {
            if let Err(p) = h.join() {
                std::panic::resume_unwind(p);
            }
        }
    });

    let results = result_slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every task ran exactly once")
        })
        .collect();
    let stats = PoolStats {
        jobs,
        executed: executed.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
        steals: steals.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
        busy_us: busy_us.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
        wall_us: start.elapsed().as_micros() as u64,
    };
    (results, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_keep_submission_order_at_any_width() {
        let tasks = |n: usize| (0..n).map(|i| move |_w: usize| i * i).collect::<Vec<_>>();
        let (seq, s1) = run_indexed(1, tasks(50));
        for jobs in [2, 3, 8] {
            let (par, sp) = run_indexed(jobs, tasks(50));
            assert_eq!(seq, par, "jobs={jobs}");
            assert_eq!(sp.executed.iter().sum::<u64>(), 50);
            assert_eq!(sp.jobs, jobs);
        }
        assert_eq!(s1.jobs, 1);
        assert_eq!(s1.total_steals(), 0);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let tasks: Vec<_> = (0..200)
            .map(|i| {
                let counter = &counter;
                move |_w: usize| {
                    counter.fetch_add(1, Ordering::Relaxed);
                    i
                }
            })
            .collect();
        let (results, _) = run_indexed(4, tasks);
        assert_eq!(counter.load(Ordering::Relaxed), 200);
        assert_eq!(results, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn uneven_tasks_get_stolen() {
        // Worker 0's deque gets all the slow tasks (indices ≡ 0 mod 2 with
        // jobs=2); the other worker must steal to finish.
        let tasks: Vec<_> = (0..16)
            .map(|i| {
                move |_w: usize| {
                    if i % 2 == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(10));
                    }
                    i
                }
            })
            .collect();
        let (results, stats) = run_indexed(2, tasks);
        assert_eq!(results.len(), 16);
        // Stealing is timing-dependent, but with 8 × 10 ms of sleep pinned
        // to one deque the idle worker steals essentially always. Accept 0
        // only if the fast worker somehow did all its own work first.
        assert!(stats.executed.iter().sum::<u64>() == 16);
    }

    #[test]
    fn more_jobs_than_tasks_is_clamped() {
        let tasks: Vec<_> = (0..3).map(|i| move |_w: usize| i).collect();
        let (results, stats) = run_indexed(64, tasks);
        assert_eq!(results, vec![0, 1, 2]);
        assert!(stats.jobs <= 3);
    }

    #[test]
    fn empty_task_list() {
        let (results, stats) = run_indexed(4, Vec::<fn(usize) -> u64>::new());
        assert!(results.is_empty());
        assert_eq!(stats.utilization(), 0.0);
    }

    /// Satellite check: per-worker busy time plus idle time accounts for
    /// the pool's wall time, within measurement tolerance, at every
    /// worker count the CI campaign uses.
    #[test]
    fn worker_utilization_accounts_for_wall_time() {
        const SLEEP_MS: u64 = 4;
        const TASKS: u64 = 12;
        let mk_tasks = || {
            (0..TASKS)
                .map(|i| {
                    move |_w: usize| {
                        std::thread::sleep(std::time::Duration::from_millis(SLEEP_MS));
                        i
                    }
                })
                .collect::<Vec<_>>()
        };
        for jobs in [1usize, 2, 8] {
            let (_, stats) = run_indexed(jobs, mk_tasks());
            let used = stats.jobs;
            assert_eq!(stats.busy_us.len(), used, "jobs={jobs}");
            assert_eq!(stats.executed.len(), used, "jobs={jobs}");
            assert_eq!(stats.steals.len(), used, "jobs={jobs}");
            // Per-worker completed-task counts partition the task list:
            // they sum to the submission count, and any worker that
            // reported busy time must have completed at least one task.
            assert_eq!(stats.executed.iter().sum::<u64>(), TASKS, "jobs={jobs}");
            for (w, (&n, &busy)) in stats.executed.iter().zip(&stats.busy_us).enumerate() {
                assert!(
                    n > 0 || busy == 0,
                    "jobs={jobs} worker={w}: {busy}µs busy but 0 tasks"
                );
            }
            if used == 1 {
                assert_eq!(stats.executed, vec![TASKS], "jobs={jobs}");
            }
            // Busy time is bounded by wall time per worker (idle = wall −
            // busy must be non-negative), with a small slop for timer
            // granularity.
            let slop_us = 2_000;
            for (w, &busy) in stats.busy_us.iter().enumerate() {
                assert!(
                    busy <= stats.wall_us + slop_us,
                    "jobs={jobs} worker={w}: busy {busy}µs > wall {}µs",
                    stats.wall_us
                );
            }
            // Total busy time is at least the sleep actually performed —
            // the accounting loses nothing.
            let total_busy: u64 = stats.busy_us.iter().sum();
            let min_expected = TASKS * SLEEP_MS * 1_000;
            assert!(
                total_busy >= min_expected.saturating_sub(slop_us),
                "jobs={jobs}: busy {total_busy}µs < sleep floor {min_expected}µs"
            );
            // And busy + idle sums to jobs × wall by construction.
            let idle: u64 = stats
                .busy_us
                .iter()
                .map(|&b| stats.wall_us.saturating_sub(b.min(stats.wall_us)))
                .sum();
            let capacity = stats.wall_us * used as u64;
            let accounted = total_busy.min(capacity) + idle;
            let tolerance = capacity / 5 + slop_us * used as u64;
            assert!(
                accounted.abs_diff(capacity) <= tolerance,
                "jobs={jobs}: accounted {accounted}µs vs capacity {capacity}µs (tol {tolerance})"
            );
            let util = stats.utilization();
            assert!((0.0..=1.0).contains(&util), "jobs={jobs}: util {util}");
            // With uniform sleep tasks every worker stays saturated until
            // the end: utilization must be substantial at any width.
            assert!(util > 0.5, "jobs={jobs}: util {util}");
        }
    }

    /// Satellite check: `PoolStats::export_metrics` round-trips through
    /// the in-repo Prometheus renderer and parser with per-worker task
    /// counts intact.
    #[test]
    fn pool_stats_export_renders_as_prometheus() {
        let tasks: Vec<_> = (0..9).map(|i| move |_w: usize| i).collect();
        let (_, stats) = run_indexed(3, tasks);
        let registry = apt_metrics::Registry::new();
        stats.export_metrics(&registry);
        let text = apt_metrics::render_prometheus(&registry);
        let exposition = apt_metrics::prom::parse(&text).expect("valid exposition");
        assert_eq!(
            exposition.value("apt_bench_pool_jobs", &[]),
            Some(stats.jobs as f64)
        );
        assert_eq!(
            exposition.value("apt_bench_pool_utilization_ratio", &[]),
            Some(stats.utilization())
        );
        assert_eq!(
            exposition.value("apt_bench_pool_wall_us", &[]),
            Some(stats.wall_us as f64)
        );
        let mut tasks_seen = 0.0;
        for w in 0..stats.jobs {
            let id = w.to_string();
            let labels = [("worker", id.as_str())];
            tasks_seen += exposition
                .value("apt_bench_worker_tasks_total", &labels)
                .unwrap_or_else(|| panic!("missing worker={w} task counter"));
            assert_eq!(
                exposition.value("apt_bench_worker_busy_us_total", &labels),
                Some(stats.busy_us[w] as f64)
            );
        }
        assert_eq!(tasks_seen, 9.0);

        // A disabled registry stays empty.
        let off = apt_metrics::Registry::disabled();
        stats.export_metrics(&off);
        assert!(apt_metrics::render_prometheus(&off).is_empty());
    }
}
