//! The perf-trajectory report (`aptgetsim perf-history`).
//!
//! Reads a directory of `BENCH_*.json` snapshots (the same files the
//! bench gate consumes), orders them by filename, and renders one
//! self-contained HTML page: per-workload simulated-cycle and speedup
//! trends with the bench-gate tolerance drawn as a corridor around the
//! first snapshot, plus the host-dependent simulator-throughput
//! (cycles-per-second) trajectory. Anything that drifts outside its
//! corridor is listed in an annotation table, so a slow regression that
//! never trips the gate in one step is still visible across the series.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use apt_metrics::snapshot::BenchSnapshot;
use apt_timeline::{escape, html_page, line_chart_banded, HBand, Series};

/// One loaded snapshot: the filename stem (`BENCH_3`) and its contents.
#[derive(Debug, Clone)]
pub struct HistoryPoint {
    pub label: String,
    pub snap: BenchSnapshot,
}

/// A metric that drifted outside its tolerance corridor relative to the
/// first snapshot of the series.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendAnnotation {
    /// Snapshot label where the drift was observed.
    pub at: String,
    pub workload: String,
    pub metric: &'static str,
    /// Value in the first snapshot.
    pub first: f64,
    /// Value at `at`.
    pub current: f64,
    /// Signed relative change, positive = worse.
    pub regression: f64,
}

/// Loads every `BENCH_*.json` in `dir`, sorted by filename so
/// `BENCH_1 … BENCH_9` read in chronological order of the naming
/// convention. Non-matching files are ignored; a matching file that
/// fails to parse is an error (a corrupt history should not silently
/// shrink).
pub fn load_dir(dir: &Path) -> Result<Vec<HistoryPoint>, String> {
    apt_selfprof::prof_scope!("bench/history/load");
    let entries =
        fs::read_dir(dir).map_err(|e| format!("could not read {}: {e}", dir.display()))?;
    let mut names: Vec<String> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("could not read {}: {e}", dir.display()))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with("BENCH_") && name.ends_with(".json") {
            names.push(name);
        }
    }
    names.sort();
    let mut out = Vec::with_capacity(names.len());
    for name in names {
        let path = dir.join(&name);
        let text = fs::read_to_string(&path)
            .map_err(|e| format!("could not read {}: {e}", path.display()))?;
        let snap =
            BenchSnapshot::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        out.push(HistoryPoint {
            label: name.trim_end_matches(".json").to_string(),
            snap,
        });
    }
    Ok(out)
}

/// Per-workload series of one metric across the history, in workload
/// order of the first snapshot. Workloads missing from a later snapshot
/// carry their previous value forward so the series stays plottable.
fn metric_series(
    points: &[HistoryPoint],
    pick: impl Fn(&apt_metrics::snapshot::WorkloadBench) -> f64,
) -> Vec<(String, Vec<f64>)> {
    let Some(first) = points.first() else {
        return Vec::new();
    };
    first
        .snap
        .workloads
        .iter()
        .map(|w0| {
            let mut last = pick(w0);
            let series = points
                .iter()
                .map(|p| {
                    if let Some(w) = p.snap.workloads.iter().find(|w| w.workload == w0.workload) {
                        last = pick(w);
                    }
                    last
                })
                .collect();
            (w0.workload.clone(), series)
        })
        .collect()
}

/// Flags every metric that drifted outside `tolerance` relative to the
/// first snapshot: simulated cycles up, speedup down, or simulator
/// throughput (cycles/s) down. Only the *first* snapshot where a
/// workload/metric pair crosses the corridor is reported, so a
/// persistent regression yields one row, not one per later snapshot.
pub fn trend_annotations(points: &[HistoryPoint], tolerance: f64) -> Vec<TrendAnnotation> {
    let Some(first) = points.first() else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for w0 in &first.snap.workloads {
        // (metric, first value, higher_is_worse)
        let metrics: [(&'static str, f64, bool); 4] = [
            ("aptget_cycles", w0.aptget_cycles as f64, true),
            ("baseline_cycles", w0.baseline_cycles as f64, true),
            ("speedup_aptget", w0.speedup_aptget, false),
            ("cycles_per_sec", w0.cycles_per_sec, false),
        ];
        for (metric, base, higher_is_worse) in metrics {
            if base == 0.0 {
                continue;
            }
            for p in &points[1..] {
                let Some(w) = p.snap.workloads.iter().find(|w| w.workload == w0.workload) else {
                    continue;
                };
                let cur = match metric {
                    "aptget_cycles" => w.aptget_cycles as f64,
                    "baseline_cycles" => w.baseline_cycles as f64,
                    "speedup_aptget" => w.speedup_aptget,
                    _ => w.cycles_per_sec,
                };
                if metric == "cycles_per_sec" && cur == 0.0 {
                    continue; // old snapshot without the field
                }
                let regression = if higher_is_worse {
                    cur / base - 1.0
                } else {
                    base / cur.max(1e-12) - 1.0
                };
                if regression > tolerance {
                    out.push(TrendAnnotation {
                        at: p.label.clone(),
                        workload: w0.workload.clone(),
                        metric,
                        first: base,
                        current: cur,
                        regression,
                    });
                    break;
                }
            }
        }
    }
    out
}

fn fmt_val(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.3}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.3}")
    }
}

fn annotation_table(annotations: &[TrendAnnotation]) -> String {
    if annotations.is_empty() {
        return "<p class='good'>No metric drifted outside the tolerance \
                corridor relative to the first snapshot.</p>"
            .to_string();
    }
    let mut out = String::from(
        "<p class='bad'>Metrics outside the tolerance corridor (relative \
         to the first snapshot):</p>\
         <table><tr><th>workload</th><th>metric</th><th>since</th>\
         <th>first</th><th>current</th><th>regression</th></tr>",
    );
    for a in annotations {
        let _ = write!(
            out,
            "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td>\
             <td class='bad'>{:+.1}%</td></tr>",
            escape(&a.workload),
            a.metric,
            escape(&a.at),
            fmt_val(a.first),
            fmt_val(a.current),
            a.regression * 100.0
        );
    }
    out.push_str("</table>");
    out
}

/// The snapshot index: label, host, config, wall time. Flags host
/// changes, since cycles-per-second is only comparable within one host.
fn index_table(points: &[HistoryPoint]) -> String {
    let mut out = String::from(
        "<table><tr><th>snapshot</th><th>host</th><th>config</th>\
         <th>wall ms</th></tr>",
    );
    let first_host = points
        .first()
        .map(|p| p.snap.host.clone())
        .unwrap_or_default();
    let mut host_changed = false;
    for p in points {
        let mismatch = !p.snap.host.is_empty() && p.snap.host != first_host;
        host_changed |= mismatch;
        let _ = write!(
            out,
            "<tr><td>{}</td><td{}>{}</td><td>{}</td><td>{:.1}</td></tr>",
            escape(&p.label),
            if mismatch { " class='bad'" } else { "" },
            escape(if p.snap.host.is_empty() {
                "(unknown)"
            } else {
                &p.snap.host
            }),
            escape(&p.snap.config),
            p.snap.wall_us as f64 / 1000.0
        );
    }
    out.push_str("</table>");
    if host_changed {
        out.push_str(
            "<p class='bad'>Host fingerprint changes across the series: \
             throughput (cycles/s) is not comparable across hosts.</p>",
        );
    }
    out
}

/// One trend chart: a line per workload plus, for gated metrics, the
/// tolerance corridor of the first snapshot's slowest workload (the
/// widest band keeps every corridor visible without clutter per line).
fn trend_chart(
    rows: &[(String, Vec<f64>)],
    tolerance: f64,
    higher_is_worse: Option<bool>,
    y_label: &str,
) -> String {
    let palette = apt_timeline::PALETTE;
    let series: Vec<Series> = rows
        .iter()
        .enumerate()
        .map(|(i, (name, pts))| Series::new(name.clone(), palette[i % palette.len()], pts.clone()))
        .collect();
    let mut hbands = Vec::new();
    if let Some(higher_is_worse) = higher_is_worse {
        for (name, pts) in rows {
            let first = pts.first().copied().unwrap_or(0.0);
            if first <= 0.0 {
                continue;
            }
            let (lo, hi) = if higher_is_worse {
                (first, first * (1.0 + tolerance))
            } else {
                (first / (1.0 + tolerance), first)
            };
            hbands.push(HBand {
                label: format!("{name} ±{:.0}% gate", tolerance * 100.0),
                lo,
                hi,
            });
        }
    }
    line_chart_banded(&series, &[], &hbands, y_label)
}

/// Renders the whole history as one self-contained HTML document.
pub fn render_perf_history(points: &[HistoryPoint], tolerance: f64) -> String {
    apt_selfprof::prof_scope!("bench/history/render");
    let annotations = trend_annotations(points, tolerance);
    let mut sections: Vec<(String, String)> = Vec::new();

    sections.push(("Snapshots".to_string(), index_table(points)));
    sections.push(("Regressions".to_string(), annotation_table(&annotations)));

    let cycles = metric_series(points, |w| w.aptget_cycles as f64);
    sections.push((
        "APT-GET simulated cycles".to_string(),
        format!(
            "<p>Lower is better; the corridor is the first snapshot's \
             value plus the gate tolerance.</p>{}",
            trend_chart(&cycles, tolerance, Some(true), "cycles")
        ),
    ));

    let speedup = metric_series(points, |w| w.speedup_aptget);
    sections.push((
        "APT-GET speedup over baseline".to_string(),
        format!(
            "<p>Higher is better; the corridor floor is the first \
             snapshot's speedup shrunk by the gate tolerance.</p>{}",
            trend_chart(&speedup, tolerance, Some(false), "speedup")
        ),
    ));

    let cps = metric_series(points, |w| w.cycles_per_sec);
    if cps.iter().any(|(_, pts)| pts.iter().any(|&v| v > 0.0)) {
        sections.push((
            "Simulator throughput".to_string(),
            format!(
                "<p>Simulated cycles per host wall-clock second. \
                 Host-dependent and never gated, but a sustained drop on \
                 one host is a simulator performance regression.</p>{}",
                trend_chart(&cps, tolerance, Some(false), "cycles/s")
            ),
        ));
    }

    let intro = format!(
        "Performance trajectory across {} benchmark snapshot(s), oldest \
         first, with a ±{:.0}% tolerance corridor anchored at the first \
         snapshot. {} regression annotation(s).",
        points.len(),
        tolerance * 100.0,
        annotations.len()
    );
    html_page("APT-GET perf history", &intro, &sections)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_metrics::snapshot::WorkloadBench;

    fn snap(label: &str, aptget: u64, cps: f64) -> HistoryPoint {
        let mut s = BenchSnapshot::new("apteval --scale 0.01".to_string());
        s.host = "linux-x86_64-8c".to_string();
        let mut w = WorkloadBench::new("BFS", 1_000_000, 900_000, aptget);
        w.cycles_per_sec = cps;
        s.workloads.push(w);
        s.wall_us = 42_000;
        HistoryPoint {
            label: label.to_string(),
            snap: s,
        }
    }

    #[test]
    fn stable_series_produces_no_annotations() {
        let pts = vec![snap("BENCH_1", 700_000, 5e7), snap("BENCH_2", 707_000, 5e7)];
        assert!(trend_annotations(&pts, 0.05).is_empty());
    }

    #[test]
    fn cycle_and_throughput_regressions_are_annotated_once() {
        let pts = vec![
            snap("BENCH_1", 700_000, 5e7),
            snap("BENCH_2", 760_000, 2e7), // cycles +8.6%, throughput -60%
            snap("BENCH_3", 780_000, 2e7), // still bad: must not re-annotate
        ];
        let ann = trend_annotations(&pts, 0.05);
        let cycles: Vec<_> = ann.iter().filter(|a| a.metric == "aptget_cycles").collect();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].at, "BENCH_2");
        assert!(cycles[0].regression > 0.08 && cycles[0].regression < 0.09);
        let cps: Vec<_> = ann
            .iter()
            .filter(|a| a.metric == "cycles_per_sec")
            .collect();
        assert_eq!(cps.len(), 1);
        assert_eq!(cps[0].at, "BENCH_2");
        // Speedup regressed too (baseline constant, APT-GET cycles up).
        assert!(ann.iter().any(|a| a.metric == "speedup_aptget"));
    }

    #[test]
    fn old_snapshots_without_throughput_are_skipped_not_flagged() {
        let pts = vec![snap("BENCH_1", 700_000, 5e7), snap("BENCH_2", 700_000, 0.0)];
        assert!(trend_annotations(&pts, 0.05).is_empty());
    }

    #[test]
    fn report_renders_bands_annotations_and_host_warning() {
        let mut pts = vec![snap("BENCH_1", 700_000, 5e7), snap("BENCH_2", 800_000, 5e7)];
        pts[1].snap.host = "linux-aarch64-4c".to_string();
        let html = render_perf_history(&pts, 0.05);
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(!html.contains("http"), "external reference in report");
        assert!(!html.contains("<script"), "script in report");
        assert!(html.contains("stroke-dasharray"), "tolerance band missing");
        assert!(html.contains("aptget_cycles"), "annotation table missing");
        assert!(html.contains("not comparable across hosts"));
        assert_eq!(html, render_perf_history(&pts, 0.05), "nondeterministic");
    }

    #[test]
    fn load_dir_orders_by_filename_and_ignores_strangers() {
        let dir = std::env::temp_dir().join(format!("apt-history-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("BENCH_2.json"), snap("x", 1, 1.0).snap.to_json()).unwrap();
        fs::write(dir.join("BENCH_1.json"), snap("x", 2, 2.0).snap.to_json()).unwrap();
        fs::write(dir.join("notes.txt"), "ignored").unwrap();
        let pts = load_dir(&dir).unwrap();
        fs::remove_dir_all(&dir).unwrap();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].label, "BENCH_1");
        assert_eq!(pts[0].snap.workloads[0].aptget_cycles, 2);
        assert_eq!(pts[1].label, "BENCH_2");
    }

    #[test]
    fn corrupt_snapshot_is_an_error_not_a_skip() {
        let dir = std::env::temp_dir().join(format!("apt-history-bad-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("BENCH_1.json"), "{ not json").unwrap();
        let err = load_dir(&dir).unwrap_err();
        fs::remove_dir_all(&dir).unwrap();
        assert!(err.contains("BENCH_1.json"));
    }
}
