//! Figure 4: the latency distribution of a loop containing a delinquent
//! load, measured from LBR cycle deltas, with the CWT-detected peaks.
//!
//! Expected shape: a dominant low-latency peak (the load hits in cache —
//! the IC component) plus one or more far peaks for LLC/DRAM service.

use apt_bench::{emit_table, scale, TRAIN_SEED};
use apt_lir::pcmap::Location;
use apt_passes::loops::analyze_loops;
use apt_profile::model::latency_distribution;
use apt_workloads::registry::by_name;
use aptget::{execute, AnalysisConfig, PipelineConfig};

fn main() {
    let cfg = PipelineConfig::default();
    // The paper's Fig. 4 comes from a graph benchmark; PR's gather loop is
    // the cleanest single-block example.
    let w = by_name("PR")
        .expect("registered")
        .build(scale(), TRAIN_SEED);
    let exec =
        execute(&w.module, w.image.clone(), &w.calls, &cfg.profile_sim).expect("profiling run");

    // Find the top delinquent load and its loop back-edge branch.
    let map = w.module.assign_pcs();
    let delinquent = apt_profile::rank_delinquent_loads(&exec.profile.pebs, 0.02, 4);
    assert!(!delinquent.is_empty(), "PR must have delinquent loads");
    let d = delinquent[0];
    let Some(Location::Inst(iref)) = map.resolve(d.pc) else {
        panic!("delinquent PC does not resolve")
    };
    let func = w.module.function(iref.func);
    let forest = analyze_loops(func);
    let inner = forest.innermost_of(iref.block).expect("load in a loop");
    let latch = forest.loops[inner].latches[0];
    let branch = map.term_pc(iref.func, latch);

    let acfg = AnalysisConfig {
        dram_latency_hint: cfg.profile_sim.mem.dram_latency,
        ..AnalysisConfig::default()
    };
    let (hist, peaks) = latency_distribution(&exec.profile, branch, &acfg).expect("enough samples");

    println!(
        "\nLoop-latency distribution (delinquent load at {}):\n",
        d.pc
    );
    println!("{}", hist.smoothed(1).ascii(60));

    let rows: Vec<Vec<String>> = peaks
        .iter()
        .map(|p| vec![p.latency.to_string(), format!("{:.1}%", p.mass * 100.0)])
        .collect();
    emit_table(
        "fig4_latency_distribution",
        "Fig. 4 — CWT peaks of the loop-latency distribution",
        &["peak latency (cycles)", "mass"],
        &rows,
    );

    assert!(
        peaks.len() >= 2,
        "the distribution must separate hit and miss service levels: {peaks:?}"
    );
    let lats: Vec<u64> = peaks.iter().map(|p| p.latency).collect();
    assert!(
        lats.windows(2).all(|w| w[0] < w[1]),
        "peaks must be sorted ascending"
    );
    let span = lats.last().expect("non-empty") - lats[0];
    assert!(
        span as f64 >= cfg.profile_sim.mem.dram_latency as f64 * 0.5,
        "hit and DRAM peaks must be separated by most of the memory latency"
    );
    println!("fig4: OK");
}
