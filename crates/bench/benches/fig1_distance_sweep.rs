//! Figure 1: speedup vs. prefetch distance for the §2 microbenchmark with
//! 256 inner iterations and low/medium/high work-function complexity.
//!
//! Expected shape: inverted-U curves whose optimum distance *shrinks* as
//! the work function gets heavier (the loop's IC_latency grows, so fewer
//! iterations are needed to cover the memory latency).

use apt_bench::{emit_table, fx, scale};
use apt_workloads::micro::{self, Complexity, MicroParams};
use aptget::{ainsworth_jones_optimize, execute, PipelineConfig};

fn main() {
    let cfg = PipelineConfig::default();
    let outer = ((1600.0 * scale()) as u64).max(50);
    let complexities = [Complexity::Low, Complexity::Medium, Complexity::High];
    let distances = [1u64, 2, 4, 8, 16, 32, 64, 128];

    let mut rows = Vec::new();
    let mut series: Vec<Vec<f64>> = vec![Vec::new(); complexities.len()];
    for (ci, &cx) in complexities.iter().enumerate() {
        let w = micro::build(MicroParams {
            outer,
            inner: 256,
            complexity: cx,
            ..MicroParams::default()
        });
        let base =
            execute(&w.module, w.image.clone(), &w.calls, &cfg.measure_sim).expect("baseline run");
        for &d in &distances {
            let (m, _) = ainsworth_jones_optimize(&w.module, d);
            let opt =
                execute(&m, w.image.clone(), &w.calls, &cfg.measure_sim).expect("prefetch run");
            assert_eq!(opt.rets, base.rets, "prefetching changed the result");
            series[ci].push(base.stats.cycles as f64 / opt.stats.cycles as f64);
        }
    }
    for (di, &d) in distances.iter().enumerate() {
        rows.push(vec![
            d.to_string(),
            fx(series[0][di]),
            fx(series[1][di]),
            fx(series[2][di]),
        ]);
    }
    emit_table(
        "fig1_distance_sweep",
        "Fig. 1 — speedup vs prefetch-distance (INNER = 256)",
        &["distance", "low", "medium", "high"],
        &rows,
    );

    // Shape assertions: each curve has an interior optimum, and the
    // optimum distance is non-increasing with complexity.
    let best = |s: &[f64]| {
        s.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("non-empty")
            .0
    };
    let (b0, b1, b2) = (best(&series[0]), best(&series[1]), best(&series[2]));
    println!(
        "\noptimal distances: low={} medium={} high={}",
        distances[b0], distances[b1], distances[b2]
    );
    assert!(
        b0 >= b1 && b1 >= b2,
        "optimal distance must shrink with work complexity"
    );
    assert!(
        series[0][b0] > 1.5,
        "low-complexity peak speedup should be substantial"
    );
    println!("fig1: OK");
}
