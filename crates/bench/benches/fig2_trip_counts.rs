//! Figure 2: speedup vs. prefetch distance for *low* work complexity at
//! inner-loop trip counts {4, 16, 64}.
//!
//! Expected shape: with a trip count of 4, inner-loop prefetching cannot
//! help (any useful distance exceeds the loop); gains appear and grow as
//! the trip count rises, and the usable distance range widens.

use apt_bench::{emit_table, fx, scale};
use apt_workloads::micro::{self, Complexity, MicroParams};
use aptget::{ainsworth_jones_optimize, execute, PipelineConfig};

fn main() {
    let cfg = PipelineConfig::default();
    let trip_counts = [4u64, 16, 64];
    let distances = [1u64, 2, 4, 8, 16, 32];
    // Keep total memory work constant across trip counts.
    let total_inner = ((400_000.0 * scale()) as u64).max(20_000);

    let mut series: Vec<Vec<f64>> = Vec::new();
    for &inner in &trip_counts {
        let w = micro::build(MicroParams {
            outer: total_inner / inner,
            inner,
            complexity: Complexity::Low,
            ..MicroParams::default()
        });
        let base =
            execute(&w.module, w.image.clone(), &w.calls, &cfg.measure_sim).expect("baseline");
        let mut row = Vec::new();
        for &d in &distances {
            let (m, _) = ainsworth_jones_optimize(&w.module, d);
            let opt =
                execute(&m, w.image.clone(), &w.calls, &cfg.measure_sim).expect("prefetch run");
            assert_eq!(opt.rets, base.rets);
            row.push(base.stats.cycles as f64 / opt.stats.cycles as f64);
        }
        series.push(row);
    }

    let rows: Vec<Vec<String>> = distances
        .iter()
        .enumerate()
        .map(|(di, d)| {
            vec![
                d.to_string(),
                fx(series[0][di]),
                fx(series[1][di]),
                fx(series[2][di]),
            ]
        })
        .collect();
    emit_table(
        "fig2_trip_counts",
        "Fig. 2 — speedup vs distance for inner trip counts 4/16/64 (low work)",
        &["distance", "trip=4", "trip=16", "trip=64"],
        &rows,
    );

    let best = |s: &[f64]| s.iter().cloned().fold(0.0f64, f64::max);
    let (b4, b16, b64) = (best(&series[0]), best(&series[1]), best(&series[2]));
    println!("\nbest speedups: trip4={b4:.2} trip16={b16:.2} trip64={b64:.2}");
    assert!(
        b4 < b16 && b16 < b64,
        "prefetching benefit must grow with the trip count"
    );
    assert!(
        b4 < 0.6 * b64,
        "a 4-iteration loop leaves most of the opportunity on the table"
    );
    // Beyond the trip count, prefetching must not help much.
    let d8 = distances.iter().position(|&d| d == 8).expect("present");
    assert!(
        series[0][d8] < 1.25,
        "distance 8 cannot be timely in a 4-iteration loop"
    );
    println!("fig2: OK");
}
