//! Figure 10: forcing the prefetch injection site to the inner vs. outer
//! loop, for the applications with nested-loop delinquent loads.
//!
//! Expected shape: for most short-trip-count apps the outer site wins and
//! the inner site can even regress; for DFS (and other saturating-inner
//! cases) the inner site wins — so a *per-load* dynamic decision is
//! required, which is what APT-GET's Eq. 2 provides.

use apt_bench::{emit_table, fx, run_checked, scale, TRAIN_SEED};
use apt_passes::inject_prefetches;
use apt_workloads::registry::nested_loop_workloads;
use aptget::{AptGet, InjectionSpec, PipelineConfig, Site};

fn main() {
    let cfg = PipelineConfig::default();
    let apt = AptGet::new(cfg);
    let mut rows = Vec::new();
    let mut outer_wins = 0usize;
    let mut inner_wins = 0usize;
    let mut chosen_beats_worst = 0usize;
    let mut total = 0usize;
    for spec in nested_loop_workloads() {
        let w = spec.build(scale(), TRAIN_SEED);
        let base = run_checked(&w, &w.module, &cfg);
        let opt = apt
            .optimize(&w.module, w.image.clone(), &w.calls)
            .expect("profiling");
        if opt.analysis.hints.is_empty() {
            continue; // Nothing delinquent (CG): no sites to compare.
        }

        let force = |site: Site| {
            let specs: Vec<InjectionSpec> = opt
                .analysis
                .hints
                .iter()
                .map(|h| {
                    let mut s = h.to_spec();
                    s.site = site;
                    if site == Site::Outer {
                        s.fanout = s
                            .fanout
                            .max(h.trip_count.map(|t| t.round() as u64).unwrap_or(4));
                        s.fallback_inner_distance = h.inner_distance;
                    } else {
                        s.distance = h.inner_distance.unwrap_or(s.distance);
                    }
                    s
                })
                .collect();
            let mut m = w.module.clone();
            inject_prefetches(&mut m, &specs);
            apt_passes::optimize_module(&mut m);
            let e = run_checked(&w, &m, &cfg);
            base.stats.cycles as f64 / e.stats.cycles as f64
        };
        let s_inner = force(Site::Inner);
        let s_outer = force(Site::Outer);
        let chosen = run_checked(&w, &opt.module, &cfg);
        let s_chosen = base.stats.cycles as f64 / chosen.stats.cycles as f64;
        total += 1;
        if s_outer > s_inner {
            outer_wins += 1;
        } else {
            inner_wins += 1;
        }
        if s_chosen >= s_inner.min(s_outer) - 0.02 {
            chosen_beats_worst += 1;
        }
        rows.push(vec![
            spec.name.to_string(),
            fx(s_inner),
            fx(s_outer),
            fx(s_chosen),
        ]);
    }
    emit_table(
        "fig10_injection_site",
        "Fig. 10 — forced inner vs forced outer vs APT-GET's per-load choice",
        &["app", "inner site", "outer site", "APT-GET choice"],
        &rows,
    );

    println!("\nouter wins: {outer_wins}, inner wins: {inner_wins} (of {total})");
    assert!(
        outer_wins >= 1 && inner_wins >= 1,
        "neither site may dominate — that is the point of Eq. 2"
    );
    assert!(
        chosen_beats_worst == total,
        "APT-GET's choice must never be the worst of the two sites"
    );
    println!("fig10: OK");
}
