//! Table 1: IPC, prefetch accuracy and late-prefetch ratio for the
//! microbenchmark at prefetch distances {none, 1, 64, 1024}.
//!
//! Expected shape: distance 1 → high late-prefetch ratio (demand loads hit
//! the software prefetch in the fill buffer); distance 64 → timely, high
//! accuracy, best IPC; distance 1024 (≫ trip count 256) → accuracy
//! collapses and IPC drops below baseline.

use apt_bench::{emit_table, pct, scale};
use apt_workloads::micro::{self, Complexity, MicroParams};
use aptget::{ainsworth_jones_optimize, execute, PerfStats, PipelineConfig};

fn main() {
    let cfg = PipelineConfig::default();
    let outer = ((1600.0 * scale()) as u64).max(50);
    let w = micro::build(MicroParams {
        outer,
        inner: 256,
        complexity: Complexity::Low,
        ..MicroParams::default()
    });

    let run = |dist: Option<u64>| -> PerfStats {
        let module = match dist {
            None => w.module.clone(),
            Some(d) => ainsworth_jones_optimize(&w.module, d).0,
        };
        execute(&module, w.image.clone(), &w.calls, &cfg.measure_sim)
            .expect("run")
            .stats
    };

    let configs: [(&str, Option<u64>); 4] = [
        ("None", None),
        ("Dist-1", Some(1)),
        ("Dist-64", Some(64)),
        ("Dist-1024", Some(1024)),
    ];
    let mut rows = Vec::new();
    let mut stats_by_name = Vec::new();
    for (name, d) in configs {
        let s = run(d);
        rows.push(vec![
            name.to_string(),
            format!("{:.2}", s.ipc()),
            pct(s.mem.prefetch_accuracy()),
            pct(s.mem.late_prefetch_ratio()),
        ]);
        stats_by_name.push((name, s));
    }
    emit_table(
        "table1_pmu_counters",
        "Table 1 — prefetch accuracy and timeliness vs distance",
        &["Prefetch", "IPC", "Prefetch Accuracy", "Late Prefetch"],
        &rows,
    );

    // Shape assertions (§2.3's observations).
    let get = |n: &str| {
        stats_by_name
            .iter()
            .find(|(name, _)| *name == n)
            .map(|(_, s)| *s)
            .expect("present")
    };
    let (none, d1, d64, d1024) = (get("None"), get("Dist-1"), get("Dist-64"), get("Dist-1024"));
    // A short distance produces many fill-buffer (late) hits; with blocking
    // demand loads the pattern alternates timely/late, so the ratio sits
    // near 50 % rather than the paper's 95 % (see EXPERIMENTS.md).
    assert!(
        d1.mem.late_prefetch_ratio() > 0.25,
        "distance 1 must be late: {}",
        d1.mem.late_prefetch_ratio()
    );
    assert!(
        d64.mem.late_prefetch_ratio() < 0.05,
        "distance 64 must be timely"
    );
    assert!(
        d64.ipc() > d1.ipc() && d1.ipc() > none.ipc(),
        "IPC ordering"
    );
    assert!(
        d64.mem.prefetch_accuracy() > 0.5,
        "distance 64 must be accurate"
    );
    assert!(
        d1024.mem.prefetch_accuracy() < 0.2,
        "distance beyond the trip count destroys accuracy: {}",
        d1024.mem.prefetch_accuracy()
    );
    assert!(
        d1024.cycles > none.cycles,
        "useless prefetches cost bandwidth and slow the program down"
    );
    println!("\ntable1: OK");
}
