//! Figure 11: instruction overhead of the injected prefetch slices.
//!
//! Expected shape: both schemes add instructions; APT-GET adds *fewer* on
//! average than A&J (it only instruments profiled-delinquent loads), and
//! overhead is largest for tight-loop kernels (IS, RandomAccess).

use apt_bench::{compare_variants, emit_table, fx, scale, TRAIN_SEED};
use apt_workloads::all_workloads;
use aptget::{geomean, PipelineConfig};

fn main() {
    let cfg = PipelineConfig::default();
    let mut rows = Vec::new();
    let (mut aj_all, mut apt_all) = (Vec::new(), Vec::new());
    for spec in all_workloads() {
        let w = spec.build(scale(), TRAIN_SEED);
        let (cmp, _) = compare_variants(&w, &cfg);
        let aj = cmp.instruction_overhead("A&J").expect("ran");
        let apt = cmp.instruction_overhead("APT-GET").expect("ran");
        aj_all.push(aj);
        apt_all.push(apt);
        rows.push(vec![spec.name.to_string(), fx(aj), fx(apt)]);
    }
    rows.push(vec![
        "GEOMEAN".into(),
        fx(geomean(&aj_all)),
        fx(geomean(&apt_all)),
    ]);
    emit_table(
        "fig11_instr_overhead",
        "Fig. 11 — instruction overhead over the baseline",
        &["app", "A&J", "APT-GET"],
        &rows,
    );

    let g_aj = geomean(&aj_all);
    let g_apt = geomean(&apt_all);
    println!("\ngeomean instruction overhead: A&J {g_aj:.2}x, APT-GET {g_apt:.2}x");
    // The paper reports APT-GET at 1.14x vs A&J at 1.19x. In this
    // reproduction APT-GET's outer-site sweeps spend a few extra
    // instructions to buy timeliness (and A&J cannot instrument the
    // hash-join loads at all), so we only require comparable overheads.
    assert!(
        g_apt <= g_aj * 1.10,
        "APT-GET's overhead must stay comparable to A&J's"
    );
    assert!(g_aj < 2.0 && g_apt < 2.0, "overheads must stay moderate");
    println!("fig11: OK");
}
